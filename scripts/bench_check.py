#!/usr/bin/env python3
"""CI bench-regression gate for the fleet engine.

Parses a freshly generated ``BENCH_fleet.json`` (written by
``fleet_throughput``, including in ``--quick`` mode, which always measures
the two gate configurations) and fails when steady-state ingest throughput
regresses more than the allowed fraction from the committed baseline.

Baselines are the committed full-run numbers for this repo's seed host.
They are deliberately hardcoded next to the tolerance: updating them is a
reviewed change to this file, not an artifact side effect. CI hosts differ
from the seed host, so the tolerance is wide (>20% regression fails, per
the roadmap) — the gate catches algorithmic cliffs (an accidental O(n)
in the hot loop, a codec blow-up), not single-digit jitter.

Usage: python3 scripts/bench_check.py [path/to/BENCH_fleet.json]
"""

import json
import sys

# (workload, series, shards) -> committed points/sec baseline
BASELINES = {
    ("steady", 10_000, 1): 727_072.0,
    ("steady", 100_000, 1): 611_691.0,
}

MAX_REGRESSION = 0.20


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_fleet.json"
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"[bench_check] FAIL: cannot parse {path}: {e}")
        return 1

    runs = doc.get("runs")
    if not isinstance(runs, list):
        print(f"[bench_check] FAIL: {path} has no 'runs' array")
        return 1

    failures = 0
    for (workload, series, shards), baseline in sorted(BASELINES.items()):
        rows = [
            r
            for r in runs
            if r.get("workload") == workload
            and r.get("series") == series
            and r.get("shards") == shards
        ]
        if not rows:
            print(
                f"[bench_check] FAIL: no {workload} {series}@{shards} run in "
                f"{path} — the gate configuration was not measured"
            )
            failures += 1
            continue
        # the fresh file holds one row per configuration; be robust to
        # duplicates by gating on the best one (reruns only ever add noise
        # downward)
        pps = max(r.get("points_per_sec", 0.0) for r in rows)
        floor = baseline * (1.0 - MAX_REGRESSION)
        verdict = "ok" if pps >= floor else "REGRESSED"
        print(
            f"[bench_check] {workload} {series}@{shards}: {pps:,.0f} pts/s "
            f"(baseline {baseline:,.0f}, floor {floor:,.0f}) {verdict}"
        )
        if pps < floor:
            failures += 1

    if failures:
        print(f"[bench_check] FAIL: {failures} gate(s) regressed")
        return 1
    print("[bench_check] OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
