/root/repo/target/release/examples/fleet_ingest-9856f386c188ca0f.d: examples/fleet_ingest.rs

/root/repo/target/release/examples/fleet_ingest-9856f386c188ca0f: examples/fleet_ingest.rs

examples/fleet_ingest.rs:
