/root/repo/target/release/examples/tmp_probe-289e6c4b89755e30.d: examples/tmp_probe.rs

/root/repo/target/release/examples/tmp_probe-289e6c4b89755e30: examples/tmp_probe.rs

examples/tmp_probe.rs:
