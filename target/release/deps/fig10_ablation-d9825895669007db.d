/root/repo/target/release/deps/fig10_ablation-d9825895669007db.d: crates/bench/src/bin/fig10_ablation.rs

/root/repo/target/release/deps/fig10_ablation-d9825895669007db: crates/bench/src/bin/fig10_ablation.rs

crates/bench/src/bin/fig10_ablation.rs:
