/root/repo/target/release/deps/benchkit-7aed1801fe224833.d: crates/bench/src/lib.rs crates/bench/src/adapters.rs crates/bench/src/methods.rs crates/bench/src/paper.rs crates/bench/src/report.rs

/root/repo/target/release/deps/libbenchkit-7aed1801fe224833.rlib: crates/bench/src/lib.rs crates/bench/src/adapters.rs crates/bench/src/methods.rs crates/bench/src/paper.rs crates/bench/src/report.rs

/root/repo/target/release/deps/libbenchkit-7aed1801fe224833.rmeta: crates/bench/src/lib.rs crates/bench/src/adapters.rs crates/bench/src/methods.rs crates/bench/src/paper.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/adapters.rs:
crates/bench/src/methods.rs:
crates/bench/src/paper.rs:
crates/bench/src/report.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
