/root/repo/target/release/deps/rand-5d2a69a9e74e12a0.d: vendor/rand/src/lib.rs vendor/rand/src/rngs.rs vendor/rand/src/seq.rs

/root/repo/target/release/deps/librand-5d2a69a9e74e12a0.rlib: vendor/rand/src/lib.rs vendor/rand/src/rngs.rs vendor/rand/src/seq.rs

/root/repo/target/release/deps/librand-5d2a69a9e74e12a0.rmeta: vendor/rand/src/lib.rs vendor/rand/src/rngs.rs vendor/rand/src/seq.rs

vendor/rand/src/lib.rs:
vendor/rand/src/rngs.rs:
vendor/rand/src/seq.rs:
