/root/repo/target/release/deps/table5-68fae9d6ce82a152.d: crates/bench/src/bin/table5.rs

/root/repo/target/release/deps/table5-68fae9d6ce82a152: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
