/root/repo/target/release/deps/oneshotstl-bdd86f8b94d22218.d: crates/core/src/lib.rs crates/core/src/doolittle.rs crates/core/src/jointstl.rs crates/core/src/nsigma.rs crates/core/src/oneshot.rs crates/core/src/online_doolittle.rs crates/core/src/reference.rs crates/core/src/system.rs crates/core/src/tasks.rs

/root/repo/target/release/deps/liboneshotstl-bdd86f8b94d22218.rlib: crates/core/src/lib.rs crates/core/src/doolittle.rs crates/core/src/jointstl.rs crates/core/src/nsigma.rs crates/core/src/oneshot.rs crates/core/src/online_doolittle.rs crates/core/src/reference.rs crates/core/src/system.rs crates/core/src/tasks.rs

/root/repo/target/release/deps/liboneshotstl-bdd86f8b94d22218.rmeta: crates/core/src/lib.rs crates/core/src/doolittle.rs crates/core/src/jointstl.rs crates/core/src/nsigma.rs crates/core/src/oneshot.rs crates/core/src/online_doolittle.rs crates/core/src/reference.rs crates/core/src/system.rs crates/core/src/tasks.rs

crates/core/src/lib.rs:
crates/core/src/doolittle.rs:
crates/core/src/jointstl.rs:
crates/core/src/nsigma.rs:
crates/core/src/oneshot.rs:
crates/core/src/online_doolittle.rs:
crates/core/src/reference.rs:
crates/core/src/system.rs:
crates/core/src/tasks.rs:
