/root/repo/target/release/deps/ablation_init-f080755526f00f6b.d: crates/bench/src/bin/ablation_init.rs

/root/repo/target/release/deps/ablation_init-f080755526f00f6b: crates/bench/src/bin/ablation_init.rs

crates/bench/src/bin/ablation_init.rs:
