/root/repo/target/release/deps/run_all-e3333c7ec833fec1.d: crates/bench/src/bin/run_all.rs

/root/repo/target/release/deps/run_all-e3333c7ec833fec1: crates/bench/src/bin/run_all.rs

crates/bench/src/bin/run_all.rs:
