/root/repo/target/release/deps/fig9_ablation-168e5600638dcc75.d: crates/bench/src/bin/fig9_ablation.rs

/root/repo/target/release/deps/fig9_ablation-168e5600638dcc75: crates/bench/src/bin/fig9_ablation.rs

crates/bench/src/bin/fig9_ablation.rs:
