/root/repo/target/release/deps/proptest-a3e52c37ed7c0921.d: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/sample.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-a3e52c37ed7c0921.rlib: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/sample.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-a3e52c37ed7c0921.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/sample.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/sample.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/test_runner.rs:
