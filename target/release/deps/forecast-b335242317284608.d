/root/repo/target/release/deps/forecast-b335242317284608.d: crates/forecast/src/lib.rs crates/forecast/src/arima.rs crates/forecast/src/ets.rs crates/forecast/src/eval.rs crates/forecast/src/naive.rs crates/forecast/src/std_forecast.rs crates/forecast/src/theta.rs crates/forecast/src/traits.rs

/root/repo/target/release/deps/libforecast-b335242317284608.rlib: crates/forecast/src/lib.rs crates/forecast/src/arima.rs crates/forecast/src/ets.rs crates/forecast/src/eval.rs crates/forecast/src/naive.rs crates/forecast/src/std_forecast.rs crates/forecast/src/theta.rs crates/forecast/src/traits.rs

/root/repo/target/release/deps/libforecast-b335242317284608.rmeta: crates/forecast/src/lib.rs crates/forecast/src/arima.rs crates/forecast/src/ets.rs crates/forecast/src/eval.rs crates/forecast/src/naive.rs crates/forecast/src/std_forecast.rs crates/forecast/src/theta.rs crates/forecast/src/traits.rs

crates/forecast/src/lib.rs:
crates/forecast/src/arima.rs:
crates/forecast/src/ets.rs:
crates/forecast/src/eval.rs:
crates/forecast/src/naive.rs:
crates/forecast/src/std_forecast.rs:
crates/forecast/src/theta.rs:
crates/forecast/src/traits.rs:
