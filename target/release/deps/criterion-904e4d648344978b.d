/root/repo/target/release/deps/criterion-904e4d648344978b.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-904e4d648344978b.rlib: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-904e4d648344978b.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
