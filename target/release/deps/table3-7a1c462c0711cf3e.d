/root/repo/target/release/deps/table3-7a1c462c0711cf3e.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-7a1c462c0711cf3e: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
