/root/repo/target/release/deps/table4-aeebebc12f413eba.d: crates/bench/src/bin/table4.rs

/root/repo/target/release/deps/table4-aeebebc12f413eba: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
