/root/repo/target/release/deps/anomaly-daec59c54eb29953.d: crates/anomaly/src/lib.rs crates/anomaly/src/cluster.rs crates/anomaly/src/damp.rs crates/anomaly/src/mass.rs crates/anomaly/src/norma.rs crates/anomaly/src/pipeline.rs crates/anomaly/src/sand.rs crates/anomaly/src/stomp.rs crates/anomaly/src/traits.rs crates/anomaly/src/znorm.rs

/root/repo/target/release/deps/libanomaly-daec59c54eb29953.rlib: crates/anomaly/src/lib.rs crates/anomaly/src/cluster.rs crates/anomaly/src/damp.rs crates/anomaly/src/mass.rs crates/anomaly/src/norma.rs crates/anomaly/src/pipeline.rs crates/anomaly/src/sand.rs crates/anomaly/src/stomp.rs crates/anomaly/src/traits.rs crates/anomaly/src/znorm.rs

/root/repo/target/release/deps/libanomaly-daec59c54eb29953.rmeta: crates/anomaly/src/lib.rs crates/anomaly/src/cluster.rs crates/anomaly/src/damp.rs crates/anomaly/src/mass.rs crates/anomaly/src/norma.rs crates/anomaly/src/pipeline.rs crates/anomaly/src/sand.rs crates/anomaly/src/stomp.rs crates/anomaly/src/traits.rs crates/anomaly/src/znorm.rs

crates/anomaly/src/lib.rs:
crates/anomaly/src/cluster.rs:
crates/anomaly/src/damp.rs:
crates/anomaly/src/mass.rs:
crates/anomaly/src/norma.rs:
crates/anomaly/src/pipeline.rs:
crates/anomaly/src/sand.rs:
crates/anomaly/src/stomp.rs:
crates/anomaly/src/traits.rs:
crates/anomaly/src/znorm.rs:
