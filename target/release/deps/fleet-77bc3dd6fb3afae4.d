/root/repo/target/release/deps/fleet-77bc3dd6fb3afae4.d: crates/fleet/src/lib.rs crates/fleet/src/codec.rs crates/fleet/src/config.rs crates/fleet/src/engine.rs crates/fleet/src/error.rs crates/fleet/src/series.rs crates/fleet/src/shard.rs crates/fleet/src/types.rs

/root/repo/target/release/deps/libfleet-77bc3dd6fb3afae4.rlib: crates/fleet/src/lib.rs crates/fleet/src/codec.rs crates/fleet/src/config.rs crates/fleet/src/engine.rs crates/fleet/src/error.rs crates/fleet/src/series.rs crates/fleet/src/shard.rs crates/fleet/src/types.rs

/root/repo/target/release/deps/libfleet-77bc3dd6fb3afae4.rmeta: crates/fleet/src/lib.rs crates/fleet/src/codec.rs crates/fleet/src/config.rs crates/fleet/src/engine.rs crates/fleet/src/error.rs crates/fleet/src/series.rs crates/fleet/src/shard.rs crates/fleet/src/types.rs

crates/fleet/src/lib.rs:
crates/fleet/src/codec.rs:
crates/fleet/src/config.rs:
crates/fleet/src/engine.rs:
crates/fleet/src/error.rs:
crates/fleet/src/series.rs:
crates/fleet/src/shard.rs:
crates/fleet/src/types.rs:
