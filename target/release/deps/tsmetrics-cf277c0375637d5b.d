/root/repo/target/release/deps/tsmetrics-cf277c0375637d5b.d: crates/metrics/src/lib.rs crates/metrics/src/classify.rs crates/metrics/src/decomp.rs crates/metrics/src/kdd.rs crates/metrics/src/rank.rs crates/metrics/src/tsf.rs crates/metrics/src/vus.rs

/root/repo/target/release/deps/libtsmetrics-cf277c0375637d5b.rlib: crates/metrics/src/lib.rs crates/metrics/src/classify.rs crates/metrics/src/decomp.rs crates/metrics/src/kdd.rs crates/metrics/src/rank.rs crates/metrics/src/tsf.rs crates/metrics/src/vus.rs

/root/repo/target/release/deps/libtsmetrics-cf277c0375637d5b.rmeta: crates/metrics/src/lib.rs crates/metrics/src/classify.rs crates/metrics/src/decomp.rs crates/metrics/src/kdd.rs crates/metrics/src/rank.rs crates/metrics/src/tsf.rs crates/metrics/src/vus.rs

crates/metrics/src/lib.rs:
crates/metrics/src/classify.rs:
crates/metrics/src/decomp.rs:
crates/metrics/src/kdd.rs:
crates/metrics/src/rank.rs:
crates/metrics/src/tsf.rs:
crates/metrics/src/vus.rs:
