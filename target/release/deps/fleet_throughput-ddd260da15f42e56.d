/root/repo/target/release/deps/fleet_throughput-ddd260da15f42e56.d: crates/bench/src/bin/fleet_throughput.rs

/root/repo/target/release/deps/fleet_throughput-ddd260da15f42e56: crates/bench/src/bin/fleet_throughput.rs

crates/bench/src/bin/fleet_throughput.rs:
