/root/repo/target/release/deps/decomp-83f81808ffdc3f52.d: crates/decomp/src/lib.rs crates/decomp/src/l1trend.rs crates/decomp/src/online_robust.rs crates/decomp/src/onlinestl.rs crates/decomp/src/robuststl.rs crates/decomp/src/stl.rs crates/decomp/src/traits.rs crates/decomp/src/window.rs

/root/repo/target/release/deps/libdecomp-83f81808ffdc3f52.rlib: crates/decomp/src/lib.rs crates/decomp/src/l1trend.rs crates/decomp/src/online_robust.rs crates/decomp/src/onlinestl.rs crates/decomp/src/robuststl.rs crates/decomp/src/stl.rs crates/decomp/src/traits.rs crates/decomp/src/window.rs

/root/repo/target/release/deps/libdecomp-83f81808ffdc3f52.rmeta: crates/decomp/src/lib.rs crates/decomp/src/l1trend.rs crates/decomp/src/online_robust.rs crates/decomp/src/onlinestl.rs crates/decomp/src/robuststl.rs crates/decomp/src/stl.rs crates/decomp/src/traits.rs crates/decomp/src/window.rs

crates/decomp/src/lib.rs:
crates/decomp/src/l1trend.rs:
crates/decomp/src/online_robust.rs:
crates/decomp/src/onlinestl.rs:
crates/decomp/src/robuststl.rs:
crates/decomp/src/stl.rs:
crates/decomp/src/traits.rs:
crates/decomp/src/window.rs:
