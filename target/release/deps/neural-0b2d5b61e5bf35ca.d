/root/repo/target/release/deps/neural-0b2d5b61e5bf35ca.d: crates/neural/src/lib.rs crates/neural/src/deepar.rs crates/neural/src/mlp_forecast.rs crates/neural/src/nbeats.rs crates/neural/src/nn.rs crates/neural/src/tranad.rs crates/neural/src/usad.rs crates/neural/src/windows.rs

/root/repo/target/release/deps/libneural-0b2d5b61e5bf35ca.rlib: crates/neural/src/lib.rs crates/neural/src/deepar.rs crates/neural/src/mlp_forecast.rs crates/neural/src/nbeats.rs crates/neural/src/nn.rs crates/neural/src/tranad.rs crates/neural/src/usad.rs crates/neural/src/windows.rs

/root/repo/target/release/deps/libneural-0b2d5b61e5bf35ca.rmeta: crates/neural/src/lib.rs crates/neural/src/deepar.rs crates/neural/src/mlp_forecast.rs crates/neural/src/nbeats.rs crates/neural/src/nn.rs crates/neural/src/tranad.rs crates/neural/src/usad.rs crates/neural/src/windows.rs

crates/neural/src/lib.rs:
crates/neural/src/deepar.rs:
crates/neural/src/mlp_forecast.rs:
crates/neural/src/nbeats.rs:
crates/neural/src/nn.rs:
crates/neural/src/tranad.rs:
crates/neural/src/usad.rs:
crates/neural/src/windows.rs:
