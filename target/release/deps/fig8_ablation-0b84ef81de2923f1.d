/root/repo/target/release/deps/fig8_ablation-0b84ef81de2923f1.d: crates/bench/src/bin/fig8_ablation.rs

/root/repo/target/release/deps/fig8_ablation-0b84ef81de2923f1: crates/bench/src/bin/fig8_ablation.rs

crates/bench/src/bin/fig8_ablation.rs:
