/root/repo/target/release/deps/fig5_6-4f3c1d49bb573187.d: crates/bench/src/bin/fig5_6.rs

/root/repo/target/release/deps/fig5_6-4f3c1d49bb573187: crates/bench/src/bin/fig5_6.rs

crates/bench/src/bin/fig5_6.rs:
