/root/repo/target/release/deps/oneshotstl_suite-65db3b24f53c66e2.d: src/lib.rs

/root/repo/target/release/deps/liboneshotstl_suite-65db3b24f53c66e2.rlib: src/lib.rs

/root/repo/target/release/deps/liboneshotstl_suite-65db3b24f53c66e2.rmeta: src/lib.rs

src/lib.rs:
