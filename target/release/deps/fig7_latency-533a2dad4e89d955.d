/root/repo/target/release/deps/fig7_latency-533a2dad4e89d955.d: crates/bench/src/bin/fig7_latency.rs

/root/repo/target/release/deps/fig7_latency-533a2dad4e89d955: crates/bench/src/bin/fig7_latency.rs

crates/bench/src/bin/fig7_latency.rs:
