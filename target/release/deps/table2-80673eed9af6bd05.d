/root/repo/target/release/deps/table2-80673eed9af6bd05.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-80673eed9af6bd05: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
