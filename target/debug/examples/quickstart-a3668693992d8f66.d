/root/repo/target/debug/examples/quickstart-a3668693992d8f66.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-a3668693992d8f66.rmeta: examples/quickstart.rs

examples/quickstart.rs:
