/root/repo/target/debug/examples/anomaly_pipeline-a448b5142a89687f.d: examples/anomaly_pipeline.rs Cargo.toml

/root/repo/target/debug/examples/libanomaly_pipeline-a448b5142a89687f.rmeta: examples/anomaly_pipeline.rs Cargo.toml

examples/anomaly_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
