/root/repo/target/debug/examples/quickstart-ceb2f1d311d5199b.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-ceb2f1d311d5199b.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
