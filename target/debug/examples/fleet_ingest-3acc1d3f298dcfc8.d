/root/repo/target/debug/examples/fleet_ingest-3acc1d3f298dcfc8.d: examples/fleet_ingest.rs Cargo.toml

/root/repo/target/debug/examples/libfleet_ingest-3acc1d3f298dcfc8.rmeta: examples/fleet_ingest.rs Cargo.toml

examples/fleet_ingest.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
