/root/repo/target/debug/examples/shift_recovery-4e572c06ad91382f.d: examples/shift_recovery.rs

/root/repo/target/debug/examples/libshift_recovery-4e572c06ad91382f.rmeta: examples/shift_recovery.rs

examples/shift_recovery.rs:
