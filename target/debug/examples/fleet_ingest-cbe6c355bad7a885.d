/root/repo/target/debug/examples/fleet_ingest-cbe6c355bad7a885.d: examples/fleet_ingest.rs

/root/repo/target/debug/examples/fleet_ingest-cbe6c355bad7a885: examples/fleet_ingest.rs

examples/fleet_ingest.rs:
