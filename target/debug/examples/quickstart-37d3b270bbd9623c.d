/root/repo/target/debug/examples/quickstart-37d3b270bbd9623c.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-37d3b270bbd9623c: examples/quickstart.rs

examples/quickstart.rs:
