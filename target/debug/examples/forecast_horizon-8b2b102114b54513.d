/root/repo/target/debug/examples/forecast_horizon-8b2b102114b54513.d: examples/forecast_horizon.rs

/root/repo/target/debug/examples/libforecast_horizon-8b2b102114b54513.rmeta: examples/forecast_horizon.rs

examples/forecast_horizon.rs:
