/root/repo/target/debug/examples/forecast_horizon-bfb8bc5e9c45c8d0.d: examples/forecast_horizon.rs Cargo.toml

/root/repo/target/debug/examples/libforecast_horizon-bfb8bc5e9c45c8d0.rmeta: examples/forecast_horizon.rs Cargo.toml

examples/forecast_horizon.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
