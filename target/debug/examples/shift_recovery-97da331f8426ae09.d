/root/repo/target/debug/examples/shift_recovery-97da331f8426ae09.d: examples/shift_recovery.rs Cargo.toml

/root/repo/target/debug/examples/libshift_recovery-97da331f8426ae09.rmeta: examples/shift_recovery.rs Cargo.toml

examples/shift_recovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
