/root/repo/target/debug/examples/shift_recovery-93f8c11b15173267.d: examples/shift_recovery.rs

/root/repo/target/debug/examples/shift_recovery-93f8c11b15173267: examples/shift_recovery.rs

examples/shift_recovery.rs:
