/root/repo/target/debug/examples/anomaly_pipeline-a4b7a131cdedaefa.d: examples/anomaly_pipeline.rs

/root/repo/target/debug/examples/anomaly_pipeline-a4b7a131cdedaefa: examples/anomaly_pipeline.rs

examples/anomaly_pipeline.rs:
