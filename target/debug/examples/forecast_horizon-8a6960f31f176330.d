/root/repo/target/debug/examples/forecast_horizon-8a6960f31f176330.d: examples/forecast_horizon.rs

/root/repo/target/debug/examples/forecast_horizon-8a6960f31f176330: examples/forecast_horizon.rs

examples/forecast_horizon.rs:
