/root/repo/target/debug/examples/anomaly_pipeline-069b1c3673ff4432.d: examples/anomaly_pipeline.rs

/root/repo/target/debug/examples/libanomaly_pipeline-069b1c3673ff4432.rmeta: examples/anomaly_pipeline.rs

examples/anomaly_pipeline.rs:
