/root/repo/target/debug/examples/fleet_ingest-ba023eb3c1c7ef17.d: examples/fleet_ingest.rs

/root/repo/target/debug/examples/libfleet_ingest-ba023eb3c1c7ef17.rmeta: examples/fleet_ingest.rs

examples/fleet_ingest.rs:
