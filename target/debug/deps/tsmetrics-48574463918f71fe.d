/root/repo/target/debug/deps/tsmetrics-48574463918f71fe.d: crates/metrics/src/lib.rs crates/metrics/src/classify.rs crates/metrics/src/decomp.rs crates/metrics/src/kdd.rs crates/metrics/src/rank.rs crates/metrics/src/tsf.rs crates/metrics/src/vus.rs Cargo.toml

/root/repo/target/debug/deps/libtsmetrics-48574463918f71fe.rmeta: crates/metrics/src/lib.rs crates/metrics/src/classify.rs crates/metrics/src/decomp.rs crates/metrics/src/kdd.rs crates/metrics/src/rank.rs crates/metrics/src/tsf.rs crates/metrics/src/vus.rs Cargo.toml

crates/metrics/src/lib.rs:
crates/metrics/src/classify.rs:
crates/metrics/src/decomp.rs:
crates/metrics/src/kdd.rs:
crates/metrics/src/rank.rs:
crates/metrics/src/tsf.rs:
crates/metrics/src/vus.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
