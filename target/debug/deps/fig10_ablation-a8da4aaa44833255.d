/root/repo/target/debug/deps/fig10_ablation-a8da4aaa44833255.d: crates/bench/src/bin/fig10_ablation.rs

/root/repo/target/debug/deps/fig10_ablation-a8da4aaa44833255: crates/bench/src/bin/fig10_ablation.rs

crates/bench/src/bin/fig10_ablation.rs:
