/root/repo/target/debug/deps/integration-d0d29231e76c727a.d: tests/integration.rs

/root/repo/target/debug/deps/integration-d0d29231e76c727a: tests/integration.rs

tests/integration.rs:
