/root/repo/target/debug/deps/proptests-94bbde2a9640013f.d: crates/tskit/tests/proptests.rs

/root/repo/target/debug/deps/proptests-94bbde2a9640013f: crates/tskit/tests/proptests.rs

crates/tskit/tests/proptests.rs:
