/root/repo/target/debug/deps/table3-df419ecef279f220.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-df419ecef279f220: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
