/root/repo/target/debug/deps/fleet-a43a2f58962862ef.d: crates/fleet/src/lib.rs crates/fleet/src/codec.rs crates/fleet/src/config.rs crates/fleet/src/engine.rs crates/fleet/src/error.rs crates/fleet/src/series.rs crates/fleet/src/shard.rs crates/fleet/src/types.rs Cargo.toml

/root/repo/target/debug/deps/libfleet-a43a2f58962862ef.rmeta: crates/fleet/src/lib.rs crates/fleet/src/codec.rs crates/fleet/src/config.rs crates/fleet/src/engine.rs crates/fleet/src/error.rs crates/fleet/src/series.rs crates/fleet/src/shard.rs crates/fleet/src/types.rs Cargo.toml

crates/fleet/src/lib.rs:
crates/fleet/src/codec.rs:
crates/fleet/src/config.rs:
crates/fleet/src/engine.rs:
crates/fleet/src/error.rs:
crates/fleet/src/series.rs:
crates/fleet/src/shard.rs:
crates/fleet/src/types.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
