/root/repo/target/debug/deps/decomp-87bb8b330e624acc.d: crates/decomp/src/lib.rs crates/decomp/src/l1trend.rs crates/decomp/src/online_robust.rs crates/decomp/src/onlinestl.rs crates/decomp/src/robuststl.rs crates/decomp/src/stl.rs crates/decomp/src/traits.rs crates/decomp/src/window.rs Cargo.toml

/root/repo/target/debug/deps/libdecomp-87bb8b330e624acc.rmeta: crates/decomp/src/lib.rs crates/decomp/src/l1trend.rs crates/decomp/src/online_robust.rs crates/decomp/src/onlinestl.rs crates/decomp/src/robuststl.rs crates/decomp/src/stl.rs crates/decomp/src/traits.rs crates/decomp/src/window.rs Cargo.toml

crates/decomp/src/lib.rs:
crates/decomp/src/l1trend.rs:
crates/decomp/src/online_robust.rs:
crates/decomp/src/onlinestl.rs:
crates/decomp/src/robuststl.rs:
crates/decomp/src/stl.rs:
crates/decomp/src/traits.rs:
crates/decomp/src/window.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
