/root/repo/target/debug/deps/fleet_throughput-3c488262c600439b.d: crates/bench/src/bin/fleet_throughput.rs

/root/repo/target/debug/deps/libfleet_throughput-3c488262c600439b.rmeta: crates/bench/src/bin/fleet_throughput.rs

crates/bench/src/bin/fleet_throughput.rs:
