/root/repo/target/debug/deps/table5-f1ee94e4a1da4a71.d: crates/bench/src/bin/table5.rs

/root/repo/target/debug/deps/libtable5-f1ee94e4a1da4a71.rmeta: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
