/root/repo/target/debug/deps/table5-817138e7b3ad5647.d: crates/bench/src/bin/table5.rs Cargo.toml

/root/repo/target/debug/deps/libtable5-817138e7b3ad5647.rmeta: crates/bench/src/bin/table5.rs Cargo.toml

crates/bench/src/bin/table5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
