/root/repo/target/debug/deps/ablation_init-44de71d0fcff35f9.d: crates/bench/src/bin/ablation_init.rs

/root/repo/target/debug/deps/libablation_init-44de71d0fcff35f9.rmeta: crates/bench/src/bin/ablation_init.rs

crates/bench/src/bin/ablation_init.rs:
