/root/repo/target/debug/deps/run_all-bb8e6630885ce857.d: crates/bench/src/bin/run_all.rs Cargo.toml

/root/repo/target/debug/deps/librun_all-bb8e6630885ce857.rmeta: crates/bench/src/bin/run_all.rs Cargo.toml

crates/bench/src/bin/run_all.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
