/root/repo/target/debug/deps/fig5_6-2cc7aa7ba9defa68.d: crates/bench/src/bin/fig5_6.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_6-2cc7aa7ba9defa68.rmeta: crates/bench/src/bin/fig5_6.rs Cargo.toml

crates/bench/src/bin/fig5_6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
