/root/repo/target/debug/deps/fig9_ablation-a393701a3f61f83e.d: crates/bench/src/bin/fig9_ablation.rs

/root/repo/target/debug/deps/libfig9_ablation-a393701a3f61f83e.rmeta: crates/bench/src/bin/fig9_ablation.rs

crates/bench/src/bin/fig9_ablation.rs:
