/root/repo/target/debug/deps/oneshotstl-d61bee2fdb8a1b6a.d: crates/core/src/lib.rs crates/core/src/doolittle.rs crates/core/src/jointstl.rs crates/core/src/nsigma.rs crates/core/src/oneshot.rs crates/core/src/online_doolittle.rs crates/core/src/reference.rs crates/core/src/system.rs crates/core/src/tasks.rs Cargo.toml

/root/repo/target/debug/deps/liboneshotstl-d61bee2fdb8a1b6a.rmeta: crates/core/src/lib.rs crates/core/src/doolittle.rs crates/core/src/jointstl.rs crates/core/src/nsigma.rs crates/core/src/oneshot.rs crates/core/src/online_doolittle.rs crates/core/src/reference.rs crates/core/src/system.rs crates/core/src/tasks.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/doolittle.rs:
crates/core/src/jointstl.rs:
crates/core/src/nsigma.rs:
crates/core/src/oneshot.rs:
crates/core/src/online_doolittle.rs:
crates/core/src/reference.rs:
crates/core/src/system.rs:
crates/core/src/tasks.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
