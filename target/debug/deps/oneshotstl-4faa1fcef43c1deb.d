/root/repo/target/debug/deps/oneshotstl-4faa1fcef43c1deb.d: crates/core/src/lib.rs crates/core/src/doolittle.rs crates/core/src/jointstl.rs crates/core/src/nsigma.rs crates/core/src/oneshot.rs crates/core/src/online_doolittle.rs crates/core/src/reference.rs crates/core/src/system.rs crates/core/src/tasks.rs Cargo.toml

/root/repo/target/debug/deps/liboneshotstl-4faa1fcef43c1deb.rmeta: crates/core/src/lib.rs crates/core/src/doolittle.rs crates/core/src/jointstl.rs crates/core/src/nsigma.rs crates/core/src/oneshot.rs crates/core/src/online_doolittle.rs crates/core/src/reference.rs crates/core/src/system.rs crates/core/src/tasks.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/doolittle.rs:
crates/core/src/jointstl.rs:
crates/core/src/nsigma.rs:
crates/core/src/oneshot.rs:
crates/core/src/online_doolittle.rs:
crates/core/src/reference.rs:
crates/core/src/system.rs:
crates/core/src/tasks.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
