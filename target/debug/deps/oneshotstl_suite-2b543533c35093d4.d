/root/repo/target/debug/deps/oneshotstl_suite-2b543533c35093d4.d: src/lib.rs

/root/repo/target/debug/deps/liboneshotstl_suite-2b543533c35093d4.rmeta: src/lib.rs

src/lib.rs:
