/root/repo/target/debug/deps/fig8_ablation-d45a8c0dc148bc57.d: crates/bench/src/bin/fig8_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_ablation-d45a8c0dc148bc57.rmeta: crates/bench/src/bin/fig8_ablation.rs Cargo.toml

crates/bench/src/bin/fig8_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
