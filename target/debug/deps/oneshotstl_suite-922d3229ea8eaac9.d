/root/repo/target/debug/deps/oneshotstl_suite-922d3229ea8eaac9.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/liboneshotstl_suite-922d3229ea8eaac9.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
