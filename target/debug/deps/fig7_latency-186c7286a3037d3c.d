/root/repo/target/debug/deps/fig7_latency-186c7286a3037d3c.d: crates/bench/src/bin/fig7_latency.rs

/root/repo/target/debug/deps/fig7_latency-186c7286a3037d3c: crates/bench/src/bin/fig7_latency.rs

crates/bench/src/bin/fig7_latency.rs:
