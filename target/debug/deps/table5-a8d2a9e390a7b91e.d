/root/repo/target/debug/deps/table5-a8d2a9e390a7b91e.d: crates/bench/src/bin/table5.rs

/root/repo/target/debug/deps/libtable5-a8d2a9e390a7b91e.rmeta: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
