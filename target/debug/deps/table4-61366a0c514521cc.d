/root/repo/target/debug/deps/table4-61366a0c514521cc.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/libtable4-61366a0c514521cc.rmeta: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
