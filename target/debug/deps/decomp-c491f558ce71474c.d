/root/repo/target/debug/deps/decomp-c491f558ce71474c.d: crates/decomp/src/lib.rs crates/decomp/src/l1trend.rs crates/decomp/src/online_robust.rs crates/decomp/src/onlinestl.rs crates/decomp/src/robuststl.rs crates/decomp/src/stl.rs crates/decomp/src/traits.rs crates/decomp/src/window.rs

/root/repo/target/debug/deps/libdecomp-c491f558ce71474c.rmeta: crates/decomp/src/lib.rs crates/decomp/src/l1trend.rs crates/decomp/src/online_robust.rs crates/decomp/src/onlinestl.rs crates/decomp/src/robuststl.rs crates/decomp/src/stl.rs crates/decomp/src/traits.rs crates/decomp/src/window.rs

crates/decomp/src/lib.rs:
crates/decomp/src/l1trend.rs:
crates/decomp/src/online_robust.rs:
crates/decomp/src/onlinestl.rs:
crates/decomp/src/robuststl.rs:
crates/decomp/src/stl.rs:
crates/decomp/src/traits.rs:
crates/decomp/src/window.rs:
