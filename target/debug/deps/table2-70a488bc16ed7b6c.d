/root/repo/target/debug/deps/table2-70a488bc16ed7b6c.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-70a488bc16ed7b6c: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
