/root/repo/target/debug/deps/decomp-eb41ee57f7d9bbef.d: crates/decomp/src/lib.rs crates/decomp/src/l1trend.rs crates/decomp/src/online_robust.rs crates/decomp/src/onlinestl.rs crates/decomp/src/robuststl.rs crates/decomp/src/stl.rs crates/decomp/src/traits.rs crates/decomp/src/window.rs

/root/repo/target/debug/deps/libdecomp-eb41ee57f7d9bbef.rlib: crates/decomp/src/lib.rs crates/decomp/src/l1trend.rs crates/decomp/src/online_robust.rs crates/decomp/src/onlinestl.rs crates/decomp/src/robuststl.rs crates/decomp/src/stl.rs crates/decomp/src/traits.rs crates/decomp/src/window.rs

/root/repo/target/debug/deps/libdecomp-eb41ee57f7d9bbef.rmeta: crates/decomp/src/lib.rs crates/decomp/src/l1trend.rs crates/decomp/src/online_robust.rs crates/decomp/src/onlinestl.rs crates/decomp/src/robuststl.rs crates/decomp/src/stl.rs crates/decomp/src/traits.rs crates/decomp/src/window.rs

crates/decomp/src/lib.rs:
crates/decomp/src/l1trend.rs:
crates/decomp/src/online_robust.rs:
crates/decomp/src/onlinestl.rs:
crates/decomp/src/robuststl.rs:
crates/decomp/src/stl.rs:
crates/decomp/src/traits.rs:
crates/decomp/src/window.rs:
