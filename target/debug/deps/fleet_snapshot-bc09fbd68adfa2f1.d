/root/repo/target/debug/deps/fleet_snapshot-bc09fbd68adfa2f1.d: tests/fleet_snapshot.rs

/root/repo/target/debug/deps/fleet_snapshot-bc09fbd68adfa2f1: tests/fleet_snapshot.rs

tests/fleet_snapshot.rs:
