/root/repo/target/debug/deps/fig10_ablation-a762af60ac7ddeb1.d: crates/bench/src/bin/fig10_ablation.rs

/root/repo/target/debug/deps/libfig10_ablation-a762af60ac7ddeb1.rmeta: crates/bench/src/bin/fig10_ablation.rs

crates/bench/src/bin/fig10_ablation.rs:
