/root/repo/target/debug/deps/table5-694b0c4843cca2f3.d: crates/bench/src/bin/table5.rs

/root/repo/target/debug/deps/table5-694b0c4843cca2f3: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
