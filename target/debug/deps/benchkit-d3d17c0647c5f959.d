/root/repo/target/debug/deps/benchkit-d3d17c0647c5f959.d: crates/bench/src/lib.rs crates/bench/src/adapters.rs crates/bench/src/methods.rs crates/bench/src/paper.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libbenchkit-d3d17c0647c5f959.rmeta: crates/bench/src/lib.rs crates/bench/src/adapters.rs crates/bench/src/methods.rs crates/bench/src/paper.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/adapters.rs:
crates/bench/src/methods.rs:
crates/bench/src/paper.rs:
crates/bench/src/report.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
