/root/repo/target/debug/deps/fleet_throughput-41878a90a3c5dac7.d: crates/bench/src/bin/fleet_throughput.rs

/root/repo/target/debug/deps/libfleet_throughput-41878a90a3c5dac7.rmeta: crates/bench/src/bin/fleet_throughput.rs

crates/bench/src/bin/fleet_throughput.rs:
