/root/repo/target/debug/deps/forecast-c31ca34a5b620ae2.d: crates/forecast/src/lib.rs crates/forecast/src/arima.rs crates/forecast/src/ets.rs crates/forecast/src/eval.rs crates/forecast/src/naive.rs crates/forecast/src/std_forecast.rs crates/forecast/src/theta.rs crates/forecast/src/traits.rs Cargo.toml

/root/repo/target/debug/deps/libforecast-c31ca34a5b620ae2.rmeta: crates/forecast/src/lib.rs crates/forecast/src/arima.rs crates/forecast/src/ets.rs crates/forecast/src/eval.rs crates/forecast/src/naive.rs crates/forecast/src/std_forecast.rs crates/forecast/src/theta.rs crates/forecast/src/traits.rs Cargo.toml

crates/forecast/src/lib.rs:
crates/forecast/src/arima.rs:
crates/forecast/src/ets.rs:
crates/forecast/src/eval.rs:
crates/forecast/src/naive.rs:
crates/forecast/src/std_forecast.rs:
crates/forecast/src/theta.rs:
crates/forecast/src/traits.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
