/root/repo/target/debug/deps/proptest-d55ce72db841faaa.d: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/sample.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-d55ce72db841faaa.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/sample.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs Cargo.toml

vendor/proptest/src/lib.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/sample.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/test_runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
