/root/repo/target/debug/deps/tsmetrics-a802fbbae75a166c.d: crates/metrics/src/lib.rs crates/metrics/src/classify.rs crates/metrics/src/decomp.rs crates/metrics/src/kdd.rs crates/metrics/src/rank.rs crates/metrics/src/tsf.rs crates/metrics/src/vus.rs

/root/repo/target/debug/deps/libtsmetrics-a802fbbae75a166c.rlib: crates/metrics/src/lib.rs crates/metrics/src/classify.rs crates/metrics/src/decomp.rs crates/metrics/src/kdd.rs crates/metrics/src/rank.rs crates/metrics/src/tsf.rs crates/metrics/src/vus.rs

/root/repo/target/debug/deps/libtsmetrics-a802fbbae75a166c.rmeta: crates/metrics/src/lib.rs crates/metrics/src/classify.rs crates/metrics/src/decomp.rs crates/metrics/src/kdd.rs crates/metrics/src/rank.rs crates/metrics/src/tsf.rs crates/metrics/src/vus.rs

crates/metrics/src/lib.rs:
crates/metrics/src/classify.rs:
crates/metrics/src/decomp.rs:
crates/metrics/src/kdd.rs:
crates/metrics/src/rank.rs:
crates/metrics/src/tsf.rs:
crates/metrics/src/vus.rs:
