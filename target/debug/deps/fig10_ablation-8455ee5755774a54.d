/root/repo/target/debug/deps/fig10_ablation-8455ee5755774a54.d: crates/bench/src/bin/fig10_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_ablation-8455ee5755774a54.rmeta: crates/bench/src/bin/fig10_ablation.rs Cargo.toml

crates/bench/src/bin/fig10_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
