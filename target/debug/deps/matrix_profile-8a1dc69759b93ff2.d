/root/repo/target/debug/deps/matrix_profile-8a1dc69759b93ff2.d: crates/bench/benches/matrix_profile.rs Cargo.toml

/root/repo/target/debug/deps/libmatrix_profile-8a1dc69759b93ff2.rmeta: crates/bench/benches/matrix_profile.rs Cargo.toml

crates/bench/benches/matrix_profile.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
