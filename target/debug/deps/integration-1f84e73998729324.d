/root/repo/target/debug/deps/integration-1f84e73998729324.d: tests/integration.rs

/root/repo/target/debug/deps/libintegration-1f84e73998729324.rmeta: tests/integration.rs

tests/integration.rs:
