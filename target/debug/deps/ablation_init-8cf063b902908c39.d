/root/repo/target/debug/deps/ablation_init-8cf063b902908c39.d: crates/bench/src/bin/ablation_init.rs

/root/repo/target/debug/deps/ablation_init-8cf063b902908c39: crates/bench/src/bin/ablation_init.rs

crates/bench/src/bin/ablation_init.rs:
