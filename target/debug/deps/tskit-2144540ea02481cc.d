/root/repo/target/debug/deps/tskit-2144540ea02481cc.d: crates/tskit/src/lib.rs crates/tskit/src/dense.rs crates/tskit/src/error.rs crates/tskit/src/fft.rs crates/tskit/src/io.rs crates/tskit/src/linalg.rs crates/tskit/src/loess.rs crates/tskit/src/period.rs crates/tskit/src/ring.rs crates/tskit/src/series.rs crates/tskit/src/smooth.rs crates/tskit/src/stats.rs crates/tskit/src/synth/mod.rs crates/tskit/src/synth/anomaly.rs crates/tskit/src/synth/components.rs crates/tskit/src/synth/std_data.rs crates/tskit/src/synth/tsad.rs crates/tskit/src/synth/tsf.rs Cargo.toml

/root/repo/target/debug/deps/libtskit-2144540ea02481cc.rmeta: crates/tskit/src/lib.rs crates/tskit/src/dense.rs crates/tskit/src/error.rs crates/tskit/src/fft.rs crates/tskit/src/io.rs crates/tskit/src/linalg.rs crates/tskit/src/loess.rs crates/tskit/src/period.rs crates/tskit/src/ring.rs crates/tskit/src/series.rs crates/tskit/src/smooth.rs crates/tskit/src/stats.rs crates/tskit/src/synth/mod.rs crates/tskit/src/synth/anomaly.rs crates/tskit/src/synth/components.rs crates/tskit/src/synth/std_data.rs crates/tskit/src/synth/tsad.rs crates/tskit/src/synth/tsf.rs Cargo.toml

crates/tskit/src/lib.rs:
crates/tskit/src/dense.rs:
crates/tskit/src/error.rs:
crates/tskit/src/fft.rs:
crates/tskit/src/io.rs:
crates/tskit/src/linalg.rs:
crates/tskit/src/loess.rs:
crates/tskit/src/period.rs:
crates/tskit/src/ring.rs:
crates/tskit/src/series.rs:
crates/tskit/src/smooth.rs:
crates/tskit/src/stats.rs:
crates/tskit/src/synth/mod.rs:
crates/tskit/src/synth/anomaly.rs:
crates/tskit/src/synth/components.rs:
crates/tskit/src/synth/std_data.rs:
crates/tskit/src/synth/tsad.rs:
crates/tskit/src/synth/tsf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
