/root/repo/target/debug/deps/tsmetrics-22f60324f7d4dc2c.d: crates/metrics/src/lib.rs crates/metrics/src/classify.rs crates/metrics/src/decomp.rs crates/metrics/src/kdd.rs crates/metrics/src/rank.rs crates/metrics/src/tsf.rs crates/metrics/src/vus.rs

/root/repo/target/debug/deps/libtsmetrics-22f60324f7d4dc2c.rmeta: crates/metrics/src/lib.rs crates/metrics/src/classify.rs crates/metrics/src/decomp.rs crates/metrics/src/kdd.rs crates/metrics/src/rank.rs crates/metrics/src/tsf.rs crates/metrics/src/vus.rs

crates/metrics/src/lib.rs:
crates/metrics/src/classify.rs:
crates/metrics/src/decomp.rs:
crates/metrics/src/kdd.rs:
crates/metrics/src/rank.rs:
crates/metrics/src/tsf.rs:
crates/metrics/src/vus.rs:
