/root/repo/target/debug/deps/neural-70e2d1cec8d97d6a.d: crates/neural/src/lib.rs crates/neural/src/deepar.rs crates/neural/src/mlp_forecast.rs crates/neural/src/nbeats.rs crates/neural/src/nn.rs crates/neural/src/tranad.rs crates/neural/src/usad.rs crates/neural/src/windows.rs

/root/repo/target/debug/deps/libneural-70e2d1cec8d97d6a.rlib: crates/neural/src/lib.rs crates/neural/src/deepar.rs crates/neural/src/mlp_forecast.rs crates/neural/src/nbeats.rs crates/neural/src/nn.rs crates/neural/src/tranad.rs crates/neural/src/usad.rs crates/neural/src/windows.rs

/root/repo/target/debug/deps/libneural-70e2d1cec8d97d6a.rmeta: crates/neural/src/lib.rs crates/neural/src/deepar.rs crates/neural/src/mlp_forecast.rs crates/neural/src/nbeats.rs crates/neural/src/nn.rs crates/neural/src/tranad.rs crates/neural/src/usad.rs crates/neural/src/windows.rs

crates/neural/src/lib.rs:
crates/neural/src/deepar.rs:
crates/neural/src/mlp_forecast.rs:
crates/neural/src/nbeats.rs:
crates/neural/src/nn.rs:
crates/neural/src/tranad.rs:
crates/neural/src/usad.rs:
crates/neural/src/windows.rs:
