/root/repo/target/debug/deps/fig5_6-0d7c553ff9be6e1d.d: crates/bench/src/bin/fig5_6.rs

/root/repo/target/debug/deps/libfig5_6-0d7c553ff9be6e1d.rmeta: crates/bench/src/bin/fig5_6.rs

crates/bench/src/bin/fig5_6.rs:
