/root/repo/target/debug/deps/table3-e8ceabc8474de2a4.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-e8ceabc8474de2a4: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
