/root/repo/target/debug/deps/fig7_latency-e6644fd04b0537ab.d: crates/bench/src/bin/fig7_latency.rs

/root/repo/target/debug/deps/libfig7_latency-e6644fd04b0537ab.rmeta: crates/bench/src/bin/fig7_latency.rs

crates/bench/src/bin/fig7_latency.rs:
