/root/repo/target/debug/deps/ablation_init-068fec5cad4dcd32.d: crates/bench/src/bin/ablation_init.rs

/root/repo/target/debug/deps/libablation_init-068fec5cad4dcd32.rmeta: crates/bench/src/bin/ablation_init.rs

crates/bench/src/bin/ablation_init.rs:
