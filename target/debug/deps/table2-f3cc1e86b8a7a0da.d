/root/repo/target/debug/deps/table2-f3cc1e86b8a7a0da.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/libtable2-f3cc1e86b8a7a0da.rmeta: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
