/root/repo/target/debug/deps/fig5_6-080c30c75765a232.d: crates/bench/src/bin/fig5_6.rs

/root/repo/target/debug/deps/fig5_6-080c30c75765a232: crates/bench/src/bin/fig5_6.rs

crates/bench/src/bin/fig5_6.rs:
