/root/repo/target/debug/deps/fig10_ablation-a58a1fbd3ecb5919.d: crates/bench/src/bin/fig10_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_ablation-a58a1fbd3ecb5919.rmeta: crates/bench/src/bin/fig10_ablation.rs Cargo.toml

crates/bench/src/bin/fig10_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
