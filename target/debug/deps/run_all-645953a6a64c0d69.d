/root/repo/target/debug/deps/run_all-645953a6a64c0d69.d: crates/bench/src/bin/run_all.rs Cargo.toml

/root/repo/target/debug/deps/librun_all-645953a6a64c0d69.rmeta: crates/bench/src/bin/run_all.rs Cargo.toml

crates/bench/src/bin/run_all.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
