/root/repo/target/debug/deps/fleet_snapshot-8836d3012c7b4fdb.d: tests/fleet_snapshot.rs Cargo.toml

/root/repo/target/debug/deps/libfleet_snapshot-8836d3012c7b4fdb.rmeta: tests/fleet_snapshot.rs Cargo.toml

tests/fleet_snapshot.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
