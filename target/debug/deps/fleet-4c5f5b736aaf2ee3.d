/root/repo/target/debug/deps/fleet-4c5f5b736aaf2ee3.d: crates/fleet/src/lib.rs crates/fleet/src/codec.rs crates/fleet/src/config.rs crates/fleet/src/engine.rs crates/fleet/src/error.rs crates/fleet/src/series.rs crates/fleet/src/shard.rs crates/fleet/src/types.rs Cargo.toml

/root/repo/target/debug/deps/libfleet-4c5f5b736aaf2ee3.rmeta: crates/fleet/src/lib.rs crates/fleet/src/codec.rs crates/fleet/src/config.rs crates/fleet/src/engine.rs crates/fleet/src/error.rs crates/fleet/src/series.rs crates/fleet/src/shard.rs crates/fleet/src/types.rs Cargo.toml

crates/fleet/src/lib.rs:
crates/fleet/src/codec.rs:
crates/fleet/src/config.rs:
crates/fleet/src/engine.rs:
crates/fleet/src/error.rs:
crates/fleet/src/series.rs:
crates/fleet/src/shard.rs:
crates/fleet/src/types.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
