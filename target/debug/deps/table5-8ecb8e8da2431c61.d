/root/repo/target/debug/deps/table5-8ecb8e8da2431c61.d: crates/bench/src/bin/table5.rs Cargo.toml

/root/repo/target/debug/deps/libtable5-8ecb8e8da2431c61.rmeta: crates/bench/src/bin/table5.rs Cargo.toml

crates/bench/src/bin/table5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
