/root/repo/target/debug/deps/table2-af2587abd26e952e.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/libtable2-af2587abd26e952e.rmeta: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
