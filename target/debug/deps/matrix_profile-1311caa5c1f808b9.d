/root/repo/target/debug/deps/matrix_profile-1311caa5c1f808b9.d: crates/bench/benches/matrix_profile.rs

/root/repo/target/debug/deps/libmatrix_profile-1311caa5c1f808b9.rmeta: crates/bench/benches/matrix_profile.rs

crates/bench/benches/matrix_profile.rs:
