/root/repo/target/debug/deps/table4-e1174e5fe91bd2bf.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-e1174e5fe91bd2bf: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
