/root/repo/target/debug/deps/integration-9543f96a408268c4.d: tests/integration.rs Cargo.toml

/root/repo/target/debug/deps/libintegration-9543f96a408268c4.rmeta: tests/integration.rs Cargo.toml

tests/integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
