/root/repo/target/debug/deps/fleet_throughput-d3bd65be8315730f.d: crates/bench/src/bin/fleet_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libfleet_throughput-d3bd65be8315730f.rmeta: crates/bench/src/bin/fleet_throughput.rs Cargo.toml

crates/bench/src/bin/fleet_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
