/root/repo/target/debug/deps/fig8_ablation-0d15c93e6d7bfeb9.d: crates/bench/src/bin/fig8_ablation.rs

/root/repo/target/debug/deps/libfig8_ablation-0d15c93e6d7bfeb9.rmeta: crates/bench/src/bin/fig8_ablation.rs

crates/bench/src/bin/fig8_ablation.rs:
