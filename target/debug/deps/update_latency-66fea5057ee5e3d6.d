/root/repo/target/debug/deps/update_latency-66fea5057ee5e3d6.d: crates/bench/benches/update_latency.rs Cargo.toml

/root/repo/target/debug/deps/libupdate_latency-66fea5057ee5e3d6.rmeta: crates/bench/benches/update_latency.rs Cargo.toml

crates/bench/benches/update_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
