/root/repo/target/debug/deps/table4-4cb9359a7dbfd7ab.d: crates/bench/src/bin/table4.rs Cargo.toml

/root/repo/target/debug/deps/libtable4-4cb9359a7dbfd7ab.rmeta: crates/bench/src/bin/table4.rs Cargo.toml

crates/bench/src/bin/table4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
