/root/repo/target/debug/deps/neural-c6ffb3cadfce0884.d: crates/neural/src/lib.rs crates/neural/src/deepar.rs crates/neural/src/mlp_forecast.rs crates/neural/src/nbeats.rs crates/neural/src/nn.rs crates/neural/src/tranad.rs crates/neural/src/usad.rs crates/neural/src/windows.rs Cargo.toml

/root/repo/target/debug/deps/libneural-c6ffb3cadfce0884.rmeta: crates/neural/src/lib.rs crates/neural/src/deepar.rs crates/neural/src/mlp_forecast.rs crates/neural/src/nbeats.rs crates/neural/src/nn.rs crates/neural/src/tranad.rs crates/neural/src/usad.rs crates/neural/src/windows.rs Cargo.toml

crates/neural/src/lib.rs:
crates/neural/src/deepar.rs:
crates/neural/src/mlp_forecast.rs:
crates/neural/src/nbeats.rs:
crates/neural/src/nn.rs:
crates/neural/src/tranad.rs:
crates/neural/src/usad.rs:
crates/neural/src/windows.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
