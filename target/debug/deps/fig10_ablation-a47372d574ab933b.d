/root/repo/target/debug/deps/fig10_ablation-a47372d574ab933b.d: crates/bench/src/bin/fig10_ablation.rs

/root/repo/target/debug/deps/libfig10_ablation-a47372d574ab933b.rmeta: crates/bench/src/bin/fig10_ablation.rs

crates/bench/src/bin/fig10_ablation.rs:
