/root/repo/target/debug/deps/fleet-c61e7c4fed8b64b7.d: crates/fleet/src/lib.rs crates/fleet/src/codec.rs crates/fleet/src/config.rs crates/fleet/src/engine.rs crates/fleet/src/error.rs crates/fleet/src/series.rs crates/fleet/src/shard.rs crates/fleet/src/types.rs

/root/repo/target/debug/deps/fleet-c61e7c4fed8b64b7: crates/fleet/src/lib.rs crates/fleet/src/codec.rs crates/fleet/src/config.rs crates/fleet/src/engine.rs crates/fleet/src/error.rs crates/fleet/src/series.rs crates/fleet/src/shard.rs crates/fleet/src/types.rs

crates/fleet/src/lib.rs:
crates/fleet/src/codec.rs:
crates/fleet/src/config.rs:
crates/fleet/src/engine.rs:
crates/fleet/src/error.rs:
crates/fleet/src/series.rs:
crates/fleet/src/shard.rs:
crates/fleet/src/types.rs:
