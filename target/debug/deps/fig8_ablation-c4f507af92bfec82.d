/root/repo/target/debug/deps/fig8_ablation-c4f507af92bfec82.d: crates/bench/src/bin/fig8_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_ablation-c4f507af92bfec82.rmeta: crates/bench/src/bin/fig8_ablation.rs Cargo.toml

crates/bench/src/bin/fig8_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
