/root/repo/target/debug/deps/tmp_debug-7378106475225daa.d: tests/tmp_debug.rs

/root/repo/target/debug/deps/tmp_debug-7378106475225daa: tests/tmp_debug.rs

tests/tmp_debug.rs:
