/root/repo/target/debug/deps/table5-d187dbf943854fc9.d: crates/bench/src/bin/table5.rs

/root/repo/target/debug/deps/table5-d187dbf943854fc9: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
