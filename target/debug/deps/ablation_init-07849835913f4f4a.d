/root/repo/target/debug/deps/ablation_init-07849835913f4f4a.d: crates/bench/src/bin/ablation_init.rs

/root/repo/target/debug/deps/ablation_init-07849835913f4f4a: crates/bench/src/bin/ablation_init.rs

crates/bench/src/bin/ablation_init.rs:
