/root/repo/target/debug/deps/fig5_6-c99cf1c1f7d5fee3.d: crates/bench/src/bin/fig5_6.rs

/root/repo/target/debug/deps/fig5_6-c99cf1c1f7d5fee3: crates/bench/src/bin/fig5_6.rs

crates/bench/src/bin/fig5_6.rs:
