/root/repo/target/debug/deps/fig7_latency-5b8381cf851f1499.d: crates/bench/src/bin/fig7_latency.rs

/root/repo/target/debug/deps/fig7_latency-5b8381cf851f1499: crates/bench/src/bin/fig7_latency.rs

crates/bench/src/bin/fig7_latency.rs:
