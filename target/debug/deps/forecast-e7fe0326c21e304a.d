/root/repo/target/debug/deps/forecast-e7fe0326c21e304a.d: crates/forecast/src/lib.rs crates/forecast/src/arima.rs crates/forecast/src/ets.rs crates/forecast/src/eval.rs crates/forecast/src/naive.rs crates/forecast/src/std_forecast.rs crates/forecast/src/theta.rs crates/forecast/src/traits.rs

/root/repo/target/debug/deps/libforecast-e7fe0326c21e304a.rmeta: crates/forecast/src/lib.rs crates/forecast/src/arima.rs crates/forecast/src/ets.rs crates/forecast/src/eval.rs crates/forecast/src/naive.rs crates/forecast/src/std_forecast.rs crates/forecast/src/theta.rs crates/forecast/src/traits.rs

crates/forecast/src/lib.rs:
crates/forecast/src/arima.rs:
crates/forecast/src/ets.rs:
crates/forecast/src/eval.rs:
crates/forecast/src/naive.rs:
crates/forecast/src/std_forecast.rs:
crates/forecast/src/theta.rs:
crates/forecast/src/traits.rs:
