/root/repo/target/debug/deps/proptest-dfdfa755711e6a96.d: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/sample.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/debug/deps/proptest-dfdfa755711e6a96: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/sample.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/sample.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/test_runner.rs:
