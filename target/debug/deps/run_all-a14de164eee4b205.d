/root/repo/target/debug/deps/run_all-a14de164eee4b205.d: crates/bench/src/bin/run_all.rs

/root/repo/target/debug/deps/librun_all-a14de164eee4b205.rmeta: crates/bench/src/bin/run_all.rs

crates/bench/src/bin/run_all.rs:
