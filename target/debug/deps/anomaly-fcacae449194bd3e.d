/root/repo/target/debug/deps/anomaly-fcacae449194bd3e.d: crates/anomaly/src/lib.rs crates/anomaly/src/cluster.rs crates/anomaly/src/damp.rs crates/anomaly/src/mass.rs crates/anomaly/src/norma.rs crates/anomaly/src/pipeline.rs crates/anomaly/src/sand.rs crates/anomaly/src/stomp.rs crates/anomaly/src/traits.rs crates/anomaly/src/znorm.rs

/root/repo/target/debug/deps/libanomaly-fcacae449194bd3e.rlib: crates/anomaly/src/lib.rs crates/anomaly/src/cluster.rs crates/anomaly/src/damp.rs crates/anomaly/src/mass.rs crates/anomaly/src/norma.rs crates/anomaly/src/pipeline.rs crates/anomaly/src/sand.rs crates/anomaly/src/stomp.rs crates/anomaly/src/traits.rs crates/anomaly/src/znorm.rs

/root/repo/target/debug/deps/libanomaly-fcacae449194bd3e.rmeta: crates/anomaly/src/lib.rs crates/anomaly/src/cluster.rs crates/anomaly/src/damp.rs crates/anomaly/src/mass.rs crates/anomaly/src/norma.rs crates/anomaly/src/pipeline.rs crates/anomaly/src/sand.rs crates/anomaly/src/stomp.rs crates/anomaly/src/traits.rs crates/anomaly/src/znorm.rs

crates/anomaly/src/lib.rs:
crates/anomaly/src/cluster.rs:
crates/anomaly/src/damp.rs:
crates/anomaly/src/mass.rs:
crates/anomaly/src/norma.rs:
crates/anomaly/src/pipeline.rs:
crates/anomaly/src/sand.rs:
crates/anomaly/src/stomp.rs:
crates/anomaly/src/traits.rs:
crates/anomaly/src/znorm.rs:
