/root/repo/target/debug/deps/ablation_init-e07b629c9e69242b.d: crates/bench/src/bin/ablation_init.rs Cargo.toml

/root/repo/target/debug/deps/libablation_init-e07b629c9e69242b.rmeta: crates/bench/src/bin/ablation_init.rs Cargo.toml

crates/bench/src/bin/ablation_init.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
