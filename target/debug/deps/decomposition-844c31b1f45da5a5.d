/root/repo/target/debug/deps/decomposition-844c31b1f45da5a5.d: crates/bench/benches/decomposition.rs Cargo.toml

/root/repo/target/debug/deps/libdecomposition-844c31b1f45da5a5.rmeta: crates/bench/benches/decomposition.rs Cargo.toml

crates/bench/benches/decomposition.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
