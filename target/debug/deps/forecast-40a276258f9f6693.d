/root/repo/target/debug/deps/forecast-40a276258f9f6693.d: crates/forecast/src/lib.rs crates/forecast/src/arima.rs crates/forecast/src/ets.rs crates/forecast/src/eval.rs crates/forecast/src/naive.rs crates/forecast/src/std_forecast.rs crates/forecast/src/theta.rs crates/forecast/src/traits.rs

/root/repo/target/debug/deps/libforecast-40a276258f9f6693.rmeta: crates/forecast/src/lib.rs crates/forecast/src/arima.rs crates/forecast/src/ets.rs crates/forecast/src/eval.rs crates/forecast/src/naive.rs crates/forecast/src/std_forecast.rs crates/forecast/src/theta.rs crates/forecast/src/traits.rs

crates/forecast/src/lib.rs:
crates/forecast/src/arima.rs:
crates/forecast/src/ets.rs:
crates/forecast/src/eval.rs:
crates/forecast/src/naive.rs:
crates/forecast/src/std_forecast.rs:
crates/forecast/src/theta.rs:
crates/forecast/src/traits.rs:
