/root/repo/target/debug/deps/fleet-e170b64b2b06529c.d: crates/fleet/src/lib.rs crates/fleet/src/codec.rs crates/fleet/src/config.rs crates/fleet/src/engine.rs crates/fleet/src/error.rs crates/fleet/src/series.rs crates/fleet/src/shard.rs crates/fleet/src/types.rs

/root/repo/target/debug/deps/libfleet-e170b64b2b06529c.rmeta: crates/fleet/src/lib.rs crates/fleet/src/codec.rs crates/fleet/src/config.rs crates/fleet/src/engine.rs crates/fleet/src/error.rs crates/fleet/src/series.rs crates/fleet/src/shard.rs crates/fleet/src/types.rs

crates/fleet/src/lib.rs:
crates/fleet/src/codec.rs:
crates/fleet/src/config.rs:
crates/fleet/src/engine.rs:
crates/fleet/src/error.rs:
crates/fleet/src/series.rs:
crates/fleet/src/shard.rs:
crates/fleet/src/types.rs:
