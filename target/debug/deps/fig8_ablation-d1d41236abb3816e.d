/root/repo/target/debug/deps/fig8_ablation-d1d41236abb3816e.d: crates/bench/src/bin/fig8_ablation.rs

/root/repo/target/debug/deps/libfig8_ablation-d1d41236abb3816e.rmeta: crates/bench/src/bin/fig8_ablation.rs

crates/bench/src/bin/fig8_ablation.rs:
