/root/repo/target/debug/deps/decomposition-8eacbbcb36e56de0.d: crates/bench/benches/decomposition.rs

/root/repo/target/debug/deps/libdecomposition-8eacbbcb36e56de0.rmeta: crates/bench/benches/decomposition.rs

crates/bench/benches/decomposition.rs:
