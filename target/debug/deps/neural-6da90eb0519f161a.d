/root/repo/target/debug/deps/neural-6da90eb0519f161a.d: crates/neural/src/lib.rs crates/neural/src/deepar.rs crates/neural/src/mlp_forecast.rs crates/neural/src/nbeats.rs crates/neural/src/nn.rs crates/neural/src/tranad.rs crates/neural/src/usad.rs crates/neural/src/windows.rs Cargo.toml

/root/repo/target/debug/deps/libneural-6da90eb0519f161a.rmeta: crates/neural/src/lib.rs crates/neural/src/deepar.rs crates/neural/src/mlp_forecast.rs crates/neural/src/nbeats.rs crates/neural/src/nn.rs crates/neural/src/tranad.rs crates/neural/src/usad.rs crates/neural/src/windows.rs Cargo.toml

crates/neural/src/lib.rs:
crates/neural/src/deepar.rs:
crates/neural/src/mlp_forecast.rs:
crates/neural/src/nbeats.rs:
crates/neural/src/nn.rs:
crates/neural/src/tranad.rs:
crates/neural/src/usad.rs:
crates/neural/src/windows.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
