/root/repo/target/debug/deps/fig9_ablation-ab467a8105103a2d.d: crates/bench/src/bin/fig9_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_ablation-ab467a8105103a2d.rmeta: crates/bench/src/bin/fig9_ablation.rs Cargo.toml

crates/bench/src/bin/fig9_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
