/root/repo/target/debug/deps/proptests-2472cf0b8733ade1.d: crates/tskit/tests/proptests.rs

/root/repo/target/debug/deps/libproptests-2472cf0b8733ade1.rmeta: crates/tskit/tests/proptests.rs

crates/tskit/tests/proptests.rs:
