/root/repo/target/debug/deps/decomp-1a54e6851fe3160e.d: crates/decomp/src/lib.rs crates/decomp/src/l1trend.rs crates/decomp/src/online_robust.rs crates/decomp/src/onlinestl.rs crates/decomp/src/robuststl.rs crates/decomp/src/stl.rs crates/decomp/src/traits.rs crates/decomp/src/window.rs

/root/repo/target/debug/deps/decomp-1a54e6851fe3160e: crates/decomp/src/lib.rs crates/decomp/src/l1trend.rs crates/decomp/src/online_robust.rs crates/decomp/src/onlinestl.rs crates/decomp/src/robuststl.rs crates/decomp/src/stl.rs crates/decomp/src/traits.rs crates/decomp/src/window.rs

crates/decomp/src/lib.rs:
crates/decomp/src/l1trend.rs:
crates/decomp/src/online_robust.rs:
crates/decomp/src/onlinestl.rs:
crates/decomp/src/robuststl.rs:
crates/decomp/src/stl.rs:
crates/decomp/src/traits.rs:
crates/decomp/src/window.rs:
