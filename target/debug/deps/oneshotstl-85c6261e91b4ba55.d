/root/repo/target/debug/deps/oneshotstl-85c6261e91b4ba55.d: crates/core/src/lib.rs crates/core/src/doolittle.rs crates/core/src/jointstl.rs crates/core/src/nsigma.rs crates/core/src/oneshot.rs crates/core/src/online_doolittle.rs crates/core/src/reference.rs crates/core/src/system.rs crates/core/src/tasks.rs

/root/repo/target/debug/deps/liboneshotstl-85c6261e91b4ba55.rmeta: crates/core/src/lib.rs crates/core/src/doolittle.rs crates/core/src/jointstl.rs crates/core/src/nsigma.rs crates/core/src/oneshot.rs crates/core/src/online_doolittle.rs crates/core/src/reference.rs crates/core/src/system.rs crates/core/src/tasks.rs

crates/core/src/lib.rs:
crates/core/src/doolittle.rs:
crates/core/src/jointstl.rs:
crates/core/src/nsigma.rs:
crates/core/src/oneshot.rs:
crates/core/src/online_doolittle.rs:
crates/core/src/reference.rs:
crates/core/src/system.rs:
crates/core/src/tasks.rs:
