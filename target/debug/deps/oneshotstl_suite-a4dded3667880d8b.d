/root/repo/target/debug/deps/oneshotstl_suite-a4dded3667880d8b.d: src/lib.rs

/root/repo/target/debug/deps/liboneshotstl_suite-a4dded3667880d8b.rlib: src/lib.rs

/root/repo/target/debug/deps/liboneshotstl_suite-a4dded3667880d8b.rmeta: src/lib.rs

src/lib.rs:
