/root/repo/target/debug/deps/fleet-b10e2146187e95c5.d: crates/fleet/src/lib.rs crates/fleet/src/codec.rs crates/fleet/src/config.rs crates/fleet/src/engine.rs crates/fleet/src/error.rs crates/fleet/src/series.rs crates/fleet/src/shard.rs crates/fleet/src/types.rs

/root/repo/target/debug/deps/libfleet-b10e2146187e95c5.rmeta: crates/fleet/src/lib.rs crates/fleet/src/codec.rs crates/fleet/src/config.rs crates/fleet/src/engine.rs crates/fleet/src/error.rs crates/fleet/src/series.rs crates/fleet/src/shard.rs crates/fleet/src/types.rs

crates/fleet/src/lib.rs:
crates/fleet/src/codec.rs:
crates/fleet/src/config.rs:
crates/fleet/src/engine.rs:
crates/fleet/src/error.rs:
crates/fleet/src/series.rs:
crates/fleet/src/shard.rs:
crates/fleet/src/types.rs:
