/root/repo/target/debug/deps/fleet_snapshot-0b3a35e9c853a28b.d: tests/fleet_snapshot.rs

/root/repo/target/debug/deps/libfleet_snapshot-0b3a35e9c853a28b.rmeta: tests/fleet_snapshot.rs

tests/fleet_snapshot.rs:
