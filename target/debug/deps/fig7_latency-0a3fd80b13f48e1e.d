/root/repo/target/debug/deps/fig7_latency-0a3fd80b13f48e1e.d: crates/bench/src/bin/fig7_latency.rs

/root/repo/target/debug/deps/libfig7_latency-0a3fd80b13f48e1e.rmeta: crates/bench/src/bin/fig7_latency.rs

crates/bench/src/bin/fig7_latency.rs:
