/root/repo/target/debug/deps/fig7_latency-b7898fe105d8c254.d: crates/bench/src/bin/fig7_latency.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_latency-b7898fe105d8c254.rmeta: crates/bench/src/bin/fig7_latency.rs Cargo.toml

crates/bench/src/bin/fig7_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
