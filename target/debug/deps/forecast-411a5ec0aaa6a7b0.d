/root/repo/target/debug/deps/forecast-411a5ec0aaa6a7b0.d: crates/forecast/src/lib.rs crates/forecast/src/arima.rs crates/forecast/src/ets.rs crates/forecast/src/eval.rs crates/forecast/src/naive.rs crates/forecast/src/std_forecast.rs crates/forecast/src/theta.rs crates/forecast/src/traits.rs Cargo.toml

/root/repo/target/debug/deps/libforecast-411a5ec0aaa6a7b0.rmeta: crates/forecast/src/lib.rs crates/forecast/src/arima.rs crates/forecast/src/ets.rs crates/forecast/src/eval.rs crates/forecast/src/naive.rs crates/forecast/src/std_forecast.rs crates/forecast/src/theta.rs crates/forecast/src/traits.rs Cargo.toml

crates/forecast/src/lib.rs:
crates/forecast/src/arima.rs:
crates/forecast/src/ets.rs:
crates/forecast/src/eval.rs:
crates/forecast/src/naive.rs:
crates/forecast/src/std_forecast.rs:
crates/forecast/src/theta.rs:
crates/forecast/src/traits.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
