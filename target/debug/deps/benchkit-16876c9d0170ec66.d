/root/repo/target/debug/deps/benchkit-16876c9d0170ec66.d: crates/bench/src/lib.rs crates/bench/src/adapters.rs crates/bench/src/methods.rs crates/bench/src/paper.rs crates/bench/src/report.rs Cargo.toml

/root/repo/target/debug/deps/libbenchkit-16876c9d0170ec66.rmeta: crates/bench/src/lib.rs crates/bench/src/adapters.rs crates/bench/src/methods.rs crates/bench/src/paper.rs crates/bench/src/report.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/adapters.rs:
crates/bench/src/methods.rs:
crates/bench/src/paper.rs:
crates/bench/src/report.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
