/root/repo/target/debug/deps/fig9_ablation-220bf442ec1cc14d.d: crates/bench/src/bin/fig9_ablation.rs

/root/repo/target/debug/deps/fig9_ablation-220bf442ec1cc14d: crates/bench/src/bin/fig9_ablation.rs

crates/bench/src/bin/fig9_ablation.rs:
