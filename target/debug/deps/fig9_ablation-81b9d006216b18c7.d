/root/repo/target/debug/deps/fig9_ablation-81b9d006216b18c7.d: crates/bench/src/bin/fig9_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_ablation-81b9d006216b18c7.rmeta: crates/bench/src/bin/fig9_ablation.rs Cargo.toml

crates/bench/src/bin/fig9_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
