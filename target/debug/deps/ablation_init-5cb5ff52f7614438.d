/root/repo/target/debug/deps/ablation_init-5cb5ff52f7614438.d: crates/bench/src/bin/ablation_init.rs Cargo.toml

/root/repo/target/debug/deps/libablation_init-5cb5ff52f7614438.rmeta: crates/bench/src/bin/ablation_init.rs Cargo.toml

crates/bench/src/bin/ablation_init.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
