/root/repo/target/debug/deps/proptests-1d773eb7b28a3ca8.d: crates/tskit/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-1d773eb7b28a3ca8.rmeta: crates/tskit/tests/proptests.rs Cargo.toml

crates/tskit/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
