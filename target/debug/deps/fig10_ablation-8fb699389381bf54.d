/root/repo/target/debug/deps/fig10_ablation-8fb699389381bf54.d: crates/bench/src/bin/fig10_ablation.rs

/root/repo/target/debug/deps/fig10_ablation-8fb699389381bf54: crates/bench/src/bin/fig10_ablation.rs

crates/bench/src/bin/fig10_ablation.rs:
