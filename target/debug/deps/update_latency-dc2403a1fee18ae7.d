/root/repo/target/debug/deps/update_latency-dc2403a1fee18ae7.d: crates/bench/benches/update_latency.rs

/root/repo/target/debug/deps/libupdate_latency-dc2403a1fee18ae7.rmeta: crates/bench/benches/update_latency.rs

crates/bench/benches/update_latency.rs:
