/root/repo/target/debug/deps/tsmetrics-3d7482c11fe7ee75.d: crates/metrics/src/lib.rs crates/metrics/src/classify.rs crates/metrics/src/decomp.rs crates/metrics/src/kdd.rs crates/metrics/src/rank.rs crates/metrics/src/tsf.rs crates/metrics/src/vus.rs

/root/repo/target/debug/deps/libtsmetrics-3d7482c11fe7ee75.rmeta: crates/metrics/src/lib.rs crates/metrics/src/classify.rs crates/metrics/src/decomp.rs crates/metrics/src/kdd.rs crates/metrics/src/rank.rs crates/metrics/src/tsf.rs crates/metrics/src/vus.rs

crates/metrics/src/lib.rs:
crates/metrics/src/classify.rs:
crates/metrics/src/decomp.rs:
crates/metrics/src/kdd.rs:
crates/metrics/src/rank.rs:
crates/metrics/src/tsf.rs:
crates/metrics/src/vus.rs:
