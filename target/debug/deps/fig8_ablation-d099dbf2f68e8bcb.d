/root/repo/target/debug/deps/fig8_ablation-d099dbf2f68e8bcb.d: crates/bench/src/bin/fig8_ablation.rs

/root/repo/target/debug/deps/fig8_ablation-d099dbf2f68e8bcb: crates/bench/src/bin/fig8_ablation.rs

crates/bench/src/bin/fig8_ablation.rs:
