/root/repo/target/debug/deps/fig5_6-eb813a3bb3607ad2.d: crates/bench/src/bin/fig5_6.rs

/root/repo/target/debug/deps/libfig5_6-eb813a3bb3607ad2.rmeta: crates/bench/src/bin/fig5_6.rs

crates/bench/src/bin/fig5_6.rs:
