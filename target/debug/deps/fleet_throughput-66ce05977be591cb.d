/root/repo/target/debug/deps/fleet_throughput-66ce05977be591cb.d: crates/bench/src/bin/fleet_throughput.rs

/root/repo/target/debug/deps/fleet_throughput-66ce05977be591cb: crates/bench/src/bin/fleet_throughput.rs

crates/bench/src/bin/fleet_throughput.rs:
