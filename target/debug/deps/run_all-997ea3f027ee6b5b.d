/root/repo/target/debug/deps/run_all-997ea3f027ee6b5b.d: crates/bench/src/bin/run_all.rs

/root/repo/target/debug/deps/run_all-997ea3f027ee6b5b: crates/bench/src/bin/run_all.rs

crates/bench/src/bin/run_all.rs:
