/root/repo/target/debug/deps/fig9_ablation-2629da18ccd8a8d0.d: crates/bench/src/bin/fig9_ablation.rs

/root/repo/target/debug/deps/libfig9_ablation-2629da18ccd8a8d0.rmeta: crates/bench/src/bin/fig9_ablation.rs

crates/bench/src/bin/fig9_ablation.rs:
