/root/repo/target/debug/deps/fleet-5085cbe73f9cd008.d: crates/fleet/src/lib.rs crates/fleet/src/codec.rs crates/fleet/src/config.rs crates/fleet/src/engine.rs crates/fleet/src/error.rs crates/fleet/src/series.rs crates/fleet/src/shard.rs crates/fleet/src/types.rs

/root/repo/target/debug/deps/libfleet-5085cbe73f9cd008.rlib: crates/fleet/src/lib.rs crates/fleet/src/codec.rs crates/fleet/src/config.rs crates/fleet/src/engine.rs crates/fleet/src/error.rs crates/fleet/src/series.rs crates/fleet/src/shard.rs crates/fleet/src/types.rs

/root/repo/target/debug/deps/libfleet-5085cbe73f9cd008.rmeta: crates/fleet/src/lib.rs crates/fleet/src/codec.rs crates/fleet/src/config.rs crates/fleet/src/engine.rs crates/fleet/src/error.rs crates/fleet/src/series.rs crates/fleet/src/shard.rs crates/fleet/src/types.rs

crates/fleet/src/lib.rs:
crates/fleet/src/codec.rs:
crates/fleet/src/config.rs:
crates/fleet/src/engine.rs:
crates/fleet/src/error.rs:
crates/fleet/src/series.rs:
crates/fleet/src/shard.rs:
crates/fleet/src/types.rs:
