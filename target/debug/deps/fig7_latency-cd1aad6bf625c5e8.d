/root/repo/target/debug/deps/fig7_latency-cd1aad6bf625c5e8.d: crates/bench/src/bin/fig7_latency.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_latency-cd1aad6bf625c5e8.rmeta: crates/bench/src/bin/fig7_latency.rs Cargo.toml

crates/bench/src/bin/fig7_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
