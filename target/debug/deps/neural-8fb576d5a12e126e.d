/root/repo/target/debug/deps/neural-8fb576d5a12e126e.d: crates/neural/src/lib.rs crates/neural/src/deepar.rs crates/neural/src/mlp_forecast.rs crates/neural/src/nbeats.rs crates/neural/src/nn.rs crates/neural/src/tranad.rs crates/neural/src/usad.rs crates/neural/src/windows.rs

/root/repo/target/debug/deps/libneural-8fb576d5a12e126e.rlib: crates/neural/src/lib.rs crates/neural/src/deepar.rs crates/neural/src/mlp_forecast.rs crates/neural/src/nbeats.rs crates/neural/src/nn.rs crates/neural/src/tranad.rs crates/neural/src/usad.rs crates/neural/src/windows.rs

/root/repo/target/debug/deps/libneural-8fb576d5a12e126e.rmeta: crates/neural/src/lib.rs crates/neural/src/deepar.rs crates/neural/src/mlp_forecast.rs crates/neural/src/nbeats.rs crates/neural/src/nn.rs crates/neural/src/tranad.rs crates/neural/src/usad.rs crates/neural/src/windows.rs

crates/neural/src/lib.rs:
crates/neural/src/deepar.rs:
crates/neural/src/mlp_forecast.rs:
crates/neural/src/nbeats.rs:
crates/neural/src/nn.rs:
crates/neural/src/tranad.rs:
crates/neural/src/usad.rs:
crates/neural/src/windows.rs:
