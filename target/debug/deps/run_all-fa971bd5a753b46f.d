/root/repo/target/debug/deps/run_all-fa971bd5a753b46f.d: crates/bench/src/bin/run_all.rs

/root/repo/target/debug/deps/librun_all-fa971bd5a753b46f.rmeta: crates/bench/src/bin/run_all.rs

crates/bench/src/bin/run_all.rs:
