/root/repo/target/debug/deps/fig8_ablation-fe168f2366542215.d: crates/bench/src/bin/fig8_ablation.rs

/root/repo/target/debug/deps/fig8_ablation-fe168f2366542215: crates/bench/src/bin/fig8_ablation.rs

crates/bench/src/bin/fig8_ablation.rs:
