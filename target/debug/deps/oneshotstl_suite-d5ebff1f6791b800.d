/root/repo/target/debug/deps/oneshotstl_suite-d5ebff1f6791b800.d: src/lib.rs

/root/repo/target/debug/deps/oneshotstl_suite-d5ebff1f6791b800: src/lib.rs

src/lib.rs:
