/root/repo/target/debug/deps/fleet_throughput-ea688978eb5f2990.d: crates/bench/src/bin/fleet_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libfleet_throughput-ea688978eb5f2990.rmeta: crates/bench/src/bin/fleet_throughput.rs Cargo.toml

crates/bench/src/bin/fleet_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
