/root/repo/target/debug/deps/benchkit-c6ddcd8eb6d9fcce.d: crates/bench/src/lib.rs crates/bench/src/adapters.rs crates/bench/src/methods.rs crates/bench/src/paper.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/benchkit-c6ddcd8eb6d9fcce: crates/bench/src/lib.rs crates/bench/src/adapters.rs crates/bench/src/methods.rs crates/bench/src/paper.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/adapters.rs:
crates/bench/src/methods.rs:
crates/bench/src/paper.rs:
crates/bench/src/report.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
