/root/repo/target/debug/deps/table4-53065c38c438fd20.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/libtable4-53065c38c438fd20.rmeta: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
