/root/repo/target/debug/deps/benchkit-9486c6786c97aaea.d: crates/bench/src/lib.rs crates/bench/src/adapters.rs crates/bench/src/methods.rs crates/bench/src/paper.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libbenchkit-9486c6786c97aaea.rlib: crates/bench/src/lib.rs crates/bench/src/adapters.rs crates/bench/src/methods.rs crates/bench/src/paper.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libbenchkit-9486c6786c97aaea.rmeta: crates/bench/src/lib.rs crates/bench/src/adapters.rs crates/bench/src/methods.rs crates/bench/src/paper.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/adapters.rs:
crates/bench/src/methods.rs:
crates/bench/src/paper.rs:
crates/bench/src/report.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
