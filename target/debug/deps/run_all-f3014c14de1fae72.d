/root/repo/target/debug/deps/run_all-f3014c14de1fae72.d: crates/bench/src/bin/run_all.rs

/root/repo/target/debug/deps/run_all-f3014c14de1fae72: crates/bench/src/bin/run_all.rs

crates/bench/src/bin/run_all.rs:
