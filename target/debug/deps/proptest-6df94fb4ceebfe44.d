/root/repo/target/debug/deps/proptest-6df94fb4ceebfe44.d: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/sample.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-6df94fb4ceebfe44.rlib: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/sample.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-6df94fb4ceebfe44.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/sample.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/sample.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/test_runner.rs:
