/root/repo/target/debug/deps/oneshotstl-42903e2fe862e7a1.d: crates/core/src/lib.rs crates/core/src/doolittle.rs crates/core/src/jointstl.rs crates/core/src/nsigma.rs crates/core/src/oneshot.rs crates/core/src/online_doolittle.rs crates/core/src/reference.rs crates/core/src/system.rs crates/core/src/tasks.rs

/root/repo/target/debug/deps/liboneshotstl-42903e2fe862e7a1.rlib: crates/core/src/lib.rs crates/core/src/doolittle.rs crates/core/src/jointstl.rs crates/core/src/nsigma.rs crates/core/src/oneshot.rs crates/core/src/online_doolittle.rs crates/core/src/reference.rs crates/core/src/system.rs crates/core/src/tasks.rs

/root/repo/target/debug/deps/liboneshotstl-42903e2fe862e7a1.rmeta: crates/core/src/lib.rs crates/core/src/doolittle.rs crates/core/src/jointstl.rs crates/core/src/nsigma.rs crates/core/src/oneshot.rs crates/core/src/online_doolittle.rs crates/core/src/reference.rs crates/core/src/system.rs crates/core/src/tasks.rs

crates/core/src/lib.rs:
crates/core/src/doolittle.rs:
crates/core/src/jointstl.rs:
crates/core/src/nsigma.rs:
crates/core/src/oneshot.rs:
crates/core/src/online_doolittle.rs:
crates/core/src/reference.rs:
crates/core/src/system.rs:
crates/core/src/tasks.rs:
