/root/repo/target/debug/deps/table2-455937035220bdf8.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-455937035220bdf8: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
