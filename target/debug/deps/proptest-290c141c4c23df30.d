/root/repo/target/debug/deps/proptest-290c141c4c23df30.d: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/sample.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-290c141c4c23df30.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/sample.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/sample.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/test_runner.rs:
