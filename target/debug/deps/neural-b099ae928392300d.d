/root/repo/target/debug/deps/neural-b099ae928392300d.d: crates/neural/src/lib.rs crates/neural/src/deepar.rs crates/neural/src/mlp_forecast.rs crates/neural/src/nbeats.rs crates/neural/src/nn.rs crates/neural/src/tranad.rs crates/neural/src/usad.rs crates/neural/src/windows.rs

/root/repo/target/debug/deps/libneural-b099ae928392300d.rmeta: crates/neural/src/lib.rs crates/neural/src/deepar.rs crates/neural/src/mlp_forecast.rs crates/neural/src/nbeats.rs crates/neural/src/nn.rs crates/neural/src/tranad.rs crates/neural/src/usad.rs crates/neural/src/windows.rs

crates/neural/src/lib.rs:
crates/neural/src/deepar.rs:
crates/neural/src/mlp_forecast.rs:
crates/neural/src/nbeats.rs:
crates/neural/src/nn.rs:
crates/neural/src/tranad.rs:
crates/neural/src/usad.rs:
crates/neural/src/windows.rs:
