/root/repo/target/debug/deps/oneshotstl-3903022469689790.d: crates/core/src/lib.rs crates/core/src/doolittle.rs crates/core/src/jointstl.rs crates/core/src/nsigma.rs crates/core/src/oneshot.rs crates/core/src/online_doolittle.rs crates/core/src/reference.rs crates/core/src/system.rs crates/core/src/tasks.rs

/root/repo/target/debug/deps/oneshotstl-3903022469689790: crates/core/src/lib.rs crates/core/src/doolittle.rs crates/core/src/jointstl.rs crates/core/src/nsigma.rs crates/core/src/oneshot.rs crates/core/src/online_doolittle.rs crates/core/src/reference.rs crates/core/src/system.rs crates/core/src/tasks.rs

crates/core/src/lib.rs:
crates/core/src/doolittle.rs:
crates/core/src/jointstl.rs:
crates/core/src/nsigma.rs:
crates/core/src/oneshot.rs:
crates/core/src/online_doolittle.rs:
crates/core/src/reference.rs:
crates/core/src/system.rs:
crates/core/src/tasks.rs:
