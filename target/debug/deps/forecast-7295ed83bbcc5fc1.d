/root/repo/target/debug/deps/forecast-7295ed83bbcc5fc1.d: crates/forecast/src/lib.rs crates/forecast/src/arima.rs crates/forecast/src/ets.rs crates/forecast/src/eval.rs crates/forecast/src/naive.rs crates/forecast/src/std_forecast.rs crates/forecast/src/theta.rs crates/forecast/src/traits.rs

/root/repo/target/debug/deps/forecast-7295ed83bbcc5fc1: crates/forecast/src/lib.rs crates/forecast/src/arima.rs crates/forecast/src/ets.rs crates/forecast/src/eval.rs crates/forecast/src/naive.rs crates/forecast/src/std_forecast.rs crates/forecast/src/theta.rs crates/forecast/src/traits.rs

crates/forecast/src/lib.rs:
crates/forecast/src/arima.rs:
crates/forecast/src/ets.rs:
crates/forecast/src/eval.rs:
crates/forecast/src/naive.rs:
crates/forecast/src/std_forecast.rs:
crates/forecast/src/theta.rs:
crates/forecast/src/traits.rs:
