/root/repo/target/debug/deps/oneshotstl_suite-c5fadbae5703731b.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/liboneshotstl_suite-c5fadbae5703731b.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
