/root/repo/target/debug/deps/fig9_ablation-97c38ee03d0318c2.d: crates/bench/src/bin/fig9_ablation.rs

/root/repo/target/debug/deps/fig9_ablation-97c38ee03d0318c2: crates/bench/src/bin/fig9_ablation.rs

crates/bench/src/bin/fig9_ablation.rs:
