/root/repo/target/debug/deps/table3-9907f79b926cc605.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/libtable3-9907f79b926cc605.rmeta: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
