/root/repo/target/debug/deps/oneshotstl_suite-da2576b5c8825ec3.d: src/lib.rs

/root/repo/target/debug/deps/liboneshotstl_suite-da2576b5c8825ec3.rmeta: src/lib.rs

src/lib.rs:
