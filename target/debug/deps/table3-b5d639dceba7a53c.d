/root/repo/target/debug/deps/table3-b5d639dceba7a53c.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/libtable3-b5d639dceba7a53c.rmeta: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
