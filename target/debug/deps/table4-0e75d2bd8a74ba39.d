/root/repo/target/debug/deps/table4-0e75d2bd8a74ba39.d: crates/bench/src/bin/table4.rs Cargo.toml

/root/repo/target/debug/deps/libtable4-0e75d2bd8a74ba39.rmeta: crates/bench/src/bin/table4.rs Cargo.toml

crates/bench/src/bin/table4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
