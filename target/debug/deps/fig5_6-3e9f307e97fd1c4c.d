/root/repo/target/debug/deps/fig5_6-3e9f307e97fd1c4c.d: crates/bench/src/bin/fig5_6.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_6-3e9f307e97fd1c4c.rmeta: crates/bench/src/bin/fig5_6.rs Cargo.toml

crates/bench/src/bin/fig5_6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
