/root/repo/target/debug/deps/tskit-9f2554ca6831a066.d: crates/tskit/src/lib.rs crates/tskit/src/dense.rs crates/tskit/src/error.rs crates/tskit/src/fft.rs crates/tskit/src/io.rs crates/tskit/src/linalg.rs crates/tskit/src/loess.rs crates/tskit/src/period.rs crates/tskit/src/ring.rs crates/tskit/src/series.rs crates/tskit/src/smooth.rs crates/tskit/src/stats.rs crates/tskit/src/synth/mod.rs crates/tskit/src/synth/anomaly.rs crates/tskit/src/synth/components.rs crates/tskit/src/synth/std_data.rs crates/tskit/src/synth/tsad.rs crates/tskit/src/synth/tsf.rs

/root/repo/target/debug/deps/libtskit-9f2554ca6831a066.rmeta: crates/tskit/src/lib.rs crates/tskit/src/dense.rs crates/tskit/src/error.rs crates/tskit/src/fft.rs crates/tskit/src/io.rs crates/tskit/src/linalg.rs crates/tskit/src/loess.rs crates/tskit/src/period.rs crates/tskit/src/ring.rs crates/tskit/src/series.rs crates/tskit/src/smooth.rs crates/tskit/src/stats.rs crates/tskit/src/synth/mod.rs crates/tskit/src/synth/anomaly.rs crates/tskit/src/synth/components.rs crates/tskit/src/synth/std_data.rs crates/tskit/src/synth/tsad.rs crates/tskit/src/synth/tsf.rs

crates/tskit/src/lib.rs:
crates/tskit/src/dense.rs:
crates/tskit/src/error.rs:
crates/tskit/src/fft.rs:
crates/tskit/src/io.rs:
crates/tskit/src/linalg.rs:
crates/tskit/src/loess.rs:
crates/tskit/src/period.rs:
crates/tskit/src/ring.rs:
crates/tskit/src/series.rs:
crates/tskit/src/smooth.rs:
crates/tskit/src/stats.rs:
crates/tskit/src/synth/mod.rs:
crates/tskit/src/synth/anomaly.rs:
crates/tskit/src/synth/components.rs:
crates/tskit/src/synth/std_data.rs:
crates/tskit/src/synth/tsad.rs:
crates/tskit/src/synth/tsf.rs:
