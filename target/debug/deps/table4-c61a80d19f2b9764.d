/root/repo/target/debug/deps/table4-c61a80d19f2b9764.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-c61a80d19f2b9764: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
