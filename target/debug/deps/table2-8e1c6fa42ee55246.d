/root/repo/target/debug/deps/table2-8e1c6fa42ee55246.d: crates/bench/src/bin/table2.rs Cargo.toml

/root/repo/target/debug/deps/libtable2-8e1c6fa42ee55246.rmeta: crates/bench/src/bin/table2.rs Cargo.toml

crates/bench/src/bin/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
