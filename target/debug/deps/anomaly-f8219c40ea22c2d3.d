/root/repo/target/debug/deps/anomaly-f8219c40ea22c2d3.d: crates/anomaly/src/lib.rs crates/anomaly/src/cluster.rs crates/anomaly/src/damp.rs crates/anomaly/src/mass.rs crates/anomaly/src/norma.rs crates/anomaly/src/pipeline.rs crates/anomaly/src/sand.rs crates/anomaly/src/stomp.rs crates/anomaly/src/traits.rs crates/anomaly/src/znorm.rs Cargo.toml

/root/repo/target/debug/deps/libanomaly-f8219c40ea22c2d3.rmeta: crates/anomaly/src/lib.rs crates/anomaly/src/cluster.rs crates/anomaly/src/damp.rs crates/anomaly/src/mass.rs crates/anomaly/src/norma.rs crates/anomaly/src/pipeline.rs crates/anomaly/src/sand.rs crates/anomaly/src/stomp.rs crates/anomaly/src/traits.rs crates/anomaly/src/znorm.rs Cargo.toml

crates/anomaly/src/lib.rs:
crates/anomaly/src/cluster.rs:
crates/anomaly/src/damp.rs:
crates/anomaly/src/mass.rs:
crates/anomaly/src/norma.rs:
crates/anomaly/src/pipeline.rs:
crates/anomaly/src/sand.rs:
crates/anomaly/src/stomp.rs:
crates/anomaly/src/traits.rs:
crates/anomaly/src/znorm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
