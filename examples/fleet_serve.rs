//! Serving a fleet over TCP: a [`NetServer`] hosts the engine on a
//! loopback socket and a [`NetClient`] in the same process plays the
//! remote producer — warming a handful of series over the wire,
//! pipelining steady-state batches through the client window, spiking
//! one series to draw an anomaly verdict, and finishing with a
//! forecast and a stats read, all in binary frames.
//!
//! In production the client half runs in another process (or another
//! host); everything below the `connect` call is exactly what that
//! process would do.
//!
//! ```sh
//! cargo run --release --example fleet_serve
//! ```

use oneshotstl_suite::fleet::{
    FleetConfig, FleetEngine, NetClient, NetServer, PeriodPolicy, Record, SeriesKey,
};

fn main() {
    let period = 24;
    let n_series = 8;

    // server side: build the engine, move it behind a socket
    let engine = FleetEngine::new(FleetConfig {
        shards: 2,
        period: PeriodPolicy::Fixed(period),
        ..Default::default()
    })
    .expect("engine");
    let server = NetServer::serve("127.0.0.1:0", engine).expect("bind loopback");
    println!("serving fleet on {}", server.local_addr());

    // client side: connect and warm the fleet over the wire
    let mut client = NetClient::connect(server.local_addr()).expect("connect");
    let batch_at = |t: u64| -> Vec<Record> {
        (0..n_series)
            .map(|s| {
                let w = 2.0 * std::f64::consts::PI * t as f64 / period as f64;
                let mut v =
                    3.0 * (w + s as f64 * 0.5).sin() + 0.1 * (t as f64 * 9.3 + s as f64).sin();
                if t == 150 && s == 3 {
                    v += 40.0; // inject a spike on one series
                }
                Record::new(format!("host-{s}/rps"), t, v)
            })
            .collect()
    };

    let warmup = 3 * period as u64; // init_cycles · T points per series
    for t in 0..warmup {
        client.ingest(batch_at(t)).expect("warm-up batch");
    }
    println!("warmed {n_series} series ({warmup} points each)");

    // steady state: pipeline batches through the client window instead
    // of paying a full round trip per batch
    let mut anomalies = Vec::new();
    let mut collect = |scored: Vec<oneshotstl_suite::fleet::ScoredPoint>| {
        anomalies.extend(scored.into_iter().filter(|p| p.is_anomaly()));
    };
    for t in warmup..200 {
        if let Some(scored) = client.submit(batch_at(t)).expect("pipelined batch") {
            collect(scored);
        }
    }
    while let Some(scored) = client.drain().expect("drain") {
        collect(scored);
    }
    for p in &anomalies {
        println!(
            "anomaly: {} t={} value={:.2} score={:.1}",
            p.key,
            p.t,
            p.value,
            p.score().unwrap_or(f64::NAN)
        );
    }
    assert!(
        anomalies.iter().any(|p| p.key.as_str() == "host-3/rps" && p.t == 150),
        "the injected spike must be flagged"
    );

    // forecast the spiked series a day ahead, over the wire
    let key = SeriesKey::new("host-3/rps");
    let fc = client.forecast(&[key], period as u32).expect("forecast");
    let head = &fc[0].as_ref().expect("series is live")[..4];
    println!("host-3/rps forecast head: {head:?}");

    let stats = client.stats().expect("stats");
    println!(
        "fleet: {} live series, {} points ingested, {} anomalies flagged",
        stats.live, stats.points, stats.anomalies
    );
    assert_eq!(stats.live, n_series);

    server.shutdown();
    println!("server drained and shut down");
}
