//! Online anomaly detection on an AIOps-style request-rate stream
//! (the paper's §4 TSAD extension): OneShotSTL decomposes each arriving
//! point and the residual is scored two ways — the paper's plain
//! streaming NSigma z-score (`ScoreConfig::off()`) and the default
//! persistence-aware fused scorer (z + two-sided CUSUM + peak-hold).
//! The spike is caught by both; the level shift — whose body the
//! adaptive trend absorbs within a few points — is where the fused
//! scorer pulls ahead.
//!
//! ```sh
//! cargo run --release --example anomaly_pipeline
//! ```

use oneshotstl_suite::prelude::*;
use oneshotstl_suite::tskit::synth::{gaussian_noise, inject, AnomalyKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Request-rate-like stream with a daily pattern and measurement
    // noise (a noise-free stream would collapse the residual σ and make
    // every point look infinitely surprising — see the storm-tier note
    // in docs/ARCHITECTURE.md).
    let period = 144;
    let n = 10 * period;
    let mut rng = StdRng::seed_from_u64(7);
    let noise = gaussian_noise(n, 0.8, &mut rng);
    let mut y: Vec<f64> = (0..n)
        .map(|i| {
            let phase = 2.0 * std::f64::consts::PI * i as f64 / period as f64;
            40.0 + 15.0 * phase.sin() + 5.0 * (2.0 * phase).cos() + noise[i]
        })
        .collect();
    let mut labels = vec![false; n];
    // inject a spike and a level shift in the streaming region
    inject(&mut y, &mut labels, AnomalyKind::Spike, 7 * period, 1, 10.0, &mut rng);
    inject(&mut y, &mut labels, AnomalyKind::LevelShift, 8 * period + 50, 60, 10.0, &mut rng);

    let split = 4 * period;
    let score_stream = |score_cfg: ScoreConfig| -> Vec<f64> {
        let mut detector = StdAnomalyDetector::with_score(
            OneShotStl::new(OneShotStlConfig::default()),
            5.0,
            score_cfg,
        );
        detector.init(&y[..split], period).expect("init window ok");
        y[split..].iter().map(|&v| detector.update(v).1).collect()
    };

    println!("streamed {} points; scoring the residual two ways:\n", n - split);
    let mut fused_scores = Vec::new();
    for (label, cfg) in [
        ("plain NSigma z (paper §4)", ScoreConfig::off()),
        ("fused CUSUM", ScoreConfig::default()),
    ] {
        let scores = score_stream(cfg);
        let auc = roc_auc(&scores, &labels[split..]);
        let vus = vus_roc(&scores, &labels[split..], period / 2, 8);
        println!("{label:<26}  ROC-AUC = {auc:.3}   VUS-ROC = {vus:.3}");
        fused_scores = scores;
    }

    // show the fused scorer's top 5 alerts
    let mut ranked: Vec<(usize, f64)> = fused_scores.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("\ntop fused alerts (t, score, labelled?):");
    for (idx, score) in ranked.into_iter().take(5) {
        println!(
            "  t={:>5}  score={:>7.2}  anomaly={}",
            split + idx,
            score,
            labels[split + idx]
        );
    }
}
