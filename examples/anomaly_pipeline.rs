//! Online anomaly detection on an AIOps-style request-rate stream
//! (the paper's §4 TSAD extension): OneShotSTL decomposes each arriving
//! point, streaming NSigma scores the residual, and genuinely anomalous
//! points surface while the daily pattern is absorbed.
//!
//! ```sh
//! cargo run --release --example anomaly_pipeline
//! ```

use oneshotstl_suite::prelude::*;
use oneshotstl_suite::tskit::synth::{inject, AnomalyKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Request-rate-like stream with a daily pattern.
    let period = 144;
    let n = 10 * period;
    let mut y: Vec<f64> = (0..n)
        .map(|i| {
            let phase = 2.0 * std::f64::consts::PI * i as f64 / period as f64;
            40.0 + 15.0 * phase.sin() + 5.0 * (2.0 * phase).cos()
        })
        .collect();
    let mut labels = vec![false; n];
    let mut rng = StdRng::seed_from_u64(7);
    // inject a spike and a level shift in the streaming region
    inject(&mut y, &mut labels, AnomalyKind::Spike, 7 * period, 1, 10.0, &mut rng);
    inject(&mut y, &mut labels, AnomalyKind::LevelShift, 8 * period + 50, 60, 10.0, &mut rng);

    let split = 4 * period;
    let mut detector =
        StdAnomalyDetector::new(OneShotStl::new(OneShotStlConfig::default()), 5.0);
    detector.init(&y[..split], period).expect("init window ok");

    let mut scores = Vec::new();
    for &v in &y[split..] {
        let (_, score) = detector.update(v);
        scores.push(score);
    }
    let auc = roc_auc(&scores, &labels[split..]);
    let vus = vus_roc(&scores, &labels[split..], period / 2, 8);
    println!("streamed {} points", scores.len());
    println!("ROC-AUC  = {auc:.3}");
    println!("VUS-ROC  = {vus:.3}");

    // show the top 5 alerts
    let mut ranked: Vec<(usize, f64)> = scores.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("\ntop alerts (t, score, labelled?):");
    for (idx, score) in ranked.into_iter().take(5) {
        println!(
            "  t={:>5}  score={:>7.2}  anomaly={}",
            split + idx,
            score,
            labels[split + idx]
        );
    }
}
