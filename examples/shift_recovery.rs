//! Seasonality-shift handling (paper §3.4, Fig. 3): the seasonal pattern
//! permanently drifts by Δt points mid-stream. With H = 20 OneShotSTL
//! searches the offset neighbourhood when NSigma fires and re-anchors the
//! seasonal buffer; with H = 0 the residual stays polluted for many cycles.
//!
//! ```sh
//! cargo run --release --example shift_recovery
//! ```

use oneshotstl_suite::prelude::*;

fn stream(n: usize, period: usize, shift_at: usize, delta: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let phase = if i >= shift_at { (i + period - delta) % period } else { i % period };
            3.0 * (2.0 * std::f64::consts::PI * phase as f64 / period as f64).sin()
        })
        .collect()
}

fn run(y: &[f64], period: usize, h: usize) -> (Vec<f64>, i64) {
    let cfg = OneShotStlConfig { shift_window: h, ..Default::default() };
    let mut m = OneShotStl::new(cfg);
    let split = 4 * period;
    m.init(&y[..split], period).expect("init ok");
    let mut residuals = Vec::new();
    for &v in &y[split..] {
        residuals.push(m.update(v).residual.abs());
    }
    (residuals, m.shift())
}

fn main() {
    let period = 50;
    let n = 30 * period;
    let shift_at = 16 * period;
    let delta = 7;
    let y = stream(n, period, shift_at, delta);

    let (res_h0, shift_h0) = run(&y, period, 0);
    let (res_h20, shift_h20) = run(&y, period, 20);

    let split = 4 * period;
    let window = |r: &[f64], from: usize, to: usize| -> f64 {
        let a = from - split;
        let b = to - split;
        r[a..b].iter().sum::<f64>() / (b - a) as f64
    };
    println!("pattern shifts by {delta} points at t = {shift_at}\n");
    println!("mean |residual| before the shift:");
    println!("  H=0  : {:.4}", window(&res_h0, 10 * period, 16 * period));
    println!("  H=20 : {:.4}", window(&res_h20, 10 * period, 16 * period));
    println!("mean |residual| after the shift (2 cycles of slack):");
    println!("  H=0  : {:.4}", window(&res_h0, 18 * period, 28 * period));
    println!("  H=20 : {:.4}", window(&res_h20, 18 * period, 28 * period));
    println!(
        "\nlearned cumulative shift: H=0 → {shift_h0}, H=20 → {shift_h20} (true = {delta})"
    );
}
