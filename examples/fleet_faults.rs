//! Degraded-mode walkthrough: a fleet running under
//! `DurabilityPolicy::Degrade` hits an injected fsync outage mid-ingest,
//! keeps scoring every batch while the WAL is down, re-arms durability
//! (fresh WAL generation + full snapshot) once the disk heals, and then
//! recovers from the directory bit-identically.
//!
//! Run with: `cargo run --release --example fleet_faults`

use oneshotstl_suite::fleet::fault::{self, FaultOp};
use oneshotstl_suite::fleet::{
    DurabilityConfig, DurabilityPolicy, DurableFleet, FleetConfig, PeriodPolicy, Record,
};
use std::time::Duration;

fn value(series: usize, t: u64) -> f64 {
    let amp = 1.0 + (series % 3) as f64;
    amp * (2.0 * std::f64::consts::PI * t as f64 / 24.0).sin() + 0.002 * t as f64
}

fn batch(n_series: usize, t: u64) -> Vec<Record> {
    (0..n_series).map(|s| Record::new(format!("host-{s}/cpu"), t, value(s, t))).collect()
}

fn main() {
    let n_series = 20usize;
    let dir = std::env::temp_dir().join(format!("fleet-faults-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let config =
        FleetConfig { shards: 4, period: PeriodPolicy::Fixed(24), ..Default::default() };
    // Degrade: a WAL failure no longer crash-stops the fleet — it keeps
    // serving un-durably and re-arms on a capped-exponential retry clock
    let dcfg = DurabilityConfig {
        snapshot_every: 50,
        policy: DurabilityPolicy::Degrade,
        wal_retry_backoff: Duration::from_millis(5),
        wal_retry_cap: Duration::from_millis(100),
        ..DurabilityConfig::new(&dir)
    };

    let mut fleet = DurableFleet::create(config, dcfg.clone()).expect("create");
    for t in 0..100u64 {
        fleet.ingest(batch(n_series, t)).expect("ingest");
    }
    println!("healthy      : {}", line(&fleet));

    // ── the disk "fails": every fsync under the directory errors ───────
    let outage = fault::inject(&dir, fault::enospc(FaultOp::Fsync));
    let mut first_degraded = None;
    for t in 100..160u64 {
        // no error surfaces: batches apply un-durably and keep scoring
        fleet.ingest(batch(n_series, t)).expect("Degrade keeps serving");
        if fleet.degraded() && first_degraded.is_none() {
            first_degraded = Some(t);
        }
    }
    println!(
        "during outage: {} (degraded since t={})",
        line(&fleet),
        first_degraded.expect("the outage was detected")
    );

    // ── the disk heals: the next ingests re-arm durability ─────────────
    drop(outage);
    let mut t = 160u64;
    while fleet.degraded() {
        fleet.ingest(batch(n_series, t)).expect("ingest");
        t += 1;
        std::thread::sleep(Duration::from_millis(5)); // let the retry clock tick
    }
    println!("re-armed     : {} (at t={t})", line(&fleet));
    let reference = fleet.ingest(batch(n_series, t)).expect("ingest");
    fleet.close().expect("close");

    // ── recovery resumes from the re-arm snapshot + fresh WAL ──────────
    let mut recovered = DurableFleet::open(dcfg).expect("open");
    println!("recovered    : {}", line(&recovered));
    // replaying the recovered engine over the same step reproduces the
    // pre-close outputs bit-for-bit — durability is fully live again
    let recovered_batches = recovered.engine().batches();
    assert_eq!(recovered_batches, t + 1, "every post-re-arm batch was durable");
    let replay = recovered.ingest(batch(n_series, t + 1)).expect("ingest");
    assert_eq!(replay.len(), reference.len());
    println!("resumed      : {}", line(&recovered));

    let _ = std::fs::remove_dir_all(&dir);
}

fn line(fleet: &DurableFleet) -> String {
    let s = fleet.engine().stats().expect("stats");
    format!(
        "batches={} live={} undurable={} wal_retries={} degraded={}",
        fleet.engine().batches(),
        s.live,
        s.undurable_batches,
        s.wal_retries,
        fleet.degraded()
    )
}
