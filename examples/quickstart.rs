//! Quickstart: decompose a seasonal stream online with OneShotSTL.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use oneshotstl_suite::prelude::*;

fn main() {
    // A daily-seasonal stream (period 24) with trend and a level shift.
    let period = 24;
    let n = 24 * 40;
    let y: Vec<f64> = (0..n)
        .map(|i| {
            let season = (2.0 * std::f64::consts::PI * i as f64 / period as f64).sin();
            let trend = 0.002 * i as f64 + if i > n / 2 { 2.0 } else { 0.0 };
            trend + season
        })
        .collect();

    // One-time initialization on a short prefix (the paper's offline phase).
    let mut model = OneShotStl::new(OneShotStlConfig::default());
    let init_len = 4 * period;
    model.init(&y[..init_len], period).expect("initialization window is long enough");

    // O(1) updates from then on: every point is decomposed the moment it
    // arrives.
    println!("{:>6} {:>10} {:>10} {:>10}", "t", "trend", "seasonal", "residual");
    for (i, &value) in y[init_len..].iter().enumerate() {
        let p = model.update(value);
        debug_assert!((p.trend + p.seasonal + p.residual - value).abs() < 1e-9);
        if i % 100 == 0 {
            println!(
                "{:>6} {:>10.4} {:>10.4} {:>10.4}",
                init_len + i,
                p.trend,
                p.seasonal,
                p.residual
            );
        }
    }
    println!(
        "\nprocessed {} points online; final cumulative phase shift Δ = {}",
        n - init_len,
        model.shift()
    );
}
