//! Long-horizon forecasting with the paper's §4 STD forecaster:
//! `ŷ_{t+i} = τ_{t−1} + v[(t+i) mod T]`, compared against a seasonal-naive
//! baseline on an electricity-style load curve.
//!
//! ```sh
//! cargo run --release --example forecast_horizon
//! ```

use oneshotstl_suite::prelude::*;
use oneshotstl_suite::tskit::synth::tsf_dataset;

fn main() {
    let ds = tsf_dataset("Electricity", 42);
    let period = ds.period;
    println!(
        "dataset {} — {} points, period {period}, horizons {:?}",
        ds.name,
        ds.values.len(),
        ds.horizons
    );

    // Stream through train+val, then forecast from the start of the test
    // region.
    let mut f =
        StdOnlineForecaster::new("OneShotSTL", OneShotStl::new(OneShotStlConfig::default()));
    let init = 4 * period;
    f.init(&ds.values[..init], period).expect("init ok");
    for &v in &ds.values[init..ds.val_end] {
        f.observe(v);
    }

    for &h in &ds.horizons {
        let pred = f.forecast(h);
        let truth = &ds.values[ds.val_end..ds.val_end + h];
        let mae: f64 =
            pred.iter().zip(truth).map(|(p, t)| (p - t).abs()).sum::<f64>() / h as f64;
        // seasonal-naive baseline: repeat the last cycle
        let naive_mae: f64 = (0..h)
            .map(|i| {
                let last_cycle = ds.values[ds.val_end - period + (i % period)];
                (last_cycle - truth[i]).abs()
            })
            .sum::<f64>()
            / h as f64;
        println!(
            "horizon {h:>4}: OneShotSTL MAE = {mae:.4}   seasonal-naive MAE = {naive_mae:.4}"
        );
    }
}
