//! Durability walkthrough: a fleet ingests with a write-ahead log and
//! periodic snapshots-to-disk, "crashes" without a clean shutdown, and is
//! recovered bit-identically from the durability directory — then shuts
//! down cleanly so the next start needs zero replay.
//!
//! Run with: `cargo run --release --example fleet_recover`

use oneshotstl_suite::fleet::{
    AdmitOptions, DurabilityConfig, DurableFleet, FleetConfig, PeriodPolicy, Record,
};

fn value(series: usize, t: u64) -> f64 {
    let amp = 1.0 + (series % 3) as f64;
    // series 0 beats at period 12; its AdmitOptions below declare that
    let period = if series == 0 { 12.0 } else { 24.0 };
    amp * (2.0 * std::f64::consts::PI * t as f64 / period).sin()
}

fn batch(n_series: usize, t: u64) -> Vec<Record> {
    (0..n_series).map(|s| Record::new(format!("host-{s}/cpu"), t, value(s, t))).collect()
}

fn main() {
    let n_series = 40usize;
    let dir = std::env::temp_dir().join(format!("fleet-recover-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let config =
        FleetConfig { shards: 4, period: PeriodPolicy::Fixed(24), ..Default::default() };
    // fsync every batch; snapshot every 50 batches; keep 2 snapshots
    let dcfg = DurabilityConfig { snapshot_every: 50, ..DurabilityConfig::new(&dir) };

    // ── first life: ingest 130 batches, then "crash" ────────────────────
    let mut fleet = DurableFleet::create(config, dcfg.clone()).expect("create");
    // per-series tuning survives recovery: the durable registration path
    // checkpoints (overrides are not WAL-logged), so the declared period
    // and tighter threshold are back in force after a crash
    fleet
        .set_admit_options(
            "host-0/cpu",
            AdmitOptions { period: Some(12), nsigma: Some(4.0), ..Default::default() },
        )
        .expect("series not admitted yet");
    for t in 0..130u64 {
        fleet.ingest(batch(n_series, t)).expect("ingest");
    }
    let stats = fleet.stats_line();
    println!("before crash : {stats}");
    drop(fleet); // kill -9: no checkpoint, no clean shutdown

    let files: Vec<String> = std::fs::read_dir(&dir)
        .expect("durability dir")
        .filter_map(|e| e.ok().and_then(|e| e.file_name().into_string().ok()))
        .collect();
    println!("on disk      : {} files (snapshots + WAL segments)", files.len());

    // ── second life: recover and keep scoring ───────────────────────────
    // snapshot at batch 100 + WAL replay of batches 101..130
    let mut fleet = DurableFleet::open(dcfg.clone()).expect("recover");
    println!("recovered    : {}", fleet.stats_line());
    assert_eq!(fleet.engine().batches(), 130, "nothing was lost");
    for t in 130..200u64 {
        fleet.ingest(batch(n_series, t)).expect("ingest");
    }
    println!("after resume : {}", fleet.stats_line());

    // ── clean shutdown: checkpoint, so the next open replays nothing ────
    fleet.close().expect("close");
    let fleet = DurableFleet::open(dcfg).expect("reopen");
    println!("after close  : {}", fleet.stats_line());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Tiny display helper on top of the public stats API.
trait StatsLine {
    fn stats_line(&self) -> String;
}

impl StatsLine for DurableFleet {
    fn stats_line(&self) -> String {
        let s = self.engine().stats().expect("stats");
        format!(
            "{} batches, {} live series, {} points scored, durable snapshot at batch {}",
            self.engine().batches(),
            s.live,
            s.points,
            self.durable_snapshot()
        )
    }
}
