//! Fleet engine walkthrough: a small fleet of metrics streams through
//! warm-up admission into live scoring — one series with per-series
//! tuning via `AdmitOptions` — serves multi-horizon forecasts, gets
//! snapshotted, and a restored engine picks up the stream where the
//! original left off.
//!
//! Run with: `cargo run --release --example fleet_ingest`

use oneshotstl_suite::core::{Fusion, ScoreConfig};
use oneshotstl_suite::fleet::{
    AdmitOptions, FleetConfig, FleetEngine, ForecastOptions, PeriodPolicy, PointOutput, Record,
    SeriesKey,
};

fn value_period(series: usize, t: u64, period: f64) -> f64 {
    let amp = 1.0 + (series % 3) as f64;
    amp * (2.0 * std::f64::consts::PI * t as f64 / period).sin()
        + 0.01 * (series as f64) * (t as f64 / 100.0)
}

fn value(series: usize, t: u64) -> f64 {
    value_period(series, t, 24.0)
}

fn main() {
    let n_series = 50usize;
    let mut engine = FleetEngine::new(FleetConfig {
        shards: 4,
        period: PeriodPolicy::Fixed(24),
        ttl: Some(10_000),
        // every series gets a slightly damped forecast head and an O(1)
        // rolling one-step forecast-error tracker
        forecast: ForecastOptions { damping: 0.95, ..ForecastOptions::on() },
        ..Default::default()
    })
    .expect("valid config");

    // Per-series tuning: admission is config-global by default, but any
    // series can override λ, the NSigma threshold, its declared period,
    // the shift-search policy, or the residual scoring (CUSUM fusion)
    // *before* it admits. This high-priority metric beats at period 12
    // (the fleet default is 24), gets a tighter anomaly threshold, and a
    // more sensitive CUSUM bar — registered up front, so the overrides
    // are in place when its first point arrives.
    let vip = "tenant-0/metric-0";
    engine
        .set_admit_options(
            vip,
            AdmitOptions {
                period: Some(12),
                nsigma: Some(3.5),
                score: Some(ScoreConfig {
                    cusum_h: 4.0,
                    fusion: Fusion::Max,
                    ..Default::default()
                }),
                ..Default::default()
            },
        )
        .expect("series not admitted yet");

    // Stream batches: one point per series per tick. Unknown keys buffer
    // through warm-up (init_len = 3·24 = 72 points; the overridden series
    // needs only 3·12 = 36) and are then admitted.
    let mut admitted_at = None;
    let mut vip_admitted_at = None;
    for t in 0..200u64 {
        let batch: Vec<Record> = (0..n_series)
            .map(|s| {
                let v = if s == 0 { value_period(s, t, 12.0) } else { value(s, t) };
                Record::new(format!("tenant-{}/metric-{}", s % 5, s), t, v)
            })
            .collect();
        let out = engine.ingest(batch).expect("ingest");
        for p in &out {
            if matches!(p.output, PointOutput::Scored { .. }) {
                if p.key.as_str() == vip {
                    vip_admitted_at.get_or_insert(t);
                } else {
                    admitted_at.get_or_insert(t);
                }
            }
        }
    }
    println!(
        "per-series tuning: {vip} (declared period 12) admitted at tick {:?}, \
         the config-global fleet at {:?}",
        vip_admitted_at, admitted_at
    );
    let stats = engine.stats().expect("stats");
    println!(
        "after 200 ticks: {} live series (admitted at tick {:?}), {} points, {} anomalies",
        stats.live, admitted_at, stats.points, stats.anomalies
    );
    for s in &stats.shards {
        println!(
            "  shard {}: {} live, {} points, queue depth {}",
            s.shard, s.live, s.points, s.queue_depth
        );
    }
    println!(
        "diagnostics: {} shift searches ({} candidates tried), {} z alarms, \
         {} forecast drift alarms",
        stats.shift_searches, stats.shift_trials, stats.z_alarms, stats.forecast_alarms
    );

    // Inject an anomaly into one series and watch its score spike.
    let spiky = "tenant-1/metric-11";
    let normal = engine.ingest_one(spiky, 200, value(11, 200)).expect("ingest");
    let spiked = engine.ingest_one(spiky, 201, value(11, 201) + 8.0).expect("ingest");
    println!(
        "normal score {:.2} → spiked score {:.2} (anomaly: {})",
        normal.score().unwrap_or(0.0),
        spiked.score().unwrap_or(0.0),
        spiked.is_anomaly()
    );

    // Forecast the next day for one series straight from the engine…
    let forecast =
        engine.forecast_one(&spiky.into(), 24).expect("shard up").expect("series is live");
    println!("24-step forecast head: {:?}", &forecast[..4]);
    // …or for many at once: the batch call fans out to the shards in
    // parallel and answers in request order (None = not live).
    let keys: Vec<SeriesKey> = (0..n_series)
        .map(|s| SeriesKey::new(format!("tenant-{}/metric-{}", s % 5, s)))
        .collect();
    let horizons = engine.forecast(&keys, 24).expect("shard up");
    let served = horizons.iter().filter(|f| f.is_some()).count();
    println!("batch forecast: {served}/{} series answered 24 horizons", keys.len());

    // Snapshot the whole fleet, "crash", restore, and keep scoring.
    let bytes = engine.snapshot_bytes().expect("snapshot");
    println!("snapshot: {} series in {} KiB", stats.live, bytes.len() / 1024);
    drop(engine);
    let mut restored = FleetEngine::restore_bytes(&bytes).expect("restore");
    let p = restored.ingest_one(spiky, 202, value(11, 202)).expect("ingest");
    println!("restored engine continues scoring: t=202 score {:.2}", p.score().unwrap_or(0.0));
}
