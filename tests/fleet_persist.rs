//! Durable fleet persistence: crash recovery from snapshot + WAL replay
//! must reproduce an uninterrupted engine **bit-identically** — including
//! a torn WAL tail, TTL evictions, corrupt snapshots, and version
//! mismatches — and bounded shard queues must apply the configured
//! backpressure policy.

use oneshotstl_suite::fleet::{
    DurabilityConfig, DurableFleet, FleetConfig, FleetEngine, FleetError, PeriodPolicy,
    PointOutput, QueuePolicy, Record, ScoredPoint, SeriesKey,
};
use oneshotstl_suite::tskit::synth::{gaussian_noise, SeasonTemplate};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fs;
use std::path::PathBuf;

const STREAM_LEN: usize = 420;

/// Deterministic multi-series workload (same construction as
/// `fleet_snapshot.rs`): seasonal template + noise per series.
fn build_streams(n_series: usize) -> Vec<Vec<f64>> {
    (0..n_series)
        .map(|s| {
            let mut rng = StdRng::seed_from_u64(2000 + s as u64);
            let template = SeasonTemplate::random(24, 3, &mut rng);
            let mut y = template.render(STREAM_LEN, 2.0 + (s % 3) as f64);
            for (v, e) in y.iter_mut().zip(gaussian_noise(STREAM_LEN, 0.05, &mut rng)) {
                *v += e;
            }
            y
        })
        .collect()
}

fn batch(streams: &[Vec<f64>], t: u64) -> Vec<Record> {
    streams
        .iter()
        .enumerate()
        .map(|(s, y)| Record::new(format!("series-{s}"), t, y[t as usize]))
        .collect()
}

fn config() -> FleetConfig {
    FleetConfig { shards: 3, period: PeriodPolicy::Fixed(24), ..Default::default() }
}

/// Fresh per-test scratch directory under the system temp dir.
fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fleet-persist-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn assert_outputs_bit_identical(a: &[ScoredPoint], b: &[ScoredPoint], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: batch sizes");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.key, y.key, "{ctx}");
        match (&x.output, &y.output) {
            (
                PointOutput::Scored { point: pa, score: sa, is_anomaly: fa },
                PointOutput::Scored { point: pb, score: sb, is_anomaly: fb },
            ) => {
                assert_eq!(pa.trend.to_bits(), pb.trend.to_bits(), "{ctx}: {} trend", x.key);
                assert_eq!(pa.seasonal.to_bits(), pb.seasonal.to_bits(), "{ctx}: seasonal");
                assert_eq!(pa.residual.to_bits(), pb.residual.to_bits(), "{ctx}: residual");
                assert_eq!(sa.to_bits(), sb.to_bits(), "{ctx}: score");
                assert_eq!(fa, fb, "{ctx}: verdict");
            }
            (oa, ob) => assert_eq!(oa, ob, "{ctx}: {}", x.key),
        }
    }
}

/// The headline acceptance test: ingest N batches with durability on,
/// "kill" the process (drop, no clean shutdown), tear the tail of one WAL
/// segment, recover, and continue — outputs must be bit-identical to an
/// uninterrupted engine fed the same stream.
#[test]
fn crash_recovery_with_torn_wal_tail_is_bit_identical() {
    let n_series = 20;
    let crash_at = 100u64; // batches ingested before the "crash"
    let total = 220u64;
    let streams = build_streams(n_series);
    let dir = test_dir("torn-tail");

    // reference: uninterrupted, no durability
    let mut reference = FleetEngine::new(config()).unwrap();
    let mut ref_outputs = Vec::new();
    for t in 0..total {
        ref_outputs.push(reference.ingest(batch(&streams, t)).unwrap());
    }

    // durable run: snapshots every 40 batches, WAL fsync every batch
    let dcfg = DurabilityConfig { snapshot_every: 40, ..DurabilityConfig::new(&dir) };
    let mut durable = DurableFleet::create(config(), dcfg.clone()).unwrap();
    for t in 0..crash_at {
        let out = durable.ingest(batch(&streams, t)).unwrap();
        assert_outputs_bit_identical(&out, &ref_outputs[t as usize], "pre-crash");
    }
    drop(durable); // crash: no checkpoint, no clean shutdown

    // tear the newest generation's largest WAL segment mid-record: its
    // final frame belongs to the last batch, which recovery must discard
    let torn = fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "flog"))
        // > 100 bytes: past the 22-byte header, i.e. the segment has
        // frames — and since every batch carries the same key set, its
        // final frame belongs to the final batch
        .filter(|p| fs::metadata(p).unwrap().len() > 100)
        .max()
        .expect("a non-empty WAL segment exists");
    let bytes = fs::read(&torn).unwrap();
    assert!(bytes.len() > 30, "segment has frames to tear");
    fs::write(&torn, &bytes[..bytes.len() - 3]).unwrap();

    // recover: latest snapshot + WAL replay, minus the torn final batch
    let mut recovered = DurableFleet::open(dcfg.clone()).unwrap();
    let resume = recovered.engine().batches();
    assert_eq!(resume, crash_at - 1, "exactly the torn final batch is lost");

    // re-feed from the recovery point; every output matches the reference
    for t in resume..total {
        let out = recovered.ingest(batch(&streams, t)).unwrap();
        assert_outputs_bit_identical(&out, &ref_outputs[t as usize], "post-recovery");
    }
    let stats = recovered.engine().stats().unwrap();
    let ref_stats = reference.stats().unwrap();
    assert_eq!(stats.live, n_series);
    assert_eq!(stats.points, ref_stats.points);
    assert_eq!(stats.anomalies, ref_stats.anomalies);

    // clean shutdown → reopen needs zero WAL replay and keeps scoring
    recovered.close().unwrap();
    let mut reopened = DurableFleet::open(dcfg).unwrap();
    assert_eq!(reopened.engine().batches(), total);
    let out = reopened.ingest(batch(&streams, total)).unwrap();
    let expected = reference.ingest(batch(&streams, total)).unwrap();
    assert_outputs_bit_identical(&out, &expected, "after reopen");
    let _ = fs::remove_dir_all(&dir);
}

/// TTL evictions happen inside the deterministic per-batch sweep, so WAL
/// replay must reproduce them: a recovered engine has the same evicted
/// count and the same registry as the uninterrupted one.
#[test]
fn recovery_replays_ttl_evictions() {
    let streams = build_streams(2);
    let cfg = FleetConfig {
        shards: 2,
        period: PeriodPolicy::Fixed(8),
        ttl: Some(50),
        ..Default::default()
    };
    let dir = test_dir("ttl-replay");
    // snapshot_every beyond the run: recovery is pure WAL replay
    let dcfg = DurabilityConfig { snapshot_every: 10_000, ..DurabilityConfig::new(&dir) };

    let mut reference = FleetEngine::new(cfg.clone()).unwrap();
    let mut durable = DurableFleet::create(cfg, dcfg.clone()).unwrap();
    // both series live, then series-1 goes silent long enough for the
    // amortized sweep (every 64 batches) to evict it
    for t in 0..40u64 {
        let b = batch(&streams, t);
        reference.ingest(b.clone()).unwrap();
        durable.ingest(b).unwrap();
    }
    for t in 40..300u64 {
        let b = vec![Record::new("series-0", t, streams[0][t as usize])];
        reference.ingest(b.clone()).unwrap();
        durable.ingest(b).unwrap();
    }
    assert_eq!(reference.stats().unwrap().evicted, 1, "sweep evicted the idle series");
    drop(durable); // crash

    let mut recovered = DurableFleet::open(dcfg).unwrap();
    let stats = recovered.engine().stats().unwrap();
    let ref_stats = reference.stats().unwrap();
    assert_eq!(stats.evicted, ref_stats.evicted, "replay reproduces the eviction");
    assert_eq!(stats.live, ref_stats.live);
    assert_eq!(stats.warming, ref_stats.warming);
    assert_eq!(stats.points, ref_stats.points);
    // the evicted series re-enters through warm-up on both engines alike
    for t in 300..310u64 {
        let b = batch(&streams, t);
        let a = reference.ingest(b.clone()).unwrap();
        let r = recovered.ingest(b).unwrap();
        assert_outputs_bit_identical(&r, &a, "post-eviction");
    }
    let _ = fs::remove_dir_all(&dir);
}

/// An empty WAL (create, crash before any ingest) recovers to the base
/// snapshot and the engine works normally afterwards.
#[test]
fn empty_wal_recovers_to_base_snapshot() {
    let dir = test_dir("empty-wal");
    let dcfg = DurabilityConfig::new(&dir);
    drop(DurableFleet::create(config(), dcfg.clone()).unwrap());
    let mut recovered = DurableFleet::open(dcfg).unwrap();
    assert_eq!(recovered.engine().batches(), 0);
    assert_eq!(recovered.engine().stats().unwrap().live, 0);
    let streams = build_streams(3);
    for t in 0..80u64 {
        recovered.ingest(batch(&streams, t)).unwrap();
    }
    assert_eq!(recovered.engine().stats().unwrap().live, 3);
    let _ = fs::remove_dir_all(&dir);
}

/// A snapshot whose format version this build does not understand (or
/// whose body is corrupt) is skipped: recovery falls back to the previous
/// valid snapshot and replays the full WAL from there.
#[test]
fn snapshot_version_mismatch_falls_back_to_older_snapshot() {
    let streams = build_streams(6);
    let dir = test_dir("version-mismatch");
    let dcfg = DurabilityConfig { snapshot_every: 10_000, ..DurabilityConfig::new(&dir) };
    let mut durable = DurableFleet::create(config(), dcfg.clone()).unwrap();
    for t in 0..90u64 {
        durable.ingest(batch(&streams, t)).unwrap();
    }
    durable.checkpoint().unwrap(); // durable snapshot at seq 90
    for t in 90..130u64 {
        durable.ingest(batch(&streams, t)).unwrap();
    }
    drop(durable); // crash with WAL tail 91..130

    // sabotage the newest snapshot: bump the codec version *and* fix up
    // the file CRC, so the corruption is caught by the version check
    let newest = fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "fsnap"))
        .max()
        .unwrap();
    let mut bytes = fs::read(&newest).unwrap();
    // layout: u64 len | u32 crc | codec bytes (magic[8] then u16 version)
    bytes[12 + 8] = 0xEE;
    let crc = oneshotstl_suite::fleet::wal::crc32(&bytes[12..]);
    bytes[8..12].copy_from_slice(&crc.to_le_bytes());
    fs::write(&newest, &bytes).unwrap();

    let recovered = DurableFleet::open(dcfg).unwrap();
    // fell back to the base snapshot (seq 0) and replayed the whole WAL
    assert_eq!(recovered.engine().batches(), 130);
    assert_eq!(recovered.engine().stats().unwrap().live, 6);
    let _ = fs::remove_dir_all(&dir);
}

/// An explicit eviction right after the snapshot cadence fired mutates
/// state without advancing the batch seq; the checkpoint inside
/// `DurableFleet::evict_idle` must still force a re-snapshot, or the
/// eviction would silently vanish on crash.
#[test]
fn explicit_eviction_at_snapshot_boundary_survives_crash() {
    let streams = build_streams(2);
    let cfg = FleetConfig {
        shards: 2,
        period: PeriodPolicy::Fixed(8),
        ttl: Some(20),
        ..Default::default()
    };
    let dir = test_dir("evict-boundary");
    // snapshot_every = 30: the cadence triggers exactly on the last batch
    let dcfg = DurabilityConfig { snapshot_every: 30, ..DurabilityConfig::new(&dir) };
    let mut durable = DurableFleet::create(cfg, dcfg.clone()).unwrap();
    for t in 0..30u64 {
        durable.ingest(batch(&streams, t)).unwrap();
    }
    // both series idle at now = 1000 → evicted; seq is still 30
    assert_eq!(durable.evict_idle(1000).unwrap(), 2);
    drop(durable); // crash right after the eviction's checkpoint returned

    let recovered = DurableFleet::open(dcfg).unwrap();
    let stats = recovered.engine().stats().unwrap();
    assert_eq!(stats.evicted, 2, "explicit eviction must survive the crash");
    assert_eq!(stats.live + stats.warming, 0);
    let _ = fs::remove_dir_all(&dir);
}

/// Pipelined submission drains to the same outputs as synchronous ingest,
/// and bounded queues under `Block` never reject.
#[test]
fn pipelined_submit_matches_synchronous_ingest() {
    let streams = build_streams(10);
    let bounded =
        FleetConfig { queue_capacity: Some(4), queue_policy: QueuePolicy::Block, ..config() };
    let mut sync_engine = FleetEngine::new(config()).unwrap();
    let mut pipe_engine = FleetEngine::new(bounded).unwrap();
    let mut sync_out = Vec::new();
    for t in 0..120u64 {
        sync_out.push(sync_engine.ingest(batch(&streams, t)).unwrap());
        pipe_engine.submit(batch(&streams, t)).unwrap();
    }
    assert!(pipe_engine.in_flight() > 0);
    let mut pipe_out = Vec::new();
    while let Some(out) = pipe_engine.next_batch().unwrap() {
        pipe_out.push(out);
    }
    assert_eq!(pipe_out.len(), sync_out.len());
    for (t, (a, b)) in pipe_out.iter().zip(&sync_out).enumerate() {
        assert_outputs_bit_identical(a, b, &format!("pipelined t={t}"));
    }
}

/// `Reject` backpressure: a full bounded shard queue fails the submission
/// with a typed error before anything is applied, and the engine resumes
/// cleanly once the queue drains.
#[test]
fn reject_policy_sheds_load_with_typed_error() {
    let streams = build_streams(4);
    let cfg = FleetConfig {
        shards: 1,
        queue_capacity: Some(2),
        queue_policy: QueuePolicy::Reject,
        period: PeriodPolicy::Fixed(24),
        ..Default::default()
    };
    let mut engine = FleetEngine::new(cfg).unwrap();
    // park the single worker so nothing drains
    let guard = engine.stall_shard(0).unwrap();
    while engine.queue_depth(0) > 0 {
        std::thread::yield_now(); // wait for the worker to dequeue the stall
    }
    engine.submit(batch(&streams, 0)).unwrap();
    engine.submit(batch(&streams, 1)).unwrap();
    let batches_before = engine.batches();
    match engine.submit(batch(&streams, 2)) {
        Err(FleetError::Backpressure { shard: 0 }) => {}
        other => panic!("expected Backpressure, got {other:?}"),
    }
    assert_eq!(engine.batches(), batches_before, "rejected batch leaves no trace");
    // mixing synchronous ingest with in-flight batches is a typed error too
    assert!(matches!(engine.ingest(batch(&streams, 2)), Err(FleetError::InFlight)));
    drop(guard); // release the worker
    assert_eq!(engine.next_batch().unwrap().unwrap().len(), 4);
    assert_eq!(engine.next_batch().unwrap().unwrap().len(), 4);
    assert!(engine.next_batch().unwrap().is_none());
    // the rejected batch is retryable verbatim
    let out = engine.ingest(batch(&streams, 2)).unwrap();
    assert_eq!(out.len(), 4);
}

/// Incremental snapshots: with ~1% of the fleet dirty per interval, the
/// bytes written per snapshot interval must shrink by at least 10× vs. a
/// full snapshot — the headline claim of the delta-chain design.
#[test]
fn incremental_snapshots_shrink_writes_10x_with_1pct_dirty() {
    let n_series = 200;
    let streams = build_streams(n_series);
    let dir = test_dir("delta-shrink");
    let dcfg = DurabilityConfig {
        snapshot_every: 10,
        max_delta_chain: 1_000, // keep the cadence on deltas for this test
        ..DurabilityConfig::new(&dir)
    };
    let cfg = FleetConfig { shards: 3, period: PeriodPolicy::Fixed(24), ..Default::default() };
    let mut fleet = DurableFleet::create(cfg, dcfg).unwrap();
    // warm the whole fleet live
    for t in 0..80u64 {
        fleet.ingest(batch(&streams, t)).unwrap();
    }
    assert_eq!(fleet.engine().stats().unwrap().live, n_series);
    // full base at the current seq (forced checkpoint → full snapshot)
    fleet.checkpoint().unwrap();
    let base_seq = fleet.durable_snapshot();
    // one snapshot interval touching only 1% of the series
    let dirty: Vec<usize> = vec![7, 113];
    for t in 80..90u64 {
        let small: Vec<Record> = dirty
            .iter()
            .map(|&s| Record::new(format!("series-{s}"), t, streams[s][t as usize]))
            .collect();
        fleet.ingest(small).unwrap();
    }
    drop(fleet); // queued snapshot jobs complete before the writer joins

    let mut base_size = None;
    let mut delta_size = None;
    for entry in fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        let name = path.file_name().unwrap().to_str().unwrap().to_string();
        let len = fs::metadata(&path).unwrap().len();
        if let Some(seq) = oneshotstl_suite::fleet::persist::parse_snapshot_name(&name) {
            if seq == base_seq {
                base_size = Some(len);
            }
        } else if let Some(seq) = oneshotstl_suite::fleet::persist::parse_delta_name(&name) {
            if seq > base_seq {
                delta_size = Some(delta_size.unwrap_or(0).max(len));
            }
        }
    }
    let base_size = base_size.expect("forced full base on disk");
    let delta_size = delta_size.expect("cadence delta on disk");
    assert!(
        delta_size * 10 <= base_size,
        "1%-dirty delta must be ≥10× smaller: delta {delta_size} B vs base {base_size} B"
    );

    // and recovery through base + delta is intact
    let recovered = DurableFleet::open(DurabilityConfig {
        snapshot_every: 10,
        max_delta_chain: 1_000,
        ..DurabilityConfig::new(&dir)
    })
    .unwrap();
    assert_eq!(recovered.engine().batches(), 90);
    assert_eq!(recovered.engine().stats().unwrap().live, n_series);
    let _ = fs::remove_dir_all(&dir);
}

/// Crash recovery through a chain of base + incremental deltas + WAL tail
/// must stay bit-identical to an uninterrupted engine — including when the
/// newest delta is corrupt (the chain walk stops and WAL replay covers the
/// difference).
#[test]
fn delta_chain_crash_recovery_is_bit_identical() {
    let n_series = 12;
    let total = 150u64;
    let crash_at = 130u64;
    let streams = build_streams(n_series);
    let dir = test_dir("delta-chain");
    let dcfg = DurabilityConfig {
        snapshot_every: 20,
        max_delta_chain: 3, // base(0) d20 d40 d60 base(80) d100 d120 …
        ..DurabilityConfig::new(&dir)
    };

    let mut reference = FleetEngine::new(config()).unwrap();
    let mut ref_outputs = Vec::new();
    for t in 0..total {
        ref_outputs.push(reference.ingest(batch(&streams, t)).unwrap());
    }

    let mut durable = DurableFleet::create(config(), dcfg.clone()).unwrap();
    for t in 0..crash_at {
        let out = durable.ingest(batch(&streams, t)).unwrap();
        assert_outputs_bit_identical(&out, &ref_outputs[t as usize], "pre-crash");
    }
    drop(durable); // crash: no checkpoint, no clean shutdown

    // deltas must actually exist on disk (the cadence used them)
    let n_deltas = fs::read_dir(&dir)
        .unwrap()
        .filter(|e| e.as_ref().unwrap().path().extension().is_some_and(|x| x == "fdelta"))
        .count();
    assert!(n_deltas >= 2, "expected a delta chain on disk, found {n_deltas}");

    let mut recovered = DurableFleet::open(dcfg.clone()).unwrap();
    assert_eq!(recovered.engine().batches(), crash_at, "nothing acked may be lost");
    for t in crash_at..total {
        let out = recovered.ingest(batch(&streams, t)).unwrap();
        assert_outputs_bit_identical(&out, &ref_outputs[t as usize], "post-recovery");
    }
    drop(recovered);

    // corrupt the newest delta: recovery must fall back to the shorter
    // chain + WAL replay and still reach the same state
    let newest_delta = fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "fdelta"))
        .max();
    if let Some(path) = newest_delta {
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        let mut recovered2 = DurableFleet::open(dcfg).unwrap();
        assert_eq!(recovered2.engine().batches(), total);
        let out = recovered2.ingest(batch(&streams, total)).unwrap();
        let expected = reference.ingest(batch(&streams, total)).unwrap();
        assert_outputs_bit_identical(&out, &expected, "after corrupt-delta fallback");
    }
    let _ = fs::remove_dir_all(&dir);
}

/// Group commit: a durably acked batch costs exactly **one** WAL fsync no
/// matter how many shards it touches (previously `shards` fsyncs), and
/// `fsync_every = k` costs one fsync per k batches.
#[test]
fn group_commit_fsyncs_once_per_acked_batch() {
    let n_series = 16; // spread over all 4 shards
    let streams = build_streams(n_series);
    let cfg = FleetConfig { shards: 4, period: PeriodPolicy::Fixed(24), ..Default::default() };
    let dir = test_dir("group-commit");
    let dcfg = DurabilityConfig {
        snapshot_every: 10_000, // no cadence rotation during the measurement
        ..DurabilityConfig::new(&dir)
    };
    let mut fleet = DurableFleet::create(cfg.clone(), dcfg).unwrap();
    // sanity: with 16 keys, every batch routes to all 4 shards
    let shards_hit: std::collections::HashSet<usize> =
        (0..n_series).map(|s| SeriesKey::new(format!("series-{s}")).shard_of(4)).collect();
    assert_eq!(shards_hit.len(), 4, "workload must fan out to every shard");
    let before = fleet.wal_fsync_count();
    let batches = 20u64;
    for t in 0..batches {
        fleet.ingest(batch(&streams, t)).unwrap();
    }
    let per_batch = fleet.wal_fsync_count() - before;
    assert_eq!(
        per_batch, batches,
        "fsync_every=1 must cost exactly 1 fsync per batch (not per shard)"
    );
    drop(fleet);
    let _ = fs::remove_dir_all(&dir);

    // fsync_every = 4: one flush per 4 batches
    let dir = test_dir("group-commit-k");
    let dcfg = DurabilityConfig {
        snapshot_every: 10_000,
        fsync_every: 4,
        ..DurabilityConfig::new(&dir)
    };
    let mut fleet = DurableFleet::create(cfg, dcfg).unwrap();
    let before = fleet.wal_fsync_count();
    for t in 0..batches {
        fleet.ingest(batch(&streams, t)).unwrap();
    }
    let flushes = fleet.wal_fsync_count() - before;
    assert_eq!(flushes, batches / 4, "fsync_every=4 must flush once per 4 batches");
    drop(fleet);
    let _ = fs::remove_dir_all(&dir);
}

/// Per-series `AdmitOptions` are not WAL-logged; `DurableFleet`'s
/// registration path checkpoints instead, so a crash after registration —
/// before *or* after the series admits — recovers bit-identically: the
/// snapshot carries the pending overrides (codec v4) and WAL replay
/// re-runs the admission with the same tuning.
#[test]
fn admit_options_survive_crash_recovery_bit_identically() {
    use oneshotstl_suite::core::{Fusion, ScoreConfig, ShiftSearchConfig};
    use oneshotstl_suite::fleet::{
        AdmitOptions, BackendSelect, EnsembleOptions, ForecastOptions,
    };

    let total = 140u64;
    let crash_at = 50u64; // past the overridden series' admission at 36
    let dir = test_dir("admit-options");
    let value = |key: &str, t: u64| -> f64 {
        let period = if key == "vip" { 12.0 } else { 24.0 };
        (2.0 * std::f64::consts::PI * t as f64 / period).sin() + 0.001 * t as f64
    };
    let tick = |t: u64| -> Vec<Record> {
        vec![Record::new("std", t, value("std", t)), Record::new("vip", t, value("vip", t))]
    };
    let opts = AdmitOptions {
        lambda: Some(0.5),
        nsigma: Some(3.5),
        period: Some(12),
        shift_search: Some(ShiftSearchConfig::exhaustive()),
        // a per-series scoring override rides the same checkpoint path:
        // recovery must bring the CUSUM config back in force too
        score: Some(ScoreConfig {
            cusum_k: 0.4,
            cusum_h: 5.0,
            hold_decay: 0.95,
            fusion: Fusion::Cusum,
        }),
        // and so does a forecast-head override (codec v6)
        forecast: Some(ForecastOptions {
            damping: 0.9,
            error_window: 16,
            ..ForecastOptions::on()
        }),
        // and a detection-backend override (codec v7): the ensemble's
        // DAMP window, distance normalizer and trend CUSUM must all come
        // back bit-identically through checkpoint + WAL replay
        backend: Some(BackendSelect::Ensemble(EnsembleOptions::default())),
    };

    // reference: uninterrupted, no durability
    let mut reference = FleetEngine::new(config()).unwrap();
    reference.set_admit_options("vip", opts).unwrap();
    let mut ref_outputs = Vec::new();
    for t in 0..total {
        ref_outputs.push(reference.ingest(tick(t)).unwrap());
    }

    // durable run: register the overrides (checkpoints), ingest past the
    // overridden admission, crash without a clean shutdown
    let dcfg = DurabilityConfig { snapshot_every: 1_000, ..DurabilityConfig::new(&dir) };
    let mut durable = DurableFleet::create(config(), dcfg.clone()).unwrap();
    durable.set_admit_options("vip", opts).unwrap();
    for t in 0..crash_at {
        let out = durable.ingest(tick(t)).unwrap();
        assert_outputs_bit_identical(&out, &ref_outputs[t as usize], "pre-crash");
    }
    drop(durable); // crash

    // recovery folds the post-registration checkpoint and replays the WAL
    // through the same admission path — the overridden period, λ, NSigma
    // threshold and shift-search policy are all back in force
    let mut recovered = DurableFleet::open(dcfg).unwrap();
    assert_eq!(recovered.engine().batches(), crash_at, "nothing durable was lost");
    for t in crash_at..total {
        let out = recovered.ingest(tick(t)).unwrap();
        assert_outputs_bit_identical(&out, &ref_outputs[t as usize], "post-recovery");
    }
    assert_eq!(recovered.engine().stats().unwrap().live, 2);
    let _ = fs::remove_dir_all(&dir);
}

/// Forecast heads ride through crash recovery: a fleet with forecasting
/// (and error fusion) enabled crashes mid-stream; recovery folds the last
/// snapshot and replays the WAL tail through the same observe path, so
/// the recovered engine's verdicts *and* forecasts continue bit-identical
/// to an uninterrupted reference — the pending prediction and tracker
/// rings are rebuilt exactly, not reset.
#[test]
fn forecast_state_survives_crash_recovery_bit_identically() {
    use oneshotstl_suite::fleet::ForecastOptions;

    let n_series = 8;
    let total = 160u64;
    let crash_at = 110u64; // past init_len(24) = 72: trackers are charged
    let dir = test_dir("forecast");
    let streams = build_streams(n_series);
    let cfg = || FleetConfig {
        forecast: ForecastOptions {
            enabled: true,
            damping: 0.9,
            error_window: 16,
            error_fusion: true,
            smape_alarm: 1.5,
        },
        ..config()
    };
    let keys: Vec<SeriesKey> =
        (0..n_series).map(|s| SeriesKey::new(format!("series-{s}"))).collect();

    // reference: uninterrupted, no durability — advanced in lockstep with
    // the durable run so forecasts can be compared at matching clocks
    let mut reference = FleetEngine::new(cfg()).unwrap();

    // durable run: ingest past admission, crash without a clean shutdown
    // (snapshot_every far out, so recovery must replay a long WAL tail)
    let dcfg = DurabilityConfig { snapshot_every: 1_000, ..DurabilityConfig::new(&dir) };
    let mut durable = DurableFleet::create(cfg(), dcfg.clone()).unwrap();
    for t in 0..crash_at {
        let expected = reference.ingest(batch(&streams, t)).unwrap();
        let out = durable.ingest(batch(&streams, t)).unwrap();
        assert_outputs_bit_identical(&out, &expected, "pre-crash");
    }
    drop(durable); // crash

    let mut recovered = DurableFleet::open(dcfg).unwrap();
    assert_eq!(recovered.engine().batches(), crash_at, "nothing durable was lost");
    // the pending one-step prediction was rebuilt by replay: forecasts
    // agree bit-for-bit before any post-recovery point
    let fa = reference.forecast(&keys, 48).unwrap();
    let fb = recovered.engine().forecast(&keys, 48).unwrap();
    for (s, (a, b)) in fa.iter().zip(&fb).enumerate() {
        let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.to_bits(), y.to_bits(), "series-{s}: recovered forecast differs");
        }
    }
    // …and the continuation stays bit-identical on both channels
    for t in crash_at..total {
        let expected = reference.ingest(batch(&streams, t)).unwrap();
        let out = recovered.ingest(batch(&streams, t)).unwrap();
        assert_outputs_bit_identical(&out, &expected, "post-recovery");
        if t % 16 == 0 {
            assert_eq!(
                reference.forecast(&keys, 24).unwrap(),
                recovered.engine().forecast(&keys, 24).unwrap(),
                "forecast streams diverged at t={t}"
            );
        }
    }
    let _ = fs::remove_dir_all(&dir);
}

/// Cold-tier crash recovery: series spilled to the on-disk cold store,
/// rehydrated, crashed, and recovered must score bit-identically to a
/// twin that kept everything hot the whole time. This pins the full
/// tiered lifecycle — spill during the amortized sweep, rehydrate on the
/// next point, cold-store reattachment *before* WAL replay so the replay
/// re-runs the same spill/rehydrate sequence against the same bytes.
#[test]
fn cold_tier_crash_recovery_is_bit_identical() {
    let n_series = 6;
    let crash_at = 230u64;
    let total = 260u64;
    let streams = build_streams(n_series);
    let dir = test_dir("cold-tier");
    let cfg = FleetConfig { spill_after: Some(20), ..config() };

    // phase plan: all series live to t=100, series-3..5 then idle long
    // enough for the sweep (every 64 batches) to spill them, everyone
    // returns at t=200 (rehydration), crash at 230, finish at 260
    let tick = |t: u64| -> Vec<Record> {
        let active = if (100..200).contains(&t) { 3 } else { n_series };
        streams[..active]
            .iter()
            .enumerate()
            .map(|(s, y)| Record::new(format!("series-{s}"), t, y[t as usize]))
            .collect()
    };

    // reference twin: same config (the sweep cadence must match), but no
    // cold store attached — its idle series simply stay hot
    let mut reference = FleetEngine::new(cfg.clone()).unwrap();
    let mut ref_outputs = Vec::new();
    for t in 0..total {
        ref_outputs.push(reference.ingest(tick(t)).unwrap());
    }
    assert_eq!(reference.stats().unwrap().spills, 0, "no cold store on the twin");

    let dcfg = DurabilityConfig { snapshot_every: 60, ..DurabilityConfig::new(&dir) };
    let mut durable = DurableFleet::create(cfg, dcfg.clone()).unwrap();
    for t in 0..crash_at {
        let out = durable.ingest(tick(t)).unwrap();
        assert_outputs_bit_identical(&out, &ref_outputs[t as usize], "pre-crash");
        if t == 199 {
            let s = durable.engine().stats().unwrap();
            assert_eq!(s.cold_resident, 3, "idle series are cold before they return");
            assert_eq!(s.spills, 3);
            assert_eq!(s.live, 3, "spilled series left the hot registry");
        }
    }
    let s = durable.engine().stats().unwrap();
    assert_eq!(s.rehydrations, 3, "returning points pulled the series back");
    assert_eq!(s.cold_resident, 0);
    assert_eq!(s.live, n_series);
    assert_eq!(s.cold_errors, 0);
    drop(durable); // crash: no checkpoint, no clean shutdown

    let cold_files = fs::read_dir(dir.join("cold"))
        .unwrap()
        .filter(|e| e.as_ref().unwrap().path().extension().is_some_and(|x| x == "fcold"))
        .count();
    assert_eq!(cold_files, 3, "one cold file per shard");

    // recovery reattaches the cold tier before WAL replay, so the replay
    // re-spills and re-rehydrates against the same on-disk bytes
    let mut recovered = DurableFleet::open(dcfg).unwrap();
    assert_eq!(recovered.engine().batches(), crash_at, "nothing durable was lost");
    for t in crash_at..total {
        let out = recovered.ingest(tick(t)).unwrap();
        assert_outputs_bit_identical(&out, &ref_outputs[t as usize], "post-recovery");
    }
    let got = recovered.engine().stats().unwrap();
    let want = reference.stats().unwrap();
    assert_eq!(got.live, want.live);
    assert_eq!(got.points, want.points);
    assert_eq!(got.anomalies, want.anomalies);
    assert_eq!(got.cold_resident, 0, "everyone is hot again");
    assert_eq!(got.cold_errors, 0);
    let _ = fs::remove_dir_all(&dir);
}

/// WAL-segment compaction: a segment whose batches are re-derivable from
/// the durable snapshot/delta chain of every surviving base below it is
/// dropped by prune — and what survives is exactly what the *worst-case*
/// fallback anchor still needs, pinned by deleting the newest base and
/// recovering through the chain + the kept tail.
#[test]
fn covered_wal_segments_are_compacted_and_fallback_still_recovers() {
    let n_series = 8;
    let streams = build_streams(n_series);
    let dir = test_dir("wal-compact");
    let dcfg = DurabilityConfig {
        snapshot_every: 20,
        max_delta_chain: 100, // cadence stays on deltas: base 0 + d20 d40 …
        ..DurabilityConfig::new(&dir)
    };

    let mut reference = FleetEngine::new(config()).unwrap();
    let mut ref_outputs = Vec::new();
    for t in 0..90u64 {
        ref_outputs.push(reference.ingest(batch(&streams, t)).unwrap());
    }

    let mut durable = DurableFleet::create(config(), dcfg.clone()).unwrap();
    for t in 0..90u64 {
        durable.ingest(batch(&streams, t)).unwrap();
    }
    // forced full base at 90: every pending image is durable, prune runs
    durable.checkpoint().unwrap();
    drop(durable);

    // segments at 0/20/40/60 are covered by the delta chain reaching 80
    // from the fallback base 0 and are gone; (80,90] survives because the
    // chain from base 0 only reaches 80, and wal-90 is the live segment
    let mut starts: Vec<u64> = fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter_map(|e| {
            oneshotstl_suite::fleet::wal::parse_segment_name(e.file_name().to_str()?)
                .map(|(start, _)| start)
        })
        .collect();
    starts.sort();
    starts.dedup();
    assert_eq!(starts, vec![80, 90], "covered segments compacted, needed tail kept");

    // destroy the newest full base: recovery must fall back to base 0,
    // fold the delta chain to 80, and replay (80, 90] from the kept tail
    let newest = fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "fsnap"))
        .max()
        .unwrap();
    assert!(newest.to_str().unwrap().contains("0090"), "checkpoint base is newest");
    fs::remove_file(&newest).unwrap();

    let mut recovered = DurableFleet::open(dcfg).unwrap();
    assert_eq!(recovered.engine().batches(), 90, "chain + kept tail reach the end");
    for t in 90..110u64 {
        let out = recovered.ingest(batch(&streams, t)).unwrap();
        let expected = reference.ingest(batch(&streams, t)).unwrap();
        assert_outputs_bit_identical(&out, &expected, "after fallback recovery");
    }
    let _ = fs::remove_dir_all(&dir);
}

/// The stats-counter crash-recovery contract, mirroring
/// `fleet_snapshot::stats_counters_obey_the_snapshot_contract`. Lifetime
/// counters carry across recovery; the diagnostic counters (shift search,
/// z/CUSUM, forecast, and the per-backend DAMP/trend alarm counts) are
/// not serialized — recovery restores the checkpoint (counters reset),
/// then WAL replay re-runs every batch after it, so the recovered
/// engine's diagnostics count exactly the alarms fired *since the last
/// checkpoint*, bit-identical to the reference's increments over the
/// same span.
#[test]
fn stats_counters_obey_the_crash_recovery_contract() {
    use oneshotstl_suite::fleet::{AdmitOptions, BackendSelect, DampOptions, EnsembleOptions};

    let n_series = 6;
    let mid = 120u64; // explicit checkpoint: the deterministic replay anchor
    let crash_at = 150u64;
    let total = 260u64;
    let mut streams = build_streams(n_series);
    // irregular spikes on both sides of the checkpoint (spacing/sign/size
    // varied so DAMP sees discords, not a repeating motif)
    for y in streams.iter_mut() {
        for (at, delta) in
            [(100usize, 3.5), (135, -4.5), (180, 5.0), (205, -6.0), (230, 4.0), (245, 7.0)]
        {
            y[at] += delta;
        }
    }
    // same backend mix as the snapshot-side test: DAMP / ensemble /
    // trend-CUSUM, with the DAMP z bar under its compressed (~1.2σ max)
    // discord-distance range so the channel actually fires
    let opts: [AdmitOptions; 3] = [
        AdmitOptions {
            nsigma: Some(0.9),
            backend: Some(BackendSelect::Damp(DampOptions { window: 128, subseq: 8 })),
            ..Default::default()
        },
        AdmitOptions {
            nsigma: Some(0.9),
            backend: Some(BackendSelect::Ensemble(EnsembleOptions {
                damp: DampOptions { window: 128, subseq: 8 },
                ..Default::default()
            })),
            ..Default::default()
        },
        AdmitOptions {
            backend: Some(BackendSelect::TrendCusum(Default::default())),
            ..Default::default()
        },
    ];

    // uninterrupted reference, counters read at the checkpoint seq
    let mut reference = FleetEngine::new(config()).unwrap();
    for (s, o) in opts.iter().enumerate() {
        reference.set_admit_options(format!("series-{s}"), *o).unwrap();
    }
    let mut ref_outputs = Vec::new();
    let mut ref_mid = None;
    for t in 0..total {
        ref_outputs.push(reference.ingest(batch(&streams, t)).unwrap());
        if t + 1 == mid {
            ref_mid = Some(reference.stats().unwrap());
        }
    }
    let ref_mid = ref_mid.unwrap();
    let ref_end = reference.stats().unwrap();
    assert!(ref_mid.z_alarms > 0, "pre-checkpoint z alarms: {ref_mid:?}");
    assert!(ref_mid.damp_alarms > 0, "pre-checkpoint DAMP alarms: {ref_mid:?}");

    // durable run: cadence off (snapshot_every huge) so the explicit
    // checkpoint at `mid` is the only replay anchor; then crash
    let dir = test_dir("stats-counters");
    let dcfg = DurabilityConfig { snapshot_every: 1_000_000, ..DurabilityConfig::new(&dir) };
    let mut durable = DurableFleet::create(config(), dcfg.clone()).unwrap();
    for (s, o) in opts.iter().enumerate() {
        durable.set_admit_options(format!("series-{s}"), *o).unwrap();
    }
    for t in 0..crash_at {
        let out = durable.ingest(batch(&streams, t)).unwrap();
        assert_outputs_bit_identical(&out, &ref_outputs[t as usize], "pre-crash");
        if t + 1 == mid {
            durable.checkpoint().unwrap();
        }
    }
    drop(durable); // crash: no clean shutdown

    // recovery replays the WAL from the checkpoint, re-firing the alarms
    // between `mid` and the crash point; continue to the end
    let mut recovered = DurableFleet::open(dcfg).unwrap();
    let resume = recovered.engine().batches();
    assert_eq!(resume, crash_at, "synchronous WAL ingest loses no batch");
    for t in resume..total {
        let out = recovered.ingest(batch(&streams, t)).unwrap();
        assert_outputs_bit_identical(&out, &ref_outputs[t as usize], "post-recovery");
    }
    let got = recovered.engine().stats().unwrap();

    // lifetime counters carried across the crash
    assert_eq!(got.points, ref_end.points);
    assert_eq!(got.anomalies, ref_end.anomalies);
    assert_eq!(got.admitted, ref_end.admitted);
    assert_eq!(got.evicted, ref_end.evicted);

    // diagnostics count from the checkpoint, in lockstep with the
    // reference's post-checkpoint increments
    assert_eq!(got.shift_searches, ref_end.shift_searches - ref_mid.shift_searches);
    assert_eq!(got.shift_trials, ref_end.shift_trials - ref_mid.shift_trials);
    assert_eq!(got.z_alarms, ref_end.z_alarms - ref_mid.z_alarms);
    assert_eq!(got.cusum_alarms, ref_end.cusum_alarms - ref_mid.cusum_alarms);
    assert_eq!(got.forecast_alarms, ref_end.forecast_alarms - ref_mid.forecast_alarms);
    assert_eq!(got.damp_alarms, ref_end.damp_alarms - ref_mid.damp_alarms);
    assert_eq!(got.trend_alarms, ref_end.trend_alarms - ref_mid.trend_alarms);
    assert!(got.damp_alarms > 0, "no post-checkpoint DAMP alarms to track: {got:?}");
    assert!(got.trend_alarms > 0, "no post-checkpoint trend alarms to track: {got:?}");

    // v8 health counters are lifetime counters: carried across recovery
    // (a healthy run leaves them all zero; the nonzero-carry case is
    // pinned by tests/fleet_faults.rs)
    assert_eq!(got.wal_retries, ref_end.wal_retries);
    assert_eq!(got.shard_restarts, ref_end.shard_restarts);
    assert_eq!(got.undurable_batches, ref_end.undurable_batches);
    assert_eq!(got.quarantined, 0, "healthy recovery quarantines nothing");
}
