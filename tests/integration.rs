//! Cross-crate integration tests: the full pipelines the paper's
//! evaluation depends on, exercised end to end on the synthetic workloads.

use oneshotstl_suite::core::ScoreConfig;
use oneshotstl_suite::metrics::kdd21_score;
use oneshotstl_suite::prelude::*;
use oneshotstl_suite::tskit::period::find_length;
use oneshotstl_suite::tskit::stats::mae;
use oneshotstl_suite::tskit::synth::{kdd21_like, syn1, syn2, tsad_family, tsf_dataset};

/// Table 2's headline: on Syn1 (abrupt trend change), OneShotSTL's trend
/// error is far below OnlineSTL's.
#[test]
fn oneshotstl_beats_onlinestl_on_abrupt_trend() {
    let ds = syn1(42);
    let truth = ds.truth.as_ref().unwrap();
    let t = ds.period;
    let split = 4 * t;
    let cfg = OneShotStlConfig {
        lambdas: Lambdas { lambda1: 1.0, lambda2: 1.0, anchor: 1.0 },
        ..Default::default()
    };
    let mut oneshot = OneShotStl::new(cfg);
    let d_fast = oneshot.run_series(&ds.values, t, split).unwrap();
    let mut online = OnlineStl::new();
    let d_base = online.run_series(&ds.values, t, split).unwrap();
    let e_fast = mae(&d_fast.trend[split..], &truth.trend[split..]);
    let e_base = mae(&d_base.trend[split..], &truth.trend[split..]);
    assert!(
        e_fast < 0.5 * e_base,
        "OneShotSTL trend MAE {e_fast} should be well below OnlineSTL {e_base}"
    );
}

/// Table 2's second headline: OneShotSTL absorbs Syn2's seasonality shift.
#[test]
fn oneshotstl_handles_seasonality_shift() {
    let ds = syn2(42);
    let truth = ds.truth.as_ref().unwrap();
    let t = ds.period;
    let split = 4 * t;
    let with = {
        let cfg = OneShotStlConfig { shift_window: 20, ..Default::default() };
        OneShotStl::new(cfg).run_series(&ds.values, t, split).unwrap()
    };
    let without = {
        let cfg = OneShotStlConfig { shift_window: 0, ..Default::default() };
        OneShotStl::new(cfg).run_series(&ds.values, t, split).unwrap()
    };
    let e_with = mae(&with.seasonal[split..], &truth.seasonal[split..]);
    let e_without = mae(&without.seasonal[split..], &truth.seasonal[split..]);
    assert!(
        e_with < e_without,
        "shift handling must reduce seasonal MAE: {e_with} vs {e_without}"
    );
}

/// The TSAD evaluation protocol (kept in lockstep with the
/// `tsad_ablation` bench): tied λ = 10 (the paper's per-dataset tuning
/// for these families) and the §3.4 shift search disabled — on anomaly
/// workloads the search absorbs anomalous excursions into seasonal-phase
/// shifts, destroying the residual evidence (measured in
/// `BENCH_tsad.json`'s protocol table).
fn tsad_family_vus(name: &str, n_series: usize, seed: u64, score: ScoreConfig) -> f64 {
    let fam = tsad_family(name, n_series, seed);
    let mut total = 0.0;
    for s in &fam.series {
        let period = find_length(s.train());
        let cfg = OneShotStlConfig {
            lambdas: Lambdas { lambda1: 10.0, lambda2: 10.0, anchor: 1.0 },
            shift_window: 0,
            ..Default::default()
        };
        let mut m =
            StdNSigma::with_score("OneShotSTL", 5.0, score, || OneShotStl::new(cfg.clone()));
        let scores = m.score(s.train(), s.test(), period);
        total += vus_roc(&scores, s.test_labels(), period.max(10), 8);
    }
    total / fam.series.len() as f64
}

/// §4 TSAD: the fused residual scorer finds injected anomalies on a
/// strongly seasonal family by a wide margin (measured 0.8754 with the
/// default fused config; the pre-CUSUM z-only pipeline scored 0.7091).
#[test]
fn tsad_pipeline_scores_well_on_seasonal_family() {
    let avg = tsad_family_vus("ECG", 2, 7, ScoreConfig::default());
    assert!(avg > 0.8, "ECG-family VUS-ROC {avg}");
}

/// The hard regime: IOPS (wandering trend + level shifts) — the adaptive
/// trend absorbs level shifts within a few points, so the instantaneous
/// z-score sees only the shift edges and scored near chance (~0.54).
/// The persistence-aware CUSUM + peak-hold scorer bridges the paired
/// edge spikes and lifts the family to ≥ 0.75 VUS-ROC (measured 0.7776
/// with the default fused config — the ROADMAP "TSAD quality target").
/// The same workload is gated can't-skip in CI by `tsad_ablation
/// --smoke`.
#[test]
fn tsad_pipeline_beats_chance_on_wandering_trend_family() {
    let fused = (tsad_family_vus("IOPS", 2, 7, ScoreConfig::default())
        + tsad_family_vus("IOPS", 2, 11, ScoreConfig::default()))
        / 2.0;
    assert!(fused >= 0.75, "IOPS-family fused VUS-ROC {fused}");
}

/// Table 4's protocol end to end: KDD21-style scoring with the detector's
/// top-1 point.
#[test]
fn kdd21_protocol_end_to_end() {
    let series = kdd21_like(6, 11);
    let results: Vec<(Vec<f64>, Vec<bool>)> = series
        .iter()
        .map(|s| {
            let period = s.period.unwrap();
            let mut m = StdNSigma::new("OneShotSTL", 5.0, || {
                OneShotStl::new(OneShotStlConfig::default())
            });
            let scores = m.score(s.train(), s.test(), period);
            (scores, s.test_labels().to_vec())
        })
        .collect();
    let score = kdd21_score(&results, 100);
    assert!(score >= 0.5, "KDD21-style accuracy {score}");
}

/// §4 TSF: the STD forecaster beats seasonal-naive on the strongly
/// seasonal ETTm2-like dataset at horizon 96.
#[test]
fn tsf_pipeline_beats_seasonal_naive_on_ettm2() {
    let ds = tsf_dataset("ETTm2", 5);
    let t = ds.period;
    let h = 96;
    let mut f =
        StdOnlineForecaster::new("OneShotSTL", OneShotStl::new(OneShotStlConfig::default()));
    f.init(&ds.values[..4 * t], t).unwrap();
    for &v in &ds.values[4 * t..ds.val_end] {
        f.observe(v);
    }
    let pred = f.forecast(h);
    let truth = &ds.values[ds.val_end..ds.val_end + h];
    let std_mae = mae(&pred, truth);
    let naive_mae: f64 =
        (0..h).map(|i| (ds.values[ds.val_end - t + (i % t)] - truth[i]).abs()).sum::<f64>()
            / h as f64;
    assert!(
        std_mae < 1.2 * naive_mae,
        "OneShotSTL ({std_mae}) should be competitive with seasonal naive ({naive_mae})"
    );
}

/// The whole online stack stays exact: O(1) path == exact Algorithm-2
/// reference on a real synthetic workload (not just random streams).
#[test]
fn equivalence_on_syn1_prefix() {
    let ds = syn1(3);
    let t = ds.period;
    // shorten for test speed: use the first 6 periods
    let y = &ds.values[..6 * t];
    let cfg = OneShotStlConfig { shift_window: 5, ..Default::default() };
    let mut fast = OneShotStl::new(cfg.clone());
    let mut exact = ModifiedJointStlRef::new_reference(cfg);
    fast.init(&y[..4 * t], t).unwrap();
    exact.init(&y[..4 * t], t).unwrap();
    for &v in &y[4 * t..] {
        let a = fast.update(v);
        let b = exact.update(v);
        assert!((a.trend - b.trend).abs() < 1e-7);
        assert!((a.seasonal - b.seasonal).abs() < 1e-7);
    }
}

/// Period detection feeds the pipeline correctly on generated data.
#[test]
fn period_detection_matches_generators() {
    let fam = tsad_family("ECG", 1, 1);
    let s = &fam.series[0];
    let detected = find_length(s.train());
    let true_t = s.period.unwrap();
    assert!(
        (detected as i64 - true_t as i64).abs() <= (true_t / 10).max(2) as i64,
        "detected {detected} vs true {true_t}"
    );
}
