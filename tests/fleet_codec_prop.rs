//! Property tests for the fleet snapshot codec (`fleet::codec`, format v7),
//! driven by the vendored `proptest` stand-in.
//!
//! Three properties:
//!
//! 1. **Round-trip bit-identity.** Arbitrary fleet states — varying shard
//!    counts, series mixes, stream lengths (warming and live phases), and
//!    per-series detection backends (fused / DAMP / trend-CUSUM / ensemble)
//!    — encode to bytes that decode and re-encode to the *same* bytes, and
//!    a restored engine re-snapshots to those bytes too.
//! 2. **Truncation fails closed.** Every proper prefix of a valid snapshot
//!    decodes to a typed [`CodecError`], never a panic.
//! 3. **Corruption never panics.** A single-byte XOR anywhere either still
//!    decodes (bit-flips inside an f64 payload can be benign) or yields a
//!    typed error; arbitrary garbage byte strings are rejected outright.

use std::sync::OnceLock;

use oneshotstl_suite::core::ScoreConfig;
use oneshotstl_suite::fleet::{
    codec, AdmitOptions, BackendSelect, CodecError, DampOptions, EnsembleFusion,
    EnsembleOptions, FleetConfig, FleetEngine, PeriodPolicy, Record,
};
use proptest::prelude::*;

/// Declared period for every generated series (init_len = 3 periods = 36,
/// so streams past ~36 points mix live series in with warming ones).
const PERIOD: usize = 12;

/// The per-series backend selections a generated series can be admitted
/// with; `None` leaves the engine-wide default (fused) in place.
fn backend_menu() -> Vec<Option<BackendSelect>> {
    vec![
        None,
        Some(BackendSelect::Fused),
        Some(BackendSelect::Damp(DampOptions { window: 32, subseq: 4 })),
        Some(BackendSelect::TrendCusum(ScoreConfig::default())),
        Some(BackendSelect::Ensemble(EnsembleOptions::default())),
        Some(BackendSelect::Ensemble(EnsembleOptions {
            fusion: EnsembleFusion::WeightedRank,
            weights: [1.0, 2.0, 0.5],
            ..Default::default()
        })),
    ]
}

/// Builds an engine with `n_series` deterministic seasonal streams, one
/// backend selection per series rotated through [`backend_menu`], runs it
/// for `len` points, and returns its snapshot bytes.
fn snapshot_of(shards: usize, n_series: usize, len: u64, phase: f64, amp: f64) -> Vec<u8> {
    let mut engine = FleetEngine::new(FleetConfig {
        shards,
        period: PeriodPolicy::Fixed(PERIOD),
        ..Default::default()
    })
    .unwrap();
    let menu = backend_menu();
    for s in 0..n_series {
        if let Some(backend) = menu[s % menu.len()] {
            engine
                .set_admit_options(
                    format!("series-{s}"),
                    AdmitOptions { backend: Some(backend), ..Default::default() },
                )
                .unwrap();
        }
    }
    for t in 0..len {
        let batch = (0..n_series)
            .map(|s| {
                let w = 2.0 * std::f64::consts::PI * t as f64 / PERIOD as f64;
                // Seasonal wave plus a small deterministic "noise" term so
                // residuals are non-trivial without pulling in an RNG.
                let v = amp * (w + phase).sin() + 0.05 * (t as f64 * 13.7 + s as f64).sin();
                Record::new(format!("series-{s}"), t, v)
            })
            .collect();
        engine.ingest(batch).unwrap();
    }
    engine.snapshot_bytes().unwrap()
}

/// One fixed snapshot covering every backend kind, shared by the
/// truncation/corruption properties (building a fleet per case would
/// dominate their runtime for no extra coverage).
fn canonical_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| snapshot_of(2, 6, 90, 0.3, 2.0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn arbitrary_fleet_states_roundtrip_bit_identically(
        shards in 1usize..4,
        n_series in 1usize..7,
        len in 5u64..110,
        phase in 0.0f64..6.25,
        amp in 0.5f64..3.0,
    ) {
        let bytes = snapshot_of(shards, n_series, len, phase, amp);

        // Codec-level bit identity: decode then re-encode reproduces the
        // exact byte string, and the decoded snapshot is a fixed point.
        let snap = codec::decode(&bytes).expect("own snapshot decodes");
        let re = codec::encode(&snap);
        prop_assert_eq!(&re, &bytes);
        prop_assert_eq!(codec::decode(&re).expect("re-encoded decodes"), snap);

        // Engine-level: a restored engine re-snapshots to the same bytes.
        let mut restored = FleetEngine::restore_bytes(&bytes).unwrap();
        prop_assert_eq!(restored.snapshot_bytes().unwrap(), bytes);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn truncation_yields_typed_errors_never_panics(cut in 0usize..1_000_000) {
        let bytes = canonical_bytes();
        let cut = cut % bytes.len(); // always a *proper* prefix
        let err = codec::decode(&bytes[..cut]).expect_err("proper prefix must not decode");
        // Exercise Display; any CodecError variant is acceptable, a panic
        // is not (the `decode` call above would have unwound).
        prop_assert!(!err.to_string().is_empty());
    }

    #[test]
    fn single_byte_corruption_never_panics(pos in 0usize..1_000_000, flip in 1u32..256) {
        let mut bytes = canonical_bytes().to_vec();
        let pos = pos % bytes.len();
        bytes[pos] ^= flip as u8;
        match codec::decode(&bytes) {
            // A flip inside an f64 payload can decode to a different but
            // still-valid state; re-encoding it must not panic either.
            Ok(snap) => {
                let _ = codec::encode(&snap);
            }
            Err(
                CodecError::BadMagic
                | CodecError::UnsupportedVersion(_)
                | CodecError::Truncated
                | CodecError::Invalid(_),
            ) => {}
        }
    }

    #[test]
    fn garbage_bytes_are_rejected(raw in prop::collection::vec(0u32..256, 0usize..96)) {
        let garbage: Vec<u8> = raw.into_iter().map(|x| x as u8).collect();
        prop_assert!(codec::decode(&garbage).is_err());
    }

    #[test]
    fn garbage_after_valid_magic_never_panics(raw in prop::collection::vec(0u32..256, 0usize..64)) {
        let mut bytes = b"OSSTLFLT".to_vec();
        bytes.extend(raw.into_iter().map(|x| x as u8));
        // Random tails overwhelmingly fail (bad version, truncated body,
        // range-checked fields); the property is simply "no panic".
        let _ = codec::decode(&bytes);
    }
}
