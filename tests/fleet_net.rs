//! Property tests for the network frame codec (`fleet::net`), mirroring
//! the snapshot-codec properties in `fleet_codec_prop.rs`, plus TCP
//! loopback integration tests pinning wire ingest **bit-identical** to
//! in-process ingest.
//!
//! Codec properties:
//!
//! 1. **Round-trip identity.** Arbitrary ingest batches (and a canonical
//!    instance of every other message type) encode to frames that decode
//!    back to the same message, `f64`s compared by bit pattern.
//! 2. **Truncation fails closed.** Every proper prefix of a valid frame is
//!    either "wait for more bytes" (streaming) or a typed
//!    [`CodecError::Truncated`] (strict) — never a panic.
//! 3. **Corruption never panics.** A single-byte XOR anywhere decodes to a
//!    typed error or (only if the CRC colludes) some valid message;
//!    arbitrary garbage and garbage after a valid hello magic are
//!    rejected with typed errors.

use std::sync::OnceLock;

use oneshotstl_suite::fleet::net::{
    check_hello, decode_frame, decode_frame_exact, encode_frame, hello_bytes, MAX_FRAME,
};
use oneshotstl_suite::fleet::{
    AdmitOptions, CodecError, FleetConfig, FleetEngine, NetClient, NetError, NetMessage,
    NetServer, PeriodPolicy, Record, ScoredPoint, SeriesKey,
};
use oneshotstl_suite::tskit::DecompPoint;
use proptest::prelude::*;

use oneshotstl_suite::fleet::{FleetStats, PointOutput, ShardStats};

/// A frame that exercises every output tag — the corruption target.
fn canonical_frame() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        encode_frame(&NetMessage::Scored(vec![
            ScoredPoint {
                key: SeriesKey::new("tenant-0/cpu"),
                t: 41,
                value: 0.25,
                output: PointOutput::Warming { buffered: 12, needed: Some(36) },
            },
            ScoredPoint {
                key: SeriesKey::new("tenant-1/mem"),
                t: 42,
                value: -3.5,
                output: PointOutput::Scored {
                    point: DecompPoint { trend: 1.5, seasonal: -0.25, residual: 0.125 },
                    score: 6.5,
                    is_anomaly: true,
                },
            },
            ScoredPoint {
                key: SeriesKey::new("t"),
                t: 43,
                value: 0.0,
                output: PointOutput::Rejected,
            },
        ]))
    })
}

/// One canonical instance of every message type (the batch-roundtrip
/// property covers `IngestBatch` exhaustively; these pin the rest).
fn message_menu() -> Vec<NetMessage> {
    vec![
        NetMessage::IngestBatch(vec![Record::new("k", 0, 1.0)]),
        NetMessage::Forecast {
            keys: vec![SeriesKey::new("a"), SeriesKey::new("b")],
            horizon: 7,
        },
        NetMessage::Stats,
        NetMessage::SetAdmitOptions {
            key: SeriesKey::new("tuned"),
            opts: AdmitOptions { period: Some(48), nsigma: Some(4.0), ..Default::default() },
        },
        NetMessage::Scored(Vec::new()),
        NetMessage::ForecastReply(vec![None, Some(vec![1.0, -2.0]), Some(Vec::new())]),
        NetMessage::StatsReply(FleetStats {
            live: 3,
            points: 1234,
            anomalies: 5,
            shards: vec![ShardStats { shard: 1, live: 3, points: 1234, ..Default::default() }],
            ..Default::default()
        }),
        NetMessage::Done,
        NetMessage::Backpressure { shard: 2 },
        NetMessage::Error("a message".into()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn arbitrary_ingest_batches_roundtrip(
        seeds in prop::collection::vec(0u64..u64::MAX, 0usize..40),
        scale in 0.001f64..1000.0,
    ) {
        let records: Vec<Record> = seeds
            .iter()
            .map(|&seed| {
                // spread one seed over time, value, and key id
                let t = seed % 1_000_000;
                let v = ((seed >> 20) % 2001) as f64 - 1000.0;
                let k = (seed >> 40) % 20;
                Record::new(format!("series-{k}"), t, v * scale)
            })
            .collect();
        let msg = NetMessage::IngestBatch(records);
        let frame = encode_frame(&msg);
        prop_assert_eq!(decode_frame_exact(&frame).expect("own frame decodes"), msg);
    }

    #[test]
    fn every_message_type_roundtrips(pick in 0usize..10) {
        let msg = message_menu().swap_remove(pick % 10);
        let frame = encode_frame(&msg);
        let (decoded, used) = decode_frame(&frame).expect("valid frame").expect("complete");
        prop_assert_eq!(decoded, msg);
        prop_assert_eq!(used, frame.len());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn truncation_yields_typed_errors_never_panics(cut in 0usize..1_000_000) {
        let bytes = canonical_frame();
        let cut = cut % bytes.len(); // always a *proper* prefix
        // streaming contract: a prefix is "wait", never an error or panic
        prop_assert_eq!(decode_frame(&bytes[..cut]).expect("prefix never errors"), None);
        // strict contract: a prefix is the typed truncation error
        prop_assert_eq!(decode_frame_exact(&bytes[..cut]), Err(CodecError::Truncated));
    }

    #[test]
    fn single_byte_corruption_never_panics(pos in 0usize..1_000_000, flip in 1u32..256) {
        let mut bytes = canonical_frame().to_vec();
        let pos = pos % bytes.len();
        bytes[pos] ^= flip as u8;
        match decode_frame_exact(&bytes) {
            // only a CRC collusion could get here; the message must then
            // re-encode without panicking
            Ok(msg) => {
                let _ = encode_frame(&msg);
            }
            Err(
                CodecError::BadMagic
                | CodecError::UnsupportedVersion(_)
                | CodecError::Truncated
                | CodecError::Invalid(_),
            ) => {}
        }
    }

    #[test]
    fn garbage_frames_are_rejected(raw in prop::collection::vec(0u32..256, 8usize..96)) {
        let garbage: Vec<u8> = raw.into_iter().map(|x| x as u8).collect();
        // a random length prefix either overflows the cap (typed error),
        // declares more bytes than present (wait/truncated), or the CRC
        // check fires; the property is "typed result, no panic"
        match decode_frame(&garbage) {
            Ok(None) | Err(_) => {}
            Ok(Some(_)) => prop_assert!(false, "random bytes decoded to a frame"),
        }
    }

    #[test]
    fn garbage_after_valid_hello_magic_is_rejected(a in 0u32..256, b in 0u32..256) {
        let mut hello = hello_bytes();
        hello[8] = a as u8;
        hello[9] = b as u8;
        let v = u16::from_le_bytes([hello[8], hello[9]]);
        if v == 1 {
            prop_assert_eq!(check_hello(&hello), Ok(()));
        } else {
            prop_assert_eq!(check_hello(&hello), Err(CodecError::UnsupportedVersion(v)));
        }
    }
}

#[test]
fn oversized_length_prefix_is_rejected_before_allocation() {
    let mut frame = canonical_frame().to_vec();
    frame[..4].copy_from_slice(&(MAX_FRAME as u32 + 1).to_le_bytes());
    assert_eq!(decode_frame(&frame), Err(CodecError::Invalid("frame length")));
}

// -------------------------------------------------------------------------
// TCP loopback integration
// -------------------------------------------------------------------------

const PERIOD: usize = 12;

fn test_config(shards: usize) -> FleetConfig {
    FleetConfig { shards, period: PeriodPolicy::Fixed(PERIOD), ..Default::default() }
}

/// The same deterministic multi-series stream used in-process and over
/// the wire: seasonal waves with a spike injected late, so outputs cover
/// warming, scored, and anomalous points.
fn stream_batch(t: u64, n_series: usize) -> Vec<Record> {
    (0..n_series)
        .map(|s| {
            let w = 2.0 * std::f64::consts::PI * t as f64 / PERIOD as f64;
            let mut v =
                2.0 * (w + s as f64 * 0.37).sin() + 0.05 * (t as f64 * 13.7 + s as f64).sin();
            if t == 70 && s % 3 == 0 {
                v += 25.0; // spike: force anomalous verdicts
            }
            Record::new(format!("series-{s}"), t, v)
        })
        .collect()
}

/// Wire ingest must be **bit-identical** to in-process ingest: same
/// scored points (f64s compared by bit pattern via `PartialEq` on the
/// output enum), same stats, same forecasts — whether batches go one at
/// a time or pipelined through the client window.
#[test]
fn loopback_ingest_is_bit_identical_to_in_process() {
    let n_series = 6;
    let mut local = FleetEngine::new(test_config(2)).unwrap();
    let server = NetServer::serve("127.0.0.1:0", FleetEngine::new(test_config(2)).unwrap())
        .expect("serve");
    let mut client = NetClient::connect(server.local_addr()).expect("connect");

    // phase 1: synchronous round trips
    for t in 0..48u64 {
        let batch = stream_batch(t, n_series);
        let want = local.ingest(batch.clone()).unwrap();
        let got = client.ingest(batch).unwrap();
        assert_eq!(got, want, "batch {t} diverged over the wire");
    }

    // phase 2: pipelined submits; replies must come back in order
    let mut want_all: Vec<Vec<ScoredPoint>> = Vec::new();
    let mut got_all: Vec<Vec<ScoredPoint>> = Vec::new();
    for t in 48..90u64 {
        let batch = stream_batch(t, n_series);
        want_all.push(local.ingest(batch.clone()).unwrap());
        if let Some(scored) = client.submit(batch).unwrap() {
            got_all.push(scored);
        }
    }
    while let Some(scored) = client.drain().unwrap() {
        got_all.push(scored);
    }
    assert_eq!(got_all, want_all, "pipelined replies diverged or reordered");

    // the spike must actually have produced anomalies (the test would be
    // vacuous otherwise)
    assert!(want_all.iter().flatten().any(|p| p.is_anomaly()));

    // stats agree
    let want_stats = local.stats().unwrap();
    let got_stats = client.stats().unwrap();
    assert_eq!(got_stats, want_stats);
    assert_eq!(got_stats.points, 90 * n_series as u64);

    // forecasts agree, slot for slot
    let keys: Vec<SeriesKey> =
        (0..n_series).map(|s| SeriesKey::new(format!("series-{s}"))).collect();
    let want_fc = local.forecast(&keys, 8).unwrap();
    let got_fc = client.forecast(&keys, 8).unwrap();
    assert_eq!(got_fc, want_fc);
    assert!(got_fc.iter().any(|slot| slot.is_some()));

    server.shutdown();
}

/// Admission overrides registered over the wire behave exactly like
/// in-process ones: the tuned series admits with the overridden period
/// on both sides; re-tuning a live series fails remotely too.
#[test]
fn loopback_admit_options_match_in_process() {
    let opts = AdmitOptions { period: Some(6), ..Default::default() };
    let mut local = FleetEngine::new(test_config(1)).unwrap();
    let server = NetServer::serve("127.0.0.1:0", FleetEngine::new(test_config(1)).unwrap())
        .expect("serve");
    let mut client = NetClient::connect(server.local_addr()).expect("connect");

    local.set_admit_options("tuned", opts).unwrap();
    client.set_admit_options("tuned", opts).unwrap();
    for t in 0..30u64 {
        let v = (2.0 * std::f64::consts::PI * t as f64 / 6.0).sin();
        let batch = vec![Record::new("tuned", t, v)];
        let want = local.ingest(batch.clone()).unwrap();
        let got = client.ingest(batch).unwrap();
        assert_eq!(got, want);
    }
    // period 6 × 3 init cycles = 18 points: live well before t=30
    assert_eq!(client.stats().unwrap().live, 1);

    // tuning a live series is AlreadyAdmitted — as a typed remote error
    let err = client.set_admit_options("tuned", opts).unwrap_err();
    match err {
        NetError::Remote(msg) => assert!(msg.contains("already past admission"), "{msg}"),
        other => panic!("expected a remote error, got {other:?}"),
    }
    assert!(local.set_admit_options("tuned", opts).is_err());

    server.shutdown();
}

/// A second connection is served after the first disconnects, and the
/// engine state persists across connections.
#[test]
fn loopback_serves_sequential_connections() {
    let server = NetServer::serve("127.0.0.1:0", FleetEngine::new(test_config(1)).unwrap())
        .expect("serve");
    let addr = server.local_addr();
    {
        let mut c1 = NetClient::connect(addr).expect("first connect");
        for t in 0..10u64 {
            c1.ingest(vec![Record::new("k", t, t as f64)]).unwrap();
        }
    } // disconnect
    let mut c2 = NetClient::connect(addr).expect("second connect");
    let stats = c2.stats().unwrap();
    assert_eq!(stats.points, 10, "state must survive across connections");
    server.shutdown();
}
