//! Fleet engine integration: multi-series ingest through warm-up admission,
//! snapshot mid-stream, restore, and bit-identical continuation.

use oneshotstl_suite::fleet::{
    FleetConfig, FleetEngine, PeriodPolicy, PointOutput, Record, SeriesKey,
};
use oneshotstl_suite::tskit::synth::{gaussian_noise, inject, AnomalyKind, SeasonTemplate};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Length of every pre-generated per-series stream.
const STREAM_LEN: usize = 420;

/// Synthetic multi-series workload built from `tskit::synth` pieces:
/// a random seasonal template (period 24) + Gaussian noise per series,
/// with spikes injected into every 4th series' live region. Deterministic
/// per series index.
fn build_streams(n_series: usize) -> Vec<Vec<f64>> {
    (0..n_series)
        .map(|s| {
            let mut rng = StdRng::seed_from_u64(1000 + s as u64);
            let template = SeasonTemplate::random(24, 3, &mut rng);
            let mut y = template.render(STREAM_LEN, 2.0 + (s % 3) as f64);
            for (v, e) in y.iter_mut().zip(gaussian_noise(STREAM_LEN, 0.05, &mut rng)) {
                *v += e;
            }
            if s % 4 == 0 {
                let mut labels = vec![false; STREAM_LEN];
                let at = 150 + 11 * (s % 7);
                inject(&mut y, &mut labels, AnomalyKind::Spike, at, 1, 1.0, &mut rng);
            }
            y
        })
        .collect()
}

fn batch(streams: &[Vec<f64>], t: u64) -> Vec<Record> {
    streams
        .iter()
        .enumerate()
        .map(|(s, y)| Record::new(format!("series-{s}"), t, y[t as usize]))
        .collect()
}

fn config() -> FleetConfig {
    FleetConfig { shards: 3, period: PeriodPolicy::Fixed(24), ..Default::default() }
}

/// The headline guarantee: snapshot → restore → continue produces scores
/// bit-identical to the uninterrupted engine, point for point.
#[test]
fn snapshot_restore_is_bit_identical() {
    let n_series = 20;
    let warm = 100u64; // past init_len(24) = 72: every series is live
    let tail = 120u64;
    let streams = build_streams(n_series);

    // uninterrupted run
    let mut full = FleetEngine::new(config()).unwrap();
    for t in 0..warm {
        full.ingest(batch(&streams, t)).unwrap();
    }
    let mut full_outputs = Vec::new();
    for t in warm..warm + tail {
        full_outputs.push(full.ingest(batch(&streams, t)).unwrap());
    }

    // interrupted run: same prefix, snapshot, restore, same tail
    let mut first = FleetEngine::new(config()).unwrap();
    for t in 0..warm {
        first.ingest(batch(&streams, t)).unwrap();
    }
    let bytes = first.snapshot_bytes().unwrap();
    drop(first); // "crash"
    let mut restored = FleetEngine::restore_bytes(&bytes).unwrap();
    for (i, t) in (warm..warm + tail).enumerate() {
        let out = restored.ingest(batch(&streams, t)).unwrap();
        let reference = &full_outputs[i];
        assert_eq!(out.len(), reference.len());
        for (a, b) in out.iter().zip(reference) {
            assert_eq!(a.key, b.key);
            match (&a.output, &b.output) {
                (
                    PointOutput::Scored { point: pa, score: sa, is_anomaly: fa },
                    PointOutput::Scored { point: pb, score: sb, is_anomaly: fb },
                ) => {
                    // bit-identical, not approximately equal
                    assert_eq!(pa.trend.to_bits(), pb.trend.to_bits(), "{} t={t}", a.key);
                    assert_eq!(pa.seasonal.to_bits(), pb.seasonal.to_bits());
                    assert_eq!(pa.residual.to_bits(), pb.residual.to_bits());
                    assert_eq!(sa.to_bits(), sb.to_bits());
                    assert_eq!(fa, fb);
                }
                (oa, ob) => assert_eq!(oa, ob, "{} t={t}", a.key),
            }
        }
    }

    // counters carried across the restore
    let stats = restored.stats().unwrap();
    assert_eq!(stats.live, n_series);
    assert_eq!(stats.points, (warm + tail) * n_series as u64);
    assert_eq!(stats.admitted, n_series as u64);
}

/// Codec v5 carries the fused residual scorer's dynamic state (CUSUM
/// accumulators + peak-hold), not just the NSigma sums: a snapshot taken
/// *mid-excursion* — right after a level shift started, while the CUSUM
/// is charged and the peak-hold is decaying — must continue
/// bit-identically. (If restore zeroed any scorer field, the held score
/// of every following point would differ.)
#[test]
fn mid_excursion_scorer_state_survives_snapshot() {
    let period = 24usize;
    let warm = 100u64; // past init_len(24) = 72: the series is live
    let shift_at = 110u64; // the excursion is in flight at the snapshot…
    let snap_at = 115u64; // …and the accumulators are mid-charge here
    let tail = 150u64;
    let y: Vec<f64> = (0..(warm + tail) as usize)
        .map(|i| {
            let base = (2.0 * std::f64::consts::PI * i as f64 / period as f64).sin();
            // a sustained level shift: the adaptive trend absorbs it, so
            // only the CUSUM/hold state distinguishes the points after it
            base + if i as u64 >= shift_at { 2.5 } else { 0.0 }
        })
        .collect();
    let one = |t: u64| vec![Record::new("s", t, y[t as usize])];

    let mut full = FleetEngine::new(config()).unwrap();
    for t in 0..snap_at {
        full.ingest(one(t)).unwrap();
    }
    let bytes = full.snapshot_bytes().unwrap();
    let mut restored = FleetEngine::restore_bytes(&bytes).unwrap();
    let mut held_score_seen = false;
    for t in snap_at..warm + tail {
        let (a, b) = (full.ingest(one(t)).unwrap(), restored.ingest(one(t)).unwrap());
        match (&a[0].output, &b[0].output) {
            (
                PointOutput::Scored { score: sa, is_anomaly: fa, .. },
                PointOutput::Scored { score: sb, is_anomaly: fb, .. },
            ) => {
                assert_eq!(sa.to_bits(), sb.to_bits(), "held score diverged at t={t}");
                assert_eq!(fa, fb);
                if *sa > 1.0 {
                    held_score_seen = true;
                }
            }
            (oa, ob) => assert_eq!(oa, ob, "t={t}"),
        }
    }
    assert!(held_score_seen, "the excursion must actually exercise the fused path");
}

/// A snapshot can be restored onto a different shard count without
/// changing a single output bit (per-series state is shard-agnostic).
#[test]
fn restore_reshards_without_changing_scores() {
    let n_series = 12;
    let streams = build_streams(n_series);
    let mut a = FleetEngine::new(config()).unwrap();
    for t in 0..90 {
        a.ingest(batch(&streams, t)).unwrap();
    }
    let snap = a.snapshot().unwrap();
    let mut one = FleetEngine::restore_with_shards(snap.clone(), 1).unwrap();
    let mut eight = FleetEngine::restore_with_shards(snap, 8).unwrap();
    assert_eq!(one.shard_count(), 1);
    assert_eq!(eight.shard_count(), 8);
    for t in 90..160 {
        let oa = one.ingest(batch(&streams, t)).unwrap();
        let ob = eight.ingest(batch(&streams, t)).unwrap();
        for (x, y) in oa.iter().zip(&ob) {
            assert_eq!(x, y, "t={t}");
        }
    }
}

/// TTL eviction drops idle series and the engine readmits them on return.
#[test]
fn ttl_evicts_idle_series() {
    let mut engine = FleetEngine::new(FleetConfig {
        shards: 2,
        period: PeriodPolicy::Fixed(8),
        ttl: Some(50),
        ..Default::default()
    })
    .unwrap();
    let streams = build_streams(2);
    // two live series
    for t in 0..40 {
        engine.ingest(batch(&streams, t)).unwrap();
    }
    assert_eq!(engine.stats().unwrap().live, 2);
    // only series-0 keeps reporting
    for t in 40..400 {
        engine.ingest(vec![Record::new("series-0", t, streams[0][t as usize])]).unwrap();
    }
    let stats = engine.stats().unwrap();
    assert_eq!(stats.live, 1, "idle series should be TTL-evicted");
    assert_eq!(stats.evicted, 1);
    // the evicted series re-enters through warm-up
    let p = engine.ingest_one("series-1", 400, streams[1][400]).unwrap();
    assert!(matches!(p.output, PointOutput::Warming { buffered: 1, .. }));
}

/// A bounded clock step contains timestamp poisoning: one absurd `t` must
/// not let the next TTL sweep evict the whole fleet.
#[test]
fn bounded_clock_step_contains_timestamp_poisoning() {
    let streams = build_streams(3);
    let mut engine = FleetEngine::new(FleetConfig {
        shards: 2,
        period: PeriodPolicy::Fixed(8),
        ttl: Some(100),
        max_clock_step: Some(10),
        ..Default::default()
    })
    .unwrap();
    for t in 0..64 {
        engine.ingest(batch(&streams, t)).unwrap();
    }
    assert_eq!(engine.stats().unwrap().live, 3);
    // a poisoned record claims t ~ milliseconds-epoch; the clock may only
    // advance by 10 per record, so the healthy series stay inside the TTL
    engine.ingest(vec![Record::new("poison", 1_700_000_000_000, 1.0)]).unwrap();
    assert!(engine.clock() <= 64 + 10, "clock jump must be bounded, got {}", engine.clock());
    for t in 64..200 {
        engine.ingest(batch(&streams, t)).unwrap();
    }
    let stats = engine.stats().unwrap();
    assert_eq!(stats.live, 3, "healthy series must survive the poisoned timestamp");
    // the poisoned series itself ages out normally (its liveness clock is
    // clamped too), so exactly one eviction: the poison, never the fleet
    assert_eq!(stats.evicted, 1);
}

/// A future-dated record must not make its own series immune to TTL
/// eviction: liveness tracking uses the clamped clock, not the raw `t`.
#[test]
fn poisoned_series_itself_is_still_evictable() {
    let streams = build_streams(1);
    let mut engine = FleetEngine::new(FleetConfig {
        shards: 2,
        period: PeriodPolicy::Fixed(8),
        ttl: Some(100),
        max_clock_step: Some(10),
        ..Default::default()
    })
    .unwrap();
    engine.ingest(vec![Record::new("poison", u64::MAX, 1.0)]).unwrap();
    // keep the healthy series reporting long enough for sweeps to run
    for t in 0..400 {
        engine.ingest(vec![Record::new("series-0", t, streams[0][t as usize])]).unwrap();
    }
    let stats = engine.stats().unwrap();
    assert_eq!(stats.live + stats.warming, 1, "poisoned series must be evicted");
    assert_eq!(stats.evicted, 1);
}

/// A well-formed snapshot with a corrupted step counter must fail at
/// restore, not panic a shard worker on the next update.
#[test]
fn corrupted_step_counter_fails_at_restore() {
    let streams = build_streams(1);
    let mut engine = FleetEngine::new(config()).unwrap();
    for t in 0..100 {
        engine.ingest(vec![Record::new("series-0", t, streams[0][t as usize])]).unwrap();
    }
    let mut snap = engine.snapshot().unwrap();
    match &mut snap.series[0].phase {
        oneshotstl_suite::fleet::series::PhaseSnapshot::Live { decomposer, .. } => {
            decomposer.m += 1; // bit-flip-style corruption
        }
        other => panic!("expected a live series, got {other:?}"),
    }
    assert!(FleetEngine::restore(snap).is_err());
}

/// Period detection admits an undeclared-period series; white noise hits
/// the warm-up cap and is rejected when no fallback is configured.
#[test]
fn detect_admission_and_noise_rejection() {
    let mut engine = FleetEngine::new(FleetConfig {
        shards: 2,
        period: PeriodPolicy::Detect {
            min_period: 4,
            max_period: 64,
            // a high bar: white noise ACF is ~N(0, n^{-1/2}), so 0.6 keeps
            // spurious small-buffer detections out
            min_acf: 0.6,
            fallback: None,
        },
        max_warmup: Some(150),
        ..Default::default()
    })
    .unwrap();
    let mut rng = StdRng::seed_from_u64(17);
    let mut seasonal_live = false;
    let mut noise_rejected = false;
    for t in 0..300u64 {
        let seasonal = (2.0 * std::f64::consts::PI * t as f64 / 16.0).sin();
        let noise: f64 = rng.gen_range(-1.0..1.0);
        let out = engine
            .ingest(vec![Record::new("seasonal", t, seasonal), Record::new("noise", t, noise)])
            .unwrap();
        if matches!(out[0].output, PointOutput::Scored { .. }) {
            seasonal_live = true;
        }
        if matches!(out[1].output, PointOutput::Rejected) {
            noise_rejected = true;
        }
    }
    assert!(seasonal_live, "seasonal series should be detected and admitted");
    assert!(noise_rejected, "noise series should overflow warm-up and be rejected");
    let stats = engine.stats().unwrap();
    assert_eq!(stats.live, 1);
    assert_eq!(stats.rejected, 1);
    // period detection found T=16: the forecast is periodic
    let f =
        engine.forecast_one(&"seasonal".into(), 32).unwrap().expect("live series forecasts");
    for i in 0..16 {
        assert!((f[i] - f[i + 16]).abs() < 1e-9, "forecast repeats with T=16");
    }
    // the batch API returns one slot per key, in request order: the
    // rejected series and an unknown key answer None
    let keys = [SeriesKey::new("noise"), SeriesKey::new("seasonal"), SeriesKey::new("ghost")];
    let batch = engine.forecast(&keys, 4).unwrap();
    assert_eq!(batch.len(), 3);
    assert!(batch[0].is_none(), "rejected series does not forecast");
    assert_eq!(batch[1].as_deref(), Some(&f[..4]), "batch agrees with forecast_one");
    assert!(batch[2].is_none(), "unknown key does not forecast");
}

/// Per-series `AdmitOptions` shape admission (declared period, tighter
/// NSigma, exhaustive shift search) and survive snapshot v4 → restore
/// bit-identically — including overrides still pending on a warming
/// series at snapshot time.
#[test]
fn admit_options_survive_snapshot_and_shape_admission() {
    use oneshotstl_suite::core::{Fusion, ScoreConfig, ShiftSearchConfig};
    use oneshotstl_suite::fleet::{AdmitOptions, BackendSelect, DampOptions, ForecastOptions};

    let n_ticks = 160u64;
    // two streams: "std" follows the engine's fixed period 24, "vip" is a
    // period-12 signal the engine would mis-model without the override
    let value = |key: &str, t: u64| -> f64 {
        let period = if key == "vip" { 12.0 } else { 24.0 };
        (2.0 * std::f64::consts::PI * t as f64 / period).sin() + 0.001 * t as f64
    };
    let tick = |t: u64| -> Vec<Record> {
        vec![Record::new("std", t, value("std", t)), Record::new("vip", t, value("vip", t))]
    };
    let opts = AdmitOptions {
        lambda: Some(0.5),
        nsigma: Some(3.5),
        period: Some(12),
        shift_search: Some(ShiftSearchConfig::exhaustive()),
        score: Some(ScoreConfig {
            cusum_k: 0.4,
            cusum_h: 5.0,
            hold_decay: 0.95,
            fusion: Fusion::Cusum,
        }),
        // a forecast-head override rides the same snapshot path (codec v6)
        forecast: Some(ForecastOptions { error_window: 32, ..ForecastOptions::on() }),
        // and so does a detection-backend override (codec v7)
        backend: Some(BackendSelect::Damp(DampOptions { window: 64, subseq: 0 })),
    };

    // uninterrupted reference
    let mut reference = FleetEngine::new(config()).unwrap();
    reference.set_admit_options("vip", opts).unwrap();
    let mut ref_outputs = Vec::new();
    let mut vip_admitted_at = None;
    for t in 0..n_ticks {
        let out = reference.ingest(tick(t)).unwrap();
        if vip_admitted_at.is_none() && matches!(out[1].output, PointOutput::Scored { .. }) {
            vip_admitted_at = Some(t);
        }
        ref_outputs.push(out);
    }
    // the declared period 12 admits at init_len(12) = 36 — half the
    // engine-default warm-up (init_len(24) = 72), proving the override
    // reached the admission path (scoring starts one tick after promote)
    assert_eq!(vip_admitted_at, Some(36), "override period must set the warm-up length");

    // interrupted run: snapshot while "vip"'s overrides are still pending
    // (t = 20 < 36), restore, continue — bit-identical to the reference
    let mut first = FleetEngine::new(config()).unwrap();
    first.set_admit_options("vip", opts).unwrap();
    for t in 0..20 {
        first.ingest(tick(t)).unwrap();
    }
    let bytes = first.snapshot_bytes().unwrap();
    drop(first);
    let mut restored = FleetEngine::restore_bytes(&bytes).unwrap();
    for t in 20..n_ticks {
        let out = restored.ingest(tick(t)).unwrap();
        assert_eq!(out, ref_outputs[t as usize], "restored stream diverged at t={t}");
    }

    // the tuning window closes at admission: both the live "vip" and the
    // live "std" series reject further overrides with a typed error
    for key in ["vip", "std"] {
        match restored.set_admit_options(key, AdmitOptions::default()) {
            Err(oneshotstl_suite::fleet::FleetError::AlreadyAdmitted { key: k }) => {
                assert_eq!(k.as_str(), key)
            }
            other => panic!("expected AlreadyAdmitted for {key}, got {other:?}"),
        }
    }

    // registering options for an unseen key pre-creates the series, and
    // invalid overrides are rejected up front
    restored
        .set_admit_options("future", AdmitOptions { period: Some(12), ..Default::default() })
        .unwrap();
    assert_eq!(restored.stats().unwrap().warming, 1);
    assert!(restored
        .set_admit_options("bad", AdmitOptions { period: Some(1), ..Default::default() })
        .is_err());
    assert!(restored
        .set_admit_options("bad", AdmitOptions { nsigma: Some(-1.0), ..Default::default() })
        .is_err());
}

/// Replacing a pending override set mid-warm-up must leave the live
/// warm-up and its restored twin in the same state: a period override
/// replaced by a nsigma-only set reverts to the engine's declared period
/// on *both* sides (any other rule lets them admit under different
/// periods and diverge).
#[test]
fn replacing_overrides_keeps_live_and_restored_warmups_in_lockstep() {
    use oneshotstl_suite::fleet::AdmitOptions;

    let mut live = FleetEngine::new(config()).unwrap(); // Fixed(24)
    live.set_admit_options("vip", AdmitOptions { period: Some(12), ..Default::default() })
        .unwrap();
    // replace with a nsigma-only set: the period override is withdrawn
    live.set_admit_options("vip", AdmitOptions { nsigma: Some(3.5), ..Default::default() })
        .unwrap();
    let mut restored = FleetEngine::restore_bytes(&live.snapshot_bytes().unwrap()).unwrap();
    let mut admitted_at = None;
    for t in 0..120u64 {
        let v = (2.0 * std::f64::consts::PI * t as f64 / 24.0).sin();
        let a = live.ingest_one("vip", t, v).unwrap();
        let b = restored.ingest_one("vip", t, v).unwrap();
        assert_eq!(a, b, "live and restored warm-ups diverged at t={t}");
        if admitted_at.is_none() && matches!(a.output, PointOutput::Scored { .. }) {
            admitted_at = Some(t);
        }
    }
    assert_eq!(
        admitted_at,
        Some(72),
        "withdrawing the override reverts to the declared period"
    );
}

/// Codec v6 carries each live series' forecast head: the pending one-step
/// prediction awaiting its truth and the rolling error tracker rings. A
/// snapshot taken while trackers are charged must continue bit-identically
/// on both channels — the scoring stream (error fusion folds tracker state
/// into verdicts) and the forecasts themselves — and a later snapshot of
/// the restored engine must be byte-identical to the uninterrupted one's.
#[test]
fn forecast_state_survives_snapshot_bit_identically() {
    use oneshotstl_suite::fleet::ForecastOptions;

    let n_series = 12;
    let warm = 100u64; // past init_len(24) = 72: every series is live
    let tail = 80u64;
    let streams = build_streams(n_series);
    let cfg = || FleetConfig {
        forecast: ForecastOptions {
            enabled: true,
            damping: 0.9,
            error_window: 24,
            error_fusion: true,
            smape_alarm: 1.5,
        },
        ..config()
    };
    let keys: Vec<SeriesKey> =
        (0..n_series).map(|s| SeriesKey::new(format!("series-{s}"))).collect();

    // uninterrupted run
    let mut full = FleetEngine::new(cfg()).unwrap();
    for t in 0..warm {
        full.ingest(batch(&streams, t)).unwrap();
    }
    // interrupted run: same prefix, snapshot, restore
    let mut first = FleetEngine::new(cfg()).unwrap();
    for t in 0..warm {
        first.ingest(batch(&streams, t)).unwrap();
    }
    let bytes = first.snapshot_bytes().unwrap();
    drop(first); // "crash"
    let mut restored = FleetEngine::restore_bytes(&bytes).unwrap();

    // the pending prediction survived: forecasts agree before any new point
    let fa = full.forecast(&keys, 48).unwrap();
    let fb = restored.forecast(&keys, 48).unwrap();
    for (s, (a, b)) in fa.iter().zip(&fb).enumerate() {
        let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.to_bits(), y.to_bits(), "series-{s}: restored forecast differs");
        }
    }

    // …and the continuation agrees point for point, forecast for forecast
    for t in warm..warm + tail {
        let oa = full.ingest(batch(&streams, t)).unwrap();
        let ob = restored.ingest(batch(&streams, t)).unwrap();
        for (a, b) in oa.iter().zip(&ob) {
            assert_eq!(a.output, b.output, "{} t={t}", a.key);
        }
        if t % 16 == 0 {
            let fa = full.forecast(&keys, 24).unwrap();
            let fb = restored.forecast(&keys, 24).unwrap();
            assert_eq!(fa, fb, "forecast streams diverged at t={t}");
        }
    }

    // the strongest form: a later snapshot of the restored engine is
    // byte-identical to the uninterrupted engine's (tracker rings, ring
    // cursors, alarm-independent state — everything)
    assert_eq!(full.snapshot_bytes().unwrap(), restored.snapshot_bytes().unwrap());
}

/// The stats-counter snapshot contract. Lifetime counters (`points`,
/// `anomalies`, `admitted`, `evicted`) carry across a snapshot/restore;
/// the diagnostic counters (`shift_searches`, `shift_trials`, `z_alarms`,
/// `cusum_alarms`, `forecast_alarms`, and the per-backend `damp_alarms` /
/// `trend_alarms`) are documented as *not serialized* — they reset on
/// restore and then accumulate in lockstep with the reference: because
/// the continuation is bit-identical, the restored engine's diagnostic
/// counts at the end must equal exactly the alarms the reference fired
/// *after* the snapshot point.
#[test]
fn stats_counters_obey_the_snapshot_contract() {
    use oneshotstl_suite::fleet::{
        AdmitOptions, BackendSelect, DampOptions, EnsembleOptions, ForecastOptions,
    };

    let n_series = 6;
    let mid = 170u64;
    let total = 340u64;
    let mut streams = build_streams(n_series);
    // spikes on both sides of the snapshot so every alarm channel has
    // counts to lose at restore and counts to re-accumulate afterwards;
    // irregular spacing/sign/size so DAMP sees genuine discords rather
    // than a repeating (self-matching) spike motif
    for y in streams.iter_mut() {
        for (at, delta) in
            [(141usize, 3.5), (157, -4.5), (216, 5.0), (233, -6.0), (262, 4.0), (301, 7.0)]
        {
            y[at] += delta;
        }
    }

    let opts: [AdmitOptions; 4] = [
        // series-0: DAMP backend (damp_alarms). The z bar sits *below*
        // DAMP's steady discord-distance range (~0.9-1.2σ here): the
        // bsf prune caps how far distances stray from their mean, so a
        // conventional 3σ bar would never trip on this workload — the
        // test needs alarms on both sides of the snapshot, not a tuned
        // detector
        AdmitOptions {
            nsigma: Some(0.9),
            backend: Some(BackendSelect::Damp(DampOptions { window: 128, subseq: 8 })),
            ..Default::default()
        },
        // series-1: ensemble — moves damp_alarms *and* trend_alarms
        AdmitOptions {
            nsigma: Some(0.9),
            backend: Some(BackendSelect::Ensemble(EnsembleOptions {
                damp: DampOptions { window: 128, subseq: 8 },
                ..Default::default()
            })),
            ..Default::default()
        },
        // series-2: trend-innovation CUSUM (trend_alarms)
        AdmitOptions {
            backend: Some(BackendSelect::TrendCusum(Default::default())),
            ..Default::default()
        },
        // series-3: forecast head (forecast_alarms)
        AdmitOptions { forecast: Some(ForecastOptions::on()), ..Default::default() },
    ];

    // uninterrupted reference, with its counters read at the snapshot point
    let mut reference = FleetEngine::new(config()).unwrap();
    for (s, o) in opts.iter().enumerate() {
        reference.set_admit_options(format!("series-{s}"), *o).unwrap();
    }
    let mut ref_outputs = Vec::new();
    let mut ref_mid = None;
    for t in 0..total {
        ref_outputs.push(reference.ingest(batch(&streams, t)).unwrap());
        if t + 1 == mid {
            ref_mid = Some(reference.stats().unwrap());
        }
    }
    let ref_mid = ref_mid.unwrap();
    let ref_end = reference.stats().unwrap();

    // the channels under test actually fired on both sides of `mid`
    assert!(ref_mid.z_alarms > 0, "pre-snapshot z alarms: {ref_mid:?}");
    assert!(ref_end.damp_alarms > 0, "DAMP backend never alarmed: {ref_end:?}");
    assert!(ref_end.trend_alarms > 0, "trend backend never alarmed: {ref_end:?}");

    // interrupted run: snapshot at `mid`, restore, continue bit-identically
    let mut first = FleetEngine::new(config()).unwrap();
    for (s, o) in opts.iter().enumerate() {
        first.set_admit_options(format!("series-{s}"), *o).unwrap();
    }
    for t in 0..mid {
        first.ingest(batch(&streams, t)).unwrap();
    }
    let bytes = first.snapshot_bytes().unwrap();
    drop(first);
    let mut restored = FleetEngine::restore_bytes(&bytes).unwrap();
    for t in mid..total {
        let out = restored.ingest(batch(&streams, t)).unwrap();
        assert_eq!(out, ref_outputs[t as usize], "restored stream diverged at t={t}");
    }
    let got = restored.stats().unwrap();

    // lifetime counters carried across the snapshot
    assert_eq!(got.points, ref_end.points);
    assert_eq!(got.anomalies, ref_end.anomalies);
    assert_eq!(got.admitted, ref_end.admitted);
    assert_eq!(got.evicted, ref_end.evicted);

    // diagnostic counters reset at restore, then tracked the reference's
    // post-snapshot increments exactly
    assert_eq!(got.shift_searches, ref_end.shift_searches - ref_mid.shift_searches);
    assert_eq!(got.shift_trials, ref_end.shift_trials - ref_mid.shift_trials);
    assert_eq!(got.z_alarms, ref_end.z_alarms - ref_mid.z_alarms);
    assert_eq!(got.cusum_alarms, ref_end.cusum_alarms - ref_mid.cusum_alarms);
    assert_eq!(got.forecast_alarms, ref_end.forecast_alarms - ref_mid.forecast_alarms);
    assert_eq!(got.damp_alarms, ref_end.damp_alarms - ref_mid.damp_alarms);
    assert_eq!(got.trend_alarms, ref_end.trend_alarms - ref_mid.trend_alarms);
    assert!(got.damp_alarms > 0, "no post-snapshot DAMP alarms to track: {got:?}");
    assert!(got.trend_alarms > 0, "no post-snapshot trend alarms to track: {got:?}");

    // v8 health counters are lifetime counters: carried across the
    // snapshot (zero on a healthy run; nonzero carry is pinned by
    // tests/fleet_faults.rs)
    assert_eq!(got.wal_retries, ref_end.wal_retries);
    assert_eq!(got.shard_restarts, ref_end.shard_restarts);
    assert_eq!(got.undurable_batches, ref_end.undurable_batches);
    assert_eq!(got.quarantined, 0, "healthy restore quarantines nothing");

    // and the backend-bearing fleet's later snapshot is byte-identical to
    // the uninterrupted engine's — counters aside, no state was dropped
    assert_eq!(reference.snapshot_bytes().unwrap(), restored.snapshot_bytes().unwrap());
}

/// Codec v8 read-compatibility, pinned at the *integration* level with a
/// hand-encoded byte blob (not re-encoded by this build's writer): a v8
/// fleet snapshot — live series with untagged f64 state vectors, a
/// quarantined tombstone, the seven v8 lifetime counters, a config tail
/// without the v9 compression/spill fields — must restore through the
/// public API and continue scoring bit-identically to an uninterrupted
/// detector fed the same stream. If the v9 decoder's version gates drift,
/// this blob is the tripwire no unit-level round-trip can replace.
#[test]
fn pinned_v8_snapshot_blob_restores_and_continues_bit_identically() {
    use oneshotstl_suite::core::{
        OneShotStl, OneShotStlConfig, ScoreConfig, StdAnomalyDetector,
    };

    // generated by the v8 writer of commit history past: config
    // fixed_period(12), clock 95, batches 96, totals {1,2,300,4,5,6,7},
    // series "live" (t=12 sine, 96 points through init+update) and "q"
    // (quarantined, cause Panic, 11 dropped)
    const V8_BLOB_HEX: &str = concat!(
        "4f5353544c464c540800000400000003000000000c0000000000000000000014400000000000",
        "000000000059400000000000005940000000000000f03f080000001400000000000000000014",
        "4000000000000000e03f00bbbdd7d9df7cdb3d010400000002000000000000e03f0000000000",
        "001840ae47e17a14aeef3f00000000000000f03f4000000000000000000000f83f005f000000",
        "000000006000000000000000010000000000000002000000000000002c010000000000000400",
        "0000000000000500000000000000060000000000000007000000000000000200000000000000",
        "040000006c6976655f0000000000000001000000000000594000000000000059400000000000",
        "00f03f0800000014000000000000000000144000000000000000e03f00bbbdd7d9df7cdb3d01",
        "040000000c000000000000006000000000000000300000000000000000000000000000000c00",
        "000000000000a975fb3e06eef53e41479d892a00e03f0909deaea4b6eb3f067ee5fa1c00f03f",
        "41770e65b0b6eb3f88c9ce213400e03f24df0c193890f93e8c2dad719bffdfbf65b7d66349b6",
        "ebbfdde4cc58d0ffefbf47dee14c4cb6ebbf773bc8b7a4ffdfbf52b3a7178549e43f08000000",
        "0000f03ff50758ed4cb6ebbf2d85ce27a7ffdfbf080000000130000000000000002000000000",
        "000000000000000000f03f00000000000000000000000000000000000000000000000063d557",
        "14ca2b6d3f000000000000f03f00000000000000000000000000000000cb2b1abd38fff4bfb2",
        "ff491fcf08e53f000000000000f03f0000000000000000000000000000000000000000000000",
        "001c5704e7872b6d3f000000000000f03fb59ee4df35cad63f831f5ad69dd4c6bf6cf6380017",
        "fff4bfcb52373dad08e53f000000000000000000000000000000000000000000000000000000",
        "0000000000000000000000000000000000000000000e647b2c02cad63f0377aff369d4c6bf00",
        "0000000000000000000000000000000000000000000000000000000000000004000000000000",
        "005ded42b6388d714015d4f51a6af1ff3f4441e087608d7140d47d0c3c6af1ff3f0400000000",
        "0000004c870b8190933140f6fb642df6dad2bf117a4eff91733140c0a80840dffce1bf000000",
        "000000f03f000000000000f03f000000000000f03f000000000000f03fdc4aa68fe8fff73fea",
        "9d15a5e8fff73f0130000000000000002000000000000000000000000000f03f000000000000",
        "000000000000000000000000000000000000cd0b2ae93398fd3d000000000000f03f00000000",
        "000000000000000000000000177144c68518f5bfa7f357c68518e53f000000000000f03f0000",
        "000000000000000000000000000000000000000000001bcbbaf99adcf53d000000000000f03f",
        "016d4c2e1762d43fd9465f2e1762c4bf6b3b682f2533f5bf22b7762f2533e53f000000000000",
        "0000000000000000000000000000000000000000000000000000000000000000000000000000",
        "00000000f6d698ca94ccd43f9b0ca7ca94ccc4bf000000000000000000000000000000000000",
        "00000000000000000000000000000400000000000000d9d984bcec4ce141cc67e2ffffffff3f",
        "382a544a7f6be7416523eaffffffff3f0400000000000000af41e01a4bff50405788c47a08b3",
        "cdbf043504c554f84b409b6be624a0ffdfbfd646486b77db6e410766ce04e6e257412ed8766e",
        "0a365c41e487167a0c7c6341737a3c5f3dfff73fa7dae70541fff73f01300000000000000020",
        "00000000000000000000000000f03f0000000000000000000000000000000000000000000000",
        "00a75c5bd49a3b2b3e000000000000f03f000000000000000000000000000000006442544071",
        "5bfcbf2f521541715bec3f000000000000f03f00000000000000000000000000000000000000",
        "0000000000f9b341c0073e133e000000000000f03fd2be225de3b6e83f9701cb5de3b6d8bf31",
        "ef1262cbc0febf88e75c62cbc0ee3f0000000000000000000000000000000000000000000000",
        "000000000000000000000000000000000000000000000000000b71340e9781ed3f9a697b0e97",
        "81ddbf0000000000000000000000000000000000000000000000000000000000000000040000",
        "0000000000d607089a03cdb241292326ffffffff3f3b621b5ea89bca41e107b3ffffffff3f04",
        "00000000000000f3cc58f1ed2d68402e53d6600db3cdbfd90224556ff766406492c1eea0ffdf",
        "bf8bcc0c118a3a01413ba9442079870141e905b310089642411900acca72675f41c7a5bbe2e6",
        "fff73fc7fb5ef5e6fff73f0130000000000000002000000000000000000000000000f03f0000",
        "000000000000000000000000000000000000000000005c576efb4ead023e000000000000f03f",
        "000000000000000000000000000000009936f30f0ca5f7bf64d00e100ca5e73f000000000000",
        "f03f0000000000000000000000000000000000000000000000007f4a78c0f58ff43d00000000",
        "0000f03f92823e503094de3f833462503094cebfb4ee0a9ae7b2f6bfa384199ae7b2e63f0000",
        "0000000000000000000000000000000000000000000000000000000000000000000000000000",
        "0000000000000000a51bf8739ecbda3f745309749ecbcabf0000000000000000000000000000",
        "0000000000000000000000000000000000000400000000000000bfa6f4a2d569db4162a5daff",
        "ffffff3f6effdee35ee6e8410a70ebffffffff3f0400000000000000ed8aa81296b2444027eb",
        "356c08b3cdbf3f9162fdac0a4b40bef42a23a0ffdfbfed9aec36f64c6c4120b117a580785b41",
        "e58e2ca9f2c36041c3cb6b2726b06a41cc7af0c30100f83f9f04572c0100f83f013000000000",
        "0000002000000000000000000000000000f03f00000000000000000000000000000000000000",
        "000000000037ab238bba2e313e000000000000f03f0000000000000000000000000000000013",
        "5a90fb7d1df7bfd4f056fc7d1de73f000000000000f03f000000000000000000000000000000",
        "000000000000000000434e8ce206ff223e000000000000f03fa3036099f875dc3f5d87549af8",
        "75ccbf9e7c10bdda03f9bfd84887bdda03e93f00000000000000000000000000000000000000",
        "00000000000000000000000000000000000000000000000000000000005005ccaab507e23f8c",
        "a521abb507d2bf00000000000000000000000000000000000000000000000000000000000000",
        "0004000000000000002d39c41936ccad415714edfeffffff3f5f2b811fe8f3ba41c90768ffff",
        "ffff3f040000000000000011113087af714d405741d0350ab3cdbf03131494863e4e40ea446c",
        "a1a0ffdfbfb30b66df19b4344126cca7bdc0042b41a0be658b1af6304103ccc7a33e704341aa",
        "567b010e00f83fc609bc440d00f83f0130000000000000002000000000000000000000000000",
        "f03f000000000000000000000000000000000000000000000000a9e3c148abd7133e00000000",
        "0000f03f00000000000000000000000000000000b0063e91cab2fcbffc348591cab2ec3f0000",
        "00000000f03f0000000000000000000000000000000000000000000000003f479b50ab4d0c3e",
        "000000000000f03ff19ba74f9565e93fdd99e64f9565d9bf87c3e3e77f41fdbf2b8417e87f41",
        "ed3f000000000000000000000000000000000000000000000000000000000000000000000000",
        "000000000000000000000000136d90f3ff82ea3f0653bff3ff82dabf00000000000000000000",
        "000000000000000000000000000000000000000000000400000000000000fa5e002aa2cdc941",
        "53a1b0ffffffff3f369eb6bdf616d241a964c7ffffffff3f04000000000000001b7b0c72c619",
        "5b403ef8c24809b3cdbff57958f600185e4016d0427ca0ffdfbfc6dd98469b4424412b54a331",
        "73b325411b3b22087b365a411caaaa06fe2e63414c833690f9fff73f7bfd3142f9fff73f0130",
        "000000000000002000000000000000000000000000f03f000000000000000000000000000000",
        "000000000000000000fdd42a03f202ef3d000000000000f03f00000000000000000000000000",
        "0000008b4dcb2fd270febf970dda2fd270ee3f000000000000f03f0000000000000000000000",
        "00000000000000000000000000ea98a1116787103e000000000000f03f02bc366aa4e1ec3fa2",
        "ba446aa4e1dcbf6db006a74f02f8bf674b38a74f02e83f000000000000000000000000000000",
        "0000000000000000000000000000000000000000000000000000000000000000004845d9829f",
        "04e03fa35dfa829f04d0bf000000000000000000000000000000000000000000000000000000",
        "00000000000400000000000000871cb7758f82f041877ef0ffffffff3f61fcee42dcf9ce4164",
        "e2bdffffffff3f0400000000000000ccbcd4f97a5660409dd7387b08b3cdbfe4142fa1340a63",
        "405d4c25afa0ffdfbf1baadf1737ba3341d98d27721e403a4154a9a304c31283419c15ebbed6",
        "d85341729b8736eafff73f9cf8eb27eafff73f01300000000000000020000000000000000000",
        "00000000f03f0000000000000000000000000000000000000000000000006cc4e19d977ffe3d",
        "000000000000f03f00000000000000000000000000000000ebd0b69ced95fbbf781bd19ced95",
        "eb3f000000000000f03f000000000000000000000000000000000000000000000000a437e4d7",
        "3ea3f23d000000000000f03f65da2a42db2be73fe7ef4042db2bd7bfdc4d9413c51cfbbf5b18",
        "a413c51ceb3f0000000000000000000000000000000000000000000000000000000000000000",
        "000000000000000000000000000000006c0f652e8a39e63f2b01722e8a39d6bf000000000000",
        "00000000000000000000000000000000000000000000000000000400000000000000197615c4",
        "aac9e0416880e1ffffffff3f9737bcc6a278eb41c15cedffffffff3f04000000000000009deb",
        "8e9228134b40ed8b7f6f08b3cdbfa13dbf70c9625240785a3527a0ffdfbf3b0fceac63cb5941",
        "d4a08ebb52866141b64f61889b1e6f41b2170774f26b7841f5b30962e8fff73f787cf091e8ff",
        "f73f00000000000014406000000000000000c96f060a9b34323f50914fcd8172443e01020000",
        "00000000e03f0000000000001840ae47e17a14aeef3f00000000000014406000000000000000",
        "c96f060a9b34323f50914fcd8172443e00000000000000000000000000000000785c17c257b4",
        "394000000100000071050000000000000003010b00000000000000",
    );
    let bytes: Vec<u8> = (0..V8_BLOB_HEX.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&V8_BLOB_HEX[i..i + 2], 16).unwrap())
        .collect();

    let mut restored = FleetEngine::restore_bytes(&bytes).expect("v8 blob must decode");
    let stats = restored.stats().unwrap();
    assert_eq!(stats.live, 1);
    assert_eq!(stats.quarantined, 1);
    assert_eq!((stats.evicted, stats.admitted), (1, 2), "v8 lifetime counters carried");
    assert_eq!((stats.points, stats.anomalies), (300, 4));
    assert_eq!(stats.wal_retries, 5, "v8 health counters carried");
    assert_eq!(stats.shard_restarts, 6);
    assert_eq!(stats.undurable_batches, 7);
    assert_eq!(stats.cold_resident, 0, "pre-cold-tier snapshots carry no cold state");
    assert_eq!((stats.spills, stats.rehydrations, stats.cold_errors), (0, 0, 0));

    // rebuild the blob's detector through the public API and continue the
    // twin streams: the v8-restored engine must track it bit for bit
    let t = 12usize;
    let y: Vec<f64> = (0..8 * t)
        .map(|i| 1.5 + (2.0 * std::f64::consts::PI * i as f64 / t as f64).sin())
        .collect();
    let mut twin = StdAnomalyDetector::with_score(
        OneShotStl::new(OneShotStlConfig::default()),
        5.0,
        ScoreConfig::default(),
    );
    twin.init(&y[..4 * t], t).unwrap();
    for &v in &y[4 * t..] {
        twin.update_scored(v);
    }
    for i in 0..3 * t {
        let x = 1.5
            + (2.0 * std::f64::consts::PI * i as f64 / t as f64).sin()
            + if i == t { 4.0 } else { 0.0 };
        let (pt, vt) = twin.update_scored(x);
        let out = restored.ingest_one("live", 96 + i as u64, x).unwrap();
        match &out.output {
            PointOutput::Scored { point, score, is_anomaly } => {
                assert_eq!(point.residual.to_bits(), pt.residual.to_bits(), "i={i}");
                assert_eq!(point.trend.to_bits(), pt.trend.to_bits(), "i={i}");
                assert_eq!(point.seasonal.to_bits(), pt.seasonal.to_bits(), "i={i}");
                assert_eq!(score.to_bits(), vt.score.to_bits(), "i={i}");
                assert_eq!(*is_anomaly, vt.is_anomaly, "i={i}");
            }
            other => panic!("live series must score, got {other:?} at i={i}"),
        }
    }

    // upgrade-on-rewrite: the v8 image re-snapshots as v9 and the copy
    // continues in lockstep with the original
    let v9_bytes = restored.snapshot_bytes().unwrap();
    let mut upgraded = FleetEngine::restore_bytes(&v9_bytes).unwrap();
    for i in 0..t {
        let x = 1.5 + (2.0 * std::f64::consts::PI * i as f64 / t as f64).sin();
        let a = restored.ingest_one("live", 200 + i as u64, x).unwrap();
        let b = upgraded.ingest_one("live", 200 + i as u64, x).unwrap();
        assert_eq!(a.output, b.output, "v9 rewrite diverged at i={i}");
    }
}
