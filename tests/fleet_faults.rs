//! Fault-injected durability: every instrumented WAL/snapshot I/O
//! failure must leave the fleet panic-free and the on-disk state a
//! recoverable prefix; [`DurabilityPolicy::Degrade`] must keep serving
//! through a WAL outage and re-arm; a killed shard worker must respawn
//! with its series intact; a poisoned series update must quarantine the
//! series, not the shard.

use oneshotstl_suite::fleet::fault::{self, FaultOp};
use oneshotstl_suite::fleet::{
    AdmitOptions, BackendSelect, DampOptions, DurabilityConfig, DurabilityPolicy, DurableFleet,
    EnsembleOptions, FleetConfig, FleetEngine, FleetError, ForecastOptions, PeriodPolicy,
    PointOutput, Record, ScoredPoint,
};
use std::fs;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

const PERIOD: usize = 12;

/// Deterministic seasonal value for series `s` at time `t` — no RNG
/// dependency, varied enough that scores are nontrivial.
fn val(s: usize, t: u64) -> f64 {
    let phase = 2.0 * std::f64::consts::PI * t as f64 / PERIOD as f64;
    let noise =
        ((t.wrapping_mul(2654435761).wrapping_add(s as u64 * 97)) % 1000) as f64 / 5000.0;
    phase.sin() * (1.0 + s as f64 * 0.3) + 0.01 * t as f64 + noise
}

fn batch(n_series: usize, t: u64) -> Vec<Record> {
    (0..n_series).map(|s| Record::new(format!("series-{s}"), t, val(s, t))).collect()
}

fn config(shards: usize) -> FleetConfig {
    FleetConfig { shards, period: PeriodPolicy::Fixed(PERIOD), ..Default::default() }
}

/// Fresh per-test scratch directory under the system temp dir.
fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fleet-faults-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn assert_bit_identical(a: &[ScoredPoint], b: &[ScoredPoint], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: batch sizes");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.key, y.key, "{ctx}");
        match (&x.output, &y.output) {
            (
                PointOutput::Scored { point: pa, score: sa, is_anomaly: fa },
                PointOutput::Scored { point: pb, score: sb, is_anomaly: fb },
            ) => {
                assert_eq!(pa.trend.to_bits(), pb.trend.to_bits(), "{ctx}: {} trend", x.key);
                assert_eq!(pa.seasonal.to_bits(), pb.seasonal.to_bits(), "{ctx}: seasonal");
                assert_eq!(pa.residual.to_bits(), pb.residual.to_bits(), "{ctx}: residual");
                assert_eq!(sa.to_bits(), sb.to_bits(), "{ctx}: score");
                assert_eq!(fa, fb, "{ctx}: verdict");
            }
            (oa, ob) => assert_eq!(oa, ob, "{ctx}: {}", x.key),
        }
    }
}

/// The fault matrix: fail the Nth occurrence of every instrumented file
/// operation, at several positions, under the default crash-stop policy.
/// Whatever the failure hits — WAL segment creation, a record write, a
/// group-commit fsync, a snapshot temp write, its rename, the directory
/// fsync — the process must not panic, and recovery from the surviving
/// files must restore a prefix of the acked history that then continues
/// bit-identically to an uninterrupted engine.
#[test]
fn fault_matrix_recovers_a_bit_identical_prefix() {
    let n_series = 2;
    let total = 60u64;

    // uninterrupted reference outputs per batch
    let mut reference = FleetEngine::new(config(2)).unwrap();
    let ref_outputs: Vec<Vec<ScoredPoint>> =
        (0..total).map(|t| reference.ingest(batch(n_series, t)).unwrap()).collect();

    let cases = [
        (FaultOp::Create, 0),
        (FaultOp::Create, 2),
        (FaultOp::Write, 0),
        (FaultOp::Write, 4),
        (FaultOp::Fsync, 0),
        (FaultOp::Fsync, 3),
        (FaultOp::Rename, 0),
        (FaultOp::Rename, 1),
        (FaultOp::DirSync, 0),
        (FaultOp::DirSync, 2),
    ];
    for (op, nth) in cases {
        let ctx = format!("{op:?} #{nth}");
        let dir = test_dir(&format!("matrix-{op:?}-{nth}").to_lowercase());
        // a short snapshot cadence with full-base rewrites every 2 deltas
        // routes the fault through the snapshot path as well as the WAL
        let dcfg = DurabilityConfig {
            snapshot_every: 8,
            max_delta_chain: 2,
            ..DurabilityConfig::new(&dir)
        };
        let guard = fault::inject(&dir, fault::fail_nth(op, nth));
        let fed = match DurableFleet::create(config(2), dcfg.clone()) {
            // the fault killed bootstrap before anything durable existed:
            // no panic is the whole contract for this case
            Err(_) => {
                drop(guard);
                let _ = fs::remove_dir_all(&dir);
                continue;
            }
            Ok(mut durable) => {
                let mut fed = 0u64;
                for t in 0..total {
                    match durable.ingest(batch(n_series, t)) {
                        Ok(out) => {
                            assert_bit_identical(&out, &ref_outputs[t as usize], &ctx);
                            fed = t + 1;
                        }
                        // crash-stop: the fleet is poisoned, stop feeding
                        Err(_) => break,
                    }
                }
                drop(durable); // crash, no clean shutdown
                fed
            }
        };
        drop(guard);

        // bootstrap succeeded, so a valid seq-0 base exists: recovery must
        // succeed and restore a prefix of the acked history (an un-acked
        // final batch may survive: its frames can hit the page cache even
        // when the covering fsync failed)
        let mut recovered = DurableFleet::open(dcfg).expect(&ctx);
        let resume = recovered.engine().batches();
        assert!(
            resume >= fed && resume <= fed + 1,
            "{ctx}: acked {fed} batches, recovered {resume}"
        );
        for t in resume..total {
            let out = recovered.ingest(batch(n_series, t)).expect(&ctx);
            assert_bit_identical(&out, &ref_outputs[t as usize], &ctx);
        }
        let _ = fs::remove_dir_all(&dir);
    }
}

/// Under [`DurabilityPolicy::Degrade`] a transient fsync outage must not
/// surface a single error: batches keep scoring bit-identically, the
/// un-durable window is counted, the WAL re-arms on the backoff clock,
/// and both counters survive crash recovery.
#[test]
fn degrade_mode_serves_through_a_wal_outage_and_rearms() {
    let n_series = 3;
    let dir = test_dir("degrade-outage");
    let dcfg = DurabilityConfig {
        snapshot_every: 1_000_000, // cadence off: fsync counting stays deterministic
        policy: DurabilityPolicy::Degrade,
        wal_retry_backoff: Duration::from_millis(1),
        wal_retry_cap: Duration::from_millis(20),
        ..DurabilityConfig::new(&dir)
    };

    let mut reference = FleetEngine::new(config(2)).unwrap();
    let mut durable = DurableFleet::create(config(2), dcfg.clone()).unwrap();

    // fail fsyncs 2..5 (counted after create): a transient outage that
    // poisons the WAL mid-stream, then fails the first re-arm attempts
    let guard = fault::inject(&dir, fault::fail_range(FaultOp::Fsync, 2, 3));
    let mut was_degraded = false;
    for t in 0..120u64 {
        let expect = reference.ingest(batch(n_series, t)).unwrap();
        let out =
            durable.ingest(batch(n_series, t)).expect("Degrade never surfaces the outage");
        assert_bit_identical(&out, &expect, "during outage");
        was_degraded |= durable.degraded();
        if durable.degraded() {
            // the re-arm clock, not the ingest rate, paces recovery
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    drop(guard);
    assert!(was_degraded, "the outage never degraded durability");
    assert!(!durable.degraded(), "the fleet never re-armed");

    let stats = durable.engine().stats().unwrap();
    assert!(stats.undurable_batches >= 1, "un-durable window not counted: {stats:?}");
    assert!(stats.wal_retries >= 1, "re-arm attempts not counted: {stats:?}");

    // after re-arming, durability is fully live again: clean close, then
    // recovery resumes at the end of the stream with the counters carried
    durable.close().unwrap();
    let mut recovered = DurableFleet::open(dcfg).unwrap();
    assert_eq!(recovered.engine().batches(), 120, "post-re-arm batches all durable");
    let got = recovered.engine().stats().unwrap();
    assert_eq!(got.undurable_batches, stats.undurable_batches, "carried across recovery");
    assert_eq!(got.wal_retries, stats.wal_retries, "carried across recovery");
    for t in 120..140u64 {
        let expect = reference.ingest(batch(n_series, t)).unwrap();
        let out = recovered.ingest(batch(n_series, t)).unwrap();
        assert_bit_identical(&out, &expect, "post-recovery");
    }
    let _ = fs::remove_dir_all(&dir);
}

/// A permanent outage (ENOSPC on every fsync) keeps the fleet serving
/// under Degrade — degraded the whole time, every batch counted — and
/// [`DurableFleet::checkpoint`] refuses rather than pretending.
#[test]
fn degrade_mode_survives_a_permanent_outage() {
    let n_series = 2;
    let dir = test_dir("degrade-enospc");
    let dcfg = DurabilityConfig {
        snapshot_every: 1_000_000,
        policy: DurabilityPolicy::Degrade,
        wal_retry_backoff: Duration::from_millis(1),
        wal_retry_cap: Duration::from_millis(5),
        ..DurabilityConfig::new(&dir)
    };
    let mut durable = DurableFleet::create(config(2), dcfg).unwrap();
    for t in 0..3u64 {
        durable.ingest(batch(n_series, t)).unwrap();
    }
    let _guard = fault::inject(&dir, fault::enospc(FaultOp::Fsync));
    let mut undurable_seen = 0u64;
    for t in 3..40u64 {
        durable.ingest(batch(n_series, t)).expect("disk-full must not stop serving");
        if durable.degraded() {
            std::thread::sleep(Duration::from_millis(1));
        }
        undurable_seen = durable.engine().stats().unwrap().undurable_batches;
    }
    assert!(durable.degraded(), "ENOSPC on every fsync cannot re-arm");
    assert!(undurable_seen >= 30, "most batches were un-durable: {undurable_seen}");
    assert!(
        matches!(durable.checkpoint(), Err(FleetError::Io(_))),
        "checkpoint while degraded must refuse"
    );
    drop(durable);
    let _ = fs::remove_dir_all(&dir);
}

/// A panicked shard worker is detected and respawned; series rehydrate
/// from the engine's last collected snapshot, so they stay live (a
/// re-warming series would answer `Warming`).
#[test]
fn killed_shard_worker_is_respawned_with_its_series_intact() {
    let n_series = 6;
    let mut engine = FleetEngine::new(config(3)).unwrap();
    for t in 0..60u64 {
        engine.ingest(batch(n_series, t)).unwrap();
    }
    assert_eq!(engine.stats().unwrap().live, n_series, "all series live before the kill");
    // collect once so the shadow registry holds every series
    let snapshot = engine.snapshot_bytes().unwrap();
    let mut twin = FleetEngine::restore_bytes(&snapshot).unwrap();

    engine.crash_shard(1).unwrap();
    std::thread::sleep(Duration::from_millis(300)); // let the panic land

    // the next mutating call heals the shard; tolerate one ShardDown if
    // the worker died mid-handoff
    let mut healed = None;
    for attempt in 0..10 {
        match engine.ingest(batch(n_series, 60)) {
            Ok(out) => {
                healed = Some((attempt, out));
                break;
            }
            Err(FleetError::ShardDown) => std::thread::sleep(Duration::from_millis(10)),
            Err(e) => panic!("unexpected error while healing: {e}"),
        }
    }
    let (attempt, out) = healed.expect("the shard never healed");
    for p in &out {
        assert!(
            matches!(p.output, PointOutput::Scored { .. }),
            "{} must stay live after the respawn, got {:?}",
            p.key,
            p.output
        );
    }
    let stats = engine.stats().unwrap();
    assert!(stats.shard_restarts >= 1, "restart not counted: {stats:?}");
    assert_eq!(stats.live, n_series, "no series lost to the crash");

    // the respawned worker resumed from the collected snapshot, so when
    // the kill happened right after it, the whole engine continues
    // bit-identically to a twin restored from those same bytes
    if attempt == 0 {
        let twin_out = twin.ingest(batch(n_series, 60)).unwrap();
        assert_bit_identical(&out, &twin_out, "respawn vs restore");
    }

    // ...and the restart counter rides snapshots like any lifetime total
    let restored = FleetEngine::restore_bytes(&engine.snapshot_bytes().unwrap()).unwrap();
    assert_eq!(
        restored.stats().unwrap().shard_restarts,
        stats.shard_restarts,
        "shard_restarts carried across snapshot/restore"
    );
}

/// A worker killed on a never-collected engine still respawns — with an
/// empty registry, so its series re-warm instead of resuming. Documented
/// best-effort, pinned here.
#[test]
fn respawn_without_a_collected_snapshot_rewarms_series() {
    let n_series = 4;
    let mut engine = FleetEngine::new(config(2)).unwrap();
    for t in 0..40u64 {
        engine.ingest(batch(n_series, t)).unwrap();
    }
    engine.crash_shard(0).unwrap();
    std::thread::sleep(Duration::from_millis(300));
    let mut outputs = None;
    for _ in 0..10 {
        match engine.ingest(batch(n_series, 40)) {
            Ok(out) => {
                outputs = Some(out);
                break;
            }
            Err(FleetError::ShardDown) => std::thread::sleep(Duration::from_millis(10)),
            Err(e) => panic!("unexpected error while healing: {e}"),
        }
    }
    let outputs = outputs.expect("the shard never healed");
    assert!(
        outputs.iter().any(|p| matches!(p.output, PointOutput::Warming { .. })),
        "shard-0 series re-warm from scratch without a shadow snapshot"
    );
    assert!(
        outputs.iter().any(|p| matches!(p.output, PointOutput::Scored { .. })),
        "the surviving shard's series continue scoring"
    );
}

/// Under the default crash-stop policy a dead worker stays dead: the
/// engine keeps failing with `ShardDown` instead of respawning, exactly
/// as before supervision existed (a respawned worker could diverge from
/// the durable prefix).
#[test]
fn crash_stop_keeps_a_killed_worker_down() {
    let n_series = 4;
    let dir = test_dir("crash-stop-down");
    let mut durable = DurableFleet::create(config(2), DurabilityConfig::new(&dir)).unwrap();
    for t in 0..20u64 {
        durable.ingest(batch(n_series, t)).unwrap();
    }
    durable.engine_mut().crash_shard(0).unwrap();
    std::thread::sleep(Duration::from_millis(300));
    for _ in 0..3 {
        assert!(
            durable.ingest(batch(n_series, 20)).is_err(),
            "crash-stop must not heal a dead shard"
        );
    }
    // recovery — not supervision — is the crash-stop repair path
    drop(durable);
    let recovered = DurableFleet::open(DurabilityConfig::new(&dir)).unwrap();
    assert_eq!(recovered.engine().batches(), 20);
    assert_eq!(recovered.engine().stats().unwrap().shard_restarts, 0);
    let _ = fs::remove_dir_all(&dir);
}

/// A series whose update fails or panics is quarantined — points dropped
/// and counted, the shard and every other series unharmed — and the key
/// can be re-admitted. The quarantined phase rides snapshots (codec v8).
#[test]
fn poisoned_series_updates_quarantine_and_readmit() {
    let mut engine = FleetEngine::new(config(1)).unwrap();
    let keys = ["q-err", "q-panic", "q-fine"];
    let warm = 3 * PERIOD as u64; // default init_cycles * fixed period
    for t in 0..warm + 5 {
        let recs = keys.iter().map(|k| Record::new(*k, t, val(0, t))).collect();
        for p in engine.ingest(recs).unwrap() {
            if t >= warm {
                assert!(
                    matches!(p.output, PointOutput::Scored { .. }),
                    "{}: {:?}",
                    p.key,
                    p.output
                );
            }
        }
    }

    // an injected step error quarantines q-err (cause: non-finite state)
    let t0 = warm + 5;
    {
        let _g = fault::inject("q-err", fault::enospc(FaultOp::SeriesStep));
        let p = engine.ingest_one("q-err", t0, val(0, t0)).unwrap();
        assert_eq!(p.output, PointOutput::Quarantined);
    }
    // an injected step panic quarantines q-panic without killing the shard
    {
        let _g = fault::inject(
            "q-panic",
            Arc::new(|op, _path: &std::path::Path| {
                if op == FaultOp::SeriesStep {
                    panic!("injected step panic (test)");
                }
                None
            }),
        );
        let p = engine.ingest_one("q-panic", t0, val(1, t0)).unwrap();
        assert_eq!(p.output, PointOutput::Quarantined);
    }

    // hooks gone: the quarantine is sticky, the healthy series unharmed
    let p = engine.ingest_one("q-err", t0 + 1, val(0, t0 + 1)).unwrap();
    assert_eq!(p.output, PointOutput::Quarantined, "points keep dropping");
    let p = engine.ingest_one("q-fine", t0 + 1, val(2, t0 + 1)).unwrap();
    assert!(matches!(p.output, PointOutput::Scored { .. }), "shard survived the panic");
    assert_eq!(engine.stats().unwrap().quarantined, 2);

    // the quarantined phase snapshots and restores (codec v8)
    let mut restored = FleetEngine::restore_bytes(&engine.snapshot_bytes().unwrap()).unwrap();
    assert_eq!(restored.stats().unwrap().quarantined, 2);
    let p = restored.ingest_one("q-panic", t0 + 2, val(1, t0 + 2)).unwrap();
    assert_eq!(p.output, PointOutput::Quarantined, "quarantine survives restore");

    // re-admission: a fresh warm-up under (possibly new) overrides
    engine.set_admit_options("q-err", AdmitOptions::default()).unwrap();
    assert_eq!(engine.stats().unwrap().quarantined, 1, "re-admitted key left quarantine");
    for t in 0..warm + 1 {
        let p = engine.ingest_one("q-err", t0 + 2 + t, val(0, t0 + 2 + t)).unwrap();
        if t == warm {
            assert!(
                matches!(p.output, PointOutput::Scored { .. }),
                "re-admitted series went live again: {:?}",
                p.output
            );
        }
    }
}

/// NaN/±inf storms — through warm-up, live scoring, and every detection
/// backend, with a forecast head attached — never panic, never stick a
/// series in quarantine (non-finite *inputs* are imputed; quarantine is
/// for corrupted *state*), and the engine still snapshot-roundtrips
/// bit-identically afterwards.
#[test]
fn non_finite_storms_never_panic_across_backends() {
    let opts: [AdmitOptions; 4] = [
        AdmitOptions::default(), // fused scorer
        AdmitOptions {
            backend: Some(BackendSelect::Damp(DampOptions { window: 48, subseq: 6 })),
            ..Default::default()
        },
        AdmitOptions {
            backend: Some(BackendSelect::TrendCusum(Default::default())),
            ..Default::default()
        },
        AdmitOptions {
            backend: Some(BackendSelect::Ensemble(EnsembleOptions {
                damp: DampOptions { window: 48, subseq: 6 },
                ..Default::default()
            })),
            forecast: Some(ForecastOptions::on()),
            ..Default::default()
        },
    ];
    let mut engine = FleetEngine::new(config(2)).unwrap();
    for (s, o) in opts.iter().enumerate() {
        engine.set_admit_options(format!("series-{s}"), *o).unwrap();
    }

    let storm = |s: usize, t: u64| -> f64 {
        match t % 5 {
            0 => f64::NAN,
            3 => {
                if s.is_multiple_of(2) {
                    f64::INFINITY
                } else {
                    f64::NEG_INFINITY
                }
            }
            _ => val(s, t),
        }
    };
    // t = 0 leads with NaN on every series: the drop-a-leading-NaN path
    for t in 0..200u64 {
        let recs = (0..4).map(|s| Record::new(format!("series-{s}"), t, storm(s, t))).collect();
        for p in engine.ingest(recs).unwrap() {
            assert!(
                !matches!(p.output, PointOutput::Quarantined | PointOutput::Rejected),
                "t={t} {}: imputed storms must not quarantine: {:?}",
                p.key,
                p.output
            );
            if let PointOutput::Scored { score, .. } = p.output {
                assert!(score.is_finite(), "t={t} {}: non-finite score", p.key);
            }
        }
    }
    assert_eq!(engine.stats().unwrap().live, 4, "every backend survived the storm");

    // the stormed engine still roundtrips bit-identically
    let bytes = engine.snapshot_bytes().unwrap();
    let mut restored = FleetEngine::restore_bytes(&bytes).unwrap();
    for t in 200..230u64 {
        let recs: Vec<Record> =
            (0..4).map(|s| Record::new(format!("series-{s}"), t, storm(s, t))).collect();
        let a = engine.ingest(recs.clone()).unwrap();
        let b = restored.ingest(recs).unwrap();
        assert_bit_identical(&a, &b, "post-storm roundtrip");
    }
    assert_eq!(
        engine.snapshot_bytes().unwrap(),
        restored.snapshot_bytes().unwrap(),
        "storm-fed snapshots stay byte-identical"
    );
}

/// Orphaned snapshot temp files — a crash between temp write and rename —
/// are cleaned up by both `open` and `create`, and never shadow a real
/// image.
#[test]
fn stale_tmp_snapshot_files_are_cleaned_on_open() {
    let n_series = 2;
    let dir = test_dir("tmp-cleanup");
    let mut durable = DurableFleet::create(config(2), DurabilityConfig::new(&dir)).unwrap();
    for t in 0..15u64 {
        durable.ingest(batch(n_series, t)).unwrap();
    }
    durable.close().unwrap();

    // a crash mid-write leaves temp files behind; plant a few
    for junk in [".snap-00000000000000000099.tmp", ".snap-00000000000000000007d.tmp"] {
        fs::write(dir.join(junk), b"half-written garbage").unwrap();
    }
    let recovered = DurableFleet::open(DurabilityConfig::new(&dir)).unwrap();
    assert_eq!(recovered.engine().batches(), 15, "junk did not shadow the real image");
    let leftovers: Vec<String> = fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".tmp"))
        .collect();
    assert!(leftovers.is_empty(), "stale temp files survived open: {leftovers:?}");
    drop(recovered);

    // create() cleans a pre-existing (otherwise empty) directory too
    let dir2 = test_dir("tmp-cleanup-create");
    fs::create_dir_all(&dir2).unwrap();
    fs::write(dir2.join(".snap-00000000000000000001.tmp"), b"junk").unwrap();
    let fresh = DurableFleet::create(config(2), DurabilityConfig::new(&dir2)).unwrap();
    drop(fresh);
    let leftovers = fs::read_dir(&dir2)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
        .count();
    assert_eq!(leftovers, 0, "stale temp files survived create");
    for d in [&dir, &dir2] {
        let _ = fs::remove_dir_all(d);
    }
}
