//! Sliding-window adapter: runs any batch decomposer online.
//!
//! The paper's recipe for using batch STD methods in a streaming setting
//! (§2.3): keep the most recent `W = 4T` points, re-run the batch method on
//! every arrival, and report the newest point's decomposition. This yields
//! the Window-STL and Window-RobustSTL baselines of Table 2 / Fig. 7 — and
//! their `O(W × cost)` per-point price is exactly the motivation for online
//! methods.

use crate::traits::{BatchDecomposer, OnlineDecomposer};
use tskit::error::{Result, TsError};
use tskit::ring::RingBuffer;
use tskit::series::{DecompPoint, Decomposition};

/// Wraps a [`BatchDecomposer`] into an [`OnlineDecomposer`] via a sliding
/// window of `window_periods` seasonal cycles (the paper uses 4).
#[derive(Debug, Clone)]
pub struct Windowed<B> {
    batch: B,
    name: &'static str,
    window_periods: usize,
    period: usize,
    buf: Option<RingBuffer>,
}

impl<B: BatchDecomposer> Windowed<B> {
    /// Creates a windowed adapter. `name` is the reported method name
    /// (e.g. `"Window-STL"`).
    pub fn new(batch: B, name: &'static str, window_periods: usize) -> Self {
        Windowed { batch, name, window_periods: window_periods.max(2), period: 0, buf: None }
    }
}

impl<B: BatchDecomposer> OnlineDecomposer for Windowed<B> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn init(&mut self, y: &[f64], period: usize) -> Result<Decomposition> {
        if period < 2 {
            return Err(TsError::InvalidParam {
                name: "period",
                msg: format!("windowed decomposer needs period >= 2, got {period}"),
            });
        }
        let w = self.window_periods * period;
        if y.len() < w.min(2 * period + 1) {
            return Err(TsError::TooShort {
                what: "windowed initialization",
                need: w.min(2 * period + 1),
                got: y.len(),
            });
        }
        self.period = period;
        let d = self.batch.decompose(y, period)?;
        self.buf = Some(RingBuffer::from_slice(w, y));
        Ok(d)
    }

    fn update(&mut self, y: f64) -> DecompPoint {
        let buf = self.buf.as_mut().expect("Windowed::update called before init");
        buf.push(y);
        let window = buf.to_vec();
        match self.batch.decompose(&window, self.period) {
            Ok(d) => d.point(d.len() - 1),
            Err(_) => DecompPoint { trend: y, seasonal: 0.0, residual: 0.0 },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stl::Stl;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn signal(n: usize, t: usize) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(9);
        (0..n)
            .map(|i| {
                (2.0 * std::f64::consts::PI * i as f64 / t as f64).sin()
                    + 0.02 * rng.gen_range(-1.0..1.0)
            })
            .collect()
    }

    #[test]
    fn window_stl_tracks_season_online() {
        let t = 12;
        let y = signal(30 * t, t);
        let mut m = Windowed::new(Stl::new(), "Window-STL", 4);
        let d = m.run_series(&y, t, 4 * t).unwrap();
        assert_eq!(d.len(), y.len());
        assert_eq!(d.check_additive(&y, 1e-9), None);
        let tail_resid: f64 =
            d.residual[8 * t..].iter().map(|r| r.abs()).sum::<f64>() / (d.len() - 8 * t) as f64;
        assert!(tail_resid < 0.1, "tail residual {tail_resid}");
    }

    #[test]
    fn buffer_stays_at_window_size() {
        let t = 8;
        let y = signal(10 * t, t);
        let mut m = Windowed::new(Stl::new(), "Window-STL", 4);
        m.init(&y[..6 * t], t).unwrap();
        for &v in &y[6 * t..] {
            m.update(v);
        }
        assert_eq!(m.buf.as_ref().unwrap().len(), 4 * t);
    }

    #[test]
    fn init_shorter_than_window_but_valid_for_batch_is_ok() {
        let t = 10;
        let y = signal(3 * t, t);
        let mut m = Windowed::new(Stl::new(), "Window-STL", 4);
        // 3T < 4T window, but >= 2T+1 needed by STL
        assert!(m.init(&y, t).is_ok());
    }
}
