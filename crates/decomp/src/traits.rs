//! Decomposer traits shared by all STD implementations in the workspace.

use tskit::{DecompPoint, Decomposition, Result};

/// A batch STD method: consumes a full window and returns all components.
pub trait BatchDecomposer {
    /// Short method name used in experiment tables.
    fn name(&self) -> &'static str;

    /// Decomposes `y` with seasonal period `period`.
    fn decompose(&self, y: &[f64], period: usize) -> Result<Decomposition>;
}

/// An online STD method: a one-time initialization over a prefix, then one
/// [`OnlineDecomposer::update`] per arriving point (the paper's §2.2
/// protocol).
pub trait OnlineDecomposer {
    /// Short method name used in experiment tables.
    fn name(&self) -> &'static str;

    /// Consumes the initialization prefix; returns its decomposition so the
    /// caller can stitch full series together. After `init`, the stream
    /// continues with `update`.
    fn init(&mut self, y: &[f64], period: usize) -> Result<Decomposition>;

    /// Decomposes the newly arrived point `y_t`.
    fn update(&mut self, y: f64) -> DecompPoint;

    /// Runs init + updates over a full series, concatenating the results
    /// (convenience for evaluation harnesses). `split` is the init length.
    fn run_series(&mut self, y: &[f64], period: usize, split: usize) -> Result<Decomposition> {
        let mut out = self.init(&y[..split], period)?;
        for &v in &y[split..] {
            out.push(self.update(v));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial decomposer for exercising the trait defaults: everything
    /// is "trend".
    struct Passthrough;

    impl OnlineDecomposer for Passthrough {
        fn name(&self) -> &'static str {
            "passthrough"
        }
        fn init(&mut self, y: &[f64], _period: usize) -> Result<Decomposition> {
            Ok(Decomposition {
                trend: y.to_vec(),
                seasonal: vec![0.0; y.len()],
                residual: vec![0.0; y.len()],
            })
        }
        fn update(&mut self, y: f64) -> DecompPoint {
            DecompPoint { trend: y, seasonal: 0.0, residual: 0.0 }
        }
    }

    #[test]
    fn run_series_concatenates_init_and_updates() {
        let mut d = Passthrough;
        let y = [1.0, 2.0, 3.0, 4.0, 5.0];
        let out = d.run_series(&y, 2, 3).unwrap();
        assert_eq!(out.len(), 5);
        assert_eq!(out.trend, y.to_vec());
        assert_eq!(out.check_additive(&y, 1e-12), None);
    }
}
