//! OnlineSTL (Mishra, Sriharsha, Zhong — VLDB 2022).
//!
//! The first online STD algorithm: after a batch initialization it updates
//! each arriving point with
//!
//! 1. a causal **tri-cube weighted trend filter** over the last `T + 1`
//!    deseasonalized points (`O(T)` dot product — this is exactly the
//!    `O(T)` cost OneShotSTL eliminates), and
//! 2. **per-phase exponential smoothing** of the seasonal component:
//!    `s_t = α·(y_t − τ_t) + (1 − α)·s_{t−T}`.
//!
//! Simple filters make it fast but unable to track abrupt trend changes or
//! seasonality shifts (paper Fig. 5, Table 2). `α = 0.7` per the paper's
//! §5.1.4.

use crate::stl::Stl;
use crate::traits::{BatchDecomposer, OnlineDecomposer};
use tskit::error::{Result, TsError};
use tskit::loess::tricube;
use tskit::ring::RingBuffer;
use tskit::series::{DecompPoint, Decomposition};

/// The OnlineSTL online decomposer. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct OnlineStl {
    /// Seasonal smoothing factor α ∈ (0, 1].
    pub alpha: f64,
    period: usize,
    /// Tri-cube weights, newest first; length `period + 1`.
    weights: Vec<f64>,
    /// Deseasonalized history (newest last), capacity `period + 1`.
    deseason: Option<RingBuffer>,
    /// Per-phase seasonal estimates `s[t mod T]`.
    seasonal: Vec<f64>,
    /// Current stream position (continues from the end of init).
    t: usize,
}

impl OnlineStl {
    /// Creates an OnlineSTL instance with the paper's default `α = 0.7`.
    pub fn new() -> Self {
        Self::with_alpha(0.7)
    }

    /// Creates an OnlineSTL instance with a custom smoothing factor.
    pub fn with_alpha(alpha: f64) -> Self {
        OnlineStl {
            alpha: alpha.clamp(1e-6, 1.0),
            period: 0,
            weights: Vec::new(),
            deseason: None,
            seasonal: Vec::new(),
            t: 0,
        }
    }
}

impl Default for OnlineStl {
    fn default() -> Self {
        Self::new()
    }
}

impl OnlineDecomposer for OnlineStl {
    fn name(&self) -> &'static str {
        "OnlineSTL"
    }

    fn init(&mut self, y: &[f64], period: usize) -> Result<Decomposition> {
        if period < 2 {
            return Err(TsError::InvalidParam {
                name: "period",
                msg: format!("OnlineSTL needs period >= 2, got {period}"),
            });
        }
        if y.len() < 2 * period + 1 {
            return Err(TsError::TooShort {
                what: "OnlineSTL initialization window",
                need: 2 * period + 1,
                got: y.len(),
            });
        }
        self.period = period;
        // causal tri-cube filter: weight w_i for the point i steps back
        let l = period + 1;
        let mut w: Vec<f64> = (0..l).map(|i| tricube(i as f64 / l as f64)).collect();
        let sum: f64 = w.iter().sum();
        for v in w.iter_mut() {
            *v /= sum;
        }
        self.weights = w;
        // batch initialization with STL
        let stl = if period > 400 { Stl::fast() } else { Stl::new() };
        let d = stl.decompose(y, period)?;
        // seed per-phase seasonal estimates from the last full cycle
        self.seasonal = vec![0.0; period];
        let n = y.len();
        for k in 0..period {
            let idx = n - period + k;
            self.seasonal[(idx) % period] = d.seasonal[idx];
        }
        // seed the deseasonalized buffer
        let mut buf = RingBuffer::new(period + 1);
        let lo = n.saturating_sub(period + 1);
        for (yv, sv) in y[lo..n].iter().zip(&d.seasonal[lo..n]) {
            buf.push(yv - sv);
        }
        self.deseason = Some(buf);
        self.t = n;
        Ok(d)
    }

    fn update(&mut self, y: f64) -> DecompPoint {
        let period = self.period;
        assert!(period >= 2, "OnlineStl::update called before init");
        let phase = self.t % period;
        // 1. deseasonalize with the previous cycle's estimate
        let s_prev = self.seasonal[phase];
        let buf = self.deseason.as_mut().expect("initialized");
        buf.push(y - s_prev);
        // 2. tri-cube trend filter over the deseasonalized history
        let mut trend = 0.0;
        let mut wsum = 0.0;
        let len = buf.len();
        for (i, &w) in self.weights.iter().enumerate() {
            if i >= len {
                break;
            }
            trend += w * buf.back(i);
            wsum += w;
        }
        if wsum > 0.0 {
            trend /= wsum;
        }
        // 3. per-phase exponential seasonal smoothing
        let seasonal = self.alpha * (y - trend) + (1.0 - self.alpha) * s_prev;
        self.seasonal[phase] = seasonal;
        self.t += 1;
        DecompPoint { trend, seasonal, residual: y - trend - seasonal }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn signal(n: usize, t: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                1.0 + 0.001 * i as f64
                    + (2.0 * std::f64::consts::PI * i as f64 / t as f64).sin()
                    + 0.05 * rng.gen_range(-1.0..1.0)
            })
            .collect()
    }

    #[test]
    fn tracks_stationary_seasonal_signal() {
        let t = 24;
        let y = signal(1200, t, 1);
        let mut m = OnlineStl::new();
        let d = m.run_series(&y, t, 4 * t).unwrap();
        assert_eq!(d.len(), y.len());
        // after burn-in, residuals should be small
        let tail: f64 = d.residual[600..].iter().map(|r| r.abs()).sum::<f64>() / 600.0;
        assert!(tail < 0.2, "tail residual {tail}");
    }

    #[test]
    fn additive_identity_every_point() {
        let t = 16;
        let y = signal(400, t, 2);
        let mut m = OnlineStl::new();
        let mut _init = m.init(&y[..4 * t], t).unwrap();
        for &v in &y[4 * t..] {
            let p = m.update(v);
            assert!((p.value() - v).abs() < 1e-9);
        }
    }

    #[test]
    fn smooths_trend_through_abrupt_change_slowly() {
        // OnlineSTL is *expected* to lag at abrupt changes (paper Fig. 5);
        // verify the lag exists: right after a +5 jump, its trend is far
        // from the new level.
        let t = 24;
        let mut y = signal(1200, t, 3);
        for v in y.iter_mut().skip(600) {
            *v += 5.0;
        }
        let mut m = OnlineStl::new();
        let d = m.run_series(&y, t, 4 * t).unwrap();
        let right_after = d.trend[602];
        let long_after = d.trend[1100];
        assert!(long_after - d.trend[599] > 3.0, "eventually adapts");
        assert!(
            long_after - right_after > 1.0,
            "tri-cube filter should lag the jump: after={right_after}, settled={long_after}"
        );
    }

    #[test]
    fn init_validation() {
        let mut m = OnlineStl::new();
        assert!(m.init(&[1.0; 10], 24).is_err());
        assert!(m.init(&[1.0; 10], 1).is_err());
    }

    #[test]
    #[should_panic(expected = "before init")]
    fn update_before_init_panics() {
        OnlineStl::new().update(1.0);
    }
}
