//! OnlineRobustSTL — the `O(T)` online variant of RobustSTL used as a
//! baseline in Table 2 / Fig. 7 (the paper cites the SREWorks
//! implementation \[7\] and FastRobustSTL \[42\]).
//!
//! Per arriving point it performs a bounded amount of RobustSTL-style work
//! on a sliding window:
//!
//! 1. causal bilateral denoising of the newest point (`O(denoise window)`),
//! 2. robust ℓ1 trend re-fit over the most recent `tail_periods` cycles of
//!    the deseasonalized signal, reporting its last value (`O(T)` with a
//!    fixed iteration count),
//! 3. non-local seasonal filtering of the newest point against neighbouring
//!    cycles (`O(neighbors × window)`).

use crate::l1trend::{l1_trend_filter, L1TrendConfig};
use crate::robuststl::{RobustStl, RobustStlConfig};
use crate::traits::{BatchDecomposer, OnlineDecomposer};
use tskit::error::{Result, TsError};
use tskit::ring::RingBuffer;
use tskit::series::{DecompPoint, Decomposition};
use tskit::stats::std_dev;

/// Online RobustSTL. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct OnlineRobustStl {
    /// RobustSTL-style parameters (denoise / seasonal filter settings are
    /// shared with the batch method).
    pub config: RobustStlConfig,
    /// How many recent cycles the per-point trend re-fit spans.
    pub tail_periods: usize,
    period: usize,
    /// Raw values, capacity `window` (= `season_neighbors + 1` cycles).
    raw: Option<RingBuffer>,
    /// Denoised values, same capacity.
    denoised: Option<RingBuffer>,
    /// Seasonal estimates aligned with `raw`.
    seasonal_hist: Option<RingBuffer>,
    /// Detrended (denoised − trend) values aligned with `raw`.
    detrended: Option<RingBuffer>,
    trend_prev: f64,
}

impl OnlineRobustStl {
    /// Creates an OnlineRobustSTL with default parameters.
    pub fn new() -> Self {
        OnlineRobustStl {
            config: RobustStlConfig::default(),
            tail_periods: 2,
            period: 0,
            raw: None,
            denoised: None,
            seasonal_hist: None,
            detrended: None,
            trend_prev: 0.0,
        }
    }
}

impl Default for OnlineRobustStl {
    fn default() -> Self {
        Self::new()
    }
}

impl OnlineDecomposer for OnlineRobustStl {
    fn name(&self) -> &'static str {
        "OnlineRobustSTL"
    }

    fn init(&mut self, y: &[f64], period: usize) -> Result<Decomposition> {
        if period < 2 {
            return Err(TsError::InvalidParam {
                name: "period",
                msg: format!("OnlineRobustSTL needs period >= 2, got {period}"),
            });
        }
        if y.len() < 2 * period + 1 {
            return Err(TsError::TooShort {
                what: "OnlineRobustSTL initialization window",
                need: 2 * period + 1,
                got: y.len(),
            });
        }
        self.period = period;
        let d = RobustStl::with_config(self.config.clone()).decompose(y, period)?;
        let cap =
            (self.config.season_neighbors + 1) * period + self.config.season_half_window + 1;
        self.raw = Some(RingBuffer::from_slice(cap, y));
        // the bilateral denoise of history ≈ y − residual spike part; reuse
        // trend+seasonal as the denoised estimate plus small residuals
        let denoised: Vec<f64> =
            (0..y.len()).map(|i| d.trend[i] + d.seasonal[i] + 0.0).collect();
        self.denoised = Some(RingBuffer::from_slice(cap, &denoised));
        self.seasonal_hist = Some(RingBuffer::from_slice(cap, &d.seasonal));
        let detr: Vec<f64> = (0..y.len()).map(|i| y[i] - d.trend[i]).collect();
        self.detrended = Some(RingBuffer::from_slice(cap, &detr));
        self.trend_prev = *d.trend.last().expect("non-empty");
        Ok(d)
    }

    fn update(&mut self, y: f64) -> DecompPoint {
        let period = self.period;
        assert!(period >= 2, "OnlineRobustStl::update called before init");
        let cfg = self.config.clone();
        let raw = self.raw.as_mut().expect("initialized");
        raw.push(y);
        // 1. causal bilateral denoise of the newest point
        let hw = cfg.denoise_half_window;
        let len = raw.len();
        let sd = {
            let tail: Vec<f64> = (0..(2 * period).min(len)).map(|i| raw.back(i)).collect();
            std_dev(&tail).max(1e-9)
        };
        let (mut num, mut den) = (0.0, 0.0);
        for i in 0..=(2 * hw).min(len - 1) {
            let v = raw.back(i);
            let dd = (i * i) as f64 / (2.0 * cfg.denoise_sigma_d * cfg.denoise_sigma_d);
            let di = (v - y).powi(2) / (2.0 * (cfg.denoise_sigma_i * sd).powi(2));
            let w = (-dd - di).exp();
            num += w * v;
            den += w;
        }
        let denoised_pt = if den > 0.0 { num / den } else { y };
        let denoised = self.denoised.as_mut().expect("initialized");
        denoised.push(denoised_pt);

        // 2. robust trend over the recent tail of the deseasonalized signal
        let tail_len = (self.tail_periods * period).min(denoised.len());
        let seasonal_hist = self.seasonal_hist.as_mut().expect("initialized");
        let mut deseason = Vec::with_capacity(tail_len);
        for i in (0..tail_len).rev() {
            let d_i = denoised.back(i);
            // previous-cycle seasonal estimate at the same phase: offset by
            // period, falling back to the oldest available
            let s_i = if i + period < seasonal_hist.len() + 1 && seasonal_hist.len() >= period {
                // back(i) aligns with raw.back(i); seasonal of one cycle ago
                let idx = (i + period - 1).min(seasonal_hist.len() - 1);
                seasonal_hist.back(idx)
            } else {
                0.0
            };
            deseason.push(d_i - s_i);
        }
        let tcfg = L1TrendConfig {
            lambda1: cfg.lambda1,
            lambda2: cfg.lambda2,
            iters: 3,
            robust_data: true,
            eps: 1e-10,
        };
        let trend = match l1_trend_filter(&deseason, &tcfg) {
            Ok(tau) => *tau.last().unwrap_or(&self.trend_prev),
            Err(_) => self.trend_prev,
        };
        self.trend_prev = trend;

        // 3. non-local seasonal filter for the newest point
        let detrended = self.detrended.as_mut().expect("initialized");
        detrended.push(denoised_pt - trend);
        let dlen = detrended.len();
        let newest = detrended.back(0);
        let det_sd = {
            let tail: Vec<f64> =
                (0..(2 * period).min(dlen)).map(|i| detrended.back(i)).collect();
            std_dev(&tail).max(1e-9)
        };
        let sigma = cfg.season_sigma * det_sd;
        let inv_2s2 = 1.0 / (2.0 * sigma * sigma);
        let (mut num, mut den) = (0.0, 0.0);
        for k in 1..=cfg.season_neighbors {
            let center = k * period;
            for j in 0..=2 * cfg.season_half_window {
                let off = center + cfg.season_half_window;
                if off < j {
                    continue;
                }
                let idx = off - j;
                if idx >= dlen || idx == 0 {
                    continue;
                }
                let v = detrended.back(idx);
                let dv = v - newest;
                let dist = (j as i64 - cfg.season_half_window as i64).unsigned_abs() as f64;
                let w = (-dv * dv * inv_2s2).exp()
                    / (1.0 + dist / (cfg.season_half_window as f64 + 1.0));
                num += w * v;
                den += w;
            }
        }
        let seasonal = if den > 0.0 { num / den } else { newest };
        seasonal_hist.push(seasonal);
        DecompPoint { trend, seasonal, residual: y - trend - seasonal }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn signal(n: usize, t: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                0.5 + (2.0 * std::f64::consts::PI * i as f64 / t as f64).sin()
                    + 0.05 * rng.gen_range(-1.0..1.0)
            })
            .collect()
    }

    #[test]
    fn additive_identity_and_tracking() {
        let t = 20;
        let y = signal(600, t, 1);
        let mut m = OnlineRobustStl::new();
        let d = m.run_series(&y, t, 4 * t).unwrap();
        assert_eq!(d.len(), y.len());
        assert_eq!(d.check_additive(&y, 1e-9), None);
        let tail: f64 = d.residual[300..].iter().map(|r| r.abs()).sum::<f64>() / 300.0;
        assert!(tail < 0.35, "tail residual {tail}");
    }

    #[test]
    fn trend_follows_level_shift() {
        let t = 20;
        let mut y = signal(800, t, 2);
        for v in y.iter_mut().skip(500) {
            *v += 3.0;
        }
        let mut m = OnlineRobustStl::new();
        let d = m.run_series(&y, t, 4 * t).unwrap();
        // within two periods of the jump the trend should have moved most
        // of the way
        assert!(
            d.trend[540] - d.trend[499] > 1.5,
            "trend failed to follow jump: {} -> {}",
            d.trend[499],
            d.trend[540]
        );
    }

    #[test]
    fn init_validation() {
        let mut m = OnlineRobustStl::new();
        assert!(m.init(&[0.0; 5], 10).is_err());
        assert!(m.init(&[0.0; 5], 0).is_err());
    }
}
