//! STL: Seasonal-Trend decomposition using LOESS (Cleveland et al. 1990).
//!
//! Faithful implementation of the inner/outer loop structure:
//!
//! 1. detrend, 2. cycle-subseries LOESS smoothing (with one-point extension
//!    at both ends), 3. low-pass filtering of the smoothed subseries
//!    (two moving averages of length `T`, one of length 3, then LOESS),
//!    4. seasonal = smoothed − low-pass, 5. deseasonalize, 6. trend LOESS.
//!    The outer loop recomputes bisquare robustness weights from the remainder.
//!
//! STL is used both as a baseline (Table 2, Fig. 5–7) and as OneShotSTL's
//! initialization routine (Algorithm 5, line 1).

use crate::traits::BatchDecomposer;
use tskit::error::{check_finite, Result, TsError};
use tskit::loess::{loess, loess_extended, LoessConfig};
use tskit::series::Decomposition;
use tskit::smooth::valid_moving_average;
use tskit::stats::median;

/// Seasonal smoother setting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeasonalSpan {
    /// LOESS over the cycle-subseries with this span (odd, ≥ 7 advised).
    Span(usize),
    /// "Periodic" STL: each cycle-subseries is replaced by its (robustness-
    /// weighted) mean — the strictest possible seasonal smoothing.
    Periodic,
}

/// STL configuration. `Default` follows the common R conventions.
#[derive(Debug, Clone)]
pub struct StlConfig {
    /// Seasonal smoother span `n_s`.
    pub seasonal: SeasonalSpan,
    /// Trend smoother span `n_t`; `None` derives the Cleveland default
    /// `next_odd(1.5 T / (1 - 1.5/n_s))`.
    pub trend_span: Option<usize>,
    /// Low-pass span `n_l`; `None` uses `next_odd(T)`.
    pub lowpass_span: Option<usize>,
    /// Inner-loop iterations `n_i`.
    pub inner_iters: usize,
    /// Outer (robustness) iterations `n_o`.
    pub outer_iters: usize,
    /// LOESS `jump` speed-up for the trend/low-pass smoothers (1 = exact).
    pub jump: usize,
}

impl Default for StlConfig {
    fn default() -> Self {
        StlConfig {
            seasonal: SeasonalSpan::Span(7),
            trend_span: None,
            lowpass_span: None,
            inner_iters: 2,
            outer_iters: 1,
            jump: 1,
        }
    }
}

/// The STL decomposer. See the [module docs](self).
#[derive(Debug, Clone, Default)]
pub struct Stl {
    /// Configuration used by [`BatchDecomposer::decompose`].
    pub config: StlConfig,
}

impl Stl {
    /// STL with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// STL with a custom configuration.
    pub fn with_config(config: StlConfig) -> Self {
        Stl { config }
    }

    /// A faster configuration for very long windows (larger LOESS jumps).
    pub fn fast() -> Self {
        Stl { config: StlConfig { jump: 10, outer_iters: 0, ..StlConfig::default() } }
    }
}

fn next_odd(x: usize) -> usize {
    if x.is_multiple_of(2) {
        x + 1
    } else {
        x
    }
}

/// Bisquare robustness weights from the remainder (Cleveland's `6·median`
/// scaling).
fn bisquare_weights(residual: &[f64]) -> Vec<f64> {
    let abs: Vec<f64> = residual.iter().map(|r| r.abs()).collect();
    let h = 6.0 * median(&abs);
    if h <= f64::EPSILON {
        return vec![1.0; residual.len()];
    }
    abs.iter()
        .map(|&a| {
            let u = a / h;
            if u >= 1.0 {
                0.0
            } else {
                let t = 1.0 - u * u;
                t * t
            }
        })
        .collect()
}

impl BatchDecomposer for Stl {
    fn name(&self) -> &'static str {
        "STL"
    }

    fn decompose(&self, y: &[f64], period: usize) -> Result<Decomposition> {
        let n = y.len();
        if period < 2 {
            return Err(TsError::InvalidParam {
                name: "period",
                msg: format!("STL needs period >= 2, got {period}"),
            });
        }
        if n < 2 * period + 1 {
            return Err(TsError::TooShort { what: "STL input", need: 2 * period + 1, got: n });
        }
        check_finite(y)?;
        let cfg = &self.config;
        let n_s = match cfg.seasonal {
            SeasonalSpan::Span(s) => next_odd(s.max(3)),
            SeasonalSpan::Periodic => usize::MAX, // handled separately
        };
        let n_t = next_odd(cfg.trend_span.unwrap_or_else(|| {
            if let SeasonalSpan::Span(s) = cfg.seasonal {
                let denom = 1.0 - 1.5 / next_odd(s.max(3)) as f64;
                (1.5 * period as f64 / denom).ceil() as usize
            } else {
                (1.5 * period as f64).ceil() as usize + 1
            }
        }));
        let n_l = next_odd(cfg.lowpass_span.unwrap_or(period));

        let mut seasonal = vec![0.0; n];
        let mut trend = vec![0.0; n];
        let mut rho: Option<Vec<f64>> = None;

        for outer in 0..=cfg.outer_iters {
            for _inner in 0..cfg.inner_iters.max(1) {
                // 1. detrend
                let detrended: Vec<f64> = y.iter().zip(&trend).map(|(v, t)| v - t).collect();
                // 2. cycle-subseries smoothing with ±1 cycle extension
                let mut c = vec![0.0; n + 2 * period];
                for phase in 0..period {
                    let sub: Vec<f64> =
                        (phase..n).step_by(period).map(|i| detrended[i]).collect();
                    if sub.is_empty() {
                        continue;
                    }
                    let sub_rho: Option<Vec<f64>> = rho
                        .as_ref()
                        .map(|r| (phase..n).step_by(period).map(|i| r[i]).collect());
                    let smoothed: Vec<f64> = match cfg.seasonal {
                        SeasonalSpan::Periodic => {
                            // weighted mean, replicated over len + 2
                            let (mut num, mut den) = (0.0, 0.0);
                            for (k, &v) in sub.iter().enumerate() {
                                let w = sub_rho.as_ref().map_or(1.0, |r| r[k]);
                                num += w * v;
                                den += w;
                            }
                            let m = if den > 0.0 {
                                num / den
                            } else {
                                sub.iter().sum::<f64>() / sub.len() as f64
                            };
                            vec![m; sub.len() + 2]
                        }
                        SeasonalSpan::Span(_) => {
                            let lcfg = LoessConfig::new(n_s).degree(1);
                            loess_extended(&sub, &lcfg, sub_rho.as_deref())
                        }
                    };
                    // place smoothed subseries (positions -1..=len) into C
                    for (k, &v) in smoothed.iter().enumerate() {
                        // global time = phase + (k-1)*period; C index = global + period
                        let idx = phase + k * period;
                        if idx < c.len() {
                            c[idx] = v;
                        }
                    }
                }
                // 3. low-pass: MA(T) twice, MA(3), then LOESS(n_l, degree 1)
                let ma1 = valid_moving_average(&c, period); // len n + period + 1
                let ma2 = valid_moving_average(&ma1, period); // len n + 2
                let ma3 = valid_moving_average(&ma2, 3); // len n
                debug_assert_eq!(ma3.len(), n);
                let lcfg = LoessConfig::new(n_l).degree(1).jump(cfg.jump);
                let lowpass = loess(&ma3, &lcfg, None);
                // 4. seasonal
                for i in 0..n {
                    seasonal[i] = c[i + period] - lowpass[i];
                }
                // 5.–6. deseasonalize, smooth trend
                let deseasonalized: Vec<f64> =
                    y.iter().zip(&seasonal).map(|(v, s)| v - s).collect();
                let tcfg = LoessConfig::new(n_t).degree(1).jump(cfg.jump);
                trend = loess(&deseasonalized, &tcfg, rho.as_deref());
            }
            // outer loop: robustness weights from the remainder
            if outer < cfg.outer_iters {
                let residual: Vec<f64> =
                    (0..n).map(|i| y[i] - trend[i] - seasonal[i]).collect();
                rho = Some(bisquare_weights(&residual));
            }
        }
        let residual: Vec<f64> = (0..n).map(|i| y[i] - trend[i] - seasonal[i]).collect();
        Ok(Decomposition { trend, seasonal, residual })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use tskit::stats::mae;

    fn seasonal_signal(
        n: usize,
        t: usize,
        noise: f64,
        seed: u64,
    ) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let trend: Vec<f64> = (0..n).map(|i| 0.002 * i as f64).collect();
        let season: Vec<f64> =
            (0..n).map(|i| (2.0 * std::f64::consts::PI * i as f64 / t as f64).sin()).collect();
        let y: Vec<f64> =
            (0..n).map(|i| trend[i] + season[i] + noise * rng.gen_range(-1.0..1.0)).collect();
        (y, trend, season)
    }

    #[test]
    fn additive_identity_holds() {
        let (y, _, _) = seasonal_signal(300, 24, 0.1, 1);
        let d = Stl::new().decompose(&y, 24).unwrap();
        assert_eq!(d.check_additive(&y, 1e-9), None);
    }

    #[test]
    fn recovers_sinusoidal_season() {
        let (y, truth_trend, truth_season) = seasonal_signal(480, 24, 0.05, 2);
        let d = Stl::new().decompose(&y, 24).unwrap();
        // ignore boundary effects: compare the interior
        let lo = 48;
        let hi = 480 - 48;
        let se = mae(&d.seasonal[lo..hi], &truth_season[lo..hi]);
        let te = mae(&d.trend[lo..hi], &truth_trend[lo..hi]);
        assert!(se < 0.08, "seasonal MAE {se}");
        assert!(te < 0.08, "trend MAE {te}");
    }

    #[test]
    fn periodic_mode_gives_constant_subseries() {
        let (y, _, _) = seasonal_signal(240, 12, 0.02, 3);
        let cfg = StlConfig { seasonal: SeasonalSpan::Periodic, ..Default::default() };
        let d = Stl::with_config(cfg).decompose(&y, 12).unwrap();
        // every cycle-subseries of the seasonal component is near-constant
        for phase in 0..12 {
            let sub: Vec<f64> = (phase..240).step_by(12).map(|i| d.seasonal[i]).collect();
            let spread = tskit::stats::std_dev(&sub);
            assert!(spread < 0.05, "phase {phase}: spread {spread}");
        }
    }

    #[test]
    fn robustness_resists_outliers() {
        let (mut y, _, truth_season) = seasonal_signal(360, 24, 0.02, 4);
        // contaminate with strong spikes
        for i in (30..330).step_by(57) {
            y[i] += 8.0;
        }
        let robust = Stl::with_config(StlConfig { outer_iters: 3, ..Default::default() })
            .decompose(&y, 24)
            .unwrap();
        let fragile = Stl::with_config(StlConfig { outer_iters: 0, ..Default::default() })
            .decompose(&y, 24)
            .unwrap();
        let lo = 48;
        let hi = 360 - 48;
        let robust_err = mae(&robust.seasonal[lo..hi], &truth_season[lo..hi]);
        let fragile_err = mae(&fragile.seasonal[lo..hi], &truth_season[lo..hi]);
        assert!(
            robust_err < fragile_err,
            "robust {robust_err} should beat non-robust {fragile_err}"
        );
        assert!(robust_err < 0.15, "robust seasonal MAE {robust_err}");
    }

    #[test]
    fn rejects_bad_inputs() {
        let y = vec![1.0; 30];
        assert!(matches!(Stl::new().decompose(&y, 1), Err(TsError::InvalidParam { .. })));
        assert!(matches!(Stl::new().decompose(&y, 20), Err(TsError::TooShort { .. })));
        let bad = vec![f64::NAN; 100];
        assert!(matches!(Stl::new().decompose(&bad, 10), Err(TsError::NonFinite { .. })));
    }

    #[test]
    fn jump_speedup_stays_close_to_exact() {
        let (y, _, _) = seasonal_signal(600, 24, 0.05, 5);
        let exact = Stl::new().decompose(&y, 24).unwrap();
        let fast = Stl::with_config(StlConfig { jump: 8, ..Default::default() })
            .decompose(&y, 24)
            .unwrap();
        let err = mae(&exact.trend, &fast.trend);
        assert!(err < 0.02, "jumped trend deviates: {err}");
    }
}
