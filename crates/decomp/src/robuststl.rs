//! RobustSTL (Wen et al., AAAI 2019) — the paper's quality reference.
//!
//! Three-stage iterative scheme:
//!
//! 1. **Bilateral denoising** removes spiky noise while preserving abrupt
//!    level changes (unlike a moving average).
//! 2. **Robust trend extraction**: ℓ1-loss trend fit with first- and
//!    second-order ℓ1 difference penalties (via [`crate::l1trend`] with
//!    `robust_data = true`), applied to the deseasonalized signal — this is
//!    what recovers *abrupt trend changes* (Table 2 / Fig. 5).
//! 3. **Non-local seasonal filtering**: each seasonal value is a
//!    similarity-weighted average over windows around the same phase in
//!    neighbouring cycles; because the weights depend on *values* rather
//!    than a rigid phase, moderate *seasonality shifts* are absorbed
//!    (Fig. 5 (e)-(h)).
//!
//! The stages alternate a configurable number of rounds. This is a faithful
//! re-implementation of the published algorithm's structure; the original
//! solves stage 2 as an LP, we use the IRLS approximation (documented
//! substitution, DESIGN.md §4).

use crate::l1trend::{l1_trend_filter, L1TrendConfig};
use crate::traits::BatchDecomposer;
use tskit::error::{check_finite, Result, TsError};
use tskit::series::Decomposition;
use tskit::smooth::bilateral_filter;
use tskit::stats::{mean, std_dev};

/// RobustSTL configuration.
#[derive(Debug, Clone)]
pub struct RobustStlConfig {
    /// Bilateral denoise: half window.
    pub denoise_half_window: usize,
    /// Bilateral denoise: time-distance bandwidth σ_d.
    pub denoise_sigma_d: f64,
    /// Bilateral denoise: value-distance bandwidth σ_i (in units of the
    /// series' standard deviation).
    pub denoise_sigma_i: f64,
    /// Trend penalty λ1 (first differences).
    pub lambda1: f64,
    /// Trend penalty λ2 (second differences).
    pub lambda2: f64,
    /// Non-local seasonal filter: number of neighbouring cycles each side.
    pub season_neighbors: usize,
    /// Non-local seasonal filter: half window around the same phase.
    pub season_half_window: usize,
    /// Non-local seasonal filter: value-similarity bandwidth (in units of
    /// the detrended signal's standard deviation).
    pub season_sigma: f64,
    /// Alternation rounds between trend and seasonal estimation.
    pub rounds: usize,
    /// IRLS iterations inside the trend solver.
    pub trend_iters: usize,
}

impl Default for RobustStlConfig {
    fn default() -> Self {
        RobustStlConfig {
            denoise_half_window: 3,
            denoise_sigma_d: 2.0,
            denoise_sigma_i: 1.0,
            lambda1: 20.0,
            lambda2: 2.0,
            season_neighbors: 2,
            season_half_window: 10,
            season_sigma: 0.6,
            rounds: 2,
            trend_iters: 8,
        }
    }
}

/// The RobustSTL decomposer. See the [module docs](self).
#[derive(Debug, Clone, Default)]
pub struct RobustStl {
    /// Configuration used by [`BatchDecomposer::decompose`].
    pub config: RobustStlConfig,
}

impl RobustStl {
    /// RobustSTL with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// RobustSTL with a custom configuration.
    pub fn with_config(config: RobustStlConfig) -> Self {
        RobustStl { config }
    }
}

/// Non-local seasonal filter: weighted average of detrended values around
/// the same phase in up to `neighbors` cycles on both sides.
pub(crate) fn nonlocal_seasonal(
    detrended: &[f64],
    period: usize,
    neighbors: usize,
    half_window: usize,
    sigma_abs: f64,
) -> Vec<f64> {
    let n = detrended.len();
    let inv_2s2 = 1.0 / (2.0 * sigma_abs * sigma_abs);
    let mut out = vec![0.0; n];
    for t in 0..n {
        let mut num = 0.0;
        let mut den = 0.0;
        for k in 1..=neighbors {
            for dir in [-1i64, 1i64] {
                let center = t as i64 + dir * (k * period) as i64;
                for j in -(half_window as i64)..=(half_window as i64) {
                    let idx = center + j;
                    if idx < 0 || idx >= n as i64 {
                        continue;
                    }
                    let v = detrended[idx as usize];
                    let dv = v - detrended[t];
                    // weight: value similarity × mild distance decay within
                    // the window
                    let w = (-dv * dv * inv_2s2).exp()
                        / (1.0 + (j.unsigned_abs() as f64) / (half_window as f64 + 1.0));
                    num += w * v;
                    den += w;
                }
            }
        }
        out[t] = if den > 0.0 { num / den } else { detrended[t] };
    }
    out
}

impl BatchDecomposer for RobustStl {
    fn name(&self) -> &'static str {
        "RobustSTL"
    }

    fn decompose(&self, y: &[f64], period: usize) -> Result<Decomposition> {
        let n = y.len();
        if period < 2 {
            return Err(TsError::InvalidParam {
                name: "period",
                msg: format!("RobustSTL needs period >= 2, got {period}"),
            });
        }
        if n < 2 * period + 1 {
            return Err(TsError::TooShort {
                what: "RobustSTL input",
                need: 2 * period + 1,
                got: n,
            });
        }
        check_finite(y)?;
        let cfg = &self.config;
        let sd = std_dev(y).max(1e-9);
        // 1. denoise
        let denoised = bilateral_filter(
            y,
            cfg.denoise_half_window,
            cfg.denoise_sigma_d,
            cfg.denoise_sigma_i * sd,
        );
        // initial seasonal: per-phase median of the (crudely) detrended
        // signal
        let rough_trend = tskit::smooth::centered_moving_average(&denoised, period);
        let rough_det: Vec<f64> =
            denoised.iter().zip(&rough_trend).map(|(v, t)| v - t).collect();
        let mut seasonal = {
            let mut phase_vals: Vec<Vec<f64>> = vec![Vec::new(); period];
            for (i, &v) in rough_det.iter().enumerate() {
                phase_vals[i % period].push(v);
            }
            let phase_med: Vec<f64> =
                phase_vals.iter().map(|v| tskit::stats::median(v)).collect();
            (0..n).map(|i| phase_med[i % period]).collect::<Vec<f64>>()
        };
        let mut trend = rough_trend;
        let tcfg = L1TrendConfig {
            lambda1: cfg.lambda1,
            lambda2: cfg.lambda2,
            iters: cfg.trend_iters,
            robust_data: true,
            eps: 1e-10,
        };
        for _ in 0..cfg.rounds.max(1) {
            // 2. robust trend on the deseasonalized signal
            let deseason: Vec<f64> =
                denoised.iter().zip(&seasonal).map(|(v, s)| v - s).collect();
            trend = l1_trend_filter(&deseason, &tcfg)?;
            // 3. non-local seasonal filter on the detrended signal
            let detrended: Vec<f64> = denoised.iter().zip(&trend).map(|(v, t)| v - t).collect();
            let det_sd = std_dev(&detrended).max(1e-9);
            seasonal = nonlocal_seasonal(
                &detrended,
                period,
                cfg.season_neighbors,
                cfg.season_half_window,
                cfg.season_sigma * det_sd,
            );
            // keep the seasonal component centred; absorb its mean into the
            // trend (standard identifiability convention)
            let m = mean(&seasonal);
            for s in seasonal.iter_mut() {
                *s -= m;
            }
            for t in trend.iter_mut() {
                *t += m;
            }
        }
        let residual: Vec<f64> = (0..n).map(|i| y[i] - trend[i] - seasonal[i]).collect();
        Ok(Decomposition { trend, seasonal, residual })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use tskit::stats::mae;

    fn gen(n: usize, t: usize, seed: u64) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let trend: Vec<f64> = (0..n).map(|i| if i < n / 2 { 0.0 } else { 3.0 }).collect();
        let season: Vec<f64> =
            (0..n).map(|i| (2.0 * std::f64::consts::PI * i as f64 / t as f64).sin()).collect();
        let y: Vec<f64> =
            (0..n).map(|i| trend[i] + season[i] + 0.05 * rng.gen_range(-1.0..1.0)).collect();
        (y, trend, season)
    }

    #[test]
    fn captures_abrupt_trend_change() {
        let (y, truth_trend, _) = gen(400, 40, 1);
        let d = RobustStl::new().decompose(&y, 40).unwrap();
        assert_eq!(d.check_additive(&y, 1e-9), None);
        // jump height preserved within a period of the change point
        let before = d.trend[180];
        let after = d.trend[220];
        assert!(after - before > 2.0, "trend jump flattened: {before} -> {after}");
        let err = mae(&d.trend[40..360], &truth_trend[40..360]);
        assert!(err < 0.35, "trend MAE {err}");
    }

    #[test]
    fn recovers_seasonal_component() {
        let (y, _, truth_season) = gen(400, 40, 2);
        let d = RobustStl::new().decompose(&y, 40).unwrap();
        let err = mae(&d.seasonal[40..360], &truth_season[40..360]);
        assert!(err < 0.15, "seasonal MAE {err}");
    }

    #[test]
    fn absorbs_seasonality_shift() {
        // build a shifted-season signal: cycles 5.. delayed by 4 points
        let n = 600;
        let t = 50usize;
        let mut rng = StdRng::seed_from_u64(3);
        let base = |i: usize| (2.0 * std::f64::consts::PI * (i % t) as f64 / t as f64).sin();
        let y: Vec<f64> = (0..n)
            .map(|i| {
                let cycle = i / t;
                let idx = if cycle >= 5 { (i + t - 4) % t } else { i % t };
                base(idx) + 0.03 * rng.gen_range(-1.0..1.0)
            })
            .collect();
        let d = RobustStl::new().decompose(&y, t).unwrap();
        // residual in the shifted region should stay small: the non-local
        // filter finds the shifted pattern
        let shifted_resid: f64 =
            d.residual[6 * t..10 * t].iter().map(|r| r.abs()).sum::<f64>() / (4 * t) as f64;
        assert!(shifted_resid < 0.25, "shifted-region residual too large: {shifted_resid}");
    }

    #[test]
    fn rejects_bad_input() {
        assert!(RobustStl::new().decompose(&[1.0; 10], 20).is_err());
        assert!(RobustStl::new().decompose(&[1.0; 10], 1).is_err());
    }
}
