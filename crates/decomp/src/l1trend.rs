//! ℓ1 trend filtering (Kim, Koh, Boyd, Gorinevsky 2009).
//!
//! Minimizes `Σ_t ρ(y_t − τ_t) + λ1 Σ|τ_t − τ_{t−1}| + λ2 Σ|τ_t − 2τ_{t−1}
//! + τ_{t−2}|` via Iteratively Reweighted Least Squares: each |·| term is
//! majorized by `w x² + 1/(4w)` with `w = 1/(2|x|)` (the same IRLS device
//! the paper uses for JointSTL, Eq. 3–5), giving a pentadiagonal SPD system
//! per iteration. With `robust_data = true` the data-fidelity term is also
//!   ℓ1 (RobustSTL's choice); otherwise it is squared ℓ2 (classic ℓ1 trend
//!   filtering, and the paper's JointSTL choice).

use tskit::error::{check_finite, Result, TsError};
use tskit::linalg::SymBanded;

/// Configuration for [`l1_trend_filter`].
#[derive(Debug, Clone)]
pub struct L1TrendConfig {
    /// Weight of the first-difference penalty (piecewise-constant prior).
    pub lambda1: f64,
    /// Weight of the second-difference penalty (piecewise-linear prior).
    pub lambda2: f64,
    /// IRLS iterations.
    pub iters: usize,
    /// ℓ1 data fidelity (robust to spikes) instead of squared ℓ2.
    pub robust_data: bool,
    /// IRLS clamp `ε` for `w = 1 / (2·max(|x|, ε))`.
    pub eps: f64,
}

impl Default for L1TrendConfig {
    fn default() -> Self {
        L1TrendConfig {
            lambda1: 10.0,
            lambda2: 10.0,
            iters: 10,
            robust_data: false,
            eps: 1e-10,
        }
    }
}

#[inline]
fn irls_weight(x: f64, eps: f64) -> f64 {
    1.0 / (2.0 * x.abs().max(eps))
}

/// Runs ℓ1 trend filtering on `y`, returning the trend estimate.
pub fn l1_trend_filter(y: &[f64], cfg: &L1TrendConfig) -> Result<Vec<f64>> {
    let n = y.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    if n < 3 {
        return Ok(y.to_vec());
    }
    check_finite(y)?;
    if cfg.lambda1 < 0.0 || cfg.lambda2 < 0.0 {
        return Err(TsError::InvalidParam {
            name: "lambda",
            msg: "penalties must be non-negative".into(),
        });
    }
    let mut tau = y.to_vec();
    // IRLS weights: a (data), p (first diff), q (second diff)
    let mut a = vec![1.0; n];
    let mut p = vec![1.0; n - 1];
    let mut q = vec![1.0; n - 2];
    for _ in 0..cfg.iters.max(1) {
        // assemble A = diag(a) + λ1 D1ᵀ P D1 + λ2 D2ᵀ Q D2 (bandwidth 2)
        let mut m = SymBanded::zeros(n, 2);
        let mut b = vec![0.0; n];
        for i in 0..n {
            m.add(i, i, a[i]);
            b[i] = a[i] * y[i];
        }
        for (t, &pt) in p.iter().enumerate() {
            // difference row (τ_{t+1} − τ_t), weight λ1 p_t
            let w = cfg.lambda1 * pt;
            m.add(t, t, w);
            m.add(t + 1, t + 1, w);
            m.add(t + 1, t, -w);
        }
        for (t, &qt) in q.iter().enumerate() {
            // second-difference row (τ_t − 2τ_{t+1} + τ_{t+2}), weight λ2 q_t
            let w = cfg.lambda2 * qt;
            m.add(t, t, w);
            m.add(t + 1, t + 1, 4.0 * w);
            m.add(t + 2, t + 2, w);
            m.add(t + 1, t, -2.0 * w);
            m.add(t + 2, t + 1, -2.0 * w);
            m.add(t + 2, t, w);
        }
        tau = m.solve(&b)?;
        // refresh weights
        if cfg.robust_data {
            for i in 0..n {
                a[i] = irls_weight(y[i] - tau[i], cfg.eps);
            }
        }
        for t in 0..n - 1 {
            p[t] = irls_weight(tau[t + 1] - tau[t], cfg.eps);
        }
        for t in 0..n - 2 {
            q[t] = irls_weight(tau[t] - 2.0 * tau[t + 1] + tau[t + 2], cfg.eps);
        }
    }
    Ok(tau)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn recovers_piecewise_constant_trend() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 300;
        let truth: Vec<f64> = (0..n).map(|i| if i < 150 { 1.0 } else { 4.0 }).collect();
        let y: Vec<f64> = truth.iter().map(|t| t + 0.1 * rng.gen_range(-1.0..1.0)).collect();
        // piecewise-constant prior: strong first-difference penalty, weak
        // second-difference penalty (λ2 would smear the jump into a ramp)
        let cfg =
            L1TrendConfig { lambda1: 10.0, lambda2: 0.1, iters: 20, ..Default::default() };
        let tau = l1_trend_filter(&y, &cfg).unwrap();
        // near-exact recovery away from the jump
        for i in (10..140).chain(160..290) {
            assert!((tau[i] - truth[i]).abs() < 0.15, "i={i}: {}", tau[i]);
        }
        // the jump is sharp: large one-step change near 150
        let maxstep = (140..160).map(|i| (tau[i + 1] - tau[i]).abs()).fold(0.0f64, f64::max);
        assert!(maxstep > 1.5, "jump was smoothed away: {maxstep}");
    }

    #[test]
    fn recovers_piecewise_linear_trend() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 300;
        let truth: Vec<f64> = (0..n)
            .map(|i| if i < 150 { 0.02 * i as f64 } else { 3.0 - 0.01 * (i - 150) as f64 })
            .collect();
        let y: Vec<f64> = truth.iter().map(|t| t + 0.05 * rng.gen_range(-1.0..1.0)).collect();
        let cfg = L1TrendConfig { lambda1: 1.0, lambda2: 50.0, ..Default::default() };
        let tau = l1_trend_filter(&y, &cfg).unwrap();
        let err = tskit::stats::mae(&tau, &truth);
        assert!(err < 0.05, "MAE {err}");
    }

    #[test]
    fn robust_data_ignores_spikes() {
        let n = 200;
        let mut y = vec![2.0; n];
        y[50] = 30.0;
        y[120] = -25.0;
        let cfg = L1TrendConfig { robust_data: true, ..Default::default() };
        let tau = l1_trend_filter(&y, &cfg).unwrap();
        assert!((tau[50] - 2.0).abs() < 0.3, "spike leaked into trend: {}", tau[50]);
        let cfg2 = L1TrendConfig {
            robust_data: false,
            lambda1: 10.0,
            lambda2: 10.0,
            ..Default::default()
        };
        let tau2 = l1_trend_filter(&y, &cfg2).unwrap();
        assert!(
            (tau[50] - 2.0).abs() < (tau2[50] - 2.0).abs(),
            "robust loss should beat l2 at the spike"
        );
    }

    #[test]
    fn degenerate_inputs() {
        assert!(l1_trend_filter(&[], &L1TrendConfig::default()).unwrap().is_empty());
        assert_eq!(
            l1_trend_filter(&[1.0, 2.0], &L1TrendConfig::default()).unwrap(),
            vec![1.0, 2.0]
        );
        let bad = L1TrendConfig { lambda1: -1.0, ..Default::default() };
        assert!(l1_trend_filter(&[1.0, 2.0, 3.0], &bad).is_err());
    }

    #[test]
    fn zero_penalty_returns_data() {
        let y = vec![1.0, 5.0, -2.0, 4.0, 0.0];
        let cfg = L1TrendConfig { lambda1: 0.0, lambda2: 0.0, iters: 3, ..Default::default() };
        let tau = l1_trend_filter(&y, &cfg).unwrap();
        for (a, b) in tau.iter().zip(&y) {
            assert!((a - b).abs() < 1e-9);
        }
    }
}
