//! # decomp — seasonal-trend decomposition baselines
//!
//! Implementations of the STD methods OneShotSTL is compared against
//! (paper Table 1 / §5.2–5.3):
//!
//! - [`stl`]: classic STL (Cleveland et al. 1990) with LOESS smoothing,
//!   inner/outer loops and robustness weights.
//! - [`l1trend`]: ℓ1 trend filtering (Kim et al. 2009) solved by IRLS over
//!   a pentadiagonal system — shared building block of RobustSTL and
//!   JointSTL.
//! - [`robuststl`]: RobustSTL (Wen et al. 2018): bilateral denoising,
//!   doubly-regularized robust trend extraction, non-local seasonal
//!   filtering.
//! - [`onlinestl`]: OnlineSTL (Mishra et al. 2022): tri-cube trend filter +
//!   per-phase exponential seasonal smoothing, `O(T)` per update.
//! - [`window`]: Window-STL / Window-RobustSTL — any batch decomposer run on
//!   a sliding window, emitting the last point (the paper's baseline recipe
//!   for using batch methods online).
//! - [`online_robust`]: OnlineRobustSTL — the `O(T)` online variant of
//!   RobustSTL used in the paper's comparisons.
//!
//! The [`BatchDecomposer`] / [`OnlineDecomposer`] traits are shared with the
//! `oneshotstl` crate, which implements them for the paper's algorithm.

pub mod l1trend;
pub mod online_robust;
pub mod onlinestl;
pub mod robuststl;
pub mod stl;
pub mod traits;
pub mod window;

pub use l1trend::{l1_trend_filter, L1TrendConfig};
pub use online_robust::OnlineRobustStl;
pub use onlinestl::OnlineStl;
pub use robuststl::{RobustStl, RobustStlConfig};
pub use stl::{SeasonalSpan, Stl, StlConfig};
pub use traits::{BatchDecomposer, OnlineDecomposer};
pub use window::Windowed;
