//! Naive forecasting baselines (floors for Table 5).

use crate::traits::Forecaster;
use tskit::error::{Result, TsError};

/// Predicts the last observed value for every horizon step.
#[derive(Debug, Clone, Default)]
pub struct Naive {
    last: f64,
}

impl Forecaster for Naive {
    fn name(&self) -> String {
        "Naive".into()
    }

    fn fit(&mut self, history: &[f64], _period: usize) -> Result<()> {
        self.last = *history.last().ok_or(TsError::TooShort {
            what: "naive history",
            need: 1,
            got: 0,
        })?;
        Ok(())
    }

    fn forecast(&self, horizon: usize) -> Vec<f64> {
        vec![self.last; horizon]
    }

    fn observe(&mut self, y: f64) {
        self.last = y;
    }
}

/// Repeats the last full seasonal cycle.
#[derive(Debug, Clone, Default)]
pub struct SeasonalNaive {
    cycle: Vec<f64>,
    pos: usize,
}

impl Forecaster for SeasonalNaive {
    fn name(&self) -> String {
        "SeasonalNaive".into()
    }

    fn fit(&mut self, history: &[f64], period: usize) -> Result<()> {
        if period < 1 || history.len() < period {
            return Err(TsError::TooShort {
                what: "seasonal-naive history",
                need: period.max(1),
                got: history.len(),
            });
        }
        self.cycle = history[history.len() - period..].to_vec();
        self.pos = 0;
        Ok(())
    }

    fn forecast(&self, horizon: usize) -> Vec<f64> {
        let t = self.cycle.len();
        (0..horizon).map(|i| self.cycle[(self.pos + i) % t]).collect()
    }

    fn observe(&mut self, y: f64) {
        if self.cycle.is_empty() {
            return;
        }
        let t = self.cycle.len();
        self.cycle[self.pos % t] = y;
        self.pos = (self.pos + 1) % t;
    }
}

/// Extends the line through the first and last observations.
#[derive(Debug, Clone, Default)]
pub struct Drift {
    last: f64,
    slope: f64,
}

impl Forecaster for Drift {
    fn name(&self) -> String {
        "Drift".into()
    }

    fn fit(&mut self, history: &[f64], _period: usize) -> Result<()> {
        if history.len() < 2 {
            return Err(TsError::TooShort {
                what: "drift history",
                need: 2,
                got: history.len(),
            });
        }
        self.last = *history.last().expect("non-empty");
        self.slope = (self.last - history[0]) / (history.len() - 1) as f64;
        Ok(())
    }

    fn forecast(&self, horizon: usize) -> Vec<f64> {
        (1..=horizon).map(|i| self.last + self.slope * i as f64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_repeats_last() {
        let mut f = Naive::default();
        f.fit(&[1.0, 5.0], 1).unwrap();
        assert_eq!(f.forecast(3), vec![5.0; 3]);
        assert!(Naive::default().fit(&[], 1).is_err());
    }

    #[test]
    fn seasonal_naive_repeats_cycle() {
        let mut f = SeasonalNaive::default();
        f.fit(&[9.0, 1.0, 2.0, 3.0], 3).unwrap();
        assert_eq!(f.forecast(5), vec![1.0, 2.0, 3.0, 1.0, 2.0]);
    }

    #[test]
    fn seasonal_naive_observe_rolls_forward() {
        let mut f = SeasonalNaive::default();
        f.fit(&[1.0, 2.0, 3.0], 3).unwrap();
        f.observe(10.0); // replaces phase 0
        assert_eq!(f.forecast(3), vec![2.0, 3.0, 10.0]);
    }

    #[test]
    fn drift_extrapolates_line() {
        let mut f = Drift::default();
        f.fit(&[0.0, 1.0, 2.0, 3.0], 1).unwrap();
        let p = f.forecast(2);
        assert!((p[0] - 4.0).abs() < 1e-12);
        assert!((p[1] - 5.0).abs() < 1e-12);
    }
}
