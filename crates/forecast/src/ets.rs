//! Exponential smoothing: SES, Holt's linear trend, and additive
//! Holt-Winters, with in-sample grid search for the smoothing parameters.

use crate::traits::Forecaster;
use tskit::error::{Result, TsError};

/// Simple exponential smoothing with grid-tuned α.
#[derive(Debug, Clone, Default)]
pub struct Ses {
    /// Smoothing parameter (set by [`Forecaster::fit`]).
    pub alpha: f64,
    level: f64,
}

impl Ses {
    fn sse(history: &[f64], alpha: f64) -> f64 {
        let mut level = history[0];
        let mut sse = 0.0;
        for &y in &history[1..] {
            sse += (y - level) * (y - level);
            level += alpha * (y - level);
        }
        sse
    }
}

impl Forecaster for Ses {
    fn name(&self) -> String {
        "SES".into()
    }

    fn fit(&mut self, history: &[f64], _period: usize) -> Result<()> {
        if history.len() < 3 {
            return Err(TsError::TooShort { what: "SES history", need: 3, got: history.len() });
        }
        let mut best = (0.3, f64::INFINITY);
        for k in 1..=19 {
            let a = k as f64 / 20.0;
            let s = Self::sse(history, a);
            if s < best.1 {
                best = (a, s);
            }
        }
        self.alpha = best.0;
        let mut level = history[0];
        for &y in &history[1..] {
            level += self.alpha * (y - level);
        }
        self.level = level;
        Ok(())
    }

    fn forecast(&self, horizon: usize) -> Vec<f64> {
        vec![self.level; horizon]
    }

    fn observe(&mut self, y: f64) {
        self.level += self.alpha * (y - self.level);
    }
}

/// Additive Holt-Winters (level + trend + seasonal), grid-tuned.
#[derive(Debug, Clone)]
pub struct HoltWinters {
    /// Level smoothing α.
    pub alpha: f64,
    /// Trend smoothing β.
    pub beta: f64,
    /// Seasonal smoothing γ.
    pub gamma: f64,
    level: f64,
    trend: f64,
    season: Vec<f64>,
    pos: usize,
}

impl Default for HoltWinters {
    fn default() -> Self {
        HoltWinters {
            alpha: 0.3,
            beta: 0.05,
            gamma: 0.2,
            level: 0.0,
            trend: 0.0,
            season: Vec::new(),
            pos: 0,
        }
    }
}

impl HoltWinters {
    /// Runs the filter over `history`, returning the one-step SSE and the
    /// final state.
    fn run(
        history: &[f64],
        period: usize,
        alpha: f64,
        beta: f64,
        gamma: f64,
    ) -> (f64, f64, f64, Vec<f64>, usize) {
        let t = period;
        // init: level = mean of first cycle, trend from cycle means,
        // season = first-cycle deviations
        let first: f64 = history[..t].iter().sum::<f64>() / t as f64;
        let second: f64 = history[t..2 * t].iter().sum::<f64>() / t as f64;
        let mut level = first;
        let mut trend = (second - first) / t as f64;
        let mut season: Vec<f64> = history[..t].iter().map(|y| y - first).collect();
        let mut sse = 0.0;
        for (i, &y) in history.iter().enumerate().skip(t) {
            let s = season[i % t];
            let pred = level + trend + s;
            sse += (y - pred) * (y - pred);
            let new_level = alpha * (y - s) + (1.0 - alpha) * (level + trend);
            trend = beta * (new_level - level) + (1.0 - beta) * trend;
            season[i % t] = gamma * (y - new_level) + (1.0 - gamma) * s;
            level = new_level;
        }
        (sse, level, trend, season, history.len() % t)
    }
}

impl Forecaster for HoltWinters {
    fn name(&self) -> String {
        "HoltWinters".into()
    }

    fn fit(&mut self, history: &[f64], period: usize) -> Result<()> {
        if period < 2 {
            return Err(TsError::InvalidParam {
                name: "period",
                msg: "Holt-Winters needs period >= 2".into(),
            });
        }
        if history.len() < 2 * period + 1 {
            return Err(TsError::TooShort {
                what: "Holt-Winters history",
                need: 2 * period + 1,
                got: history.len(),
            });
        }
        let mut best = (self.alpha, self.beta, self.gamma, f64::INFINITY);
        for &a in &[0.1, 0.3, 0.5, 0.8] {
            for &b in &[0.01, 0.05, 0.2] {
                for &g in &[0.05, 0.2, 0.5] {
                    let (sse, ..) = Self::run(history, period, a, b, g);
                    if sse < best.3 {
                        best = (a, b, g, sse);
                    }
                }
            }
        }
        let (a, b, g, _) = best;
        let (_, level, trend, season, pos) = Self::run(history, period, a, b, g);
        self.alpha = a;
        self.beta = b;
        self.gamma = g;
        self.level = level;
        self.trend = trend;
        self.season = season;
        self.pos = pos;
        Ok(())
    }

    fn forecast(&self, horizon: usize) -> Vec<f64> {
        let t = self.season.len().max(1);
        (1..=horizon)
            .map(|i| self.level + self.trend * i as f64 + self.season[(self.pos + i - 1) % t])
            .collect()
    }

    fn observe(&mut self, y: f64) {
        if self.season.is_empty() {
            return;
        }
        let t = self.season.len();
        let s = self.season[self.pos % t];
        let new_level = self.alpha * (y - s) + (1.0 - self.alpha) * (self.level + self.trend);
        self.trend = self.beta * (new_level - self.level) + (1.0 - self.beta) * self.trend;
        self.season[self.pos % t] = self.gamma * (y - new_level) + (1.0 - self.gamma) * s;
        self.level = new_level;
        self.pos = (self.pos + 1) % t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn ses_flat_forecast_near_mean_level() {
        let mut rng = StdRng::seed_from_u64(1);
        let y: Vec<f64> = (0..200).map(|_| 5.0 + 0.1 * rng.gen_range(-1.0..1.0)).collect();
        let mut f = Ses::default();
        f.fit(&y, 1).unwrap();
        let p = f.forecast(3);
        assert!((p[0] - 5.0).abs() < 0.2);
        assert_eq!(p[0], p[2]);
    }

    #[test]
    fn holt_winters_tracks_trend_and_season() {
        let t = 12;
        let y: Vec<f64> = (0..20 * t)
            .map(|i| {
                0.05 * i as f64 + 2.0 * (2.0 * std::f64::consts::PI * i as f64 / t as f64).sin()
            })
            .collect();
        let mut f = HoltWinters::default();
        f.fit(&y[..18 * t], t).unwrap();
        let pred = f.forecast(t);
        let truth = &y[18 * t..19 * t];
        let err = tskit::stats::mae(&pred, truth);
        assert!(err < 0.4, "Holt-Winters MAE {err}");
    }

    #[test]
    fn holt_winters_observe_matches_refit_direction() {
        let t = 8;
        let y: Vec<f64> = (0..12 * t)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 / t as f64).sin())
            .collect();
        let mut f = HoltWinters::default();
        f.fit(&y[..10 * t], t).unwrap();
        // stream 2 more periods via observe
        for &v in &y[10 * t..12 * t] {
            f.observe(v);
        }
        let pred = f.forecast(t);
        // forecast should still track the sine
        let truth: Vec<f64> = (12 * t..13 * t)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 / t as f64).sin())
            .collect();
        let err = tskit::stats::mae(&pred, &truth);
        assert!(err < 0.3, "post-observe MAE {err}");
    }

    #[test]
    fn validation_errors() {
        assert!(Ses::default().fit(&[1.0], 1).is_err());
        assert!(HoltWinters::default().fit(&[1.0; 10], 1).is_err());
        assert!(HoltWinters::default().fit(&[1.0; 10], 8).is_err());
    }
}
