//! STD-based forecasting (paper §4): wrap an online decomposer, keep the
//! newest trend value and one period of seasonal values, and predict
//! `ŷ_{t+i} = τ_{t−1} + v[(t+i) mod T]`.
//!
//! This is the `OneShotSTL` / `OnlineSTL` entry of Table 5 — its striking
//! property is the **~0.3 s total runtime** against hours for the deep
//! baselines, with competitive MAE on strongly seasonal data.

use crate::traits::OnlineForecaster;
use decomp::traits::OnlineDecomposer;
use oneshotstl::StdForecaster;
use tskit::error::Result;

/// Adapter turning any [`OnlineDecomposer`] into an [`OnlineForecaster`].
pub struct StdOnlineForecaster<D: OnlineDecomposer> {
    inner: StdForecaster<D>,
    label: String,
}

impl<D: OnlineDecomposer> StdOnlineForecaster<D> {
    /// Wraps a decomposer under the given display name.
    pub fn new(label: impl Into<String>, decomposer: D) -> Self {
        StdOnlineForecaster { inner: StdForecaster::new(decomposer), label: label.into() }
    }
}

impl<D: OnlineDecomposer> OnlineForecaster for StdOnlineForecaster<D> {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn init(&mut self, history: &[f64], period: usize) -> Result<()> {
        self.inner.init(history, period)
    }

    fn observe(&mut self, y: f64) {
        self.inner.observe(y);
    }

    fn forecast(&self, horizon: usize) -> Vec<f64> {
        self.inner.predict_horizon(horizon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decomp::OnlineStl;
    use oneshotstl::{OneShotStl, OneShotStlConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn seasonal(n: usize, t: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                2.0 + (2.0 * std::f64::consts::PI * i as f64 / t as f64).sin()
                    + 0.05 * rng.gen_range(-1.0..1.0)
            })
            .collect()
    }

    #[test]
    fn oneshot_forecaster_tracks_season() {
        let t = 24;
        let y = seasonal(800, t, 1);
        let mut f = StdOnlineForecaster::new(
            "OneShotSTL",
            OneShotStl::new(OneShotStlConfig::default()),
        );
        f.init(&y[..4 * t], t).unwrap();
        for &v in &y[4 * t..700] {
            f.observe(v);
        }
        let pred = f.forecast(t);
        let truth = &y[700..700 + t];
        let err = tskit::stats::mae(&pred, truth);
        assert!(err < 0.15, "OneShotSTL forecast MAE {err}");
    }

    #[test]
    fn onlinestl_forecaster_also_works() {
        let t = 24;
        let y = seasonal(800, t, 2);
        let mut f = StdOnlineForecaster::new("OnlineSTL", OnlineStl::new());
        f.init(&y[..4 * t], t).unwrap();
        for &v in &y[4 * t..700] {
            f.observe(v);
        }
        let pred = f.forecast(t);
        let truth = &y[700..700 + t];
        let err = tskit::stats::mae(&pred, truth);
        assert!(err < 0.3, "OnlineSTL forecast MAE {err}");
    }
}
