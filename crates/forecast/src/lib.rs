//! # forecast — univariate time-series forecasting
//!
//! The TSF side of the paper's evaluation (§5.5, Table 5):
//!
//! - [`traits`]: the [`Forecaster`] (fit once, predict a horizon) and
//!   [`OnlineForecaster`] (observe stream, predict ahead) interfaces.
//! - [`naive`]: naive / seasonal-naive / drift baselines.
//! - [`ets`]: simple, Holt, and Holt-Winters exponential smoothing with
//!   grid-tuned parameters.
//! - [`theta`]: the Theta method (deseasonalized SES + drift).
//! - [`arima`]: AutoARIMA-lite — differencing-order selection, seasonal
//!   differencing, Hannan–Rissanen ARMA fitting, AICc order search.
//! - [`std_forecast`]: the paper's §4 STD forecasters (OneShotSTL /
//!   OnlineSTL + seasonal buffer extrapolation).
//! - [`heads`]: the §5 damped-trend STD→TSF rule and residual heads —
//!   batch models fitted on decomposition residuals, plugged into
//!   `oneshotstl::ForecastHead`.
//! - [`eval`]: rolling-origin evaluation over the Informer-style splits,
//!   plus the streaming [`ErrorAcc`] / [`RollingError`] accumulators the
//!   fleet reuses for per-series forecast-error tracking.

pub mod arima;
pub mod ets;
pub mod eval;
pub mod heads;
pub mod naive;
pub mod std_forecast;
pub mod theta;
pub mod traits;

pub use arima::AutoArima;
pub use ets::{HoltWinters, Ses};
pub use eval::{
    evaluate_forecaster, evaluate_online, ErrorAcc, EvalReport, RollingError, RollingErrorState,
};
pub use heads::{HeadedStl, ResidualHead, StlForecaster};
pub use naive::{Drift, Naive, SeasonalNaive};
pub use std_forecast::StdOnlineForecaster;
pub use theta::Theta;
pub use traits::{Forecaster, OnlineForecaster};
