//! Forecaster interfaces used by the Table 5 harness.

use tskit::error::Result;

/// A batch forecaster: fit on history, then predict a fixed horizon from
/// the end of that history.
pub trait Forecaster {
    /// Method name as printed in result tables.
    fn name(&self) -> String;

    /// Fits on the training history (chronological).
    fn fit(&mut self, history: &[f64], period: usize) -> Result<()>;

    /// Predicts the next `horizon` values after the fitted history.
    fn forecast(&self, horizon: usize) -> Vec<f64>;

    /// Optionally absorbs one new observation without a full refit
    /// (default: refit-free models override; others ignore and keep their
    /// fit — the rolling evaluation refits periodically instead).
    fn observe(&mut self, _y: f64) {}
}

/// An online forecaster in the paper's §4 sense: processes every arriving
/// point with an `O(1)`-ish update and can predict any horizon at any time.
pub trait OnlineForecaster {
    /// Method name as printed in result tables.
    fn name(&self) -> String;

    /// One-time initialization on a history prefix.
    fn init(&mut self, history: &[f64], period: usize) -> Result<()>;

    /// Absorbs one arriving observation.
    fn observe(&mut self, y: f64);

    /// Predicts the next `horizon` values from the current position.
    fn forecast(&self, horizon: usize) -> Vec<f64>;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Last(f64);

    impl Forecaster for Last {
        fn name(&self) -> String {
            "last".into()
        }
        fn fit(&mut self, history: &[f64], _period: usize) -> Result<()> {
            self.0 = *history.last().unwrap_or(&0.0);
            Ok(())
        }
        fn forecast(&self, horizon: usize) -> Vec<f64> {
            vec![self.0; horizon]
        }
        fn observe(&mut self, y: f64) {
            self.0 = y;
        }
    }

    #[test]
    fn trait_object_usage() {
        let mut f: Box<dyn Forecaster> = Box::new(Last(0.0));
        f.fit(&[1.0, 2.0, 3.0], 1).unwrap();
        assert_eq!(f.forecast(2), vec![3.0, 3.0]);
        f.observe(9.0);
        assert_eq!(f.forecast(1), vec![9.0]);
    }
}
