//! AutoARIMA-lite: automatic seasonal ARIMA along the lines of
//! `statsforecast`'s AutoARIMA (the paper's classical TSF baseline).
//!
//! Pipeline: (1) seasonal differencing when the seasonal strength warrants
//! it, (2) regular differencing chosen by a variance-reduction heuristic,
//! (3) ARMA(p, q) fitting with the Hannan–Rissanen two-stage regression,
//! (4) order selection by AICc over a small (p, q) grid, (5) forecasting by
//! the ARMA recursion and inverting the differencing transforms.

use crate::traits::Forecaster;
use tskit::dense::{lstsq, Mat};
use tskit::error::{Result, TsError};
use tskit::stats::{seasonal_strength, variance};

/// The fitted ARMA state on the differenced series.
#[derive(Debug, Clone, Default)]
struct ArmaFit {
    p: usize,
    q: usize,
    /// [intercept, φ_1..φ_p, θ_1..θ_q]
    coef: Vec<f64>,
    /// tail of the differenced series (most recent last)
    w_tail: Vec<f64>,
    /// tail of the residuals (aligned with `w_tail`)
    e_tail: Vec<f64>,
}

/// AutoARIMA-lite. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct AutoArima {
    /// Maximum AR order searched.
    pub max_p: usize,
    /// Maximum MA order searched.
    pub max_q: usize,
    /// Maximum regular differencing order.
    pub max_d: usize,
    /// Seasonal-strength threshold for seasonal differencing.
    pub seasonal_threshold: f64,
    d: usize,
    seasonal_d: bool,
    period: usize,
    fit: ArmaFit,
    /// raw history tail needed to invert the differencing
    history_tail: Vec<f64>,
}

impl Default for AutoArima {
    fn default() -> Self {
        AutoArima {
            max_p: 3,
            max_q: 2,
            max_d: 2,
            seasonal_threshold: 0.5,
            d: 0,
            seasonal_d: false,
            period: 1,
            fit: ArmaFit::default(),
            history_tail: Vec::new(),
        }
    }
}

fn difference(x: &[f64], lag: usize) -> Vec<f64> {
    if x.len() <= lag {
        return Vec::new();
    }
    (lag..x.len()).map(|i| x[i] - x[i - lag]).collect()
}

/// Hannan–Rissanen: high-order AR for residuals, then OLS on lags of both.
fn fit_arma(w: &[f64], p: usize, q: usize) -> Option<(Vec<f64>, Vec<f64>, f64)> {
    let n = w.len();
    let k = p.max(1).max(q);
    let ar_order = (2 * (p + q + 1)).clamp(4, n / 4);
    if n < ar_order + p + q + 10 {
        return None;
    }
    // stage 1: AR(ar_order) residuals
    let rows = n - ar_order;
    let mut design = Mat::zeros(rows, ar_order + 1);
    let mut target = vec![0.0; rows];
    for r in 0..rows {
        let t = r + ar_order;
        design[(r, 0)] = 1.0;
        for j in 0..ar_order {
            design[(r, j + 1)] = w[t - 1 - j];
        }
        target[r] = w[t];
    }
    let ar_coef = lstsq(&design, &target, 1e-8).ok()?;
    let mut resid = vec![0.0; n];
    for t in ar_order..n {
        let mut pred = ar_coef[0];
        for j in 0..ar_order {
            pred += ar_coef[j + 1] * w[t - 1 - j];
        }
        resid[t] = w[t] - pred;
    }
    // stage 2: regress w_t on p lags of w and q lags of resid
    let start = ar_order + k;
    let rows2 = n - start;
    if rows2 < p + q + 5 {
        return None;
    }
    let cols = 1 + p + q;
    let mut d2 = Mat::zeros(rows2, cols);
    let mut t2 = vec![0.0; rows2];
    for r in 0..rows2 {
        let t = r + start;
        d2[(r, 0)] = 1.0;
        for j in 0..p {
            d2[(r, 1 + j)] = w[t - 1 - j];
        }
        for j in 0..q {
            d2[(r, 1 + p + j)] = resid[t - 1 - j];
        }
        t2[r] = w[t];
    }
    let coef = lstsq(&d2, &t2, 1e-8).ok()?;
    // in-sample residuals of the final model (for the forecast recursion)
    let mut final_resid = vec![0.0; n];
    let mut sse = 0.0;
    let mut count = 0usize;
    for t in start..n {
        let mut pred = coef[0];
        for j in 0..p {
            pred += coef[1 + j] * w[t - 1 - j];
        }
        for j in 0..q {
            pred += coef[1 + p + j] * final_resid[t - 1 - j];
        }
        final_resid[t] = w[t] - pred;
        sse += final_resid[t] * final_resid[t];
        count += 1;
    }
    let sigma2 = sse / count.max(1) as f64;
    Some((coef, final_resid, sigma2))
}

/// One order-search candidate: `(aicc, p, q, coefficients, residuals)`.
type CandidateModel = (f64, usize, usize, Vec<f64>, Vec<f64>);

fn aicc(sigma2: f64, n_eff: usize, k: usize) -> f64 {
    let n = n_eff as f64;
    let kf = (k + 1) as f64;
    let denom = (n - kf - 1.0).max(1.0);
    n * sigma2.max(1e-300).ln() + 2.0 * kf + 2.0 * kf * (kf + 1.0) / denom
}

impl Forecaster for AutoArima {
    fn name(&self) -> String {
        "AutoARIMA".into()
    }

    fn fit(&mut self, history: &[f64], period: usize) -> Result<()> {
        let n = history.len();
        if n < 30 {
            return Err(TsError::TooShort { what: "AutoARIMA history", need: 30, got: n });
        }
        self.period = period.max(1);
        // (1) seasonal differencing
        self.seasonal_d = period >= 2
            && n > 3 * period
            && seasonal_strength(history, period) > self.seasonal_threshold;
        let mut w =
            if self.seasonal_d { difference(history, period) } else { history.to_vec() };
        // (2) regular differencing: only for near-unit-root series (very
        // high lag-1 autocorrelation) where differencing also shrinks the
        // variance — a cheap stand-in for the KPSS test
        self.d = 0;
        while self.d < self.max_d {
            let acf1 = tskit::stats::acf(&w, 1)[1];
            let dw = difference(&w, 1);
            if acf1 < 0.9 || dw.len() < 20 || variance(&dw) >= variance(&w) {
                break;
            }
            w = dw;
            self.d += 1;
        }
        // (3)/(4) order search
        // (aic, p, q, ar, ma) of the best candidate so far
        let mut best: Option<CandidateModel> = None;
        for p in 0..=self.max_p {
            for q in 0..=self.max_q {
                if p == 0 && q == 0 {
                    continue;
                }
                if let Some((coef, resid, sigma2)) = fit_arma(&w, p, q) {
                    let score = aicc(sigma2, w.len(), p + q + 1);
                    if best.as_ref().is_none_or(|b| score < b.0) {
                        best = Some((score, p, q, coef, resid));
                    }
                }
            }
        }
        let (_, p, q, coef, resid) = best.ok_or(TsError::TooShort {
            what: "AutoARIMA differenced series",
            need: 40,
            got: w.len(),
        })?;
        let tail = p.max(q).max(1);
        self.fit = ArmaFit {
            p,
            q,
            coef,
            w_tail: w[w.len() - tail..].to_vec(),
            e_tail: resid[resid.len() - tail..].to_vec(),
        };
        // history tail for inverting differencing: d values + one period
        let keep = self.d + if self.seasonal_d { self.period } else { 1 } + self.period;
        self.history_tail = history[n.saturating_sub(keep.max(2))..].to_vec();
        Ok(())
    }

    fn forecast(&self, horizon: usize) -> Vec<f64> {
        let f = &self.fit;
        if f.coef.is_empty() {
            return vec![0.0; horizon];
        }
        // ARMA recursion on the differenced scale
        let mut w_hist = f.w_tail.clone();
        let mut e_hist = f.e_tail.clone();
        let mut w_fore = Vec::with_capacity(horizon);
        for _ in 0..horizon {
            let mut pred = f.coef[0];
            for j in 0..f.p {
                let idx = w_hist.len() - 1 - j;
                pred += f.coef[1 + j] * w_hist[idx];
            }
            for j in 0..f.q {
                let idx = e_hist.len() - 1 - j;
                pred += f.coef[1 + f.p + j] * e_hist[idx];
            }
            w_fore.push(pred);
            w_hist.push(pred);
            e_hist.push(0.0);
        }
        // invert regular differencing (d integrations)
        let mut series = w_fore;
        for level in (0..self.d).rev() {
            // reconstruct the level-th differenced history's last value
            let mut base_hist = if self.seasonal_d {
                difference(&self.history_tail, self.period)
            } else {
                self.history_tail.clone()
            };
            for _ in 0..level {
                base_hist = difference(&base_hist, 1);
            }
            let mut last = *base_hist.last().unwrap_or(&0.0);
            for v in series.iter_mut() {
                last += *v;
                *v = last;
            }
        }
        // invert seasonal differencing
        if self.seasonal_d {
            let t = self.period;
            let hist = &self.history_tail;
            let mut out = Vec::with_capacity(series.len());
            for (h, &v) in series.iter().enumerate() {
                let prev = if h < t { hist[hist.len() - t + h] } else { out[h - t] };
                out.push(prev + v);
            }
            series = out;
        }
        series
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn fits_ar1_process() {
        // y_t = 0.8 y_{t-1} + e_t
        let mut rng = StdRng::seed_from_u64(1);
        let mut y = vec![0.0];
        for _ in 1..500 {
            let e: f64 = rng.gen_range(-0.5..0.5);
            y.push(0.8 * y.last().unwrap() + e);
        }
        let mut f = AutoArima::default();
        f.fit(&y, 1).unwrap();
        assert_eq!(f.d, 0, "AR(1) is stationary");
        // one-step forecast should shrink toward zero like 0.8·last
        let p = f.forecast(1)[0];
        let expect = 0.8 * y.last().unwrap();
        assert!((p - expect).abs() < 0.5, "forecast {p} vs ~{expect}");
    }

    #[test]
    fn differences_random_walk() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut y = vec![10.0];
        for _ in 1..500 {
            y.push(y.last().unwrap() + rng.gen_range(-0.5..0.5));
        }
        let mut f = AutoArima::default();
        f.fit(&y, 1).unwrap();
        assert!(f.d >= 1, "random walk needs differencing");
        let p = f.forecast(5);
        // forecasts stay near the last value
        for v in &p {
            assert!((v - y.last().unwrap()).abs() < 2.0, "{v}");
        }
    }

    #[test]
    fn seasonal_differencing_on_seasonal_data() {
        let t = 24;
        let mut rng = StdRng::seed_from_u64(3);
        let y: Vec<f64> = (0..600)
            .map(|i| {
                5.0 + 3.0 * (2.0 * std::f64::consts::PI * i as f64 / t as f64).sin()
                    + 0.1 * rng.gen_range(-1.0..1.0)
            })
            .collect();
        let mut f = AutoArima::default();
        f.fit(&y, t).unwrap();
        assert!(f.seasonal_d, "strong season should trigger seasonal differencing");
        let pred = f.forecast(t);
        let truth: Vec<f64> = (600..600 + t)
            .map(|i| 5.0 + 3.0 * (2.0 * std::f64::consts::PI * i as f64 / t as f64).sin())
            .collect();
        let err = tskit::stats::mae(&pred, &truth);
        assert!(err < 0.8, "seasonal ARIMA MAE {err}");
    }

    #[test]
    fn too_short_errors() {
        assert!(AutoArima::default().fit(&[1.0; 10], 1).is_err());
    }
}
