//! Forecast heads: this crate's models plugged into the core
//! decomposition through [`oneshotstl::ForecastHead`].
//!
//! The head protocol splits a forecast into the decomposer's base
//! carry-forward `τ(t) + v[(t+Δ+h) mod T]` plus a refinement computed
//! from the decomposed stream. Three adapters live here:
//!
//! - [`StlForecaster`] — `OneShotStl` under the §5 damped-trend rule as a
//!   plain [`OnlineForecaster`] (the `OneShotSTL+trend` row of the
//!   forecast bench).
//! - [`ResidualHead`] — any batch [`Forecaster`] (SES, Holt-Winters,
//!   Theta, AutoARIMA, …) fitted on a rolling window of decomposition
//!   residuals; its residual forecast is added to the base.
//! - [`HeadedStl`] — `OneShotStl` composed with an arbitrary
//!   [`ForecastHead`], exposed as an [`OnlineForecaster`] so headed
//!   variants drop straight into [`crate::eval`]'s harnesses.

use crate::traits::{Forecaster, OnlineForecaster};
use decomp::traits::OnlineDecomposer;
use oneshotstl::{ForecastHead, OneShotStl};
use tskit::error::Result;
use tskit::series::DecompPoint;

/// `OneShotStl` as an [`OnlineForecaster`] under the §5 forecast rule
/// `ŷ(t+h) = τ(t) + slope·Σφ^j + v[(t+Δ+h) mod T]`.
///
/// `φ = 1` is the paper's linear slope extrapolation, `φ = 0` plain
/// carry-forward. Multi-horizon calls go through the zero-allocation
/// `forecast_into` fill, so the values are bit-identical to the fleet's.
pub struct StlForecaster {
    stl: OneShotStl,
    phi: f64,
}

impl StlForecaster {
    /// Wraps a (not yet initialized) model with damping `φ ∈ [0, 1]`.
    pub fn new(stl: OneShotStl, phi: f64) -> Self {
        assert!((0.0..=1.0).contains(&phi) && phi.is_finite(), "damping must be in [0, 1]");
        StlForecaster { stl, phi }
    }

    /// The wrapped decomposer.
    pub fn stl(&self) -> &OneShotStl {
        &self.stl
    }
}

impl OnlineForecaster for StlForecaster {
    fn name(&self) -> String {
        format!("OneShotSTL+trend(phi={})", self.phi)
    }

    fn init(&mut self, history: &[f64], period: usize) -> Result<()> {
        self.stl.init(history, period).map(|_| ())
    }

    fn observe(&mut self, y: f64) {
        self.stl.update(y);
    }

    fn forecast(&self, horizon: usize) -> Vec<f64> {
        let mut out = vec![0.0; horizon];
        self.stl.forecast_into(self.phi, &mut out);
        out
    }
}

/// A residual head: fits a batch [`Forecaster`] on a rolling window of
/// decomposition residuals and adds its horizon-`h` residual forecast to
/// the base carry-forward.
///
/// The head warms up until `fit_window` residuals have streamed by, fits
/// the inner model on them, then feeds each further residual through
/// [`Forecaster::observe`] (refit-free models track online; others keep
/// their fit) and refits every `refit_every` points (`0` = fit once).
/// Until the first successful fit — and if every fit attempt errors —
/// [`ForecastHead::predict`] returns the base unchanged, so a failing
/// inner model degrades to carry-forward instead of poisoning forecasts.
pub struct ResidualHead<F: Forecaster> {
    inner: F,
    period: usize,
    window: Vec<f64>,
    head: usize,
    filled: bool,
    refit_every: usize,
    since_fit: usize,
    ready: bool,
}

impl<F: Forecaster> ResidualHead<F> {
    /// A head refitting `inner` on the last `fit_window ≥ 3` residuals of
    /// a period-`period` stream every `refit_every` points.
    pub fn new(inner: F, period: usize, fit_window: usize, refit_every: usize) -> Self {
        assert!(fit_window >= 3, "fit window must be >= 3");
        ResidualHead {
            inner,
            period,
            window: Vec::with_capacity(fit_window),
            head: 0,
            filled: false,
            refit_every,
            since_fit: 0,
            ready: false,
        }
    }

    /// Whether the inner model has been fitted (forecasts are refined).
    pub fn is_ready(&self) -> bool {
        self.ready
    }

    /// The inner model, for inspecting fitted parameters.
    pub fn inner(&self) -> &F {
        &self.inner
    }

    /// The rolling residual window in chronological order.
    fn chronological(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.window.len());
        out.extend_from_slice(&self.window[self.head..]);
        out.extend_from_slice(&self.window[..self.head]);
        out
    }

    fn try_fit(&mut self) {
        if self.inner.fit(&self.chronological(), self.period).is_ok() {
            self.ready = true;
        }
        self.since_fit = 0;
    }
}

impl<F: Forecaster> ForecastHead for ResidualHead<F> {
    fn name(&self) -> &'static str {
        "residual"
    }

    fn observe(&mut self, point: &DecompPoint) {
        let r = point.residual;
        if self.window.len() < self.window.capacity() {
            self.window.push(r);
            self.filled = self.window.len() == self.window.capacity();
            if self.filled {
                self.try_fit();
            }
            return;
        }
        self.window[self.head] = r;
        self.head = (self.head + 1) % self.window.len();
        if self.ready {
            self.inner.observe(r);
        }
        self.since_fit += 1;
        let due = self.refit_every > 0 && self.since_fit >= self.refit_every;
        if due || !self.ready {
            self.try_fit();
        }
    }

    fn predict(&self, base: f64, h: usize) -> f64 {
        if !self.ready {
            return base;
        }
        base + self.inner.forecast(h).get(h - 1).copied().unwrap_or(0.0)
    }
}

/// `OneShotStl` composed with a [`ForecastHead`], as an
/// [`OnlineForecaster`]: the decomposer supplies the base carry-forward
/// per horizon and streams every decomposed point into the head.
pub struct HeadedStl<H: ForecastHead> {
    stl: OneShotStl,
    head: H,
}

impl<H: ForecastHead> HeadedStl<H> {
    /// Composes a (not yet initialized) decomposer with a head.
    pub fn new(stl: OneShotStl, head: H) -> Self {
        HeadedStl { stl, head }
    }

    /// The head, for inspecting its state.
    pub fn head(&self) -> &H {
        &self.head
    }
}

impl<H: ForecastHead> OnlineForecaster for HeadedStl<H> {
    fn name(&self) -> String {
        format!("OneShotSTL+{}", self.head.name())
    }

    fn init(&mut self, history: &[f64], period: usize) -> Result<()> {
        self.stl.init(history, period).map(|_| ())
    }

    fn observe(&mut self, y: f64) {
        let p = self.stl.update(y);
        self.head.observe(&p);
    }

    fn forecast(&self, horizon: usize) -> Vec<f64> {
        (1..=horizon).map(|h| self.head.predict(self.stl.predict(h), h)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ets::Ses;
    use oneshotstl::{OneShotStlConfig, TrendHead};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn trended_seasonal(n: usize, period: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                0.05 * i as f64 + (2.0 * std::f64::consts::PI * i as f64 / period as f64).sin()
            })
            .collect()
    }

    #[test]
    fn stl_forecaster_matches_damped_recurrence_bitwise() {
        let period = 24;
        let y = trended_seasonal(500, period);
        let mut f = StlForecaster::new(OneShotStl::new(OneShotStlConfig::default()), 0.9);
        let mut m = OneShotStl::new(OneShotStlConfig::default());
        f.init(&y[..4 * period], period).unwrap();
        m.init(&y[..4 * period], period).unwrap();
        for &v in &y[4 * period..] {
            f.observe(v);
            m.update(v);
        }
        let pred = f.forecast(period);
        for (i, p) in pred.iter().enumerate() {
            assert_eq!(p.to_bits(), m.forecast_damped(i + 1, 0.9).to_bits(), "h={}", i + 1);
        }
    }

    #[test]
    fn headed_trend_equals_stl_forecaster_bitwise() {
        let period = 12;
        let y = trended_seasonal(400, period);
        let mut a = StlForecaster::new(OneShotStl::new(OneShotStlConfig::default()), 1.0);
        let mut b =
            HeadedStl::new(OneShotStl::new(OneShotStlConfig::default()), TrendHead::new(1.0));
        a.init(&y[..4 * period], period).unwrap();
        b.init(&y[..4 * period], period).unwrap();
        for &v in &y[4 * period..] {
            a.observe(v);
            b.observe(v);
        }
        let (pa, pb) = (a.forecast(period), b.forecast(period));
        for h in 0..period {
            assert_eq!(pa[h].to_bits(), pb[h].to_bits(), "h={}", h + 1);
        }
    }

    #[test]
    fn residual_head_refines_autocorrelated_residuals() {
        let period = 24;
        let mut rng = StdRng::seed_from_u64(7);
        // seasonal signal + strongly autocorrelated AR(1) residual: the
        // decomposition leaves the AR structure in the residual channel,
        // where SES can forecast it and carry-forward cannot
        let mut ar = 0.0;
        let y: Vec<f64> = (0..900)
            .map(|i| {
                ar = 0.97 * ar + 0.3 * rng.gen_range(-1.0..1.0);
                3.0 * (2.0 * std::f64::consts::PI * i as f64 / period as f64).sin() + ar
            })
            .collect();
        let mut plain = StlForecaster::new(OneShotStl::new(OneShotStlConfig::default()), 0.0);
        let mut headed = HeadedStl::new(
            OneShotStl::new(OneShotStlConfig::default()),
            ResidualHead::new(Ses::default(), period, 3 * period, period),
        );
        plain.init(&y[..4 * period], period).unwrap();
        headed.init(&y[..4 * period], period).unwrap();
        let (mut err_plain, mut err_headed) = (0.0, 0.0);
        for (t, &v) in y.iter().enumerate().skip(4 * period) {
            if t > 8 * period {
                err_plain += (plain.forecast(1)[0] - v).abs();
                err_headed += (headed.forecast(1)[0] - v).abs();
            }
            plain.observe(v);
            headed.observe(v);
        }
        assert!(headed.head().is_ready());
        assert!(err_headed < err_plain, "headed {err_headed} vs carry-forward {err_plain}");
    }

    #[test]
    fn unfitted_residual_head_is_carry_forward() {
        let head: ResidualHead<Ses> = ResidualHead::new(Ses::default(), 12, 16, 0);
        assert!(!head.is_ready());
        assert_eq!(head.predict(4.25, 3).to_bits(), 4.25f64.to_bits());
    }
}
