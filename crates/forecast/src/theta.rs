//! The Theta method (Assimakopoulos & Nikolopoulos 2000) — the M3
//! competition winner, equivalent to SES with drift on the θ=2 line,
//! applied to seasonally adjusted data.

use crate::ets::Ses;
use crate::traits::Forecaster;
use tskit::error::{Result, TsError};

/// Theta forecaster with additive seasonal adjustment.
#[derive(Debug, Clone, Default)]
pub struct Theta {
    ses: Ses,
    drift: f64,
    season: Vec<f64>,
    pos: usize,
    seasonal: bool,
}

impl Forecaster for Theta {
    fn name(&self) -> String {
        "Theta".into()
    }

    fn fit(&mut self, history: &[f64], period: usize) -> Result<()> {
        let n = history.len();
        if n < 4 {
            return Err(TsError::TooShort { what: "Theta history", need: 4, got: n });
        }
        // additive seasonal adjustment when the data is seasonal enough
        self.seasonal = period >= 2
            && n >= 3 * period
            && tskit::stats::seasonal_strength(history, period) > 0.3;
        let (adjusted, season) = if self.seasonal {
            let trend = tskit::smooth::centered_moving_average(history, period);
            let mut phase_sum = vec![0.0; period];
            let mut phase_cnt = vec![0usize; period];
            for i in 0..n {
                phase_sum[i % period] += history[i] - trend[i];
                phase_cnt[i % period] += 1;
            }
            let season: Vec<f64> =
                phase_sum.iter().zip(&phase_cnt).map(|(s, &c)| s / c.max(1) as f64).collect();
            let adjusted: Vec<f64> = (0..n).map(|i| history[i] - season[i % period]).collect();
            (adjusted, season)
        } else {
            (history.to_vec(), Vec::new())
        };
        // θ = 0 line: linear regression slope (the drift term, halved)
        let xbar = (n - 1) as f64 / 2.0;
        let ybar = tskit::stats::mean(&adjusted);
        let mut num = 0.0;
        let mut den = 0.0;
        for (i, &y) in adjusted.iter().enumerate() {
            num += (i as f64 - xbar) * (y - ybar);
            den += (i as f64 - xbar) * (i as f64 - xbar);
        }
        let slope = if den > 0.0 { num / den } else { 0.0 };
        self.drift = slope / 2.0;
        // θ = 2 line smoothed by SES
        self.ses = Ses::default();
        self.ses.fit(&adjusted, 1)?;
        self.season = season;
        self.pos = n % period.max(1);
        Ok(())
    }

    fn forecast(&self, horizon: usize) -> Vec<f64> {
        let base = self.ses.forecast(horizon);
        (0..horizon)
            .map(|i| {
                let mut v = base[i] + self.drift * (i + 1) as f64;
                if self.seasonal && !self.season.is_empty() {
                    v += self.season[(self.pos + i) % self.season.len()];
                }
                v
            })
            .collect()
    }

    fn observe(&mut self, y: f64) {
        let adj = if self.seasonal && !self.season.is_empty() {
            let s = self.season[self.pos % self.season.len()];
            self.pos = (self.pos + 1) % self.season.len();
            y - s
        } else {
            y
        };
        self.ses.observe(adj);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn captures_trend_with_drift() {
        let y: Vec<f64> = (0..100).map(|i| 1.0 + 0.5 * i as f64).collect();
        let mut f = Theta::default();
        f.fit(&y, 1).unwrap();
        let p = f.forecast(4);
        // theta forecast grows with half the regression slope + SES level
        assert!(p[3] > p[0], "must trend upward: {p:?}");
        assert!(p[0] > 45.0, "level should be near the end of history: {}", p[0]);
    }

    #[test]
    fn seasonal_adjustment_kicks_in() {
        let t = 12;
        let y: Vec<f64> = (0..20 * t)
            .map(|i| 3.0 * (2.0 * std::f64::consts::PI * i as f64 / t as f64).sin())
            .collect();
        let mut f = Theta::default();
        f.fit(&y, t).unwrap();
        assert!(f.seasonal);
        let pred = f.forecast(t);
        let truth: Vec<f64> = (20 * t..21 * t)
            .map(|i| 3.0 * (2.0 * std::f64::consts::PI * i as f64 / t as f64).sin())
            .collect();
        let err = tskit::stats::mae(&pred, &truth);
        assert!(err < 0.5, "seasonal Theta MAE {err}");
    }

    #[test]
    fn non_seasonal_data_skips_adjustment() {
        // white noise via xorshift (no spurious periodicity)
        let mut st = 0x0123_4567_89AB_CDEF_u64;
        let y: Vec<f64> = (0..200)
            .map(|_| {
                st ^= st << 13;
                st ^= st >> 7;
                st ^= st << 17;
                (st >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            })
            .collect();
        let mut f = Theta::default();
        f.fit(&y, 12).unwrap();
        assert!(!f.seasonal);
    }

    #[test]
    fn too_short_errors() {
        assert!(Theta::default().fit(&[1.0, 2.0], 1).is_err());
    }
}
