//! Rolling-origin forecast evaluation (the Table 5 protocol).
//!
//! For every origin `t` in the test region (stepped by `stride`), the model
//! sees data up to `t` and predicts `t+1 … t+h`; errors are pooled over all
//! origins and horizon steps. Online methods absorb each point exactly
//! once; batch methods absorb points via [`crate::traits::Forecaster::observe`]
//! and may be refit periodically.

use crate::traits::{Forecaster, OnlineForecaster};
use std::time::{Duration, Instant};
use tskit::error::Result;

/// Outcome of one (method, horizon) evaluation.
#[derive(Debug, Clone)]
pub struct EvalReport {
    /// Method name.
    pub method: String,
    /// Forecast horizon evaluated.
    pub horizon: usize,
    /// Pooled mean absolute error.
    pub mae: f64,
    /// Pooled symmetric MAPE.
    pub smape: f64,
    /// Number of forecast origins evaluated.
    pub windows: usize,
    /// Wall-clock time spent (fit + rolling forecasts).
    pub elapsed: Duration,
}

/// Evaluates an [`OnlineForecaster`]: init on `values[..init_end]`, then
/// stream through the test region, forecasting every `stride` points.
pub fn evaluate_online<F: OnlineForecaster + ?Sized>(
    f: &mut F,
    values: &[f64],
    period: usize,
    init_end: usize,
    test_start: usize,
    horizon: usize,
    stride: usize,
) -> Result<EvalReport> {
    assert!(init_end <= test_start && test_start < values.len(), "invalid split");
    let start = Instant::now();
    f.init(&values[..init_end], period)?;
    for &v in &values[init_end..test_start] {
        f.observe(v);
    }
    let mut abs_err = 0.0;
    let mut smape_sum = 0.0;
    let mut count = 0usize;
    let mut windows = 0usize;
    let stride = stride.max(1);
    let mut t = test_start;
    while t + horizon <= values.len() {
        let pred = f.forecast(horizon);
        for (i, &p) in pred.iter().enumerate() {
            let truth = values[t + i];
            abs_err += (truth - p).abs();
            smape_sum += 2.0 * (truth - p).abs() / (truth.abs() + p.abs()).max(1e-12);
            count += 1;
        }
        windows += 1;
        for &v in &values[t..(t + stride).min(values.len())] {
            f.observe(v);
        }
        t += stride;
    }
    Ok(EvalReport {
        method: f.name(),
        horizon,
        mae: if count > 0 { abs_err / count as f64 } else { 0.0 },
        smape: if count > 0 { smape_sum / count as f64 } else { 0.0 },
        windows,
        elapsed: start.elapsed(),
    })
}

/// Evaluates a batch [`Forecaster`]: fit on `values[..test_start]`, then
/// roll through the test region absorbing points via `observe`, refitting
/// every `refit_every` origins (0 = never refit).
#[allow(clippy::too_many_arguments)]
pub fn evaluate_forecaster<F: Forecaster + ?Sized>(
    f: &mut F,
    values: &[f64],
    period: usize,
    test_start: usize,
    horizon: usize,
    stride: usize,
    refit_every: usize,
) -> Result<EvalReport> {
    assert!(test_start < values.len(), "invalid split");
    let start = Instant::now();
    f.fit(&values[..test_start], period)?;
    let mut abs_err = 0.0;
    let mut smape_sum = 0.0;
    let mut count = 0usize;
    let mut windows = 0usize;
    let stride = stride.max(1);
    let mut t = test_start;
    while t + horizon <= values.len() {
        if refit_every > 0 && windows > 0 && windows.is_multiple_of(refit_every) {
            f.fit(&values[..t], period)?;
        }
        let pred = f.forecast(horizon);
        for (i, &p) in pred.iter().enumerate() {
            let truth = values[t + i];
            abs_err += (truth - p).abs();
            smape_sum += 2.0 * (truth - p).abs() / (truth.abs() + p.abs()).max(1e-12);
            count += 1;
        }
        windows += 1;
        for &v in &values[t..(t + stride).min(values.len())] {
            f.observe(v);
        }
        t += stride;
    }
    Ok(EvalReport {
        method: f.name(),
        horizon,
        mae: if count > 0 { abs_err / count as f64 } else { 0.0 },
        smape: if count > 0 { smape_sum / count as f64 } else { 0.0 },
        windows,
        elapsed: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::{Naive, SeasonalNaive};
    use crate::std_forecast::StdOnlineForecaster;
    use oneshotstl::{OneShotStl, OneShotStlConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn seasonal(n: usize, t: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                2.0 + (2.0 * std::f64::consts::PI * i as f64 / t as f64).sin()
                    + 0.05 * rng.gen_range(-1.0..1.0)
            })
            .collect()
    }

    #[test]
    fn seasonal_naive_beats_naive_on_seasonal_data() {
        let t = 24;
        let y = seasonal(1000, t, 1);
        let mut naive = Naive::default();
        let r_naive = evaluate_forecaster(&mut naive, &y, t, 800, t, t, 0).unwrap();
        let mut snaive = SeasonalNaive::default();
        let r_snaive = evaluate_forecaster(&mut snaive, &y, t, 800, t, t, 0).unwrap();
        assert!(
            r_snaive.mae < 0.5 * r_naive.mae,
            "seasonal naive {} vs naive {}",
            r_snaive.mae,
            r_naive.mae
        );
        assert!(r_snaive.windows > 0);
    }

    #[test]
    fn online_eval_runs_oneshotstl() {
        let t = 24;
        let y = seasonal(1000, t, 2);
        let mut f = StdOnlineForecaster::new(
            "OneShotSTL",
            OneShotStl::new(OneShotStlConfig::default()),
        );
        let r = evaluate_online(&mut f, &y, t, 4 * t, 800, t, t / 2).unwrap();
        assert!(r.mae < 0.2, "OneShotSTL rolling MAE {}", r.mae);
        assert!(r.windows >= 5);
        assert_eq!(r.method, "OneShotSTL");
    }

    #[test]
    #[should_panic(expected = "invalid split")]
    fn bad_split_panics() {
        let y = vec![0.0; 10];
        let mut f = Naive::default();
        let _ = evaluate_forecaster(&mut f, &y, 1, 20, 2, 1, 0);
    }
}
