//! Rolling-origin forecast evaluation (the Table 5 protocol).
//!
//! For every origin `t` in the test region (stepped by `stride`), the model
//! sees data up to `t` and predicts `t+1 … t+h`; errors are pooled over all
//! origins and horizon steps. Online methods absorb each point exactly
//! once; batch methods absorb points via [`crate::traits::Forecaster::observe`]
//! and may be refit periodically.

use crate::traits::{Forecaster, OnlineForecaster};
use std::time::{Duration, Instant};
use tskit::error::Result;

/// Incremental (streaming) MAE/sMAPE accumulator: feed `(truth, pred)`
/// pairs one at a time, read pooled errors at any point. This is the
/// exact accumulation the rolling-origin evaluators below pool over all
/// origins — extracted so hosts (e.g. the fleet's per-series forecast
/// error tracker) can run it online without materializing slices.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ErrorAcc {
    abs_err: f64,
    smape_sum: f64,
    count: u64,
}

impl ErrorAcc {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// The absolute error and sMAPE term of one `(truth, pred)` pair —
    /// `sMAPE = 2|y−ŷ| / max(|y|+|ŷ|, 1e-12)`, pooled by every consumer
    /// of this module, so one definition serves them all.
    pub fn terms(truth: f64, pred: f64) -> (f64, f64) {
        let abs = (truth - pred).abs();
        (abs, 2.0 * abs / (truth.abs() + pred.abs()).max(1e-12))
    }

    /// Absorbs one `(truth, pred)` pair.
    pub fn record(&mut self, truth: f64, pred: f64) {
        let (abs, smape) = Self::terms(truth, pred);
        self.abs_err += abs;
        self.smape_sum += smape;
        self.count += 1;
    }

    /// Pooled mean absolute error (0 before any pair).
    pub fn mae(&self) -> f64 {
        if self.count > 0 {
            self.abs_err / self.count as f64
        } else {
            0.0
        }
    }

    /// Pooled symmetric MAPE (0 before any pair).
    pub fn smape(&self) -> f64 {
        if self.count > 0 {
            self.smape_sum / self.count as f64
        } else {
            0.0
        }
    }

    /// Number of pairs absorbed.
    pub fn count(&self) -> u64 {
        self.count
    }
}

/// O(1) *windowed* MAE/sMAPE over the last `W` `(truth, pred)` pairs:
/// a ring buffer of per-pair error terms with running sums — each
/// [`RollingError::record`] is one subtract + one add per metric, no
/// allocation after construction. This is the fleet's per-series rolling
/// forecast-error tracker; see [`RollingErrorState`] for persistence.
#[derive(Debug, Clone, PartialEq)]
pub struct RollingError {
    /// Per-pair absolute errors, ring-indexed by `head`.
    abs: Vec<f64>,
    /// Per-pair sMAPE terms, same ring positions.
    sm: Vec<f64>,
    /// Next write position.
    head: u32,
    /// Pairs currently in the window (`≤ abs.len()`).
    len: u32,
    /// Running sum of `abs` (kept incrementally — deterministic, so a
    /// snapshot-restored tracker continues bit-identically).
    sum_abs: f64,
    /// Running sum of `sm`.
    sum_sm: f64,
}

impl RollingError {
    /// A tracker over the last `window ≥ 1` pairs.
    pub fn new(window: usize) -> Self {
        assert!(window >= 1, "rolling error window must be >= 1");
        RollingError {
            abs: vec![0.0; window],
            sm: vec![0.0; window],
            head: 0,
            len: 0,
            sum_abs: 0.0,
            sum_sm: 0.0,
        }
    }

    /// Absorbs one `(truth, pred)` pair, evicting the oldest once full.
    pub fn record(&mut self, truth: f64, pred: f64) {
        let (abs, smape) = ErrorAcc::terms(truth, pred);
        let i = self.head as usize;
        self.sum_abs += abs - self.abs[i];
        self.sum_sm += smape - self.sm[i];
        self.abs[i] = abs;
        self.sm[i] = smape;
        self.head = (self.head + 1) % self.abs.len() as u32;
        self.len = (self.len + 1).min(self.abs.len() as u32);
    }

    /// Mean absolute error over the window (0 before any pair).
    pub fn mae(&self) -> f64 {
        if self.len > 0 {
            self.sum_abs / self.len as f64
        } else {
            0.0
        }
    }

    /// Symmetric MAPE over the window (0 before any pair).
    pub fn smape(&self) -> f64 {
        if self.len > 0 {
            self.sum_sm / self.len as f64
        } else {
            0.0
        }
    }

    /// Pairs currently in the window.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether no pair has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The configured window size `W`.
    pub fn window(&self) -> usize {
        self.abs.len()
    }

    /// Whether the window has filled at least once.
    pub fn is_full(&self) -> bool {
        self.len as usize == self.abs.len()
    }

    /// Extracts a plain-data snapshot (raw ring + running sums, so a
    /// restored tracker is bit-identical — recomputing the sums in a
    /// different order would not be).
    pub fn to_state(&self) -> RollingErrorState {
        RollingErrorState {
            abs: self.abs.clone(),
            sm: self.sm.clone(),
            head: self.head,
            len: self.len,
            sum_abs: self.sum_abs,
            sum_sm: self.sum_sm,
        }
    }

    /// Rebuilds a tracker from [`RollingError::to_state`] output,
    /// rejecting structurally invalid state with a message.
    pub fn from_state(state: RollingErrorState) -> std::result::Result<Self, String> {
        let window = state.abs.len();
        if window == 0 {
            return Err("rolling error window must be >= 1".into());
        }
        if state.sm.len() != window {
            return Err("rolling error rings disagree on window size".into());
        }
        if state.head as usize >= window || state.len as usize > window {
            return Err("rolling error ring indices out of range".into());
        }
        for v in state.abs.iter().chain(&state.sm) {
            if !(v.is_finite() && *v >= 0.0) {
                return Err(format!("rolling error entries must be finite and >= 0, got {v}"));
            }
        }
        if !(state.sum_abs.is_finite()
            && state.sum_abs >= 0.0
            && state.sum_sm.is_finite()
            && state.sum_sm >= 0.0)
        {
            return Err("rolling error sums must be finite and >= 0".into());
        }
        Ok(RollingError {
            abs: state.abs,
            sm: state.sm,
            head: state.head,
            len: state.len,
            sum_abs: state.sum_abs,
            sum_sm: state.sum_sm,
        })
    }
}

/// Plain-data snapshot of a [`RollingError`] (see `fleet::codec`).
#[derive(Debug, Clone, PartialEq)]
pub struct RollingErrorState {
    /// Per-pair absolute errors (length = window).
    pub abs: Vec<f64>,
    /// Per-pair sMAPE terms (length = window).
    pub sm: Vec<f64>,
    /// Next write position.
    pub head: u32,
    /// Pairs currently in the window.
    pub len: u32,
    /// Running sum of `abs`.
    pub sum_abs: f64,
    /// Running sum of `sm`.
    pub sum_sm: f64,
}

/// Outcome of one (method, horizon) evaluation.
#[derive(Debug, Clone)]
pub struct EvalReport {
    /// Method name.
    pub method: String,
    /// Forecast horizon evaluated.
    pub horizon: usize,
    /// Pooled mean absolute error.
    pub mae: f64,
    /// Pooled symmetric MAPE.
    pub smape: f64,
    /// Number of forecast origins evaluated.
    pub windows: usize,
    /// Wall-clock time spent (fit + rolling forecasts).
    pub elapsed: Duration,
}

/// Evaluates an [`OnlineForecaster`]: init on `values[..init_end]`, then
/// stream through the test region, forecasting every `stride` points.
pub fn evaluate_online<F: OnlineForecaster + ?Sized>(
    f: &mut F,
    values: &[f64],
    period: usize,
    init_end: usize,
    test_start: usize,
    horizon: usize,
    stride: usize,
) -> Result<EvalReport> {
    assert!(init_end <= test_start && test_start < values.len(), "invalid split");
    let start = Instant::now();
    f.init(&values[..init_end], period)?;
    for &v in &values[init_end..test_start] {
        f.observe(v);
    }
    let mut acc = ErrorAcc::new();
    let mut windows = 0usize;
    let stride = stride.max(1);
    let mut t = test_start;
    while t + horizon <= values.len() {
        let pred = f.forecast(horizon);
        for (i, &p) in pred.iter().enumerate() {
            acc.record(values[t + i], p);
        }
        windows += 1;
        for &v in &values[t..(t + stride).min(values.len())] {
            f.observe(v);
        }
        t += stride;
    }
    Ok(EvalReport {
        method: f.name(),
        horizon,
        mae: acc.mae(),
        smape: acc.smape(),
        windows,
        elapsed: start.elapsed(),
    })
}

/// Evaluates a batch [`Forecaster`]: fit on `values[..test_start]`, then
/// roll through the test region absorbing points via `observe`, refitting
/// every `refit_every` origins (0 = never refit).
#[allow(clippy::too_many_arguments)]
pub fn evaluate_forecaster<F: Forecaster + ?Sized>(
    f: &mut F,
    values: &[f64],
    period: usize,
    test_start: usize,
    horizon: usize,
    stride: usize,
    refit_every: usize,
) -> Result<EvalReport> {
    assert!(test_start < values.len(), "invalid split");
    let start = Instant::now();
    f.fit(&values[..test_start], period)?;
    let mut acc = ErrorAcc::new();
    let mut windows = 0usize;
    let stride = stride.max(1);
    let mut t = test_start;
    while t + horizon <= values.len() {
        if refit_every > 0 && windows > 0 && windows.is_multiple_of(refit_every) {
            f.fit(&values[..t], period)?;
        }
        let pred = f.forecast(horizon);
        for (i, &p) in pred.iter().enumerate() {
            acc.record(values[t + i], p);
        }
        windows += 1;
        for &v in &values[t..(t + stride).min(values.len())] {
            f.observe(v);
        }
        t += stride;
    }
    Ok(EvalReport {
        method: f.name(),
        horizon,
        mae: acc.mae(),
        smape: acc.smape(),
        windows,
        elapsed: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::{Naive, SeasonalNaive};
    use crate::std_forecast::StdOnlineForecaster;
    use oneshotstl::{OneShotStl, OneShotStlConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn seasonal(n: usize, t: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                2.0 + (2.0 * std::f64::consts::PI * i as f64 / t as f64).sin()
                    + 0.05 * rng.gen_range(-1.0..1.0)
            })
            .collect()
    }

    #[test]
    fn seasonal_naive_beats_naive_on_seasonal_data() {
        let t = 24;
        let y = seasonal(1000, t, 1);
        let mut naive = Naive::default();
        let r_naive = evaluate_forecaster(&mut naive, &y, t, 800, t, t, 0).unwrap();
        let mut snaive = SeasonalNaive::default();
        let r_snaive = evaluate_forecaster(&mut snaive, &y, t, 800, t, t, 0).unwrap();
        assert!(
            r_snaive.mae < 0.5 * r_naive.mae,
            "seasonal naive {} vs naive {}",
            r_snaive.mae,
            r_naive.mae
        );
        assert!(r_snaive.windows > 0);
    }

    #[test]
    fn online_eval_runs_oneshotstl() {
        let t = 24;
        let y = seasonal(1000, t, 2);
        let mut f = StdOnlineForecaster::new(
            "OneShotSTL",
            OneShotStl::new(OneShotStlConfig::default()),
        );
        let r = evaluate_online(&mut f, &y, t, 4 * t, 800, t, t / 2).unwrap();
        assert!(r.mae < 0.2, "OneShotSTL rolling MAE {}", r.mae);
        assert!(r.windows >= 5);
        assert_eq!(r.method, "OneShotSTL");
    }

    #[test]
    #[should_panic(expected = "invalid split")]
    fn bad_split_panics() {
        let y = vec![0.0; 10];
        let mut f = Naive::default();
        let _ = evaluate_forecaster(&mut f, &y, 1, 20, 2, 1, 0);
    }

    /// The streaming accumulator matches a hand-pooled computation.
    #[test]
    fn error_acc_matches_pooled_formulas() {
        let pairs = [(1.0, 0.5), (2.0, 2.5), (-1.0, 1.0), (0.0, 0.0)];
        let mut acc = ErrorAcc::new();
        for &(t, p) in &pairs {
            acc.record(t, p);
        }
        let mae: f64 = pairs.iter().map(|(t, p)| (t - p).abs()).sum::<f64>() / 4.0;
        let smape: f64 = pairs
            .iter()
            .map(|(t, p)| 2.0 * (t - p).abs() / (t.abs() + p.abs()).max(1e-12))
            .sum::<f64>()
            / 4.0;
        assert_eq!(acc.mae().to_bits(), mae.to_bits());
        assert_eq!(acc.smape().to_bits(), smape.to_bits());
        assert_eq!(acc.count(), 4);
        assert_eq!(ErrorAcc::new().mae(), 0.0);
    }

    /// The O(1) rolling tracker agrees with a brute-force recomputation
    /// over the last W pairs at every step, including across wrap-around.
    #[test]
    fn rolling_error_matches_brute_force_window() {
        let w = 5;
        let mut roll = RollingError::new(w);
        let mut history: Vec<(f64, f64)> = Vec::new();
        for i in 0..40 {
            let truth = (i as f64 * 0.7).sin() * 3.0;
            let pred = truth + ((i % 7) as f64 - 3.0) * 0.1;
            roll.record(truth, pred);
            history.push((truth, pred));
            let tail = &history[history.len().saturating_sub(w)..];
            let mut brute = ErrorAcc::new();
            for &(t, p) in tail {
                brute.record(t, p);
            }
            assert_eq!(roll.len(), tail.len());
            assert!((roll.mae() - brute.mae()).abs() < 1e-12, "mae diverged at {i}");
            assert!((roll.smape() - brute.smape()).abs() < 1e-12, "smape diverged at {i}");
        }
        assert!(roll.is_full());
    }

    /// Rolling tracker state round-trips bit-identically and keeps
    /// recording; invalid states are rejected with a message.
    #[test]
    fn rolling_error_state_roundtrip_and_validation() {
        let mut a = RollingError::new(4);
        for i in 0..11 {
            a.record(i as f64, i as f64 * 1.1);
        }
        let mut b = RollingError::from_state(a.to_state()).unwrap();
        assert_eq!(a, b);
        for i in 0..9 {
            a.record(2.0 * i as f64, 1.0);
            b.record(2.0 * i as f64, 1.0);
            assert_eq!(a.mae().to_bits(), b.mae().to_bits());
            assert_eq!(a.smape().to_bits(), b.smape().to_bits());
        }

        let good = a.to_state();
        let empty = RollingErrorState { abs: vec![], sm: vec![], ..good.clone() };
        assert!(RollingError::from_state(empty).is_err());
        let ragged = RollingErrorState { sm: vec![0.0; 3], ..good.clone() };
        assert!(RollingError::from_state(ragged).is_err());
        let bad_head = RollingErrorState { head: 4, ..good.clone() };
        assert!(RollingError::from_state(bad_head).is_err());
        let bad_len = RollingErrorState { len: 5, ..good.clone() };
        assert!(RollingError::from_state(bad_len).is_err());
        let neg = RollingErrorState { abs: vec![-1.0; 4], ..good.clone() };
        assert!(RollingError::from_state(neg).is_err());
        let nan_sum = RollingErrorState { sum_abs: f64::NAN, ..good };
        assert!(RollingError::from_state(nan_sum).is_err());
    }

    #[test]
    #[should_panic(expected = "window must be >= 1")]
    fn rolling_error_rejects_zero_window() {
        let _ = RollingError::new(0);
    }
}
