//! STOMP (batch matrix profile) and STOMPI (incremental append).
//!
//! The matrix profile `MP[i]` is the z-normalized distance from the
//! subsequence starting at `i` to its nearest non-trivial neighbour; high
//! values mark discords (anomalies). STOMP computes all profiles in
//! `O(n²)` with an `O(1)` dot-product recurrence per cell; STOMPI appends
//! one point in `O(n)` — the online variant benchmarked in Table 3/4.

// index recurrences here mirror the published algorithms; iterator
// rewrites obscure the maths
#![allow(clippy::needless_range_loop)]
use crate::mass::mass;
use crate::traits::TsadMethod;
use crate::znorm::rolling_mean_std;
use tskit::fft::sliding_dot_product_naive;

/// Batch z-normalized matrix profile of `x` with subsequence length `m`
/// and an exclusion zone of `m/2` around the trivial match. Returns one
/// value per subsequence start (`x.len() − m + 1` entries).
pub fn matrix_profile(x: &[f64], m: usize) -> Vec<f64> {
    let n = x.len();
    if m < 2 || n < 2 * m {
        return vec![0.0; n.saturating_sub(m.max(1)) + 1];
    }
    let l = n - m + 1;
    let excl = (m / 2).max(1);
    let (mu, sigma) = rolling_mean_std(x, m);
    let mf = m as f64;
    // initial dot products: first row of the distance matrix
    let mut qt = sliding_dot_product_naive(&x[0..m], x);
    let qt_first = qt.clone();
    let mut profile = vec![f64::INFINITY; l];
    let update_profile = |profile: &mut [f64], row: usize, qt: &[f64]| {
        for j in 0..l {
            if (j as i64 - row as i64).abs() < excl as i64 {
                continue;
            }
            let corr = (qt[j] - mf * mu[row] * mu[j]) / (mf * sigma[row] * sigma[j]);
            let d = (2.0 * mf * (1.0 - corr.clamp(-1.0, 1.0))).max(0.0).sqrt();
            if d < profile[row] {
                profile[row] = d;
            }
            if d < profile[j] {
                profile[j] = d;
            }
        }
    };
    update_profile(&mut profile, 0, &qt);
    for row in 1..l {
        // QT(row, j) = QT(row-1, j-1) − x[row-1]·x[j-1] + x[row+m-1]·x[j+m-1]
        for j in (1..l).rev() {
            qt[j] = qt[j - 1] - x[row - 1] * x[j - 1] + x[row + m - 1] * x[j + m - 1];
        }
        qt[0] = qt_first[row];
        update_profile(&mut profile, row, &qt);
    }
    for p in profile.iter_mut() {
        if !p.is_finite() {
            *p = 0.0;
        }
    }
    profile
}

/// Incremental matrix profile: maintains the series and left-profile data
/// so each appended point costs `O(n)` (one MASS-style pass).
#[derive(Debug, Clone)]
pub struct Stompi {
    m: usize,
    x: Vec<f64>,
    /// `profile[i]`: best distance for the subsequence starting at `i`.
    profile: Vec<f64>,
}

impl Stompi {
    /// Initializes from a training prefix (batch STOMP over it).
    pub fn new(train: &[f64], m: usize) -> Self {
        let m = m.max(2);
        let profile = if train.len() >= 2 * m { matrix_profile(train, m) } else { Vec::new() };
        Stompi { m, x: train.to_vec(), profile }
    }

    /// Appends one point; returns the profile value of the newest complete
    /// subsequence (0 until enough data has arrived).
    pub fn push(&mut self, y: f64) -> f64 {
        self.x.push(y);
        let n = self.x.len();
        let m = self.m;
        if n < 2 * m {
            return 0.0;
        }
        let start = n - m; // newest subsequence start
        let query = &self.x[start..];
        let dp = mass(query, &self.x[..n]);
        let excl = (m / 2).max(1);
        // distance of the new subsequence to all previous ones, and update
        // the previous entries with their distance to the new one
        let mut best = f64::INFINITY;
        let limit = dp.len().saturating_sub(excl); // exclusion zone at the end
        for (j, &d) in dp.iter().enumerate().take(limit) {
            if d < best {
                best = d;
            }
            if j < self.profile.len() && d < self.profile[j] {
                self.profile[j] = d;
            }
        }
        while self.profile.len() < start {
            self.profile.push(f64::INFINITY);
        }
        let score = if best.is_finite() { best } else { 0.0 };
        self.profile.push(score);
        score
    }
}

impl TsadMethod for Stompi {
    fn name(&self) -> String {
        "STOMPI".into()
    }

    fn score(&mut self, train: &[f64], test: &[f64], period: usize) -> Vec<f64> {
        let m = period.clamp(8, 256);
        *self = Stompi::new(train, m);
        test.iter().map(|&y| self.push(y)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn seasonal_with_discord(n: usize, t: usize, discord_at: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x: Vec<f64> = (0..n)
            .map(|i| {
                (2.0 * std::f64::consts::PI * i as f64 / t as f64).sin()
                    + 0.05 * rng.gen_range(-1.0..1.0)
            })
            .collect();
        // a shape discord: reverse one window
        x[discord_at..discord_at + t].reverse();
        x
    }

    #[test]
    fn profile_peaks_at_discord() {
        let t = 32;
        let x = seasonal_with_discord(800, t, 500, 1);
        let mp = matrix_profile(&x, t);
        let peak = tskit::stats::argmax(&mp).unwrap();
        assert!((peak as i64 - 500).abs() < t as i64, "discord at 500, profile peak at {peak}");
    }

    #[test]
    fn profile_near_zero_on_pure_period() {
        let t = 25;
        let x: Vec<f64> = (0..500)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 / t as f64).sin())
            .collect();
        let mp = matrix_profile(&x, t);
        assert!(
            mp.iter().all(|&d| d < 0.5),
            "max {:?}",
            mp.iter().cloned().fold(0.0f64, f64::max)
        );
    }

    #[test]
    fn stompi_matches_batch_on_final_profile() {
        let t = 16;
        let x = seasonal_with_discord(420, t, 300, 2);
        let split = 200;
        let mut inc = Stompi::new(&x[..split], t);
        for &v in &x[split..] {
            inc.push(v);
        }
        let batch = matrix_profile(&x, t);
        // STOMPI computes the same nearest-neighbour structure; allow small
        // slack because entries in [split-m, split) were frozen at init
        let l = batch.len();
        let mut close = 0;
        for i in 0..l {
            if (inc.profile[i] - batch[i]).abs() < 1e-6 {
                close += 1;
            }
        }
        assert!(close as f64 > 0.9 * l as f64, "only {close}/{l} profile entries agree");
    }

    #[test]
    fn stompi_scores_discord_highest() {
        let t = 32;
        let x = seasonal_with_discord(900, t, 600, 3);
        let mut s = Stompi::new(&x[..400], t);
        let scores: Vec<f64> = x[400..].iter().map(|&v| s.push(v)).collect();
        let peak = tskit::stats::argmax(&scores).unwrap() + 400;
        assert!(
            (peak as i64 - (600 + t as i64)).abs() <= t as i64 + 2,
            "discord window [600,632), newest-subsequence peak at {peak}"
        );
    }

    #[test]
    fn short_input_degenerates_gracefully() {
        let x = vec![1.0; 10];
        let mp = matrix_profile(&x, 8);
        assert!(mp.iter().all(|&v| v == 0.0));
        let mut s = Stompi::new(&[1.0, 2.0], 8);
        assert_eq!(s.push(1.0), 0.0);
    }
}
