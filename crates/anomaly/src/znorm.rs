//! Rolling statistics for z-normalized subsequence distances.

/// Means and standard deviations of every length-`m` window of `x`
/// (`x.len() − m + 1` entries), computed with prefix sums in `O(n)`.
/// Standard deviations are clamped below by `1e-12` so z-normalization of
/// flat windows stays finite.
pub fn rolling_mean_std(x: &[f64], m: usize) -> (Vec<f64>, Vec<f64>) {
    let n = x.len();
    assert!(m >= 1, "window must be non-empty");
    if m > n {
        return (Vec::new(), Vec::new());
    }
    let mut ps = vec![0.0; n + 1];
    let mut ps2 = vec![0.0; n + 1];
    for i in 0..n {
        ps[i + 1] = ps[i] + x[i];
        ps2[i + 1] = ps2[i] + x[i] * x[i];
    }
    let mut means = Vec::with_capacity(n - m + 1);
    let mut stds = Vec::with_capacity(n - m + 1);
    let mf = m as f64;
    for i in 0..=n - m {
        let s = ps[i + m] - ps[i];
        let s2 = ps2[i + m] - ps2[i];
        let mean = s / mf;
        let var = (s2 / mf - mean * mean).max(0.0);
        means.push(mean);
        stds.push(var.sqrt().max(1e-12));
    }
    (means, stds)
}

/// Z-normalized Euclidean distance between two equal-length slices,
/// computed directly (reference for the MASS fast path).
pub fn znorm_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "znorm_distance: length mismatch");
    let m = a.len();
    if m == 0 {
        return 0.0;
    }
    let (ma, sa) = (tskit::stats::mean(a), tskit::stats::std_dev(a).max(1e-12));
    let (mb, sb) = (tskit::stats::mean(b), tskit::stats::std_dev(b).max(1e-12));
    let mut d2 = 0.0;
    for i in 0..m {
        let za = (a[i] - ma) / sa;
        let zb = (b[i] - mb) / sb;
        d2 += (za - zb) * (za - zb);
    }
    d2.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rolling_stats_match_direct() {
        let x: Vec<f64> = (0..50).map(|i| ((i * 13) % 7) as f64 - 3.0).collect();
        let m = 8;
        let (means, stds) = rolling_mean_std(&x, m);
        assert_eq!(means.len(), 43);
        for i in 0..means.len() {
            let w = &x[i..i + m];
            assert!((means[i] - tskit::stats::mean(w)).abs() < 1e-10);
            assert!((stds[i] - tskit::stats::std_dev(w)).abs() < 1e-10);
        }
    }

    #[test]
    fn flat_window_std_is_clamped() {
        let x = vec![2.0; 10];
        let (_, stds) = rolling_mean_std(&x, 4);
        assert!(stds.iter().all(|&s| s >= 1e-12));
    }

    #[test]
    fn window_longer_than_series_is_empty() {
        let (m, s) = rolling_mean_std(&[1.0, 2.0], 5);
        assert!(m.is_empty() && s.is_empty());
    }

    #[test]
    fn znorm_distance_is_shift_scale_invariant() {
        let a = [1.0, 2.0, 4.0, 2.0];
        let b: Vec<f64> = a.iter().map(|v| 10.0 + 3.0 * v).collect();
        assert!(znorm_distance(&a, &b) < 1e-9);
    }

    #[test]
    fn znorm_distance_maximal_for_anticorrelated() {
        let a = [1.0, -1.0, 1.0, -1.0];
        let b = [-1.0, 1.0, -1.0, 1.0];
        // perfectly anti-correlated: d = sqrt(4m)
        assert!((znorm_distance(&a, &b) - 4.0).abs() < 1e-9);
    }
}
