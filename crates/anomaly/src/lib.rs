//! # anomaly — univariate time-series anomaly detection
//!
//! The TSAD baselines of the paper's §5.4 (Tables 3–4), implemented from
//! their original papers:
//!
//! - [`znorm`] / [`mass`]: rolling z-normalization statistics and the MASS
//!   FFT distance profile — the substrate of every matrix-profile method.
//! - [`stomp`]: STOMP (batch z-normalized matrix profile) and STOMPI (its
//!   incremental, online variant).
//! - [`damp`]: DAMP (Lu et al., KDD 2022) — online left-discord discovery
//!   with backward doubling search and forward pruning.
//! - [`streaming`]: a windowed, zero-allocation streaming DAMP adapter
//!   (point-at-a-time `observe`, bounded history, snapshotable) — the
//!   form the fleet's pluggable detection backends consume.
//! - [`cluster`]: k-means with k-means++ seeding (shared by NormA/SAND).
//! - [`norma`]: NormA (Boniol et al.) — batch scoring against a weighted
//!   set of recurrent "normal" patterns.
//! - [`sand`]: SAND (Boniol et al., VLDB 2021) — streaming NormA with
//!   batch-wise cluster updates.
//! - [`pipeline`]: the paper's STD→NSigma detectors and the
//!   "STD prefilter + DAMP" hybrid of Table 4.
//!
//! All detectors implement [`TsadMethod`]: initialize on a training prefix,
//! then emit one anomaly score per test point.

pub mod cluster;
pub mod damp;
pub mod mass;
pub mod norma;
pub mod pipeline;
pub mod sand;
pub mod stomp;
pub mod streaming;
pub mod traits;
pub mod znorm;

pub use damp::Damp;
pub use norma::NormA;
pub use pipeline::{NSigmaDetector, PrefilterDamp, StdNSigma};
pub use sand::Sand;
pub use stomp::{matrix_profile, Stompi};
pub use streaming::{StreamingDamp, StreamingDampState};
pub use traits::TsadMethod;
