//! NormA (Boniol et al., VLDB Journal 2021): anomaly detection by scoring
//! against a weighted set of recurrent "normal" patterns.
//!
//! 1. Sample z-normalized subsequences and cluster them; the centroids
//!    weighted by cluster size form the **normal model** `N = {(c, w)}`.
//! 2. Score every subsequence by `Σ_c w_c · d(subseq, c)` — far from all
//!    frequent patterns ⇒ anomalous.
//!
//! NormA is a *batch* method (paper Table 3/4 classifies it so): it builds
//! its model from train + test, then scores the test region.

use crate::cluster::{kmeans, znorm_subsequences, KMeans};
use crate::traits::TsadMethod;

/// The NormA detector.
#[derive(Debug, Clone)]
pub struct NormA {
    /// Number of normal-model patterns (clusters).
    pub k: usize,
    /// Lloyd iterations.
    pub iters: usize,
    /// Sampling stride for model building, in fractions of `m`
    /// (`stride = m / stride_div`).
    pub stride_div: usize,
    /// RNG seed for clustering.
    pub seed: u64,
}

impl Default for NormA {
    fn default() -> Self {
        NormA { k: 8, iters: 15, stride_div: 4, seed: 0x5EED }
    }
}

impl NormA {
    /// Builds the normal model from a series.
    pub fn fit_model(&self, x: &[f64], m: usize) -> KMeans {
        let stride = (m / self.stride_div).max(1);
        let subs = znorm_subsequences(x, m, stride);
        kmeans(&subs, self.k, self.iters, self.seed)
    }

    /// Weighted distance of one z-normalized window to the model.
    pub fn model_distance(model: &KMeans, w: &[f64]) -> f64 {
        if model.centroids.is_empty() {
            return 0.0;
        }
        model
            .centroids
            .iter()
            .zip(&model.weights)
            .map(|(c, wt)| {
                let d: f64 =
                    c.iter().zip(w).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt();
                wt * d
            })
            .sum()
    }
}

impl TsadMethod for NormA {
    fn name(&self) -> String {
        "NormA".into()
    }

    fn score(&mut self, train: &[f64], test: &[f64], period: usize) -> Vec<f64> {
        let m = period.clamp(8, 256);
        let mut x = train.to_vec();
        x.extend_from_slice(test);
        if x.len() < 2 * m {
            return vec![0.0; test.len()];
        }
        let model = self.fit_model(&x, m);
        // score every subsequence (stride 1), then assign to points by
        // averaging the scores of the windows covering each point
        let n = x.len();
        let mut point_sum = vec![0.0; n];
        let mut point_cnt = vec![0usize; n];
        for i in 0..=n - m {
            let mut w = x[i..i + m].to_vec();
            tskit::stats::znormalize(&mut w, 1e-9);
            let s = Self::model_distance(&model, &w);
            for j in i..i + m {
                point_sum[j] += s;
                point_cnt[j] += 1;
            }
        }
        (train.len()..n).map(|i| point_sum[i] / point_cnt[i].max(1) as f64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn signal(n: usize, t: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                (2.0 * std::f64::consts::PI * i as f64 / t as f64).sin()
                    + 0.07 * rng.gen_range(-1.0..1.0)
            })
            .collect()
    }

    #[test]
    fn scores_shape_anomaly_high() {
        let t = 24;
        let mut x = signal(900, t, 1);
        // inject a pattern unlike the normal cycles
        for (off, v) in x[600..624].iter_mut().enumerate() {
            *v = if off % 2 == 0 { 1.0 } else { -1.0 };
        }
        let mut norma = NormA::default();
        let scores = norma.score(&x[..300], &x[300..], t);
        let peak = tskit::stats::argmax(&scores).unwrap() + 300;
        assert!(
            (600usize.saturating_sub(t)..624 + t).contains(&peak),
            "anomaly at 600..624, peak at {peak}"
        );
    }

    #[test]
    fn uniform_data_scores_uniformly() {
        let t = 16;
        let x = signal(600, t, 2);
        let mut norma = NormA::default();
        let scores = norma.score(&x[..200], &x[200..], t);
        let max = scores.iter().cloned().fold(0.0f64, f64::max);
        let min = scores.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max - min < 0.8 * max + 1e-9, "clean data spread too wide: {min}..{max}");
    }

    #[test]
    fn model_distance_zero_for_centroid() {
        let model = KMeans { centroids: vec![vec![1.0, 0.0]], weights: vec![1.0] };
        assert_eq!(NormA::model_distance(&model, &[1.0, 0.0]), 0.0);
        assert!(NormA::model_distance(&model, &[0.0, 0.0]) > 0.0);
    }

    #[test]
    fn short_input_safe() {
        let mut norma = NormA::default();
        let s = norma.score(&[1.0; 5], &[1.0; 5], 50);
        assert_eq!(s, vec![0.0; 5]);
    }
}
