//! STD-based detection pipelines (paper §4 and Table 4's hybrids).

use crate::damp::Damp;
use crate::traits::TsadMethod;
use decomp::traits::OnlineDecomposer;
use oneshotstl::{ResidualScorer, ScoreConfig};

/// Plain streaming NSigma on the raw values — the paper's simplest (and
/// surprisingly competitive) baseline. With a fused [`ScoreConfig`] it
/// emits the persistence-aware CUSUM-fused score over the raw values
/// instead; the default stays the paper's instantaneous z-score.
#[derive(Debug, Clone)]
pub struct NSigmaDetector {
    /// Threshold `n` (only relevant for binary verdicts; scores are
    /// threshold-free).
    pub n: f64,
    /// Scoring configuration ([`ScoreConfig::off`] = the paper's plain
    /// z-score baseline).
    pub score: ScoreConfig,
}

impl Default for NSigmaDetector {
    fn default() -> Self {
        NSigmaDetector { n: 5.0, score: ScoreConfig::off() }
    }
}

impl NSigmaDetector {
    /// The fused persistence-aware variant (CUSUM + peak-hold on raw
    /// values).
    pub fn fused(n: f64, score: ScoreConfig) -> Self {
        NSigmaDetector { n, score }
    }
}

impl TsadMethod for NSigmaDetector {
    fn name(&self) -> String {
        // with Fusion::Off the scorer behaves as plain NSigma regardless
        // of the (unused) CUSUM parameters
        if self.score.fusion == oneshotstl::Fusion::Off {
            "NSigma".into()
        } else {
            "NSigma+CUSUM".into()
        }
    }

    fn score(&mut self, train: &[f64], test: &[f64], _period: usize) -> Vec<f64> {
        let mut d = ResidualScorer::new(self.n, self.score);
        d.seed(train);
        test.iter().map(|&y| d.update(y).score).collect()
    }
}

/// §4 (1): any online STD method + residual scoring. The paper's
/// `OnlineSTL` and `OneShotSTL` rows of Tables 3–4 are this wrapper around
/// the respective decomposers (with [`ScoreConfig::off`], the paper's
/// plain NSigma residual score); a fused config adds the
/// persistence-aware CUSUM + peak-hold layer from [`oneshotstl::score`].
pub struct StdNSigma<D, F>
where
    F: Fn() -> D,
{
    /// Factory producing a fresh decomposer per series.
    pub make: F,
    /// Reported method name.
    pub label: String,
    /// NSigma threshold.
    pub n: f64,
    /// Residual scoring configuration.
    pub score: ScoreConfig,
}

impl<D, F> StdNSigma<D, F>
where
    D: OnlineDecomposer,
    F: Fn() -> D,
{
    /// Creates the wrapper with a decomposer factory and the paper's
    /// plain instantaneous residual z-score.
    pub fn new(label: impl Into<String>, n: f64, make: F) -> Self {
        Self::with_score(label, n, ScoreConfig::off(), make)
    }

    /// Creates the wrapper with an explicit residual scoring
    /// configuration.
    pub fn with_score(label: impl Into<String>, n: f64, score: ScoreConfig, make: F) -> Self {
        StdNSigma { make, label: label.into(), n, score }
    }
}

impl<D, F> TsadMethod for StdNSigma<D, F>
where
    D: OnlineDecomposer,
    F: Fn() -> D,
{
    fn name(&self) -> String {
        self.label.clone()
    }

    fn score(&mut self, train: &[f64], test: &[f64], period: usize) -> Vec<f64> {
        let mut dec = (self.make)();
        let mut scorer = ResidualScorer::new(self.n, self.score);
        match dec.init(train, period) {
            Ok(d) => scorer.seed(&d.residual),
            Err(_) => {
                // initialization impossible (series too short / flat):
                // degrade to scoring the raw values
                scorer.seed(train);
                return test.iter().map(|&y| scorer.update(y).score).collect();
            }
        }
        test.iter()
            .map(|&y| {
                let p = dec.update(y);
                scorer.update(p.residual).score
            })
            .collect()
    }
}

/// Table 4's hybrid: a cheap STD prefilter flags the top `keep_fraction`
/// of test points; DAMP then scores **only windows around those points**,
/// cutting its runtime by ~the keep factor with negligible accuracy loss.
pub struct PrefilterDamp<M: TsadMethod> {
    /// The cheap prefilter (e.g. `StdNSigma<OneShotStl>`).
    pub prefilter: M,
    /// Fraction of test points forwarded to DAMP (paper: 1%).
    pub keep_fraction: f64,
    /// The DAMP configuration used for rescoring.
    pub damp: Damp,
}

impl<M: TsadMethod> PrefilterDamp<M> {
    /// Builds the hybrid with the paper's 1% forwarding rate.
    pub fn new(prefilter: M) -> Self {
        PrefilterDamp { prefilter, keep_fraction: 0.01, damp: Damp::default() }
    }
}

impl<M: TsadMethod> TsadMethod for PrefilterDamp<M> {
    fn name(&self) -> String {
        format!("{}+DAMP", self.prefilter.name())
    }

    fn score(&mut self, train: &[f64], test: &[f64], period: usize) -> Vec<f64> {
        let pre = self.prefilter.score(train, test, period);
        if test.is_empty() {
            return pre;
        }
        let keep = ((test.len() as f64 * self.keep_fraction).ceil() as usize).max(1);
        // threshold at the keep-th largest prefilter score
        let mut sorted = pre.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
        let threshold = sorted[keep.min(sorted.len()) - 1];
        let m = period.clamp(8, self.damp.subseq_cap);
        let mut x = train.to_vec();
        x.extend_from_slice(test);
        let offset = train.len();
        let mut out = vec![0.0; test.len()];
        let mut bsf = 0.0f64;
        for (i, &p) in pre.iter().enumerate() {
            if p < threshold {
                continue;
            }
            let end = offset + i;
            if end + 1 < 2 * m || end + 1 < m {
                continue;
            }
            let d = DampBackward::score(&x, m, end, bsf);
            out[i] = d;
            bsf = bsf.max(d);
        }
        out
    }
}

/// Internal access to DAMP's backward search for the hybrid.
struct DampBackward;

impl DampBackward {
    fn score(x: &[f64], m: usize, end: usize, bsf: f64) -> f64 {
        // re-implemented thin wrapper over the same backward doubling
        // search DAMP uses (kept in sync by the shared tests)
        use crate::mass::mass;
        if end + 1 < m {
            return 0.0;
        }
        let start = end + 1 - m;
        let query = &x[start..=end];
        let mut best = f64::INFINITY;
        let mut hi = start;
        let mut chunk = 2 * m;
        while hi > 0 {
            let lo = hi.saturating_sub(chunk);
            let seg_end = (hi + m - 1).min(start + m - 1);
            if seg_end > lo + m {
                let dp = mass(query, &x[lo..seg_end]);
                let valid = dp.len().min(hi - lo);
                for &d in &dp[..valid] {
                    if d < best {
                        best = d;
                    }
                }
                if best < bsf {
                    return best;
                }
            }
            hi = lo;
            chunk *= 2;
        }
        if best.is_finite() {
            best
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oneshotstl::{OneShotStl, OneShotStlConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn series_with_spike(n: usize, t: usize, at: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x: Vec<f64> = (0..n)
            .map(|i| {
                (2.0 * std::f64::consts::PI * i as f64 / t as f64).sin()
                    + 0.05 * rng.gen_range(-1.0..1.0)
            })
            .collect();
        x[at] += 6.0;
        x
    }

    #[test]
    fn nsigma_detector_finds_global_outlier() {
        let x = series_with_spike(600, 24, 400, 1);
        let mut d = NSigmaDetector::default();
        let scores = d.score(&x[..200], &x[200..], 24);
        assert_eq!(tskit::stats::argmax(&scores), Some(200));
    }

    #[test]
    fn std_nsigma_outperforms_raw_nsigma_on_seasonal_spike() {
        // a spike that stays within the global range but breaks the local
        // seasonal pattern: raw NSigma struggles, STD+NSigma nails it
        let t = 24;
        let mut x = series_with_spike(800, t, 500, 2);
        x[500] -= 4.0; // spike of +2 total: within global range
        let mut raw = NSigmaDetector::default();
        let raw_scores = raw.score(&x[..4 * t], &x[4 * t..], t);
        let mut std =
            StdNSigma::new("OneShotSTL", 5.0, || OneShotStl::new(OneShotStlConfig::default()));
        let std_scores = std.score(&x[..4 * t], &x[4 * t..], t);
        let target = 500 - 4 * t;
        let rank = |scores: &[f64]| {
            let v = scores[target];
            scores.iter().filter(|&&s| s > v).count()
        };
        assert!(
            rank(&std_scores) <= rank(&raw_scores),
            "STD residual scoring should rank the spike at least as high"
        );
        assert_eq!(tskit::stats::argmax(&std_scores), Some(target));
    }

    #[test]
    fn prefilter_damp_scores_only_a_few_points() {
        let t = 24;
        let x = series_with_spike(1200, t, 900, 3);
        let pre =
            StdNSigma::new("OneShotSTL", 5.0, || OneShotStl::new(OneShotStlConfig::default()));
        let mut hybrid = PrefilterDamp::new(pre);
        let scores = hybrid.score(&x[..400], &x[400..], t);
        let nonzero = scores.iter().filter(|&&s| s > 0.0).count();
        assert!(nonzero <= 1 + scores.len() / 50, "only ~1% rescored, got {nonzero}");
        // and the spike region still carries the top score
        let peak = tskit::stats::argmax(&scores).unwrap() + 400;
        assert!((900..900 + 2 * t).contains(&peak), "spike at 900, peak at {peak}");
    }

    #[test]
    fn hybrid_name_combines_parts() {
        let pre = NSigmaDetector::default();
        let hybrid = PrefilterDamp::new(pre);
        assert_eq!(hybrid.name(), "NSigma+DAMP");
    }

    #[test]
    fn nsigma_detector_name_tracks_fusion_mode() {
        use oneshotstl::Fusion;
        assert_eq!(NSigmaDetector::default().name(), "NSigma");
        // an Off config with non-default CUSUM params still behaves (and
        // must be labelled) as the plain baseline
        let off_tuned = NSigmaDetector {
            n: 5.0,
            score: ScoreConfig { cusum_h: 4.0, fusion: Fusion::Off, ..Default::default() },
        };
        assert_eq!(off_tuned.name(), "NSigma");
        assert_eq!(NSigmaDetector::fused(5.0, ScoreConfig::default()).name(), "NSigma+CUSUM");
    }
}
