//! DAMP: Discord-Aware Matrix Profile (Lu et al., KDD 2022).
//!
//! Online left-discord discovery: each arriving subsequence is scored by
//! its z-normalized distance to the nearest *preceding* subsequence. Two
//! tricks keep it fast:
//!
//! - **Backward doubling search**: compare against chunks of the past of
//!   size `2^k·m`, nearest first, abandoning as soon as a match below the
//!   best-so-far discord (`bsf`) is found — most subsequences are pruned
//!   after one small chunk.
//! - **Forward pruning**: when a subsequence is processed, mark upcoming
//!   subsequences whose distance to it is below `bsf`; they cannot be
//!   discords and are skipped entirely.

use crate::mass::mass;
use crate::traits::TsadMethod;

/// The DAMP online detector.
#[derive(Debug, Clone)]
pub struct Damp {
    /// Subsequence length `m` (taken from the detected period, clamped).
    pub subseq_cap: usize,
    /// Lookahead span for forward pruning, in subsequence lengths.
    pub lookahead_factor: usize,
}

impl Default for Damp {
    fn default() -> Self {
        Damp { subseq_cap: 256, lookahead_factor: 4 }
    }
}

impl Damp {
    /// Scores the subsequence of `x` *ending* at index `end` (inclusive)
    /// against all earlier subsequences, abandoning once a distance below
    /// `bsf` is found. Returns the (possibly lower-bounded) discord score.
    fn backward_score(x: &[f64], m: usize, end: usize, bsf: f64) -> f64 {
        let start = end + 1 - m;
        let query = &x[start..=end];
        let mut best = f64::INFINITY;
        // chunks of doubling size, closest to the query first; chunk `k`
        // covers [start - 2^(k+1) m, start - 2^k m) extended by m-1 overlap
        let mut hi = start; // exclusive end of the unexplored past region
        let mut chunk = 2 * m;
        while hi > 0 {
            let lo = hi.saturating_sub(chunk);
            // extend by m-1 so windows straddling the boundary are covered
            let seg_end = (hi + m - 1).min(start + m - 1);
            if seg_end > lo + m {
                let dp = mass(query, &x[lo..seg_end]);
                // exclude trivial self-match when the segment touches start
                let valid = dp.len().min(hi - lo);
                for &d in &dp[..valid] {
                    if d < best {
                        best = d;
                    }
                }
                if best < bsf {
                    return best; // pruned: cannot be the new discord
                }
            }
            hi = lo;
            chunk *= 2;
        }
        best
    }
}

impl TsadMethod for Damp {
    fn name(&self) -> String {
        "DAMP".into()
    }

    fn score(&mut self, train: &[f64], test: &[f64], period: usize) -> Vec<f64> {
        let m = period.clamp(8, self.subseq_cap);
        let mut x = train.to_vec();
        x.extend_from_slice(test);
        let offset = train.len();
        let n = x.len();
        let mut scores = vec![0.0; test.len()];
        if n < 2 * m + 2 || offset < m {
            return scores;
        }
        let mut bsf = 0.0f64;
        let mut pruned = vec![false; n];
        let lookahead = (self.lookahead_factor * m).max(m);
        for end in offset.max(2 * m)..n {
            let idx = end - offset;
            if pruned[end] {
                // pruned points inherit a sub-bsf score
                scores[idx] = 0.0;
                continue;
            }
            let d = Self::backward_score(&x, m, end, bsf);
            scores[idx] = d;
            if d > bsf {
                bsf = d;
            }
            // forward pruning: subsequences within the lookahead that are
            // close to this one cannot become discords
            let fstart = end + 1;
            let fend = (end + lookahead + m).min(n);
            if fend > fstart + m {
                let query = &x[end + 1 - m..=end];
                let dp = mass(query, &x[fstart..fend]);
                for (j, &dist) in dp.iter().enumerate() {
                    if dist < bsf {
                        // subsequence starting at fstart+j ends at +m-1
                        let e = fstart + j + m - 1;
                        if e < n {
                            pruned[e] = true;
                        }
                    }
                }
            }
        }
        scores
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn stream_with_discord(n: usize, t: usize, at: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x: Vec<f64> = (0..n)
            .map(|i| {
                (2.0 * std::f64::consts::PI * i as f64 / t as f64).sin()
                    + 0.05 * rng.gen_range(-1.0..1.0)
            })
            .collect();
        for v in x[at..at + t / 2].iter_mut() {
            *v = 2.0; // flat anomaly: unlike anything before
        }
        x
    }

    #[test]
    fn discord_scores_highest() {
        let t = 32;
        let x = stream_with_discord(1200, t, 800, 1);
        let split = 400;
        let mut damp = Damp::default();
        let scores = damp.score(&x[..split], &x[split..], t);
        let peak = tskit::stats::argmax(&scores).unwrap() + split;
        assert!((800..800 + 2 * t).contains(&peak), "anomaly at 800..816, peak at {peak}");
    }

    #[test]
    fn pruning_produces_sparse_high_scores() {
        let t = 24;
        let x = stream_with_discord(1500, t, 1000, 2);
        let mut damp = Damp::default();
        let scores = damp.score(&x[..500], &x[500..], t);
        // most points are pruned/low; only a small fraction carries a high
        // score — that is DAMP's efficiency claim
        let max = scores.iter().cloned().fold(0.0f64, f64::max);
        let high = scores.iter().filter(|&&s| s > 0.5 * max).count();
        assert!(high < scores.len() / 5, "too many high scores: {high}");
    }

    #[test]
    fn clean_periodic_data_scores_low_after_warmup() {
        let t = 16;
        let x: Vec<f64> = (0..800)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 / t as f64).sin())
            .collect();
        let mut damp = Damp::default();
        let scores = damp.score(&x[..300], &x[300..], t);
        let tail_max = scores[50..].iter().cloned().fold(0.0f64, f64::max);
        assert!(tail_max < 1.0, "pure period should have low discord scores: {tail_max}");
    }

    #[test]
    fn degenerate_inputs_are_safe() {
        let mut damp = Damp::default();
        let scores = damp.score(&[1.0, 2.0], &[3.0, 4.0], 10);
        assert_eq!(scores, vec![0.0, 0.0]);
    }
}
