//! The common TSAD interface used by the Table 3/4 harnesses.

/// A univariate anomaly detector evaluated in the TSB-UAD protocol:
/// it may consume a training prefix, then produces one score per test
/// point (higher = more anomalous).
pub trait TsadMethod {
    /// Method name as printed in the result tables.
    fn name(&self) -> String;

    /// Scores every point of `test`. `train` precedes `test` in time;
    /// `period` is the detected season length (subsequence length for
    /// matrix-profile methods).
    fn score(&mut self, train: &[f64], test: &[f64], period: usize) -> Vec<f64>;
}

/// Normalizes scores to `[0, 1]` (used when combining detectors).
pub fn normalize_scores(scores: &[f64]) -> Vec<f64> {
    let lo = tskit::stats::min(scores);
    let hi = tskit::stats::max(scores);
    if !lo.is_finite() || !hi.is_finite() || hi - lo < 1e-12 {
        return vec![0.0; scores.len()];
    }
    scores.iter().map(|s| (s - lo) / (hi - lo)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_maps_to_unit_interval() {
        let n = normalize_scores(&[2.0, 4.0, 3.0]);
        assert_eq!(n, vec![0.0, 1.0, 0.5]);
    }

    #[test]
    fn normalize_handles_constant_input() {
        assert_eq!(normalize_scores(&[5.0, 5.0]), vec![0.0, 0.0]);
        assert!(normalize_scores(&[]).is_empty());
    }
}
