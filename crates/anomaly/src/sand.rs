//! SAND (Boniol, Paparrizos, Palpanas, Franklin — VLDB 2021): streaming
//! subsequence anomaly detection.
//!
//! SAND keeps NormA's weighted normal model but maintains it *online*:
//! the stream is consumed in batches; each batch is first scored against
//! the current model, then merged into it (centroids drift toward the new
//! data with weights tracking how much data each cluster has absorbed).
//! This keeps detection adaptive to concept drift while never re-reading
//! old data.

use crate::cluster::{kmeans, nearest, znorm_subsequences};
use crate::norma::NormA;
use crate::traits::TsadMethod;

/// The SAND streaming detector.
#[derive(Debug, Clone)]
pub struct Sand {
    /// Number of model patterns.
    pub k: usize,
    /// Batch size in periods.
    pub batch_periods: usize,
    /// Blend rate: how strongly a batch updates matched centroids (0–1).
    pub alpha: f64,
    /// RNG seed for the initial clustering.
    pub seed: u64,
}

impl Default for Sand {
    fn default() -> Self {
        Sand { k: 8, batch_periods: 8, alpha: 0.5, seed: 0x5A4D }
    }
}

struct Model {
    centroids: Vec<Vec<f64>>,
    /// absorbed subsequence mass per centroid
    mass: Vec<f64>,
}

impl Model {
    fn weights(&self) -> Vec<f64> {
        let total: f64 = self.mass.iter().sum::<f64>().max(1e-12);
        self.mass.iter().map(|m| m / total).collect()
    }

    fn as_kmeans(&self) -> crate::cluster::KMeans {
        crate::cluster::KMeans { centroids: self.centroids.clone(), weights: self.weights() }
    }

    /// Merge a batch of z-normalized subsequences into the model.
    fn update(&mut self, subs: &[Vec<f64>], alpha: f64) {
        if self.centroids.is_empty() || subs.is_empty() {
            return;
        }
        let k = self.centroids.len();
        let dim = self.centroids[0].len();
        let mut sums = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        for s in subs {
            let (c, _) = nearest(&self.centroids, s);
            counts[c] += 1;
            for (acc, v) in sums[c].iter_mut().zip(s) {
                *acc += v;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                continue;
            }
            let batch_mean: Vec<f64> = sums[c].iter().map(|v| v / counts[c] as f64).collect();
            // blend proportional to batch evidence
            let w = alpha * counts[c] as f64 / (counts[c] as f64 + self.mass[c]);
            for (cv, bv) in self.centroids[c].iter_mut().zip(&batch_mean) {
                *cv = (1.0 - w) * *cv + w * bv;
            }
            self.mass[c] += counts[c] as f64;
        }
    }
}

impl TsadMethod for Sand {
    fn name(&self) -> String {
        "SAND".into()
    }

    fn score(&mut self, train: &[f64], test: &[f64], period: usize) -> Vec<f64> {
        let m = period.clamp(8, 256);
        if train.len() < 2 * m {
            return vec![0.0; test.len()];
        }
        // initial model from the training prefix
        let init_subs = znorm_subsequences(train, m, (m / 4).max(1));
        let km = kmeans(&init_subs, self.k, 15, self.seed);
        let mass: Vec<f64> = km.weights.iter().map(|w| w * init_subs.len() as f64).collect();
        let mut model = Model { centroids: km.centroids, mass };
        // process the test region in batches
        let batch_len = (self.batch_periods * m).max(2 * m);
        let mut scores = vec![0.0; test.len()];
        // context: keep the last m-1 train points so early windows exist
        let mut ctx: Vec<f64> = train[train.len() - (m - 1)..].to_vec();
        let ctx_base = train.len() - (m - 1);
        let mut batch_start = 0usize;
        while batch_start < test.len() {
            let batch_end = (batch_start + batch_len).min(test.len());
            ctx.extend_from_slice(&test[batch_start..batch_end]);
            // score each point in the batch: average model distance of
            // covering windows (computed on the ctx buffer)
            let snapshot = model.as_kmeans();
            let lo_abs = ctx_base + batch_start; // absolute index of batch start within full series... (ctx grows)
            let _ = lo_abs;
            let cstart = ctx.len() - (batch_end - batch_start) - (m - 1);
            let mut sums = vec![0.0; ctx.len()];
            let mut cnts = vec![0usize; ctx.len()];
            for i in cstart..=ctx.len() - m {
                let mut w = ctx[i..i + m].to_vec();
                tskit::stats::znormalize(&mut w, 1e-9);
                let s = NormA::model_distance(&snapshot, &w);
                for j in i..i + m {
                    sums[j] += s;
                    cnts[j] += 1;
                }
            }
            let batch_ctx_start = ctx.len() - (batch_end - batch_start);
            for (off, idx) in (batch_start..batch_end).enumerate() {
                let j = batch_ctx_start + off;
                scores[idx] = sums[j] / cnts[j].max(1) as f64;
            }
            // then absorb the batch into the model
            let batch_subs = znorm_subsequences(&ctx[cstart..], m, (m / 4).max(1));
            model.update(&batch_subs, self.alpha);
            batch_start = batch_end;
        }
        scores
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn signal(n: usize, t: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                (2.0 * std::f64::consts::PI * i as f64 / t as f64).sin()
                    + 0.06 * rng.gen_range(-1.0..1.0)
            })
            .collect()
    }

    #[test]
    fn flags_shape_anomaly() {
        let t = 24;
        let mut x = signal(1200, t, 1);
        for (off, v) in x[800..824].iter_mut().enumerate() {
            *v = if off % 2 == 0 { 1.2 } else { -1.2 };
        }
        let mut sand = Sand::default();
        let scores = sand.score(&x[..400], &x[400..], t);
        let peak = tskit::stats::argmax(&scores).unwrap() + 400;
        assert!(
            (800usize.saturating_sub(t)..824 + t).contains(&peak),
            "anomaly at 800..824, peak at {peak}"
        );
    }

    #[test]
    fn adapts_to_concept_drift() {
        // the pattern legitimately changes halfway; SAND should adapt so
        // the *persistent* new pattern stops being anomalous
        let t = 20;
        let n = 2000;
        let x: Vec<f64> = (0..n)
            .map(|i| {
                let phase = 2.0 * std::f64::consts::PI * i as f64 / t as f64;
                if i < 1000 {
                    phase.sin()
                } else {
                    phase.cos().powi(2) * 2.0 - 1.0 // different shape
                }
            })
            .collect();
        let mut sand = Sand::default();
        let scores = sand.score(&x[..400], &x[400..], t);
        // right after the change scores spike; a few batches later they
        // settle again
        let early: f64 = scores[600..640].iter().sum::<f64>() / 40.0; // right at change (abs 1000..1040)
        let late: f64 = scores[1200..1400].iter().sum::<f64>() / 200.0; // long after
        assert!(late < early, "model should adapt: early {early}, late {late}");
    }

    #[test]
    fn short_train_is_safe() {
        let mut sand = Sand::default();
        let s = sand.score(&[1.0; 10], &[1.0; 20], 30);
        assert_eq!(s, vec![0.0; 20]);
    }
}
