//! Streaming DAMP adapter: windowed left-discord scoring, one point at
//! a time, with zero steady-state allocations.
//!
//! The batch [`crate::Damp`] scores a whole test stream against its full
//! past through MASS. A fleet of thousands of live series cannot afford
//! either the unbounded history or MASS's per-call FFT buffers, so this
//! adapter restricts DAMP (Lu et al., KDD 2022) to a **bounded sliding
//! window** and computes z-normalized distances directly:
//!
//! - the last `window` values are retained in a "sliding vec" — a buffer
//!   of capacity `2·window` that is compacted with one `copy_within`
//!   when full, so pushes are amortized `O(1)` and never reallocate;
//! - each arriving point closes a query subsequence (the last `m`
//!   values), which is scored by its z-normalized distance to the
//!   nearest *earlier* subsequence start in the window, **nearest
//!   first** with per-candidate early abandoning, and the whole search
//!   abandons as soon as a distance below the best-so-far discord
//!   (`bsf`) is found — DAMP's pruning rule: such a point cannot be a
//!   new discord, and the partial minimum is still a valid sub-`bsf`
//!   score for it.
//!
//! Scores are raw z-normalized Euclidean distances (higher = more
//! discordant), the same scale as the batch DAMP. Snapshots store only
//! the retained window plus `bsf`; because scoring never reads more
//! than the last `window` values, a restored stream continues
//! **bit-identically** regardless of where the compaction cycle stood.

/// Streaming windowed DAMP over a single value stream. See the [module
/// docs](self).
#[derive(Debug, Clone)]
pub struct StreamingDamp {
    /// Subsequence length `m`.
    m: usize,
    /// History bound: scoring reads at most the last `window` values.
    window: usize,
    /// Sliding buffer (capacity `2·window`, compacted when full).
    buf: Vec<f64>,
    /// Best-so-far discord distance (monotone, drives pruning).
    bsf: f64,
    /// Z-normalized query scratch (capacity `m`, never serialized): the
    /// query's z-values are shared by every candidate in a scan, so they
    /// are computed once per arriving point — a stride-1 fill — instead
    /// of `m` divisions per candidate inside the distance loop.
    zq: Vec<f64>,
}

impl StreamingDamp {
    /// Creates an adapter with subsequence length `m` and history bound
    /// `window`. `m` must be at least 4 (z-normalization of shorter
    /// windows is mostly noise) and `window` at least `2m + 1` so a
    /// query always has non-overlapping history to match against.
    pub fn new(window: usize, m: usize) -> Result<Self, String> {
        Self::check_params(window, m)?;
        Ok(StreamingDamp {
            m,
            window,
            buf: Vec::with_capacity(2 * window),
            bsf: 0.0,
            zq: Vec::with_capacity(m),
        })
    }

    fn check_params(window: usize, m: usize) -> Result<(), String> {
        if m < 4 {
            return Err(format!("DAMP subsequence length must be >= 4, got {m}"));
        }
        if window < 2 * m + 1 {
            return Err(format!(
                "DAMP window must be >= 2m + 1 = {} to hold history, got {window}",
                2 * m + 1
            ));
        }
        if window > 1 << 20 {
            return Err(format!("DAMP window unreasonably large: {window}"));
        }
        Ok(())
    }

    /// Subsequence length `m`.
    pub fn subseq_len(&self) -> usize {
        self.m
    }

    /// History bound.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Current best-so-far discord distance.
    pub fn bsf(&self) -> f64 {
        self.bsf
    }

    /// The retained history: the last `min(pushed, window)` values.
    fn active(&self) -> &[f64] {
        &self.buf[self.buf.len().saturating_sub(self.window)..]
    }

    /// Pushes one value and scores the subsequence it closes. Returns
    /// `0.0` while fewer than `2m` values are retained — the same init
    /// region as batch DAMP: with fewer than `m` candidate starts, one
    /// near-empty comparison set would inflate `bsf` and blunt every
    /// later score. Non-finite input is ignored: state unchanged, zero
    /// score (the decomposer already imputes non-finite *raw* values,
    /// so this only guards direct misuse). Allocation-free after
    /// construction.
    pub fn observe(&mut self, x: f64) -> f64 {
        if !x.is_finite() {
            return 0.0;
        }
        if self.buf.len() == 2 * self.window {
            // compact: keep the newest `window` values, amortized O(1)
            self.buf.copy_within(self.window.., 0);
            self.buf.truncate(self.window);
        }
        self.buf.push(x);
        // split borrows: the history view reads `buf`, the z-norm scratch
        // is a disjoint field
        let start = self.buf.len().saturating_sub(self.window);
        let h = &self.buf[start..];
        if h.len() < 2 * self.m {
            return 0.0;
        }
        let (best, completed) = Self::nearest_earlier(h, self.m, self.bsf, &mut self.zq);
        if completed && best > self.bsf {
            self.bsf = best;
        }
        best
    }

    /// Distance from the query (last `m` values of `h`) to its nearest
    /// earlier subsequence start, nearest candidate first. Returns the
    /// (possibly pruned, lower-bounded) minimum and whether the search
    /// ran to completion (only completed searches may raise `bsf`).
    fn nearest_earlier(h: &[f64], m: usize, bsf: f64, zq: &mut Vec<f64>) -> (f64, bool) {
        let qs = h.len() - m; // query start; candidates start at 0..qs
        let query = &h[qs..];
        let (qm, qstd) = mean_std(query);
        // hoisted query z-normalization: one stride-1 fill per scan (the
        // scratch is pre-sized — no allocation), bit-identical values to
        // the per-candidate recomputation it replaces
        zq.clear();
        zq.extend(query.iter().map(|&q| (q - qm) / qstd));
        let mut best = f64::INFINITY;
        for j in (0..qs).rev() {
            let cand = &h[j..j + m];
            let (cm, cstd) = mean_std(cand);
            // early-abandoned z-normalized distance against `best`
            let cap = best * best;
            let mut d2 = 0.0;
            for i in 0..m {
                let zc = (cand[i] - cm) / cstd;
                let diff = zq[i] - zc;
                d2 += diff * diff;
                if d2 > cap {
                    break;
                }
            }
            if d2 < cap {
                best = d2.sqrt();
            }
            if best < bsf {
                // DAMP prune: a sub-bsf match exists, so this point
                // cannot be the new discord — `best` is already a valid
                // (upper-bounding its true distance, below bsf) score
                return (best, false);
            }
        }
        (best, true)
    }

    /// Extracts a plain-data snapshot: the retained window and `bsf`.
    pub fn to_state(&self) -> StreamingDampState {
        StreamingDampState {
            window: self.window,
            m: self.m,
            buf: self.active().to_vec(),
            bsf: self.bsf,
        }
    }

    /// Rebuilds from [`StreamingDamp::to_state`] output, validating
    /// every field (snapshots cross a serialization boundary). The
    /// restored stream continues bit-identically.
    pub fn from_state(state: StreamingDampState) -> Result<Self, String> {
        Self::check_params(state.window, state.m)?;
        if state.buf.len() > state.window {
            return Err(format!(
                "DAMP state holds {} values, more than its window {}",
                state.buf.len(),
                state.window
            ));
        }
        if state.buf.iter().any(|v| !v.is_finite()) {
            return Err("DAMP state buffer holds a non-finite value".into());
        }
        if !(state.bsf.is_finite() && state.bsf >= 0.0) {
            return Err(format!("DAMP bsf must be finite and >= 0, got {}", state.bsf));
        }
        let mut buf = Vec::with_capacity(2 * state.window);
        buf.extend_from_slice(&state.buf);
        Ok(StreamingDamp {
            m: state.m,
            window: state.window,
            buf,
            bsf: state.bsf,
            zq: Vec::with_capacity(state.m),
        })
    }
}

/// Mean and (clamped) standard deviation of one subsequence, computed
/// directly — no rolling buffers, no allocation.
fn mean_std(w: &[f64]) -> (f64, f64) {
    let n = w.len() as f64;
    let mut s = 0.0;
    let mut s2 = 0.0;
    for &v in w {
        s += v;
        s2 += v * v;
    }
    let mean = s / n;
    let var = (s2 / n - mean * mean).max(0.0);
    (mean, var.sqrt().max(1e-12))
}

/// Plain-data snapshot of a [`StreamingDamp`].
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingDampState {
    /// History bound.
    pub window: usize,
    /// Subsequence length.
    pub m: usize,
    /// Retained values (the last `min(pushed, window)`).
    pub buf: Vec<f64>,
    /// Best-so-far discord distance.
    pub bsf: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn periodic(n: usize, t: usize) -> Vec<f64> {
        (0..n).map(|i| (2.0 * std::f64::consts::PI * i as f64 / t as f64).sin()).collect()
    }

    /// The discord region out-scores everything the stream saw before.
    #[test]
    fn discord_scores_highest() {
        let t = 16;
        let mut x = periodic(600, t);
        for v in x[400..400 + t].iter_mut() {
            *v = 2.0; // flat anomaly, unlike any earlier window
        }
        let mut d = StreamingDamp::new(128, t).unwrap();
        let scores: Vec<f64> = x.iter().map(|&v| d.observe(v)).collect();
        let peak = tskit::stats::argmax(&scores).unwrap();
        assert!(
            (400..400 + 2 * t).contains(&peak),
            "anomaly at 400..416, peak at {peak} (score {})",
            scores[peak]
        );
    }

    /// Clean periodic data scores low once the window is warm — the
    /// DAMP prune keeps almost every point below the first bsf.
    #[test]
    fn clean_periodic_data_scores_low_after_warmup() {
        let t = 16;
        let x = periodic(500, t);
        let mut d = StreamingDamp::new(128, t).unwrap();
        let scores: Vec<f64> = x.iter().map(|&v| d.observe(v)).collect();
        let tail_max = scores[3 * t..].iter().cloned().fold(0.0f64, f64::max);
        assert!(tail_max < 1.0, "pure period should score low, got {tail_max}");
    }

    /// `bsf` is monotone and completed searches drive it.
    #[test]
    fn bsf_is_monotone() {
        let t = 12;
        let mut x = periodic(400, t);
        x[300] += 3.0;
        let mut d = StreamingDamp::new(100, t).unwrap();
        let mut prev = 0.0;
        for &v in &x {
            d.observe(v);
            assert!(d.bsf() >= prev, "bsf must never decrease");
            prev = d.bsf();
        }
        assert!(d.bsf() > 0.0);
    }

    /// Warm-up (fewer than 2m points) and non-finite input both score
    /// zero; non-finite input leaves the state untouched.
    #[test]
    fn warmup_and_non_finite_are_guarded() {
        let mut d = StreamingDamp::new(32, 8).unwrap();
        for i in 0..15 {
            assert_eq!(d.observe(i as f64 * 0.1), 0.0, "warm-up point {i} must score 0");
        }
        let before = d.to_state();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(d.observe(bad), 0.0);
        }
        assert_eq!(d.to_state(), before, "non-finite input must not change state");
    }

    /// Snapshot/restore continues bit-identically — from every phase of
    /// the compaction cycle (the buffer may hold anywhere between
    /// `window` and `2·window` values when the snapshot is taken).
    #[test]
    fn state_roundtrip_continues_bit_identically() {
        let t = 16;
        let window = 64;
        let x = periodic(700, t);
        for snap_at in [40usize, window + 3, 2 * window + 5, 350] {
            let mut a = StreamingDamp::new(window, t).unwrap();
            for &v in &x[..snap_at] {
                a.observe(v);
            }
            let mut b = StreamingDamp::from_state(a.to_state()).unwrap();
            assert_eq!(a.to_state(), b.to_state());
            for (i, &v) in x[snap_at..].iter().enumerate() {
                let (sa, sb) = (a.observe(v), b.observe(v));
                assert_eq!(
                    sa.to_bits(),
                    sb.to_bits(),
                    "diverged at {} (snap at {snap_at})",
                    snap_at + i
                );
            }
        }
    }

    /// Construction and state validation reject degenerate parameters.
    #[test]
    fn degenerate_params_and_states_are_rejected() {
        assert!(StreamingDamp::new(32, 2).is_err(), "m too small");
        assert!(StreamingDamp::new(15, 8).is_err(), "window < 2m+1");
        assert!(StreamingDamp::new(1 << 21, 8).is_err(), "window too large");
        let good = StreamingDamp::new(32, 8).unwrap();
        let mut s = good.to_state();
        s.bsf = f64::NAN;
        assert!(StreamingDamp::from_state(s).is_err(), "NaN bsf");
        let mut s = good.to_state();
        s.buf = vec![1.0; 40];
        assert!(StreamingDamp::from_state(s).is_err(), "buffer larger than window");
        let mut s = good.to_state();
        s.buf = vec![f64::INFINITY];
        assert!(StreamingDamp::from_state(s).is_err(), "non-finite buffer value");
    }

    /// The adapter agrees with first principles: a completed search
    /// returns exactly the nearest-earlier z-norm distance, and a
    /// pruned one returns an over-estimate that stays below the `bsf`
    /// that pruned it (checked by brute force on a short stream).
    #[test]
    fn matches_brute_force_nearest_neighbor() {
        let m = 8;
        let x: Vec<f64> = (0..80).map(|i| ((i * 29) % 13) as f64 * 0.3 - 1.5).collect();
        let mut d = StreamingDamp::new(64, m).unwrap();
        let mut checked_complete = 0;
        let mut checked_pruned = 0;
        for (end, &v) in x.iter().enumerate() {
            let bsf_before = d.bsf();
            let got = d.observe(v);
            if end + 1 < 2 * m {
                continue;
            }
            let h = &x[..=end];
            let qs = h.len() - m;
            let mut best = f64::INFINITY;
            for j in 0..qs {
                best = best.min(crate::znorm::znorm_distance(&h[qs..], &h[j..j + m]));
            }
            // the min over the examined (sub)set can only over-estimate
            assert!(got >= best - 1e-9, "score {got} below true NN distance {best} at {end}");
            if got < bsf_before {
                checked_pruned += 1; // pruned: valid sub-bsf score
            } else {
                assert!((got - best).abs() < 1e-9, "completed search mismatch at {end}");
                checked_complete += 1;
            }
        }
        assert!(checked_complete > 0, "the stream must complete some searches");
        assert!(checked_pruned > 0, "the stream must prune some searches");
    }
}
