//! k-means with k-means++ seeding over z-normalized subsequences —
//! the clustering substrate shared by NormA and SAND.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A fitted k-means model.
#[derive(Debug, Clone)]
pub struct KMeans {
    /// Cluster centroids.
    pub centroids: Vec<Vec<f64>>,
    /// Fraction of points assigned to each centroid.
    pub weights: Vec<f64>,
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Index and squared distance of the nearest centroid.
pub fn nearest(centroids: &[Vec<f64>], p: &[f64]) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for (c, cent) in centroids.iter().enumerate() {
        let d = sq_dist(cent, p);
        if d < best.1 {
            best = (c, d);
        }
    }
    best
}

/// Fits k-means with k-means++ seeding. `k` is clamped to the number of
/// points; empty input yields an empty model.
pub fn kmeans(points: &[Vec<f64>], k: usize, iters: usize, seed: u64) -> KMeans {
    let n = points.len();
    if n == 0 || k == 0 {
        return KMeans { centroids: Vec::new(), weights: Vec::new() };
    }
    let k = k.min(n);
    let dim = points[0].len();
    let mut rng = StdRng::seed_from_u64(seed);
    // k-means++ seeding
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..n)].clone());
    let mut d2: Vec<f64> = points.iter().map(|p| sq_dist(p, &centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= 1e-300 {
            rng.gen_range(0..n)
        } else {
            let mut r = rng.gen_range(0.0..total);
            let mut pick = n - 1;
            for (i, &d) in d2.iter().enumerate() {
                if r < d {
                    pick = i;
                    break;
                }
                r -= d;
            }
            pick
        };
        centroids.push(points[next].clone());
        for (i, p) in points.iter().enumerate() {
            let d = sq_dist(p, centroids.last().expect("non-empty"));
            if d < d2[i] {
                d2[i] = d;
            }
        }
    }
    // Lloyd iterations
    let mut assign = vec![0usize; n];
    for _ in 0..iters.max(1) {
        let mut moved = false;
        for (i, p) in points.iter().enumerate() {
            let (c, _) = nearest(&centroids, p);
            if assign[i] != c {
                assign[i] = c;
                moved = true;
            }
        }
        let mut sums = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        for (i, p) in points.iter().enumerate() {
            counts[assign[i]] += 1;
            for (s, v) in sums[assign[i]].iter_mut().zip(p) {
                *s += v;
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                for s in sums[c].iter_mut() {
                    *s /= counts[c] as f64;
                }
                centroids[c] = sums[c].clone();
            }
        }
        if !moved {
            break;
        }
    }
    let mut counts = vec![0usize; k];
    for (i, p) in points.iter().enumerate() {
        let (c, _) = nearest(&centroids, p);
        assign[i] = c;
        counts[c] += 1;
    }
    let weights: Vec<f64> = counts.iter().map(|&c| c as f64 / n as f64).collect();
    KMeans { centroids, weights }
}

/// Extracts z-normalized subsequences of length `m` with the given stride.
pub fn znorm_subsequences(x: &[f64], m: usize, stride: usize) -> Vec<Vec<f64>> {
    if m == 0 || x.len() < m {
        return Vec::new();
    }
    let stride = stride.max(1);
    (0..=x.len() - m)
        .step_by(stride)
        .map(|i| {
            let mut w = x[i..i + m].to_vec();
            tskit::stats::znormalize(&mut w, 1e-9);
            w
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..20 {
            let e = (i % 5) as f64 * 0.01;
            pts.push(vec![0.0 + e, 0.0 - e]);
            pts.push(vec![5.0 - e, 5.0 + e]);
        }
        pts
    }

    #[test]
    fn separates_two_blobs() {
        let model = kmeans(&two_blobs(), 2, 20, 1);
        assert_eq!(model.centroids.len(), 2);
        let mut c: Vec<f64> = model.centroids.iter().map(|c| c[0]).collect();
        c.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((c[0] - 0.0).abs() < 0.1, "centroid near 0: {}", c[0]);
        assert!((c[1] - 5.0).abs() < 0.1, "centroid near 5: {}", c[1]);
        assert!((model.weights[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn k_clamped_to_points() {
        let model = kmeans(&[vec![1.0], vec![2.0]], 5, 5, 1);
        assert_eq!(model.centroids.len(), 2);
        let empty = kmeans(&[], 3, 5, 1);
        assert!(empty.centroids.is_empty());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = kmeans(&two_blobs(), 3, 10, 9);
        let b = kmeans(&two_blobs(), 3, 10, 9);
        assert_eq!(a.centroids, b.centroids);
    }

    #[test]
    fn subsequence_extraction_is_znormed() {
        let x: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let subs = znorm_subsequences(&x, 10, 5);
        assert_eq!(subs.len(), 7);
        for s in &subs {
            assert!(tskit::stats::mean(s).abs() < 1e-9);
            assert!((tskit::stats::std_dev(s) - 1.0).abs() < 1e-6);
        }
        assert!(znorm_subsequences(&x, 50, 1).is_empty());
    }
}
