//! MASS: Mueen's Algorithm for Similarity Search.
//!
//! Computes the z-normalized Euclidean distance between a query and every
//! window of a series in `O(n log n)` via the FFT sliding dot product:
//!
//! `d²(i) = 2m · (1 − (QT_i − m·μ_q·μ_i) / (m·σ_q·σ_i))`.

use crate::znorm::rolling_mean_std;
use tskit::fft::{sliding_dot_product, sliding_dot_product_naive};

/// Distance profile of `query` against every window of `series`
/// (`series.len() − query.len() + 1` entries). Empty when the query is
/// longer than the series or empty.
pub fn mass(query: &[f64], series: &[f64]) -> Vec<f64> {
    let m = query.len();
    let n = series.len();
    if m == 0 || m > n {
        return Vec::new();
    }
    let qt = if n < 256 {
        sliding_dot_product_naive(query, series)
    } else {
        sliding_dot_product(query, series)
    };
    distance_profile_from_dots(&qt, query, series, m)
}

/// Converts sliding dot products into the z-normalized distance profile.
/// Exposed so STOMP can reuse its incrementally-maintained dot products.
pub fn distance_profile_from_dots(
    qt: &[f64],
    query: &[f64],
    series: &[f64],
    m: usize,
) -> Vec<f64> {
    let mu_q = tskit::stats::mean(query);
    let sigma_q = tskit::stats::std_dev(query).max(1e-12);
    let (mu, sigma) = rolling_mean_std(series, m);
    let mf = m as f64;
    qt.iter()
        .zip(mu.iter().zip(&sigma))
        .map(|(&dot, (&mi, &si))| {
            let corr = (dot - mf * mu_q * mi) / (mf * sigma_q * si);
            let d2 = 2.0 * mf * (1.0 - corr.clamp(-1.0, 1.0));
            d2.max(0.0).sqrt()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::znorm::znorm_distance;

    fn series(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * 0.31).sin() + 0.3 * ((i * 7919) % 17) as f64 / 17.0)
            .collect()
    }

    #[test]
    fn matches_direct_znorm_distances() {
        let s = series(300);
        let m = 24;
        let q = &s[40..40 + m];
        let prof = mass(q, &s);
        assert_eq!(prof.len(), s.len() - m + 1);
        for i in (0..prof.len()).step_by(13) {
            let direct = znorm_distance(q, &s[i..i + m]);
            assert!((prof[i] - direct).abs() < 1e-6, "i={i}: {} vs {}", prof[i], direct);
        }
        // self-match distance is ~0
        assert!(prof[40] < 1e-6);
    }

    #[test]
    fn small_series_uses_naive_path_consistently() {
        let s = series(100); // < 256 triggers the naive dot product
        let q = &s[10..30];
        let prof = mass(q, &s);
        let direct = znorm_distance(q, &s[55..75]);
        assert!((prof[55] - direct).abs() < 1e-6);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(mass(&[], &[1.0, 2.0]).is_empty());
        assert!(mass(&[1.0, 2.0, 3.0], &[1.0]).is_empty());
    }

    #[test]
    fn flat_regions_do_not_produce_nan() {
        let mut s = series(400);
        for v in s[100..160].iter_mut() {
            *v = 3.0;
        }
        let q = &s[120..150].to_vec(); // flat query
        let prof = mass(q, &s);
        assert!(prof.iter().all(|d| d.is_finite()));
    }
}
