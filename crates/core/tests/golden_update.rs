//! Golden bit-identity fixture for the OneShotSTL online update path.
//!
//! The fixture was generated from the pre-scratch-buffer implementation
//! (the one that cloned the full IRLS iteration state on every trial) and
//! pins the exact `f64` bit patterns of the online outputs over a stream
//! that exercises every branch of `update`: the steady-state fast path,
//! the §3.4 shift search (both an accepted and a rejected offset), the
//! trend-jump anomaly path, and non-finite-input imputation. Any
//! refactoring of the hot path — double-buffered scratch states, solver
//! rewrites — must keep this stream **bit-identical**.
//!
//! Since the two-stage shift-search refactor, the exhaustive fixture runs
//! with `ShiftPrune::Off`, which must stay bit-identical to the original
//! single-loop search; a second fixture pins the default pruned
//! (`ShiftPrune::TopK`) path so *its* numerics cannot drift silently
//! either.
//!
//! Regenerate (only when an *intentional* numeric change is made) with:
//! `cargo test -p oneshotstl --release --test golden_update -- --ignored --nocapture`

use decomp::traits::OnlineDecomposer;
use oneshotstl::{OneShotStl, OneShotStlConfig, ShiftSearchConfig};

const PERIOD: usize = 50;
const INIT: usize = 4 * PERIOD;
const ONLINE: usize = 400;

/// Deterministic noise: a 64-bit LCG mapped to [-1, 1). Inlined rather
/// than using an RNG crate so the fixture can never drift with a
/// dependency.
fn lcg_noise(state: &mut u64) -> f64 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    ((*state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
}

/// The golden stream: seasonal + noise, a +4 trend jump at online index
/// 150, a one-point spike at 180 (anomaly whose best "shift" must be
/// rejected), a permanent 5-point seasonality shift at 250 (accepted by
/// the §3.4 search), and a NaN at 300 (imputation path).
fn golden_stream() -> Vec<f64> {
    let mut state = 0x5eed_cafe_f00d_u64;
    let n = INIT + ONLINE;
    (0..n)
        .map(|i| {
            let online_i = i as i64 - INIT as i64;
            let phase = if online_i >= 250 { (i + PERIOD - 5) % PERIOD } else { i % PERIOD };
            let mut v = 3.0 * (2.0 * std::f64::consts::PI * phase as f64 / PERIOD as f64).sin()
                + 0.05 * lcg_noise(&mut state);
            if online_i >= 150 {
                v += 4.0;
            }
            if online_i == 180 {
                v += 25.0;
            }
            if online_i == 300 {
                v = f64::NAN;
            }
            v
        })
        .collect()
}

/// FNV-1a over the concatenated bit patterns of every online output
/// (trend, seasonal, residual per update, in stream order).
fn run_fingerprint(shift_search: ShiftSearchConfig) -> (u64, Vec<(usize, [u64; 3])>, i64) {
    let y = golden_stream();
    let mut m = OneShotStl::new(OneShotStlConfig { shift_search, ..Default::default() });
    m.init(&y[..INIT], PERIOD).unwrap();
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut fnv = |bits: u64| {
        for b in bits.to_le_bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    let spots = [0usize, 1, 149, 150, 151, 180, 181, 249, 250, 251, 300, 301, 399];
    let mut spot_bits = Vec::new();
    for (i, &v) in y[INIT..].iter().enumerate() {
        let p = m.update(v);
        let bits = [p.trend.to_bits(), p.seasonal.to_bits(), p.residual.to_bits()];
        for b in bits {
            fnv(b);
        }
        if spots.contains(&i) {
            spot_bits.push((i, bits));
        }
    }
    (hash, spot_bits, m.shift())
}

/// Pre-refactor fixture: stream fingerprint, per-update spot checks, and
/// the final cumulative phase offset (proves the §3.4 search accepted the
/// genuine shift and rejected the spike).
const GOLDEN_HASH: u64 = 0x126b8b86cd471d1c;
const GOLDEN_SHIFT: i64 = 6;
const GOLDEN_SPOTS: &[(usize, [u64; 3])] = &[
    (0, [0x3f8700a2197a919e, 0xbf80f7e09a34d7d7, 0xbc40000000000000]),
    (1, [0xbf6a10978a8f8e00, 0x3fd716d51ca527b2, 0xbf7d83b1313a8180]),
    (149, [0x3f611e4b2fb40b8e, 0xbfd71bfb0ba06a14, 0x3f9697bdbd117c30]),
    (150, [0x3f82012d8c96ca7c, 0x400c010b7a5e47d1, 0x3fdf738a0de2b3d8]),
    (151, [0x3f928f6349b73442, 0x400d4d00ed5450e5, 0x3fe5cb6a08d00a5c]),
    (180, [0x3fd49001fc132109, 0x402de48668f19816, 0x402800723a0ef8a8]),
    (181, [0x3fd381e5511d4eb2, 0x400275a511f9e1d0, 0xbfe58ddcdf21c75c]),
    (249, [0x3fff3fcd07663ab1, 0x3ffa92c81af8a670, 0x3fa60b9a5e8d7060]),
    (250, [0x3ffed759e71cf44d, 0x3fef04f3574d9c4f, 0xbfe3fd959977fed1]),
    (251, [0x3ffe89a62d069c69, 0x3ff227708561f8f1, 0xbfde0acb48a4def0]),
    (300, [0x4002eb9f6809b5c2, 0x400237fdf4349214, 0xbf622a14dfb8d800]),
    (301, [0x400290b2372e1fb1, 0x3ff567d3c2552397, 0xbff10bb49091d5bd]),
    (399, [0x400488c2cc8aafb4, 0xbfdf8736db70261f, 0xbfc21e2b7e458b62]),
];

fn check(
    search: ShiftSearchConfig,
    golden_hash: u64,
    golden_shift: i64,
    golden_spots: &[(usize, [u64; 3])],
) {
    let (hash, spots, shift) = run_fingerprint(search);
    assert_eq!(shift, golden_shift, "final cumulative phase offset changed");
    for ((i, got), (gi, want)) in spots.iter().zip(golden_spots) {
        assert_eq!(i, gi);
        for c in 0..3 {
            assert_eq!(
                got[c],
                want[c],
                "online update {i}, component {c}: {:e} != {:e}",
                f64::from_bits(got[c]),
                f64::from_bits(want[c]),
            );
        }
    }
    assert_eq!(spots.len(), golden_spots.len());
    assert_eq!(hash, golden_hash, "bit-level fingerprint of the online stream changed");
}

/// The exhaustive search (`prune: Off`) must stay bit-identical to the
/// original pre-refactor single-loop implementation: the fixture
/// constants predate both the scratch-buffer and the two-stage-pipeline
/// refactors.
/// Fixture of the default pruned (`TopK`) search, generated at the
/// two-stage-pipeline refactor. On this particular stream the proxy
/// ranking happens to agree with the exhaustive search at *every* update
/// (same hash) — the accepted shift ranks first by proxy score and the
/// spike's spurious best offset is rejected by the accept-ratio guard
/// either way — so the constants coincide with `GOLDEN_*`; they are kept
/// separate because nothing guarantees they stay equal if the default
/// `k` changes.
const PRUNED_HASH: u64 = 0x126b8b86cd471d1c;
const PRUNED_SHIFT: i64 = 6;
const PRUNED_SPOTS: &[(usize, [u64; 3])] = &[
    (0, [0x3f8700a2197a919e, 0xbf80f7e09a34d7d7, 0xbc40000000000000]),
    (1, [0xbf6a10978a8f8e00, 0x3fd716d51ca527b2, 0xbf7d83b1313a8180]),
    (149, [0x3f611e4b2fb40b8e, 0xbfd71bfb0ba06a14, 0x3f9697bdbd117c30]),
    (150, [0x3f82012d8c96ca7c, 0x400c010b7a5e47d1, 0x3fdf738a0de2b3d8]),
    (151, [0x3f928f6349b73442, 0x400d4d00ed5450e5, 0x3fe5cb6a08d00a5c]),
    (180, [0x3fd49001fc132109, 0x402de48668f19816, 0x402800723a0ef8a8]),
    (181, [0x3fd381e5511d4eb2, 0x400275a511f9e1d0, 0xbfe58ddcdf21c75c]),
    (249, [0x3fff3fcd07663ab1, 0x3ffa92c81af8a670, 0x3fa60b9a5e8d7060]),
    (250, [0x3ffed759e71cf44d, 0x3fef04f3574d9c4f, 0xbfe3fd959977fed1]),
    (251, [0x3ffe89a62d069c69, 0x3ff227708561f8f1, 0xbfde0acb48a4def0]),
    (300, [0x4002eb9f6809b5c2, 0x400237fdf4349214, 0xbf622a14dfb8d800]),
    (301, [0x400290b2372e1fb1, 0x3ff567d3c2552397, 0xbff10bb49091d5bd]),
    (399, [0x400488c2cc8aafb4, 0xbfdf8736db70261f, 0xbfc21e2b7e458b62]),
];

#[test]
fn exhaustive_online_update_stream_is_bit_identical_to_golden() {
    check(ShiftSearchConfig::exhaustive(), GOLDEN_HASH, GOLDEN_SHIFT, GOLDEN_SPOTS);
}

/// The default pruned search has its own fixture: behavior-changing by
/// design (vs the exhaustive path), but its numerics must not drift.
#[test]
fn pruned_online_update_stream_is_bit_identical_to_golden() {
    check(ShiftSearchConfig::default(), PRUNED_HASH, PRUNED_SHIFT, PRUNED_SPOTS);
}

/// On this stream the default pruning must agree with the exhaustive
/// search about the one genuine seasonality shift: same final cumulative
/// offset, found at the same update.
#[test]
fn pruned_search_accepts_the_same_genuine_shift() {
    assert_eq!(PRUNED_SHIFT, GOLDEN_SHIFT);
}

#[test]
#[ignore = "fixture regeneration helper, not a test"]
fn regenerate_fixture() {
    for (name, search) in
        [("GOLDEN", ShiftSearchConfig::exhaustive()), ("PRUNED", ShiftSearchConfig::default())]
    {
        let (hash, spots, shift) = run_fingerprint(search);
        println!("const {name}_HASH: u64 = {hash:#018x};");
        println!("const {name}_SHIFT: i64 = {shift};");
        println!("const {name}_SPOTS: &[(usize, [u64; 3])] = &[");
        for (i, b) in spots {
            println!("    ({i}, [{:#018x}, {:#018x}, {:#018x}]),", b[0], b[1], b[2]);
        }
        println!("];");
    }
}
