//! Pins the zero-allocation guarantee of the steady-state online update
//! path: after initialization (and one scratch-buffer warm-up update), a
//! [`OneShotStl::update`] performs **zero heap allocations** — including
//! updates that trigger the §3.4 seasonality-shift search (under both the
//! default pruned `TopK` policy, whose stage-1 proxy scoring uses a
//! fixed-size scratch, and the exhaustive `Off` policy that runs all
//! `2H + 1` retry trials), and updates that impute non-finite input.
//! A second test extends the guarantee to the fused residual-scoring
//! path (CUSUM + peak-hold on top of the decomposition), and a third to
//! the trend-innovation CUSUM backend (`TrendCusum`).
//!
//! The counting global allocator below makes the claim a hard test rather
//! than a code-review property. CI runs this test file explicitly
//! (`--test zero_alloc`), so deleting or renaming it fails the build — the
//! regression guard cannot be skipped silently.

use decomp::traits::OnlineDecomposer;
use oneshotstl::{OneShotStl, OneShotStlConfig, ShiftSearchConfig};
use std::alloc::{GlobalAlloc, Layout, System};

/// Counts every allocation request routed to the system allocator,
/// **per thread**: the libtest harness keeps background threads alive
/// (hang-detection / reporting) that may allocate at any moment, and a
/// process-wide counter picks those up as rare spurious failures. The
/// update path under test runs entirely on the test thread, so its
/// thread-local count is the exact quantity the invariant covers.
/// `Cell<u64>` is const-initialized and has no destructor, so touching it
/// from inside the allocator can never recurse or hit TLS teardown.
struct CountingAlloc;

thread_local! {
    static ALLOCS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.with(|c| c.get())
}

fn assert_zero_alloc_stream(search: ShiftSearchConfig, label: &str) {
    let t = 48usize;
    let n = 4 * t + 2_000;
    // everything the stream needs is allocated up front
    let y: Vec<f64> = (0..n)
        .map(|i| 2.0 + (2.0 * std::f64::consts::PI * i as f64 / t as f64).sin())
        .collect();
    let mut m =
        OneShotStl::new(OneShotStlConfig { shift_search: search, ..Default::default() });
    m.init(&y[..4 * t], t).unwrap();
    // warm-up: the first updates size the scratch buffers (the noise-free
    // stream false-alarms early, sizing the trial *and* stage-1 proxy
    // buffers) and walk the solvers through their 4-step warm-up into the
    // POD steady state
    for &v in &y[4 * t..4 * t + 16] {
        std::hint::black_box(m.update(v));
    }
    let (searches, _) = m.shift_search_stats();
    assert!(searches > 0, "[{label}] warm-up must exercise the shift search");

    // 1) plain steady-state updates
    let before = allocs();
    for &v in &y[4 * t + 16..4 * t + 1_016] {
        std::hint::black_box(m.update(v));
    }
    assert_eq!(allocs() - before, 0, "[{label}] steady-state update allocated");

    // 2) an anomalous spike: NSigma flags it and the §3.4 shift search
    //    runs its trials (all 2H+1 under Off, proxy-pruned under TopK;
    //    H = 20 with paper defaults)
    let before = allocs();
    std::hint::black_box(m.update(y[4 * t + 1_016] + 50.0));
    assert_eq!(allocs() - before, 0, "[{label}] shift-retry update allocated");

    // 3) non-finite input: the imputation path
    let before = allocs();
    std::hint::black_box(m.update(f64::NAN));
    assert_eq!(allocs() - before, 0, "[{label}] imputing update allocated");

    // 4) and the stream continues allocation-free after both excursions
    let before = allocs();
    for &v in &y[4 * t + 1_017..4 * t + 1_517] {
        std::hint::black_box(m.update(v));
    }
    assert_eq!(allocs() - before, 0, "[{label}] post-excursion update allocated");
}

/// The hard case: a *noisy* stream keeps NSigma calibrated, so the very
/// first shift search happens long after warm-up — and the next one right
/// after it (a winning candidate's buffer swap must not leave an
/// unsized buffer behind). Both flagged updates must allocate nothing:
/// every search buffer is pre-sized on plain updates.
fn assert_zero_alloc_late_flags(search: ShiftSearchConfig, label: &str) {
    let t = 48usize;
    let mut state = 0x5eed_u64;
    let mut noise = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    };
    let y: Vec<f64> = (0..4 * t + 600)
        .map(|i| 2.0 + (2.0 * std::f64::consts::PI * i as f64 / t as f64).sin() + 0.1 * noise())
        .collect();
    let mut m =
        OneShotStl::new(OneShotStlConfig { shift_search: search, ..Default::default() });
    m.init(&y[..4 * t], t).unwrap();
    for &v in &y[4 * t..4 * t + 500] {
        std::hint::black_box(m.update(v));
    }
    let (searches, _) = m.shift_search_stats();
    assert_eq!(searches, 0, "[{label}] the noisy warm-up must stay calm — no search yet");
    // two consecutive flagged updates: the first exercises a fresh search,
    // the second the post-swap buffer state
    for (i, spike) in [50.0, 500.0].into_iter().enumerate() {
        let before = allocs();
        std::hint::black_box(m.update(y[4 * t + 500 + i] + spike));
        assert_eq!(allocs() - before, 0, "[{label}] late flagged update {i} allocated");
    }
    let (searches, _) = m.shift_search_stats();
    assert_eq!(searches, 2, "[{label}] both spikes must have run the search");
}

/// One test covers every hot-path branch — under both shift-search
/// policies — on one thread, whose thread-local counter is immune to
/// harness background threads.
#[test]
fn steady_state_update_performs_zero_heap_allocations() {
    assert_zero_alloc_stream(ShiftSearchConfig::default(), "pruned TopK (default)");
    assert_zero_alloc_stream(ShiftSearchConfig::exhaustive(), "exhaustive Off");
    assert_zero_alloc_late_flags(ShiftSearchConfig::default(), "late flags, pruned");
    assert_zero_alloc_late_flags(ShiftSearchConfig::exhaustive(), "late flags, exhaustive");
}

/// The fused residual-scoring path (`StdAnomalyDetector` →
/// `ResidualScorer`: NSigma z + two-sided CUSUM + peak-hold) inherits the
/// hot-path guarantee: its state is three `f64` accumulators on top of
/// NSigma's running sums, so a full scored update — decompose + fuse +
/// verdict — performs zero heap allocations in steady state, across
/// every fusion mode, CUSUM alarms (reset-on-alarm), the flagged
/// shift-search path, and non-finite input.
#[test]
fn fused_scoring_update_performs_zero_heap_allocations() {
    use oneshotstl::{Fusion, ScoreConfig, StdAnomalyDetector};
    for (fusion, label) in
        [(Fusion::Off, "Off"), (Fusion::Cusum, "Cusum"), (Fusion::Max, "Max (default)")]
    {
        let t = 48usize;
        let n = 4 * t + 2_000;
        let y: Vec<f64> = (0..n)
            .map(|i| 2.0 + (2.0 * std::f64::consts::PI * i as f64 / t as f64).sin())
            .collect();
        let score = ScoreConfig { fusion, ..Default::default() };
        let mut det = StdAnomalyDetector::with_score(
            OneShotStl::new(OneShotStlConfig::default()),
            5.0,
            score,
        );
        det.init(&y[..4 * t], t).unwrap();
        // warm-up: size the decomposer's scratch buffers
        for &v in &y[4 * t..4 * t + 16] {
            std::hint::black_box(det.update_scored(v));
        }

        // 1) plain steady-state scored updates
        let before = allocs();
        for &v in &y[4 * t + 16..4 * t + 1_016] {
            std::hint::black_box(det.update_scored(v));
        }
        assert_eq!(allocs() - before, 0, "[{label}] steady-state scored update allocated");

        // 2) a spike: z alarm + CUSUM jump + shift-search trials, and a
        //    drift long enough to trip the CUSUM bar and reset-on-alarm
        let before = allocs();
        std::hint::black_box(det.update_scored(y[4 * t + 1_016] + 50.0));
        for i in 0..40 {
            std::hint::black_box(det.update_scored(y[4 * t + 1_017 + i] + 0.4));
        }
        assert_eq!(allocs() - before, 0, "[{label}] alarming scored update allocated");

        // 3) non-finite input: the guarded path
        let before = allocs();
        std::hint::black_box(det.update_scored(f64::NAN));
        assert_eq!(allocs() - before, 0, "[{label}] non-finite scored update allocated");

        // 4) and the stream continues allocation-free
        let before = allocs();
        for &v in &y[4 * t + 1_057..4 * t + 1_557] {
            std::hint::black_box(det.update_scored(v));
        }
        assert_eq!(allocs() - before, 0, "[{label}] post-excursion scored update allocated");
    }
}

/// The trend-innovation CUSUM (`TrendCusum`) is a `ResidualScorer` over
/// trend first-differences plus two scalars — its steady-state `update`
/// (including warm-up absorption, alarms with reset, and the non-finite
/// guard) performs zero heap allocations. This is the backend contract
/// the fleet's `DetectorBackend` dispatch relies on.
#[test]
fn trend_cusum_update_performs_zero_heap_allocations() {
    use oneshotstl::{ScoreConfig, TrendCusum};
    let mut t = TrendCusum::new(5.0, ScoreConfig::default());
    // trend stream allocated up front: gentle wander, then a walk
    let trends: Vec<f64> = (0..2_000)
        .map(|i| 10.0 + 0.05 * (2.0 * std::f64::consts::PI * i as f64 / 200.0).sin())
        .collect();
    t.seed(&trends[..64]);

    // 1) plain steady-state updates
    let before = allocs();
    for &v in &trends[64..1_064] {
        std::hint::black_box(t.update(v));
    }
    assert_eq!(allocs() - before, 0, "steady-state trend update allocated");

    // 2) a sustained walk: the CUSUM charges, alarms, and resets
    let before = allocs();
    for i in 0..200 {
        std::hint::black_box(t.update(trends[1_064] + 0.2 * i as f64));
    }
    assert_eq!(allocs() - before, 0, "alarming trend update allocated");
    let (_, cusum_alarms) = t.alarm_counts();
    assert!(cusum_alarms > 0, "the walk must have tripped the CUSUM");

    // 3) non-finite input: the guarded path
    let before = allocs();
    std::hint::black_box(t.update(f64::NAN));
    assert_eq!(allocs() - before, 0, "non-finite trend update allocated");

    // 4) and the stream continues allocation-free
    let before = allocs();
    for &v in &trends[1_064..1_564] {
        std::hint::black_box(t.update(v));
    }
    assert_eq!(allocs() - before, 0, "post-excursion trend update allocated");
}
