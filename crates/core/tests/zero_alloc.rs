//! Pins the zero-allocation guarantee of the steady-state online update
//! path: after initialization (and one scratch-buffer warm-up update), a
//! [`OneShotStl::update`] performs **zero heap allocations** — including
//! updates that trigger the §3.4 seasonality-shift search and run all
//! `2H + 1` retry trials, and updates that impute non-finite input.
//!
//! The counting global allocator below makes the claim a hard test rather
//! than a code-review property. CI runs this test file explicitly
//! (`--test zero_alloc`), so deleting or renaming it fails the build — the
//! regression guard cannot be skipped silently.

use decomp::traits::OnlineDecomposer;
use oneshotstl::OneShotStl;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocation request routed to the system allocator.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// One test covers every hot-path branch so no other test thread can
/// pollute the counter mid-measurement.
#[test]
fn steady_state_update_performs_zero_heap_allocations() {
    let t = 48usize;
    let n = 4 * t + 2_000;
    // everything the stream needs is allocated up front
    let y: Vec<f64> = (0..n)
        .map(|i| 2.0 + (2.0 * std::f64::consts::PI * i as f64 / t as f64).sin())
        .collect();
    let mut m = OneShotStl::default_paper();
    m.init(&y[..4 * t], t).unwrap();
    // warm-up: the first updates size the scratch buffers and walk the
    // solvers through their 4-step warm-up into the POD steady state
    for &v in &y[4 * t..4 * t + 16] {
        std::hint::black_box(m.update(v));
    }

    // 1) plain steady-state updates
    let before = allocs();
    for &v in &y[4 * t + 16..4 * t + 1_016] {
        std::hint::black_box(m.update(v));
    }
    assert_eq!(allocs() - before, 0, "steady-state update allocated");

    // 2) an anomalous spike: NSigma flags it and the §3.4 shift search
    //    runs all 2H+1 retry trials (H = 20 with paper defaults)
    let before = allocs();
    std::hint::black_box(m.update(y[4 * t + 1_016] + 50.0));
    assert_eq!(allocs() - before, 0, "shift-retry update allocated");

    // 3) non-finite input: the imputation path
    let before = allocs();
    std::hint::black_box(m.update(f64::NAN));
    assert_eq!(allocs() - before, 0, "imputing update allocated");

    // 4) and the stream continues allocation-free after both excursions
    let before = allocs();
    for &v in &y[4 * t + 1_017..4 * t + 1_517] {
        std::hint::black_box(m.update(v));
    }
    assert_eq!(allocs() - before, 0, "post-excursion update allocated");
}
