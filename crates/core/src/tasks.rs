//! Downstream task adapters (paper §4): turning any online STD method into
//! a univariate anomaly detector or forecaster.

use crate::nsigma::NSigma;
use crate::score::{ResidualScorer, ScoreConfig, ScoreVerdict};
use decomp::traits::OnlineDecomposer;
use tskit::error::Result;
use tskit::ring::RingBuffer;
use tskit::series::DecompPoint;

/// §4 (1): STD → TSAD. Wraps an online decomposer and scores each point
/// with the persistence-aware [`ResidualScorer`] (instantaneous NSigma
/// z-score fused with a two-sided CUSUM; see [`crate::score`]) on the
/// decomposed residual.
#[derive(Debug, Clone)]
pub struct StdAnomalyDetector<D> {
    /// The wrapped online decomposer.
    pub decomposer: D,
    scorer: ResidualScorer,
}

impl<D: OnlineDecomposer> StdAnomalyDetector<D> {
    /// Wraps `decomposer`, flagging residuals beyond `n` sigma or past
    /// the CUSUM bar, with the default fused [`ScoreConfig`].
    pub fn new(decomposer: D, n: f64) -> Self {
        Self::with_score(decomposer, n, ScoreConfig::default())
    }

    /// Wraps `decomposer` with an explicit scoring configuration
    /// ([`ScoreConfig::off`] reproduces the paper's plain-NSigma path
    /// bit-identically).
    pub fn with_score(decomposer: D, n: f64, score: ScoreConfig) -> Self {
        StdAnomalyDetector { decomposer, scorer: ResidualScorer::new(n, score) }
    }

    /// Read-only view of the residual scorer.
    pub fn scorer(&self) -> &ResidualScorer {
        &self.scorer
    }

    /// Read-only view of the residual scoring statistics.
    pub fn nsigma(&self) -> &NSigma {
        self.scorer.nsigma()
    }

    /// Reassembles a detector from a decomposer and a scorer (snapshot
    /// restore; see `fleet::codec`).
    pub fn from_parts(decomposer: D, scorer: ResidualScorer) -> Self {
        StdAnomalyDetector { decomposer, scorer }
    }

    /// Initializes the decomposer on a prefix; residuals of the prefix seed
    /// the scorer's statistics.
    pub fn init(&mut self, y: &[f64], period: usize) -> Result<()> {
        let d = self.decomposer.init(y, period)?;
        self.scorer.seed(&d.residual);
        Ok(())
    }

    /// Decomposes one arriving point and returns `(components, score)`.
    pub fn update(&mut self, y: f64) -> (DecompPoint, f64) {
        let (p, v) = self.update_scored(y);
        (p, v.score)
    }

    /// [`Self::update`] with the full fused verdict (score, components,
    /// threshold decision), so callers don't re-implement the fusion
    /// rule.
    pub fn update_scored(&mut self, y: f64) -> (DecompPoint, ScoreVerdict) {
        let p = self.decomposer.update(y);
        let v = self.scorer.update(p.residual);
        (p, v)
    }

    /// Scores a whole test stream (after [`Self::init`]).
    pub fn score_stream(&mut self, ys: &[f64]) -> Vec<f64> {
        ys.iter().map(|&y| self.update(y).1).collect()
    }
}

impl<S: crate::oneshot::TailSolver> StdAnomalyDetector<crate::oneshot::OnlineJointStl<S>> {
    /// [`Self::update_scored`] with caller-provided trial scratch: a host
    /// multiplexing many detectors on one thread (the fleet shard worker)
    /// shares one hot [`crate::UpdateScratch`] across all of them instead
    /// of growing one per model. Output is bit-identical to
    /// [`Self::update_scored`].
    pub fn update_scored_with(
        &mut self,
        y: f64,
        scratch: &mut crate::UpdateScratch<S>,
    ) -> (DecompPoint, ScoreVerdict) {
        let p = self.decomposer.update_with_scratch(y, scratch);
        let v = self.scorer.update(p.residual);
        (p, v)
    }
}

/// §4 (2): STD → TSF. Buffers the latest trend and one period of seasonal
/// values; the `i`-step-ahead prediction is
/// `ŷ_{t+i} = τ_{t−1} + v[(t+i) mod T]`.
#[derive(Debug, Clone)]
pub struct StdForecaster<D> {
    /// The wrapped online decomposer.
    pub decomposer: D,
    period: usize,
    /// One period of the latest seasonal estimates, indexed by `t mod T`.
    v: Vec<f64>,
    /// Latest trend value τ_{t−1}.
    tau: f64,
    /// Global index of the next arriving point.
    t: usize,
}

impl<D: OnlineDecomposer> StdForecaster<D> {
    /// Wraps an online decomposer for forecasting.
    pub fn new(decomposer: D) -> Self {
        StdForecaster { decomposer, period: 0, v: Vec::new(), tau: 0.0, t: 0 }
    }

    /// Initializes on a prefix; fills the seasonal buffer from the last
    /// period of the initialization decomposition.
    pub fn init(&mut self, y: &[f64], period: usize) -> Result<()> {
        let d = self.decomposer.init(y, period)?;
        self.period = period;
        self.v = vec![0.0; period];
        let n = y.len();
        for idx in n.saturating_sub(period)..n {
            self.v[idx % period] = d.seasonal[idx];
        }
        self.tau = *d.trend.last().expect("non-empty init");
        self.t = n;
        Ok(())
    }

    /// Observes one arriving value (decomposes it online).
    pub fn observe(&mut self, y: f64) {
        let p = self.decomposer.update(y);
        self.v[self.t % self.period] = p.seasonal;
        self.tau = p.trend;
        self.t += 1;
    }

    /// Predicts `i` steps ahead (`i ≥ 1`): `τ_{t−1} + v[(t−1+i) mod T]`.
    pub fn predict(&self, i: usize) -> f64 {
        assert!(self.period > 0, "StdForecaster::predict called before init");
        self.tau + self.v[(self.t + i - 1) % self.period]
    }

    /// Predicts the full horizon `1..=h`.
    pub fn predict_horizon(&self, h: usize) -> Vec<f64> {
        (1..=h).map(|i| self.predict(i)).collect()
    }
}

/// A trailing-window z-score forecaster used as a trivial sanity baseline
/// (predicts the running mean). Useful for tests and as a floor in the
/// evaluation harness.
#[derive(Debug, Clone)]
pub struct MeanForecaster {
    window: RingBuffer,
}

impl MeanForecaster {
    /// Creates a mean forecaster with the given window capacity.
    pub fn new(window: usize) -> Self {
        MeanForecaster { window: RingBuffer::new(window.max(1)) }
    }

    /// Observes one value.
    pub fn observe(&mut self, y: f64) {
        self.window.push(y);
    }

    /// Predicts any horizon with the window mean.
    pub fn predict(&self) -> f64 {
        if self.window.is_empty() {
            0.0
        } else {
            self.window.iter().sum::<f64>() / self.window.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oneshot::{OneShotStl, OneShotStlConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn seasonal(n: usize, t: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                1.0 + (2.0 * std::f64::consts::PI * i as f64 / t as f64).sin()
                    + 0.03 * rng.gen_range(-1.0..1.0)
            })
            .collect()
    }

    #[test]
    fn detector_flags_injected_spike() {
        let t = 24;
        let mut y = seasonal(800, t, 1);
        y[600] += 5.0;
        let mut det =
            StdAnomalyDetector::new(OneShotStl::new(OneShotStlConfig::default()), 5.0);
        det.init(&y[..4 * t], t).unwrap();
        let scores = det.score_stream(&y[4 * t..]);
        let spike_idx = 600 - 4 * t;
        let spike_score = scores[spike_idx];
        // the fused score is peak-held, so the points *after* the spike
        // carry a decaying tail by design — the pre-spike region is the
        // clean comparison, and the spike itself must rank top overall
        let pre_spike_max = scores[..spike_idx - 2].iter().fold(0.0f64, |a, &s| a.max(s));
        assert!(
            spike_score > pre_spike_max,
            "spike score {spike_score} should dominate pre-spike max {pre_spike_max}"
        );
        assert_eq!(tskit::stats::argmax(&scores), Some(spike_idx));
        // and the hold tail decays geometrically rather than sticking
        assert!(scores[spike_idx + 30] < spike_score);
    }

    /// The legacy configuration is still reachable: `ScoreConfig::off()`
    /// reproduces the paper's plain-NSigma scoring (no hold tail).
    #[test]
    fn score_off_has_no_hold_tail() {
        let t = 24;
        let mut y = seasonal(800, t, 1);
        y[600] += 5.0;
        let mut det = StdAnomalyDetector::with_score(
            OneShotStl::new(OneShotStlConfig::default()),
            5.0,
            crate::score::ScoreConfig::off(),
        );
        det.init(&y[..4 * t], t).unwrap();
        let scores = det.score_stream(&y[4 * t..]);
        let spike_idx = 600 - 4 * t;
        let spike_score = scores[spike_idx];
        let normal_max = scores
            .iter()
            .enumerate()
            .filter(|(i, _)| (*i as i64 - spike_idx as i64).abs() > 2)
            .map(|(_, &s)| s)
            .fold(0.0f64, f64::max);
        assert!(
            spike_score > normal_max,
            "spike score {spike_score} should dominate normal max {normal_max}"
        );
    }

    #[test]
    fn forecaster_beats_mean_on_seasonal_data() {
        let t = 24;
        let y = seasonal(1000, t, 2);
        let split = 800;
        let mut f = StdForecaster::new(OneShotStl::new(OneShotStlConfig::default()));
        f.init(&y[..4 * t], t).unwrap();
        let mut mean_f = MeanForecaster::new(2 * t);
        for &v in &y[4 * t..split] {
            f.observe(v);
            mean_f.observe(v);
        }
        // forecast the next 2 periods
        let horizon = 2 * t;
        let preds = f.predict_horizon(horizon);
        let truth = &y[split..split + horizon];
        let std_err = tskit::stats::mae(&preds, truth);
        let mean_err: f64 =
            truth.iter().map(|v| (v - mean_f.predict()).abs()).sum::<f64>() / horizon as f64;
        assert!(
            std_err < 0.5 * mean_err,
            "seasonal forecaster ({std_err}) should easily beat mean ({mean_err})"
        );
        assert!(std_err < 0.15, "forecast MAE {std_err}");
    }

    #[test]
    fn predict_horizon_is_periodic() {
        let t = 12;
        let y = seasonal(300, t, 3);
        let mut f = StdForecaster::new(OneShotStl::new(OneShotStlConfig::default()));
        f.init(&y[..6 * t], t).unwrap();
        for &v in &y[6 * t..200] {
            f.observe(v);
        }
        let p = f.predict_horizon(3 * t);
        for i in 0..t {
            assert!((p[i] - p[i + t]).abs() < 1e-12, "seasonal forecast repeats");
        }
    }

    #[test]
    #[should_panic(expected = "before init")]
    fn predict_before_init_panics() {
        let f = StdForecaster::new(OneShotStl::default_paper());
        f.predict(1);
    }
}
