//! Symmetric Doolittle factorization (paper Algorithm 3).
//!
//! Factorizes a symmetric matrix as `A = L D Lᵀ` with unit lower-triangular
//! `L` and diagonal `D`. This dense version exists as the paper's reference
//! algorithm and as the test oracle for [`crate::online_doolittle`]; the
//! production paths use the banded variant in [`tskit::linalg`].

// index recurrences here mirror the published algorithms; iterator
// rewrites obscure the maths
#![allow(clippy::needless_range_loop)]
use tskit::error::{Result, TsError};

/// Dense `L D Lᵀ` factors (row-major `L` with implicit/explicit unit
/// diagonal).
#[derive(Debug, Clone)]
pub struct DenseLdlt {
    /// Unit lower-triangular factor (full dense storage).
    pub l: Vec<Vec<f64>>,
    /// Diagonal of `D`.
    pub d: Vec<f64>,
}

/// Runs Algorithm 3 on a dense symmetric matrix.
///
/// Fails with [`TsError::Singular`] on a vanishing pivot.
pub fn symmetric_doolittle(a: &[Vec<f64>]) -> Result<DenseLdlt> {
    let n = a.len();
    let mut l = vec![vec![0.0; n]; n];
    let mut d = vec![0.0; n];
    for k in 0..n {
        debug_assert_eq!(a[k].len(), n, "matrix must be square");
        l[k][k] = 1.0;
        let mut dk = a[k][k];
        for i in 0..k {
            dk -= d[i] * l[k][i] * l[k][i];
        }
        if dk.abs() < 1e-300 {
            return Err(TsError::Singular { pivot: k });
        }
        d[k] = dk;
        for j in k + 1..n {
            let mut s = a[j][k];
            for i in 0..k {
                s -= l[j][i] * d[i] * l[k][i];
            }
            l[j][k] = s / dk;
        }
    }
    Ok(DenseLdlt { l, d })
}

impl DenseLdlt {
    /// Forward substitution `L z = b`.
    pub fn forward(&self, b: &[f64]) -> Vec<f64> {
        let n = self.d.len();
        let mut z = b.to_vec();
        for k in 0..n {
            let mut s = z[k];
            for i in 0..k {
                s -= self.l[k][i] * z[i];
            }
            z[k] = s;
        }
        z
    }

    /// Solves `A x = b` via forward, diagonal, and backward substitution.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.d.len();
        let mut z = self.forward(b);
        for k in 0..n {
            z[k] /= self.d[k];
        }
        for k in (0..n).rev() {
            let mut s = z[k];
            for j in k + 1..n {
                s -= self.l[j][k] * z[j];
            }
            z[k] = s;
        }
        z
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd(n: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut state = seed;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut b = vec![vec![0.0; n]; n];
        for row in b.iter_mut() {
            for v in row.iter_mut() {
                *v = rnd();
            }
        }
        // A = BᵀB + I
        let mut a = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in 0..n {
                let mut s = if i == j { 1.0 } else { 0.0 };
                for (k, row) in b.iter().enumerate() {
                    s += row[i] * row[j];
                    let _ = k;
                }
                a[i][j] = s;
            }
        }
        a
    }

    #[test]
    fn factorization_reconstructs() {
        let a = spd(10, 3);
        let f = symmetric_doolittle(&a).unwrap();
        for i in 0..10 {
            assert!((f.l[i][i] - 1.0).abs() < 1e-12, "unit diagonal");
            for j in 0..10 {
                let mut v = 0.0;
                for k in 0..=i.min(j) {
                    v += f.l[i][k] * f.d[k] * f.l[j][k];
                }
                assert!((v - a[i][j]).abs() < 1e-9, "({i},{j})");
            }
        }
    }

    #[test]
    fn solve_matches_known_solution() {
        let a = spd(15, 7);
        let x_true: Vec<f64> = (0..15).map(|i| (i as f64 * 0.31).cos()).collect();
        let b: Vec<f64> = (0..15).map(|i| (0..15).map(|j| a[i][j] * x_true[j]).sum()).collect();
        let f = symmetric_doolittle(&a).unwrap();
        let x = f.solve(&b);
        for i in 0..15 {
            assert!((x[i] - x_true[i]).abs() < 1e-8, "i={i}");
        }
    }

    #[test]
    fn singular_is_reported() {
        let a = vec![vec![0.0, 0.0], vec![0.0, 1.0]];
        assert!(matches!(symmetric_doolittle(&a), Err(TsError::Singular { pivot: 0 })));
    }

    #[test]
    fn matches_banded_ldlt() {
        // same factors as the banded implementation on a banded SPD matrix
        let n = 12;
        let mut dense = vec![vec![0.0; n]; n];
        let mut banded = tskit::linalg::SymBanded::zeros(n, 2);
        for i in 0..n {
            dense[i][i] = 4.0 + i as f64 * 0.1;
            banded.set(i, i, dense[i][i]);
            if i + 1 < n {
                dense[i][i + 1] = -1.0;
                dense[i + 1][i] = -1.0;
                banded.set(i + 1, i, -1.0);
            }
            if i + 2 < n {
                dense[i][i + 2] = 0.3;
                dense[i + 2][i] = 0.3;
                banded.set(i + 2, i, 0.3);
            }
        }
        let fd = symmetric_doolittle(&dense).unwrap();
        let fb = banded.ldlt().unwrap();
        for k in 0..n {
            assert!((fd.d[k] - fb.d[k]).abs() < 1e-10);
            for j in k..n {
                assert!((fd.l[j][k] - fb.l.get(j, k)).abs() < 1e-10, "L({j},{k})");
            }
        }
    }
}
