//! OnlineDoolittle (paper Algorithm 4): `O(1)` incremental `L D Lᵀ`
//! factorization and partial solve of the growing online system.
//!
//! ## How it works
//!
//! When online point `M` arrives (0-based time `m = M − 1`), the banded
//! system matrix `A ∈ R^{2M×2M}` differs from the previous step's matrix
//! only in its **trailing 6×6 block** (unknown indices `2M−6 … 2M−1`;
//! paper Fig. 2). Because the Doolittle factorization computes column `k`
//! from `A[k.., k]` and the columns left of `k`, only the last 6 columns of
//! `L`, `D` need (re)computation. The state carried between steps is:
//!
//! - `lo`: the `8×4` window `L[2M−8 … 2M−1, 2M−8 … 2M−5]` (rows × finalized
//!   columns that the next step's recurrences reach into — half-bandwidth 4),
//! - `dd`: `D[2M−8 … 2M−5]`,
//! - `zo`: the forward-substituted rhs `z = L⁻¹ b` at the same 4 indices.
//!
//! The newest solution entries come from the first two steps of backward
//! substitution, which — crucially — are **exact**: backward substitution
//! starts at the last index, so `x_{2M−1}` (= `s_t`) and `x_{2M−2}` (= `τ_t`)
//! of the exact solution are available after `O(1)` work. OneShotSTL is
//! therefore an exact incremental solver for the Algorithm-2 system, not an
//! approximation of it (verified against [`crate::reference`]).
//!
//! The first 4 steps ("warm-up") factorize the still-tiny full system
//! directly; the window state is extracted at step 4. All work per step is
//! bounded by fixed 10×10 loops either way: the update is `O(1)`.

// index recurrences here mirror the published algorithms; iterator
// rewrites obscure the maths
#![allow(clippy::needless_range_loop)]
use crate::system::{assemble_block, assemble_full, SystemData, TailBlock, TailData};
use tskit::error::TsError;

/// Plain-data snapshot of an [`IncrementalSolver`] (see `fleet::codec`).
#[derive(Debug, Clone, PartialEq)]
pub enum SolverState {
    /// Snapshot of the warm-up phase (`M ≤ 4`): full tiny histories.
    Warmup {
        /// Observations so far.
        y: Vec<f64>,
        /// Seasonal anchors so far.
        u: Vec<f64>,
        /// First-difference weights so far.
        pw: Vec<f64>,
        /// Second-difference weights so far.
        qw: Vec<f64>,
    },
    /// Snapshot of the steady phase (`M ≥ 5`): the constant-size window.
    Steady {
        /// Points processed so far.
        m: u64,
        /// `L` window, row-major `8×4` (32 values).
        lo: Vec<f64>,
        /// `D` window (4 values).
        dd: Vec<f64>,
        /// `z` window (4 values).
        zo: Vec<f64>,
    },
}

/// Incremental solver for one IRLS iteration's linear system.
///
/// Feed one [`TailData`] per online point via [`IncrementalSolver::step`];
/// it returns the exact `(τ_t, s_t)` of the growing system's solution.
// the Steady window (41 f64s, Copy) intentionally dwarfs the transient
// Warmup variant: boxing it would put the O(1) per-update state behind a
// pointer on the hot path
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum IncrementalSolver {
    /// Steps `M ≤ 4`: keep full (tiny) histories and solve directly.
    Warmup {
        /// Observations so far.
        y: Vec<f64>,
        /// Seasonal anchors so far.
        u: Vec<f64>,
        /// First-difference weights so far.
        pw: Vec<f64>,
        /// Second-difference weights so far.
        qw: Vec<f64>,
    },
    /// Steps `M ≥ 5`: constant-size window state.
    Steady(Window),
}

/// The `O(1)` window state (see module docs).
#[derive(Debug, Clone, Copy)]
pub struct Window {
    /// Number of online points processed.
    m: usize,
    /// `L[2M−8 … 2M−1, 2M−8 … 2M−5]`, row-major.
    lo: [[f64; 4]; 8],
    /// `D[2M−8 … 2M−5]`.
    dd: [f64; 4],
    /// `z[2M−8 … 2M−5]` where `z = L⁻¹ b`.
    zo: [f64; 4],
}

/// Reusable factorization scratch for `Window::step`: the flat 10×10 `L`
/// working triangle of one step, kept hot across updates instead of being
/// stack-zeroed per IRLS iteration.
///
/// Sharing one scratch across solver instances (the 8 IRLS iterations, and
/// every series on a fleet shard) is bit-exact because each step only reads
/// entries it (a) copied in from the window, (b) explicitly zeroed, or
/// (c) never writes at all — the structurally-zero sub-band cells below,
/// which retain their `Default` zeros forever.
#[derive(Debug, Clone)]
pub struct SolverScratch {
    /// Row-major flat `10×10` `L` working triangle (`l[10 * row + col]`).
    l: [f64; 100],
}

impl Default for SolverScratch {
    fn default() -> Self {
        SolverScratch { l: [0.0; 100] }
    }
}

impl Default for IncrementalSolver {
    fn default() -> Self {
        Self::new()
    }
}

impl IncrementalSolver {
    /// A fresh solver (no points yet).
    pub fn new() -> Self {
        IncrementalSolver::Warmup {
            y: Vec::with_capacity(5),
            u: Vec::with_capacity(5),
            pw: Vec::with_capacity(5),
            qw: Vec::with_capacity(5),
        }
    }

    /// Number of points processed so far.
    pub fn len(&self) -> usize {
        match self {
            IncrementalSolver::Warmup { y, .. } => y.len(),
            IncrementalSolver::Steady(w) => w.m,
        }
    }

    /// True when no points have been processed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Extracts a plain-data snapshot for serialization (see
    /// `fleet::codec`).
    pub fn to_state(&self) -> SolverState {
        match self {
            IncrementalSolver::Warmup { y, u, pw, qw } => SolverState::Warmup {
                y: y.clone(),
                u: u.clone(),
                pw: pw.clone(),
                qw: qw.clone(),
            },
            IncrementalSolver::Steady(w) => SolverState::Steady {
                m: w.m as u64,
                lo: w.lo.iter().flatten().copied().collect(),
                dd: w.dd.to_vec(),
                zo: w.zo.to_vec(),
            },
        }
    }

    /// Rebuilds a solver from [`IncrementalSolver::to_state`] output. The
    /// restored solver produces a bit-identical step stream.
    pub fn from_state(state: SolverState) -> Result<Self, TsError> {
        match state {
            SolverState::Warmup { y, u, pw, qw } => {
                // the warm-up phase holds at most 3 entries: step 4
                // converts the solver to Steady
                if y.len() > 3
                    || u.len() != y.len()
                    || pw.len() != y.len()
                    || qw.len() != y.len()
                {
                    return Err(TsError::InvalidParam {
                        name: "SolverState::Warmup",
                        msg: "inconsistent warm-up history lengths".into(),
                    });
                }
                Ok(IncrementalSolver::Warmup { y, u, pw, qw })
            }
            SolverState::Steady { m, lo, dd, zo } => {
                if lo.len() != 32 || dd.len() != 4 || zo.len() != 4 || m < 4 {
                    return Err(TsError::InvalidParam {
                        name: "SolverState::Steady",
                        msg: "malformed window state".into(),
                    });
                }
                let mut w =
                    Window { m: m as usize, lo: [[0.0; 4]; 8], dd: [0.0; 4], zo: [0.0; 4] };
                for (r, row) in w.lo.iter_mut().enumerate() {
                    row.copy_from_slice(&lo[4 * r..4 * r + 4]);
                }
                w.dd.copy_from_slice(&dd);
                w.zo.copy_from_slice(&zo);
                Ok(IncrementalSolver::Steady(w))
            }
        }
    }

    /// Processes the next point and returns the exact `(τ_t, s_t)` for it.
    ///
    /// `tail.m` must equal `self.len() + 1` (the new step count).
    pub fn step(&mut self, tail: &TailData) -> (f64, f64) {
        let m = tail.m;
        assert_eq!(m, self.len() + 1, "steps must be consecutive");
        match self {
            IncrementalSolver::Warmup { y, u, pw, qw } => {
                // append newest, refresh the (up to) two previous tail
                // entries whose anchors/weights may have been re-read
                y.push(0.0);
                u.push(0.0);
                pw.push(0.0);
                qw.push(0.0);
                let k = m.min(3);
                for j in m - k..m {
                    let s = 3 - (m - j);
                    y[j] = tail.y3[s];
                    u[j] = tail.u3[s];
                    pw[j] = tail.p3[s];
                    qw[j] = tail.q3[s];
                }
                let data = SystemData { y, u, pw, qw, lambdas: tail.lambdas };
                let (a, b) = assemble_full(&data);
                let f = a.ldlt().expect("online system is SPD");
                let x = f.solve(&b);
                let (tau, s) = (x[2 * m - 2], x[2 * m - 1]);
                if m == 4 {
                    // extract the window state: rows 0..8, cols 0..4 of L
                    let z = f.forward(&b);
                    let mut lo = [[0.0; 4]; 8];
                    for (r, row) in lo.iter_mut().enumerate() {
                        for (c, v) in row.iter_mut().enumerate() {
                            if r >= c {
                                *v = f.l.get(r, c);
                            }
                        }
                    }
                    let mut dd = [0.0; 4];
                    let mut zo = [0.0; 4];
                    dd.copy_from_slice(&f.d[0..4]);
                    zo.copy_from_slice(&z[0..4]);
                    *self = IncrementalSolver::Steady(Window { m, lo, dd, zo });
                }
                (tau, s)
            }
            IncrementalSolver::Steady(w) => {
                let block = assemble_block(tail);
                // cold path (warm-up refreshes and direct/test callers): a
                // fresh zeroed scratch satisfies every invariant
                let mut scratch = SolverScratch::default();
                w.step(&block, &mut scratch)
            }
        }
    }

    /// [`IncrementalSolver::step`] without mutating `self`: the successor
    /// state is written into `dst` (whose prior contents are arbitrary
    /// scratch). In the steady state the window is plain-old-data, so this
    /// is a stack copy + the `O(1)` factorization step over the caller's
    /// reusable [`SolverScratch`] — **no heap allocation** — which is what
    /// makes a rejected trial in the seasonality-shift search free to roll
    /// back.
    pub fn step_from(
        &self,
        tail: &TailData,
        dst: &mut Self,
        scratch: &mut SolverScratch,
    ) -> (f64, f64) {
        match self {
            IncrementalSolver::Steady(w) => {
                let block = assemble_block(tail);
                // step the destination window in place when `dst` is
                // already Steady (the common case); a stale Warmup variant
                // is dropped here once
                match dst {
                    IncrementalSolver::Steady(dw) => {
                        *dw = *w;
                        dw.step(&block, scratch)
                    }
                    other => {
                        let mut next = *w;
                        let out = next.step(&block, scratch);
                        *other = IncrementalSolver::Steady(next);
                        out
                    }
                }
            }
            warm => {
                // warm-up lasts 4 points per iteration; cloning the tiny
                // histories there is fine
                dst.clone_from(warm);
                dst.step(tail)
            }
        }
    }
}

impl Window {
    /// One `O(1)` factorization + solve step (Algorithm 4). `block` is the
    /// trailing 6×6 system block for the new step; `scratch` is the flat
    /// reusable `L` working triangle.
    fn step(&mut self, block: &TailBlock, scratch: &mut SolverScratch) -> (f64, f64) {
        debug_assert_eq!(block.dim, 6, "steady state requires full 6x6 blocks");
        // local window covers global unknowns 2M-10 .. 2M-1 (M = new count);
        // previous state occupies locals 0..8 (rows) x 0..4 (cols).
        let l = &mut scratch.l;
        for (r, row) in self.lo.iter().enumerate() {
            l[10 * r..10 * r + 4].copy_from_slice(row);
        }
        // stale-entry hygiene instead of a full 100-slot memset: every cell
        // this step reads is either copied in above, written by the k-loop
        // below before being read, or one of the six above-band cells the
        // window slide reads — zeroed here. Rows 8..10 of cols 0..4 are
        // structurally zero (no write ever targets them), so the `Default`
        // zeros persist across reuses.
        l[2 * 10 + 4] = 0.0;
        l[3 * 10 + 4] = 0.0;
        l[9 * 10 + 4] = 0.0;
        l[2 * 10 + 5] = 0.0;
        l[3 * 10 + 5] = 0.0;
        l[4 * 10 + 5] = 0.0;
        let mut d = [0.0f64; 10];
        let mut z = [0.0f64; 10];
        d[..4].copy_from_slice(&self.dd);
        z[..4].copy_from_slice(&self.zo);
        // recompute columns local 4..10 = global 2M-6 .. 2M-1
        for k in 4..10 {
            l[10 * k + k] = 1.0;
            // D_kk = A*[k-4][k-4] - Σ_{i=k-4}^{k-1} D_i L_ki²
            let mut dk = block.a[k - 4][k - 4];
            for i in k - 4..k {
                dk -= d[i] * l[10 * k + i] * l[10 * k + i];
            }
            d[k] = dk;
            // forward substitution for the recomputed index
            let mut zk = block.b[k - 4];
            for i in k - 4..k {
                zk -= l[10 * k + i] * z[i];
            }
            z[k] = zk;
            // column k of L below the diagonal (band: j ≤ k+4)
            let hi = (k + 4).min(9);
            for j in k + 1..=hi {
                let mut s = if j >= 4 { block.a[j - 4][k - 4] } else { 0.0 };
                let lo_i = j.saturating_sub(4).max(k.saturating_sub(4));
                for i in lo_i..k {
                    s -= l[10 * j + i] * d[i] * l[10 * k + i];
                }
                l[10 * j + k] = s / dk;
            }
        }
        // exact first two backward-substitution steps: the newest τ, s
        let x9 = z[9] / d[9];
        let x8 = z[8] / d[8] - l[9 * 10 + 8] * x9;
        // slide the window by one time point (two unknowns)
        self.m += 1;
        for (r, row) in self.lo.iter_mut().enumerate() {
            for (c, v) in row.iter_mut().enumerate() {
                *v = l[10 * (r + 2) + c + 2];
            }
        }
        self.dd.copy_from_slice(&d[2..6]);
        self.zo.copy_from_slice(&z[2..6]);
        (x8, x9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::Lambdas;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Reference: solve the full growing system at every step.
    struct FullSolver {
        y: Vec<f64>,
        u: Vec<f64>,
        pw: Vec<f64>,
        qw: Vec<f64>,
        lambdas: Lambdas,
    }

    impl FullSolver {
        fn step(&mut self, tail: &TailData) -> (f64, f64) {
            let m = tail.m;
            self.y.push(0.0);
            self.u.push(0.0);
            self.pw.push(0.0);
            self.qw.push(0.0);
            let k = m.min(3);
            for j in m - k..m {
                let s = 3 - (m - j);
                self.y[j] = tail.y3[s];
                self.u[j] = tail.u3[s];
                self.pw[j] = tail.p3[s];
                self.qw[j] = tail.q3[s];
            }
            let data = SystemData {
                y: &self.y,
                u: &self.u,
                pw: &self.pw,
                qw: &self.qw,
                lambdas: self.lambdas,
            };
            let (a, b) = assemble_full(&data);
            let x = a.solve(&b).unwrap();
            (x[2 * m - 2], x[2 * m - 1])
        }
    }

    fn random_tail(
        m: usize,
        rng: &mut StdRng,
        lambdas: Lambdas,
        hist: &mut Vec<[f64; 4]>,
    ) -> TailData {
        // keep a rolling record of (y, u, pw, qw) per time so that the
        // "refreshed tail" semantics stay consistent across steps
        hist.push([
            rng.gen_range(-3.0..3.0),
            rng.gen_range(-1.0..1.0),
            rng.gen_range(0.05..4.0),
            rng.gen_range(0.05..4.0),
        ]);
        let mut y3 = [0.0; 3];
        let mut u3 = [0.0; 3];
        let mut p3 = [0.0; 3];
        let mut q3 = [0.0; 3];
        let k = m.min(3);
        for j in m - k..m {
            let s = 3 - (m - j);
            y3[s] = hist[j][0];
            u3[s] = hist[j][1];
            p3[s] = hist[j][2];
            q3[s] = hist[j][3];
        }
        TailData { m, y3, u3, p3, q3, lambdas }
    }

    #[test]
    fn incremental_matches_full_solve_exactly() {
        for seed in 0..5u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let lambdas = Lambdas { lambda1: 1.0, lambda2: 10.0, anchor: 1.0 };
            let mut inc = IncrementalSolver::new();
            let mut full = FullSolver { y: vec![], u: vec![], pw: vec![], qw: vec![], lambdas };
            let mut hist = Vec::new();
            for m in 1..=60 {
                let tail = random_tail(m, &mut rng, lambdas, &mut hist);
                let (t1, s1) = inc.step(&tail);
                let (t2, s2) = full.step(&tail);
                assert!(
                    (t1 - t2).abs() < 1e-8 && (s1 - s2).abs() < 1e-8,
                    "seed {seed} step {m}: ({t1},{s1}) vs ({t2},{s2})"
                );
            }
        }
    }

    #[test]
    fn weights_changing_over_time_are_honoured() {
        // IRLS appends a different weight each step; the solver must pick up
        // refreshed p/q for the 3 trailing times.
        let lambdas = Lambdas { lambda1: 5.0, lambda2: 1.0, anchor: 1.0 };
        let mut inc = IncrementalSolver::new();
        let mut full = FullSolver { y: vec![], u: vec![], pw: vec![], qw: vec![], lambdas };
        let mut hist: Vec<[f64; 4]> = Vec::new();
        for m in 1..=40usize {
            hist.push([
                (m as f64 * 0.7).sin(),
                (m as f64 * 0.3).cos() * 0.5,
                0.1 + (m % 7) as f64,
                0.1 + (m % 5) as f64,
            ]);
            // mutate the *previous* time's weights too (IRLS refresh)
            if m >= 2 {
                hist[m - 2][2] *= 1.5;
            }
            let k = m.min(3);
            let mut y3 = [0.0; 3];
            let mut u3 = [0.0; 3];
            let mut p3 = [0.0; 3];
            let mut q3 = [0.0; 3];
            for j in m - k..m {
                let s = 3 - (m - j);
                y3[s] = hist[j][0];
                u3[s] = hist[j][1];
                p3[s] = hist[j][2];
                q3[s] = hist[j][3];
            }
            let tail = TailData { m, y3, u3, p3, q3, lambdas };
            let (t1, s1) = inc.step(&tail);
            let (t2, s2) = full.step(&tail);
            assert!(
                (t1 - t2).abs() < 1e-8 && (s1 - s2).abs() < 1e-8,
                "step {m}: ({t1},{s1}) vs ({t2},{s2})"
            );
        }
    }

    #[test]
    #[should_panic(expected = "consecutive")]
    fn non_consecutive_steps_panic() {
        let mut inc = IncrementalSolver::new();
        let tail = TailData {
            m: 3,
            y3: [0.0; 3],
            u3: [0.0; 3],
            p3: [1.0; 3],
            q3: [1.0; 3],
            lambdas: Lambdas::default(),
        };
        inc.step(&tail);
    }

    #[test]
    fn state_size_is_constant() {
        // the steady-state struct is Copy with fixed arrays — compile-time
        // guarantee of O(1) memory; this test just pins the size.
        assert!(std::mem::size_of::<Window>() <= (8 * 4 + 4 + 4 + 2) * 8 + 16);
    }
}
