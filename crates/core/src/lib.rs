//! # oneshotstl — One-Shot Seasonal-Trend decomposition
//!
//! Rust implementation of **OneShotSTL** (He, Li, Tan, Wu, Li — VLDB 2023):
//! online seasonal-trend decomposition with an `O(1)` per-point update,
//! together with every building block the paper describes:
//!
//! | Paper artifact | Module |
//! |---|---|
//! | Batch JointSTL model + IRLS (Eq. 2–6, Algorithm 1) | [`jointstl`] |
//! | Modified JointSTL online system (Eq. 7–8, Algorithm 2) | [`system`], [`reference`](mod@reference) |
//! | Symmetric Doolittle factorization (Algorithm 3) | [`doolittle`] |
//! | OnlineDoolittle `O(1)` incremental solve (Algorithm 4) | [`online_doolittle`] |
//! | OneShotSTL (Algorithm 5) + seasonality-shift handling (§3.4) | [`oneshot`] |
//! | Streaming NSigma (Algorithm 6) | [`nsigma`] |
//! | Persistence-aware residual scoring (CUSUM fusion) | [`score`] |
//! | Multi-horizon STD→TSF forecast rule (§5) + forecast heads | [`forecast`](mod@forecast) |
//! | TSAD / TSF task adapters (§4) | [`tasks`] |
//!
//! ## Quick start
//!
//! ```
//! use oneshotstl::{OneShotStl, OneShotStlConfig};
//! use decomp::OnlineDecomposer;
//!
//! // a seasonal stream with period 24
//! let period = 24;
//! let y: Vec<f64> = (0..600)
//!     .map(|i| 1.0 + (2.0 * std::f64::consts::PI * i as f64 / period as f64).sin())
//!     .collect();
//!
//! let mut m = OneShotStl::new(OneShotStlConfig::default());
//! // one-time initialization on a prefix (paper: t0 >= 2 periods)
//! m.init(&y[..4 * period], period).unwrap();
//! // O(1) updates from then on
//! for &v in &y[4 * period..] {
//!     let p = m.update(v);
//!     assert!((p.trend + p.seasonal + p.residual - v).abs() < 1e-9);
//! }
//! ```
//!
//! The key invariant — verified by property tests in [`oneshot`] — is that
//! OneShotSTL's output **equals the exact solution of the growing
//! Algorithm-2 linear system** for the newest point: the `O(1)` algorithm
//! is an incremental solver, not an approximation of it.

pub mod doolittle;
pub mod forecast;
pub mod jointstl;
pub mod nsigma;
pub mod oneshot;
pub mod online_doolittle;
pub mod reference;
pub mod score;
pub mod system;
pub mod tasks;

pub use forecast::{damp_sum, ForecastHead, TrendHead};
pub use jointstl::{JointStl, JointStlConfig};
pub use nsigma::{NSigma, NSigmaState};
pub use oneshot::{
    IterSnapshot, OneShotStl, OneShotStlConfig, OneShotStlState, ShiftPolicy, ShiftPrune,
    ShiftSearchConfig, UpdateScratch, DEFAULT_SHIFT_TOP_K,
};
pub use online_doolittle::{IncrementalSolver, SolverState};
pub use reference::ModifiedJointStlRef;
pub use score::{
    Fusion, ResidualScorer, ResidualScorerState, ScoreConfig, ScoreVerdict, TrendCusum,
    TrendCusumState,
};
pub use tasks::{StdAnomalyDetector, StdForecaster};
