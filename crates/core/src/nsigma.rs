//! Streaming NSigma anomaly scoring (paper Algorithm 6).
//!
//! Maintains running `count / sum / sum-of-squares` and scores each value by
//! its absolute z-score against the statistics of all *previous* values.
//! Used (a) standalone as the paper's surprisingly strong TSAD baseline,
//! (b) on decomposed residuals as the STD→TSAD adapter (§4), and (c) as the
//! trigger for OneShotSTL's seasonality-shift search (§3.4).

/// Streaming NSigma detector. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct NSigma {
    /// Threshold `n`: values scoring above it are flagged (paper default 5).
    pub n: f64,
    count: u64,
    sum: f64,
    sum_sq: f64,
}

/// One scoring step's outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NSigmaVerdict {
    /// `|x − mean| / std` against the history (0 while history is empty or
    /// the running std is ~0 and the value matches the mean).
    pub score: f64,
    /// `score > n`.
    pub is_anomaly: bool,
}

impl NSigma {
    /// Creates a detector with threshold `n` (paper default: 5).
    pub fn new(n: f64) -> Self {
        NSigma { n, count: 0, sum: 0.0, sum_sq: 0.0 }
    }

    /// Number of values absorbed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean of the absorbed values.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Running population standard deviation of the absorbed values.
    pub fn std(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let mean = self.mean();
        (self.sum_sq / self.count as f64 - mean * mean).max(0.0).sqrt()
    }

    /// Signed standardized deviation `(x − mean) / std` against the
    /// history (0 while the history is empty; `±sqrt(f64::MAX)` for a
    /// deviating value over a zero-variance history). The CUSUM layer
    /// ([`crate::score`]) accumulates this signed form; [`Self::score_only`]
    /// is exactly its absolute value (bit-identical: an IEEE quotient's
    /// magnitude does not depend on the operands' signs).
    pub fn zscore(&self, x: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let std = self.std();
        let dev = x - self.mean();
        if std > 1e-12 {
            dev / std
        } else if dev.abs() > 1e-12 {
            // zero-variance history and a deviating value: infinitely
            // surprising; report a large finite score
            f64::MAX.sqrt().copysign(dev)
        } else {
            0.0
        }
    }

    /// Scores `x` against the history *without* absorbing it.
    pub fn score_only(&self, x: f64) -> NSigmaVerdict {
        let score = self.zscore(x).abs();
        NSigmaVerdict { score, is_anomaly: score > self.n }
    }

    /// Absorbs `x` into the running statistics.
    pub fn absorb(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        self.sum_sq += x * x;
    }

    /// Algorithm 6: score first, then absorb.
    pub fn update(&mut self, x: f64) -> NSigmaVerdict {
        let v = self.score_only(x);
        self.absorb(x);
        v
    }

    /// Seeds the statistics from a batch (used after initialization so the
    /// online phase starts with calibrated statistics).
    pub fn seed(&mut self, xs: &[f64]) {
        for &x in xs {
            self.absorb(x);
        }
    }

    /// Extracts a plain-data snapshot for serialization (see
    /// `fleet::codec`).
    pub fn to_state(&self) -> NSigmaState {
        NSigmaState { n: self.n, count: self.count, sum: self.sum, sum_sq: self.sum_sq }
    }

    /// Rebuilds a detector from [`NSigma::to_state`] output; the running
    /// statistics are restored bit-identically.
    pub fn from_state(state: NSigmaState) -> Self {
        NSigma { n: state.n, count: state.count, sum: state.sum, sum_sq: state.sum_sq }
    }
}

/// Plain-data snapshot of an [`NSigma`] detector.
#[derive(Debug, Clone, PartialEq)]
pub struct NSigmaState {
    /// Threshold `n`.
    pub n: f64,
    /// Number of absorbed values.
    pub count: u64,
    /// Running sum.
    pub sum: f64,
    /// Running sum of squares.
    pub sum_sq: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_point_is_never_anomalous() {
        let mut d = NSigma::new(3.0);
        let v = d.update(1000.0);
        assert_eq!(v.score, 0.0);
        assert!(!v.is_anomaly);
    }

    #[test]
    fn flags_large_deviation() {
        let mut d = NSigma::new(3.0);
        for i in 0..100 {
            d.absorb((i % 5) as f64 * 0.1);
        }
        let v = d.update(50.0);
        assert!(v.is_anomaly, "score {}", v.score);
        assert!(v.score > 100.0);
        // normal value afterwards is not flagged
        let v2 = d.update(0.2);
        assert!(!v2.is_anomaly);
    }

    #[test]
    fn running_stats_match_batch() {
        let xs = [1.0, 2.0, -3.0, 0.5, 4.0, 4.0];
        let mut d = NSigma::new(5.0);
        d.seed(&xs);
        assert!((d.mean() - tskit::stats::mean(&xs)).abs() < 1e-12);
        assert!((d.std() - tskit::stats::std_dev(&xs)).abs() < 1e-12);
        assert_eq!(d.count(), 6);
    }

    #[test]
    fn zero_variance_history() {
        let mut d = NSigma::new(5.0);
        d.seed(&[2.0, 2.0, 2.0]);
        let same = d.score_only(2.0);
        assert_eq!(same.score, 0.0);
        let diff = d.score_only(2.5);
        assert!(diff.is_anomaly);
        assert!(diff.score.is_finite());
    }

    #[test]
    fn score_then_absorb_ordering() {
        // Algorithm 6 scores against *previous* stats: a repeated outlier is
        // fully surprising the first time, less the second.
        let mut d = NSigma::new(3.0);
        d.seed(&[0.0, 0.1, -0.1, 0.05, -0.05]);
        let first = d.update(10.0);
        let second = d.update(10.0);
        assert!(first.score > second.score);
    }
}
