//! OneShotSTL (paper Algorithm 5) with seasonality-shift handling (§3.4).
//!
//! ## Structure
//!
//! [`OnlineJointStl`] is the IRLS shell shared by the `O(1)` algorithm and
//! the exact Algorithm-2 reference: it owns the seasonal buffer `v`, the
//! per-iteration weight histories, the NSigma trigger and the shift search.
//! The per-iteration linear-system solving is delegated to a [`TailSolver`]:
//!
//! - [`crate::online_doolittle::IncrementalSolver`] → [`OneShotStl`]
//!   (the paper's `O(1)` algorithm), and
//! - [`crate::reference::GrowingSolver`] → [`crate::ModifiedJointStlRef`]
//!   (Algorithm 2 solved exactly at every step, `O(M)` per update).
//!
//! Equivalence of the two (property-tested below) is the paper's central
//! correctness claim: OnlineDoolittle computes the *exact* newest solution
//! entries of the growing system.
//!
//! ## Per-update flow (one arriving point `y_t`)
//!
//! 1. For each IRLS iteration `i = 0..I`: build the trailing system block
//!    from the last three observations, seasonal anchors
//!    `u_j = v[(t_j + Δ) mod T]`, and iteration-`i` weights; solve for
//!    `(τ_t, s_t)`; derive the iteration-`i+1` weights from Eq. 4–5
//!    (append-only, as in Algorithm 2).
//! 2. Feed `r_t = y_t − τ_t − s_t` to NSigma. On an anomaly verdict, run
//!    the §3.4 shift search as a **two-stage candidate pipeline**:
//!    - *stage 1* scores every phase offset `Δt ∈ [−H, H] \ {0}` with the
//!      zero-cost seasonal-buffer proxy residual
//!      `r̂(Δt) = y − τ_{t−1} − v[(t + Δ + Δt) mod T]` (two reads and a
//!      subtraction per offset — no linear algebra), and
//!    - *stage 2* re-runs step 1 (a full IRLS trial, ~40× a plain update)
//!      only for the offsets [`ShiftSearchConfig`] lets through: all of
//!      them under [`ShiftPrune::Off`], the `k` best proxy scores under
//!      [`ShiftPrune::TopK`]. `Δt = 0` is the mandatory baseline either
//!      way, and the result with the smallest `|r_t|` wins (subject to
//!      [`OneShotStlConfig::shift_accept_ratio`]).
//!
//!    How an accepted offset persists is governed by [`ShiftPolicy`].
//! 3. Write the seasonal buffer: `v[(t + Δ) mod T] = s_t`.

use crate::nsigma::NSigma;
use crate::online_doolittle::IncrementalSolver;
use crate::system::{Lambdas, TailData};
use decomp::traits::{BatchDecomposer, OnlineDecomposer};
use decomp::{Stl, StlConfig};
use tskit::error::{Result, TsError};
use tskit::series::{DecompPoint, Decomposition};

/// Per-iteration linear-system solver: consumes one trailing block per
/// online point and returns the exact `(τ_t, s_t)` of its growing system.
pub trait TailSolver: Clone + Default {
    /// Short name for diagnostics.
    const NAME: &'static str;

    /// Reusable per-step factorization scratch, owned by the update shell
    /// and passed back into every [`TailSolver::step_from`] call. Solvers
    /// whose step works over a flat working buffer expose it here so the
    /// buffer is zeroed once at construction and stays hot across updates
    /// (and across every model sharing an [`UpdateScratch`]); solvers
    /// without reusable state use `()`.
    type Scratch: Clone + Default + std::fmt::Debug;

    /// Processes the next point (`tail.m` must advance by one each call).
    fn step(&mut self, tail: &TailData) -> (f64, f64);

    /// Runs one step *from* `self`'s state without mutating it, writing the
    /// successor state into `dst` (whose prior contents are arbitrary stale
    /// scratch). This is the hot-path variant of [`TailSolver::step`]: the
    /// update loop keeps the committed state immutable while a trial runs,
    /// so a rejected trial costs nothing to roll back. Implementations
    /// whose steady state is plain-old-data should override this to avoid
    /// heap allocation entirely.
    fn step_from(
        &self,
        tail: &TailData,
        dst: &mut Self,
        scratch: &mut Self::Scratch,
    ) -> (f64, f64) {
        let _ = scratch;
        dst.clone_from(self);
        dst.step(tail)
    }
}

impl TailSolver for IncrementalSolver {
    const NAME: &'static str = "OneShotSTL";

    type Scratch = crate::online_doolittle::SolverScratch;

    fn step(&mut self, tail: &TailData) -> (f64, f64) {
        IncrementalSolver::step(self, tail)
    }

    fn step_from(
        &self,
        tail: &TailData,
        dst: &mut Self,
        scratch: &mut Self::Scratch,
    ) -> (f64, f64) {
        IncrementalSolver::step_from(self, tail, dst, scratch)
    }
}

/// How an accepted seasonality-shift offset affects subsequent points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShiftPolicy {
    /// The accepted `Δt` is added to a persistent cumulative offset — the
    /// buffer index permanently follows the drifted phase (default; models
    /// the lasting shift of paper Fig. 3).
    #[default]
    Cumulative,
    /// The accepted `Δt` applies to the current point only.
    Transient,
}

/// Stage-1 candidate pruning of the §3.4 shift search (see the module
/// docs for the two-stage pipeline).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShiftPrune {
    /// Exhaustive search: every offset in `[−H, H]` runs a full IRLS
    /// trial. Bit-identical to the pre-pruning implementation (pinned by
    /// the golden fixture in `tests/golden_update.rs`).
    Off,
    /// Run full IRLS trials only on the `k` offsets with the smallest
    /// proxy residual `|r̂(Δt)|` (plus the mandatory `Δt = 0` baseline):
    /// at most `k + 1` trials per flagged point instead of `2H + 1`.
    /// Proxy ties break toward the smaller `|Δt|` (then the negative one)
    /// so the selection is deterministic. `TopK(0)` degenerates to
    /// baseline-only — the search runs but can never adopt an offset;
    /// prefer `shift_window: 0`, which skips it wholesale (the fleet
    /// config layer rejects `TopK(0)` for exactly this reason).
    TopK(usize),
}

/// The `k` of the default [`ShiftPrune::TopK`] policy. Chosen by the
/// `shift_ablation` benchmark on the shifted-seasonality workloads:
/// `k = 4` keeps decomposition MAE within 1% of the exhaustive search
/// while cutting full IRLS trials per flagged point from `2H + 1 = 41`
/// to at most 5 (see `docs/ARCHITECTURE.md`, "Shift search").
pub const DEFAULT_SHIFT_TOP_K: usize = 4;

/// Configuration of the §3.4 seasonality-shift search pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShiftSearchConfig {
    /// Stage-1 pruning policy.
    pub prune: ShiftPrune,
}

impl Default for ShiftSearchConfig {
    fn default() -> Self {
        ShiftSearchConfig { prune: ShiftPrune::TopK(DEFAULT_SHIFT_TOP_K) }
    }
}

impl ShiftSearchConfig {
    /// The exhaustive (pre-pruning, bit-identical) search.
    pub fn exhaustive() -> Self {
        ShiftSearchConfig { prune: ShiftPrune::Off }
    }

    /// Prune to the `k` best proxy candidates.
    pub fn top_k(k: usize) -> Self {
        ShiftSearchConfig { prune: ShiftPrune::TopK(k) }
    }
}

/// Initialization method for the offline phase (Algorithm 5, line 1:
/// "obtain τ, s, r by STL or JointSTL").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InitMethod {
    /// Classic STL (robust, `O(N)`, the default).
    #[default]
    Stl,
    /// Batch JointSTL (Algorithm 1) — the model-consistent choice, more
    /// expensive for long periods.
    JointStl,
}

/// OneShotSTL configuration (paper defaults per §5.1.4).
#[derive(Debug, Clone, PartialEq)]
pub struct OneShotStlConfig {
    /// Trend penalties λ1, λ2 (the paper ties and tunes them).
    pub lambdas: Lambdas,
    /// IRLS iterations `I` (paper default 8).
    pub iters: usize,
    /// Maximum seasonality-shift `H` (paper default 20; 0 disables the
    /// shift search).
    pub shift_window: usize,
    /// NSigma threshold `n` for the shift trigger (paper default 5).
    pub nsigma: f64,
    /// Shift persistence policy.
    pub shift_policy: ShiftPolicy,
    /// §3.4 shift-search pipeline configuration (candidate pruning).
    pub shift_search: ShiftSearchConfig,
    /// A non-zero Δt is accepted only when its |r_t| is below this fraction
    /// of the Δt = 0 residual. A genuine phase shift shrinks the residual
    /// by an order of magnitude, easily clearing the bar; a trend jump
    /// (which no phase offset can fix) does not — without this guard the
    /// shift search would latch onto spurious offsets at trend changes.
    pub shift_accept_ratio: f64,
    /// Offline initialization method.
    pub init: InitMethod,
    /// IRLS clamp ε.
    pub eps: f64,
}

impl Default for OneShotStlConfig {
    fn default() -> Self {
        OneShotStlConfig {
            lambdas: Lambdas::default(),
            iters: 8,
            shift_window: 20,
            nsigma: 5.0,
            shift_policy: ShiftPolicy::Cumulative,
            shift_search: ShiftSearchConfig::default(),
            shift_accept_ratio: 0.5,
            init: InitMethod::Stl,
            eps: 1e-10,
        }
    }
}

/// Per-IRLS-iteration state (Algorithm 5 keeps one weight vector per
/// iteration; only the trailing two entries are ever read again).
#[derive(Debug, Clone)]
struct IterState<S> {
    solver: S,
    /// `pw` at times `m−2, m−1` (weight of the diff `(j−1, j)`).
    pw_hist: [f64; 2],
    /// `qw` at times `m−2, m−1`.
    qw_hist: [f64; 2],
    /// This iteration's trend output at times `m−2, m−1` (Eq. 4–5 inputs).
    tau_hist: [f64; 2],
}

/// The outcome of running all IRLS iterations for one candidate shift.
/// The successor iteration states live in the scratch buffer the trial ran
/// in, not here — committing a trial is a buffer swap, not a move.
#[derive(Debug, Clone, Copy)]
struct TrialOut {
    point: DecompPoint,
    /// The anchor used for the newest point (frozen into `u_hist`).
    u_new: f64,
}

/// Reusable trial buffers: `base` holds the Δt = 0 baseline trial's
/// successor iteration states (kept intact through the whole search, so a
/// rejected shift needs no recompute), `best` the winning candidate's,
/// and `trial` is the scratch a candidate runs in before it is (maybe)
/// swapped into `best`. `proxy` and `cand` are the stage-1 scoring and
/// candidate-offset scratch of the pruned search. Allocated once; the
/// steady-state `update` path — including every §3.4 shift search, pruned
/// or exhaustive — performs **zero heap allocations** (pinned by
/// `tests/zero_alloc.rs`).
#[derive(Debug, Clone, Default)]
struct TrialBufs<S: TailSolver> {
    base: Vec<IterState<S>>,
    best: Vec<IterState<S>>,
    trial: Vec<IterState<S>>,
    /// `(|r̂(Δt)|, Δt)` proxy scores, one per non-zero offset.
    proxy: Vec<(f64, i64)>,
    /// Flat `|r̂|` scores in ascending-offset order (`Δt = 0` included):
    /// the stage-1 proxy loop fills this with stride-1 sweeps over the
    /// seasonal buffer so the autovectorizer can fire, then zips it with
    /// the offsets into `proxy`.
    proxy_r: Vec<f64>,
    /// Offsets surviving stage 1, in evaluation order.
    cand: Vec<i64>,
    /// Per-step solver factorization scratch (flat working triangle for
    /// the `O(1)` solver), reused across IRLS iterations, trials, and
    /// every model sharing this scratch.
    solver: S::Scratch,
}

/// Shareable trial scratch for [`OnlineJointStl::update_with_scratch`].
///
/// A model's plain [`OnlineDecomposer::update`] uses an internal scratch,
/// which is ideal for a single hot stream. A host multiplexing *many*
/// models on one thread (the `fleet` shard worker) should instead own one
/// `UpdateScratch` per thread and pass it to every model's
/// `update_with_scratch`: the scratch stays hot in cache across series and
/// per-model scratch memory drops to zero. Buffers are sized lazily on
/// first use and resized automatically if models disagree on `iters`.
#[derive(Debug, Clone, Default)]
pub struct UpdateScratch<S: TailSolver>(TrialBufs<S>);

/// The shared online-JointSTL shell (see module docs). Use the
/// [`OneShotStl`] alias for the paper's `O(1)` algorithm.
#[derive(Debug, Clone)]
pub struct OnlineJointStl<S: TailSolver> {
    /// Configuration (λ, I, H, n, policies).
    pub config: OneShotStlConfig,
    period: usize,
    /// Global time index of the next arriving point.
    t: u64,
    /// Number of online points processed.
    m: usize,
    /// Cumulative phase offset Δ.
    shift: i64,
    /// Seasonal buffer `v ∈ R^T`.
    v: Vec<f64>,
    /// Last two observed values (times `m−2`, `m−1`).
    y_hist: [f64; 2],
    /// Seasonal anchors of the last two points, **frozen at arrival**:
    /// `u_j = v[(t_j + Δ) mod T]` read before `v` is overwritten at that
    /// phase. Re-reading them later would return the point's own seasonal
    /// estimate (written at its step), silently un-anchoring the tail from
    /// the previous cycle and letting the trend/seasonal split drift.
    u_hist: [f64; 2],
    iters: Vec<IterState<S>>,
    /// Reusable trial buffers (never serialized; rebuilt lazily).
    scratch: TrialBufs<S>,
    nsigma: NSigma,
    initialized: bool,
    /// Lifetime count of §3.4 shift searches run (flagged points).
    searches: u64,
    /// Lifetime count of full IRLS trials run *by those searches*,
    /// including each search's Δt = 0 baseline. Diagnostics only (never
    /// serialized): `trials / searches` is the per-flagged-point cost the
    /// pruning policy bounds.
    search_trials: u64,
}

/// The paper's OneShotSTL: `O(1)` per-point online decomposition.
pub type OneShotStl = OnlineJointStl<IncrementalSolver>;

impl OneShotStl {
    /// Creates a OneShotSTL instance (call [`OnlineDecomposer::init`]
    /// before updating).
    pub fn new(config: OneShotStlConfig) -> Self {
        OnlineJointStl::with_solver(config)
    }

    /// OneShotSTL with all paper defaults.
    pub fn default_paper() -> Self {
        Self::new(OneShotStlConfig::default())
    }

    /// Extracts a plain-data snapshot of the full online state (see
    /// `fleet::codec`). Restoring it with [`OneShotStl::from_state`] yields
    /// a model whose subsequent [`OnlineDecomposer::update`] stream is
    /// bit-identical to continuing the original.
    pub fn to_state(&self) -> OneShotStlState {
        OneShotStlState {
            config: self.config.clone(),
            period: self.period as u64,
            t: self.t,
            m: self.m as u64,
            shift: self.shift,
            v: self.v.clone(),
            y_hist: self.y_hist,
            u_hist: self.u_hist,
            iters: self
                .iters
                .iter()
                .map(|st| IterSnapshot {
                    solver: st.solver.to_state(),
                    pw_hist: st.pw_hist,
                    qw_hist: st.qw_hist,
                    tau_hist: st.tau_hist,
                })
                .collect(),
            nsigma: self.nsigma.to_state(),
            initialized: self.initialized,
        }
    }

    /// Rebuilds a model from [`OneShotStl::to_state`] output.
    pub fn from_state(state: OneShotStlState) -> Result<Self> {
        let period = state.period as usize;
        if state.initialized && (period < 2 || state.v.len() != period) {
            return Err(TsError::InvalidParam {
                name: "OneShotStlState",
                msg: format!(
                    "initialized state needs a seasonal buffer of one period \
                     (period {period}, buffer {})",
                    state.v.len()
                ),
            });
        }
        let mut iters = Vec::with_capacity(state.iters.len());
        for snap in state.iters {
            let solver = IncrementalSolver::from_state(snap.solver)?;
            // each IRLS iteration steps its solver exactly once per online
            // point; a mismatch means a corrupted snapshot that would
            // panic (`steps must be consecutive`) on the next update
            if solver.len() as u64 != state.m {
                return Err(TsError::InvalidParam {
                    name: "OneShotStlState.iters",
                    msg: format!(
                        "solver has {} steps but the model processed {} points",
                        solver.len(),
                        state.m
                    ),
                });
            }
            iters.push(IterState {
                solver,
                pw_hist: snap.pw_hist,
                qw_hist: snap.qw_hist,
                tau_hist: snap.tau_hist,
            });
        }
        Ok(OnlineJointStl {
            config: state.config,
            period,
            t: state.t,
            m: state.m as usize,
            shift: state.shift,
            v: state.v,
            y_hist: state.y_hist,
            u_hist: state.u_hist,
            iters,
            scratch: TrialBufs::default(),
            nsigma: NSigma::from_state(state.nsigma),
            initialized: state.initialized,
            searches: 0,
            search_trials: 0,
        })
    }

    /// Estimated serialized footprint of [`OneShotStl::to_state`] in bytes
    /// under the exact-precision (plain `f64`) snapshot layout. Computed
    /// from the seasonal-buffer length and solver phase without
    /// materialising the state, so the cost is constant per call (the
    /// IRLS iteration count is a small config constant). Capacity planning
    /// for per-node fleets keys off this number; compressed codecs shrink
    /// the vector payloads but keep the same structure.
    pub fn state_bytes(&self) -> usize {
        // config block: 6 × f64 + 2 × u32 + policy/init tags + shift search
        let config = 6 * 8 + 2 * 4 + 2 + 5;
        // period, t, m, shift
        let scalars = 4 * 8;
        // length-prefixed (tag + u32) f64 vector
        let vec_f64 = |n: usize| 5 + 8 * n;
        let seasonal = vec_f64(self.v.len());
        let hists = 2 * 16;
        let iters: usize = self
            .iters
            .iter()
            .map(|st| {
                let solver = match &st.solver {
                    // steady: tag + step count + 8×4 L window + D + z
                    IncrementalSolver::Steady(_) => 9 + vec_f64(32) + 2 * vec_f64(4),
                    // warmup: tag + four vectors of one value per step
                    IncrementalSolver::Warmup { .. } => 1 + 4 * vec_f64(st.solver.len()),
                };
                solver + 3 * 16
            })
            .sum();
        let nsigma = 4 * 8;
        config + scalars + seasonal + hists + 4 + iters + nsigma + 1
    }
}

/// Plain-data snapshot of a [`OneShotStl`] (see [`OneShotStl::to_state`]).
#[derive(Debug, Clone, PartialEq)]
pub struct OneShotStlState {
    /// Model configuration.
    pub config: OneShotStlConfig,
    /// Seasonal period `T`.
    pub period: u64,
    /// Global time index of the next arriving point.
    pub t: u64,
    /// Number of online points processed.
    pub m: u64,
    /// Cumulative phase offset Δ.
    pub shift: i64,
    /// Seasonal buffer `v`.
    pub v: Vec<f64>,
    /// Last two observed values.
    pub y_hist: [f64; 2],
    /// Frozen seasonal anchors of the last two points.
    pub u_hist: [f64; 2],
    /// Per-IRLS-iteration solver and weight state.
    pub iters: Vec<IterSnapshot>,
    /// Residual NSigma statistics (shift-search trigger).
    pub nsigma: crate::nsigma::NSigmaState,
    /// Whether `init` has run.
    pub initialized: bool,
}

/// Plain-data snapshot of one IRLS iteration's state.
#[derive(Debug, Clone, PartialEq)]
pub struct IterSnapshot {
    /// The `O(1)` solver window.
    pub solver: crate::online_doolittle::SolverState,
    /// First-difference weights at times `m−2, m−1`.
    pub pw_hist: [f64; 2],
    /// Second-difference weights at times `m−2, m−1`.
    pub qw_hist: [f64; 2],
    /// Trend outputs at times `m−2, m−1`.
    pub tau_hist: [f64; 2],
}

impl<S: TailSolver> Default for OnlineJointStl<S> {
    fn default() -> Self {
        Self::with_solver(OneShotStlConfig::default())
    }
}

impl<S: TailSolver> OnlineJointStl<S> {
    /// Generic constructor used by both the `O(1)` and the reference
    /// instantiation.
    pub fn with_solver(config: OneShotStlConfig) -> Self {
        OnlineJointStl {
            config,
            period: 0,
            t: 0,
            m: 0,
            shift: 0,
            v: Vec::new(),
            y_hist: [0.0; 2],
            u_hist: [0.0; 2],
            iters: Vec::new(),
            scratch: TrialBufs::default(),
            nsigma: NSigma::new(5.0),
            initialized: false,
            searches: 0,
            search_trials: 0,
        }
    }

    /// Seasonal period `T` (0 before init).
    pub fn period(&self) -> usize {
        self.period
    }

    /// Current cumulative phase offset Δ.
    pub fn shift(&self) -> i64 {
        self.shift
    }

    /// Lifetime `(searches, full IRLS trials)` of the §3.4 shift search:
    /// how many updates were flagged and how many full trials (including
    /// each search's Δt = 0 baseline) those searches ran. With
    /// [`ShiftPrune::TopK`]`(k)`, `trials ≤ searches · (k + 1)` — the
    /// bound the pruning exists to enforce. Diagnostics only; resets on
    /// snapshot restore.
    pub fn shift_search_stats(&self) -> (u64, u64) {
        (self.searches, self.search_trials)
    }

    /// Whether [`OnlineDecomposer::init`] has run.
    pub fn is_initialized(&self) -> bool {
        self.initialized
    }

    /// Latest trend estimate τ_{t−1} (0 before any update).
    pub fn last_trend(&self) -> f64 {
        self.iters.last().map_or(0.0, |st| st.tau_hist[1])
    }

    /// The model's `i`-step-ahead prediction (`i ≥ 1`):
    /// `τ_{t−1} + v[(t−1+i+Δ) mod T]` — trend carry-forward plus the
    /// seasonal buffer, the same rule the paper's STD→TSF adapter uses.
    pub fn predict(&self, i: usize) -> f64 {
        assert!(self.initialized, "OneShotSTL::predict called before init");
        assert!(i >= 1, "OneShotSTL::predict horizon starts at 1");
        self.last_trend() + self.v[self.slot(self.t + i as u64 - 1, self.shift)]
    }

    /// Latest one-step trend slope `τ_{t−1} − τ_{t−2}` (0 before any
    /// update). The IRLS iteration states already carry the trend at the
    /// last two time steps, so the slope costs no extra state.
    pub fn trend_slope(&self) -> f64 {
        self.iters.last().map_or(0.0, |st| st.tau_hist[1] - st.tau_hist[0])
    }

    /// The paper's multi-horizon forecast (`h ≥ 1`):
    /// `ŷ(t+h) = τ(t) + slope·h + v[(t+Δ+h) mod T]` — [`Self::predict`]'s
    /// seasonal carry-forward plus a linear extrapolation of the trend.
    pub fn forecast(&self, h: usize) -> f64 {
        self.forecast_damped(h, 1.0)
    }

    /// [`Self::forecast`] with a damped trend: the slope term becomes
    /// `slope · Σ_{j=1..h} φ^j`. `φ = 1` is the paper's linear rule,
    /// `φ = 0` reduces to the carry-forward [`Self::predict`], values in
    /// between bound how far a noisy local slope may extrapolate.
    pub fn forecast_damped(&self, h: usize, phi: f64) -> f64 {
        self.predict(h) + self.trend_slope() * crate::forecast::damp_sum(phi, h)
    }

    /// Fills `out[i]` with the damped forecast at horizon `i + 1` —
    /// the whole multi-horizon forecast in one pass with **no heap
    /// allocation** (the fleet's steady-state forecast path).
    pub fn forecast_into(&self, phi: f64, out: &mut [f64]) {
        assert!(self.initialized, "OneShotSTL::forecast_into called before init");
        let tau = self.last_trend();
        let slope = self.trend_slope();
        let mut weight = 0.0;
        let mut pow = 1.0;
        // same association as `predict(h) + slope * damp_sum(phi, h)`, so
        // the fill is bit-identical to the single-horizon calls
        for (i, o) in out.iter_mut().enumerate() {
            pow *= phi;
            weight += pow;
            *o = (tau + self.v[self.slot(self.t + i as u64, self.shift)]) + slope * weight;
        }
    }

    /// Read-only view of the seasonal buffer `v` (indexed by
    /// `(t + Δ) mod T`).
    pub fn seasonal_buffer(&self) -> &[f64] {
        &self.v
    }

    /// The NSigma score of the most recent residual *without* updating
    /// state; useful for monitoring.
    pub fn score_residual(&self, r: f64) -> f64 {
        self.nsigma.score_only(r).score
    }

    #[inline]
    fn slot(&self, t: u64, shift: i64) -> usize {
        let period = self.period as i64;
        ((t as i64 + shift).rem_euclid(period)) as usize
    }

    /// Runs all IRLS iterations for the arriving value under a candidate
    /// shift, without committing any state. The committed `self.iters` are
    /// only read; the successor iteration states are written into `out`
    /// (resized on first use, then reused — no allocation in steady state).
    /// `scratch` is the reusable solver factorization scratch.
    fn run_trial_into(
        &self,
        y_new: f64,
        shift: i64,
        out: &mut Vec<IterState<S>>,
        scratch: &mut S::Scratch,
    ) -> TrialOut {
        let m_new = self.m + 1;
        let k = m_new.min(3);
        let mut y3 = [0.0; 3];
        let mut u3 = [0.0; 3];
        // the newest point reads the (pre-write) seasonal buffer — one
        // cycle ago at its phase; previous points keep their frozen anchors
        let u_new = self.v[self.slot(self.t, shift)];
        // times covered: m_new-k .. m_new-1; newest last (slot 2)
        for j in m_new - k..m_new {
            let s = 3 - (m_new - j);
            if j + 1 == m_new {
                y3[s] = y_new;
                u3[s] = u_new;
            } else {
                // histories hold times m-2 (index 0) and m-1 (index 1)
                y3[s] = self.y_hist[2 - (m_new - 1 - j)];
                u3[s] = self.u_hist[2 - (m_new - 1 - j)];
            }
        }
        if out.len() != self.iters.len() {
            // first trial after init/restore (or a poisoned buffer after a
            // panic): (re)size the scratch; every later trial reuses it
            out.clear();
            out.extend(self.iters.iter().cloned());
        }
        let eps = self.config.eps;
        let mut p_fresh = 1.0;
        let mut q_fresh = 1.0;
        let mut tau = 0.0;
        let mut s_out = 0.0;
        for (src, dst) in self.iters.iter().zip(out.iter_mut()) {
            let p3 = [src.pw_hist[0], src.pw_hist[1], p_fresh];
            let q3 = [src.qw_hist[0], src.qw_hist[1], q_fresh];
            let tail = TailData { m: m_new, y3, u3, p3, q3, lambdas: self.config.lambdas };
            let (t_i, s_i) = src.solver.step_from(&tail, &mut dst.solver, scratch);
            let next_p = 1.0 / (2.0 * (t_i - src.tau_hist[1]).abs().max(eps));
            let next_q =
                1.0 / (2.0 * (t_i - 2.0 * src.tau_hist[1] + src.tau_hist[0]).abs().max(eps));
            dst.pw_hist = [src.pw_hist[1], p_fresh];
            dst.qw_hist = [src.qw_hist[1], q_fresh];
            dst.tau_hist = [src.tau_hist[1], t_i];
            p_fresh = next_p;
            q_fresh = next_q;
            tau = t_i;
            s_out = s_i;
        }
        TrialOut {
            point: DecompPoint { trend: tau, seasonal: s_out, residual: y_new - tau - s_out },
            u_new,
        }
    }

    /// Commits a trial whose successor iteration states live in `accepted`:
    /// an `O(1)` buffer swap, after which `accepted` holds the stale
    /// pre-update states (to be overwritten by the next trial).
    fn commit(
        &mut self,
        y_new: f64,
        shift_used: i64,
        trial: TrialOut,
        accepted: &mut Vec<IterState<S>>,
    ) -> DecompPoint {
        std::mem::swap(&mut self.iters, accepted);
        match self.config.shift_policy {
            ShiftPolicy::Cumulative => self.shift = shift_used,
            ShiftPolicy::Transient => {}
        }
        let slot = self.slot(self.t, shift_used);
        self.v[slot] = trial.point.seasonal;
        self.y_hist = [self.y_hist[1], y_new];
        self.u_hist = [self.u_hist[1], trial.u_new];
        self.t += 1;
        self.m += 1;
        self.nsigma.absorb(trial.point.residual);
        trial.point
    }

    /// Missing/corrupt data policy: impute a non-finite value with the
    /// model's one-step-ahead prediction (trend carry-forward + seasonal
    /// buffer).
    fn impute(&self, y: f64) -> f64 {
        if y.is_finite() {
            y
        } else {
            self.iters.last().map_or(0.0, |st| st.tau_hist[1])
                + self.v[self.slot(self.t, self.shift)]
        }
    }

    /// [`OnlineDecomposer::update`] with caller-provided trial scratch
    /// (see [`UpdateScratch`] for when that wins). Output is bit-identical
    /// to the plain `update`.
    pub fn update_with_scratch(
        &mut self,
        y: f64,
        scratch: &mut UpdateScratch<S>,
    ) -> DecompPoint {
        assert!(self.initialized, "OneShotSTL::update called before init");
        let y = self.impute(y);
        self.update_with(y, &mut scratch.0)
    }

    /// Stage 1 of the §3.4 search: fills `cand` with the offsets that get
    /// a full IRLS trial, in evaluation order. Under [`ShiftPrune::Off`]
    /// that is every non-zero `Δt ∈ [−H, H]` in ascending order — the
    /// exact iteration order of the pre-pruning implementation, so stage 2
    /// stays bit-identical to it. Under [`ShiftPrune::TopK`]`(k)` each
    /// offset is scored with the seasonal-buffer proxy residual
    /// `r̂(Δt) = y − τ_{t−1} − v[(t + Δ + Δt) mod T]` — the residual a
    /// trial *would* see if the trend carried forward unchanged — and only
    /// the `k` smallest `|r̂|` survive (ties: smaller `|Δt|`, then the
    /// negative one; a deterministic selection).
    fn select_candidates(
        &self,
        y: f64,
        h: i64,
        proxy: &mut Vec<(f64, i64)>,
        proxy_r: &mut Vec<f64>,
        cand: &mut Vec<i64>,
    ) {
        cand.clear();
        match self.config.shift_search.prune {
            ShiftPrune::Off => cand.extend((-h..=h).filter(|&dt| dt != 0)),
            ShiftPrune::TopK(k) => {
                proxy.clear();
                proxy_r.clear();
                let tau = self.last_trend();
                let base = y - tau;
                // the offsets Δt ∈ [−H, H] index the seasonal buffer
                // cyclically from `(t + Δ − H) mod T`, so the scoring walk
                // decomposes into contiguous runs (several full laps when
                // 2H + 1 > T): flat stride-1 fills the autovectorizer can
                // chew through, one subtraction and |·| per offset, with
                // the per-offset `rem_euclid` gone. Values and order are
                // identical to the scalar `slot()` loop.
                let total = (2 * h + 1) as usize;
                let mut idx = self.slot(self.t, self.shift - h);
                let mut filled = 0usize;
                while filled < total {
                    let run = (self.period - idx).min(total - filled);
                    proxy_r.extend(self.v[idx..idx + run].iter().map(|&v| (base - v).abs()));
                    filled += run;
                    idx = 0;
                }
                proxy.extend(
                    proxy_r
                        .iter()
                        .enumerate()
                        .map(|(j, &r)| (r, j as i64 - h))
                        .filter(|&(_, dt)| dt != 0),
                );
                // in-place sort: no allocation (zero-alloc invariant)
                proxy.sort_unstable_by(|a, b| {
                    a.0.total_cmp(&b.0)
                        .then_with(|| a.1.abs().cmp(&b.1.abs()))
                        .then_with(|| a.1.cmp(&b.1))
                });
                cand.extend(proxy.iter().take(k).map(|&(_, dt)| dt));
            }
        }
    }

    /// The body of [`OnlineDecomposer::update`], with the trial buffers
    /// moved out of `self` so trials can borrow the committed state.
    fn update_with(&mut self, y: f64, bufs: &mut TrialBufs<S>) -> DecompPoint {
        let h = self.config.shift_window as i64;
        if h > 0 {
            // pre-size every search buffer during plain updates, so a
            // flagged point allocates nothing no matter how late it comes:
            // the stage-1 scratch by capacity, and the candidate trial
            // buffers by cloning the iteration states once up front (the
            // best/trial swap below leaves the loser empty otherwise, and
            // `run_trial_into`'s lazy sizing would then allocate *inside*
            // the search)
            let want = 2 * h as usize;
            if bufs.proxy.capacity() < want {
                bufs.proxy.reserve(want);
            }
            if bufs.proxy_r.capacity() < want + 1 {
                bufs.proxy_r.reserve(want + 1);
            }
            if bufs.cand.capacity() < want {
                bufs.cand.reserve(want);
            }
            for buf in [&mut bufs.best, &mut bufs.trial] {
                if buf.len() != self.iters.len() {
                    buf.clear();
                    buf.extend(self.iters.iter().cloned());
                }
            }
        }
        let base = self.run_trial_into(y, self.shift, &mut bufs.base, &mut bufs.solver);
        let verdict = self.nsigma.score_only(base.point.residual);
        if !verdict.is_anomaly || h == 0 {
            return self.commit(y, self.shift, base, &mut bufs.base);
        }
        // §3.4, two stages: pick candidate offsets Δt from E = [−H, H]
        // (all of them, or the top-k by proxy residual), run a full trial
        // per candidate, keep the smallest |r_t| — but only adopt a
        // non-zero offset when it actually explains the anomaly (see
        // `shift_accept_ratio`)
        self.select_candidates(y, h, &mut bufs.proxy, &mut bufs.proxy_r, &mut bufs.cand);
        self.searches += 1;
        self.search_trials += 1 + bufs.cand.len() as u64;
        let base_resid = base.point.residual.abs();
        let mut best_shift = self.shift;
        let mut best = base;
        let mut best_is_base = true;
        for i in 0..bufs.cand.len() {
            let cand_shift = self.shift + bufs.cand[i];
            let cand = self.run_trial_into(y, cand_shift, &mut bufs.trial, &mut bufs.solver);
            if cand.point.residual.abs() < best.point.residual.abs() {
                best = cand;
                best_shift = cand_shift;
                std::mem::swap(&mut bufs.best, &mut bufs.trial);
                best_is_base = false;
            }
        }
        if best_shift != self.shift
            && best.point.residual.abs() > self.config.shift_accept_ratio * base_resid
        {
            // not convincingly better than staying in phase: reject (the
            // baseline's successor states are still intact in `base`)
            best = base;
            best_shift = self.shift;
            best_is_base = true;
        }
        let accepted = if best_is_base { &mut bufs.base } else { &mut bufs.best };
        self.commit(y, best_shift, best, accepted)
    }
}

impl<S: TailSolver> OnlineDecomposer for OnlineJointStl<S> {
    fn name(&self) -> &'static str {
        S::NAME
    }

    fn init(&mut self, y: &[f64], period: usize) -> Result<Decomposition> {
        if period < 2 {
            return Err(TsError::InvalidParam {
                name: "period",
                msg: format!("OneShotSTL needs period >= 2, got {period}"),
            });
        }
        if y.len() < 2 * period + 1 {
            return Err(TsError::TooShort {
                what: "OneShotSTL initialization window",
                need: 2 * period + 1,
                got: y.len(),
            });
        }
        let d = match self.config.init {
            InitMethod::Stl => {
                // "Periodic" seasonal smoothing: with the short 2–4 cycle
                // initialization windows of the online protocol, per-phase
                // LOESS has large edge error in the final cycle — exactly
                // the part that seeds the seasonal buffer v. The periodic
                // variant (per-phase robust mean) is far more accurate
                // there.
                let cfg = StlConfig {
                    seasonal: decomp::SeasonalSpan::Periodic,
                    outer_iters: 1,
                    jump: if period > 400 { 10 } else { 1 },
                    ..Default::default()
                };
                Stl::with_config(cfg).decompose(y, period)?
            }
            InitMethod::JointStl => crate::jointstl::JointStl {
                config: crate::jointstl::JointStlConfig {
                    lambdas: self.config.lambdas,
                    ..Default::default()
                },
            }
            .decompose(y, period)?,
        };
        self.period = period;
        let n = y.len();
        self.t = n as u64;
        self.m = 0;
        self.shift = 0;
        // v[t mod T] = s_t for the last T initialization points
        self.v = vec![0.0; period];
        for idx in n - period..n {
            self.v[idx % period] = d.seasonal[idx];
        }
        self.y_hist = [y[n - 2], y[n - 1]];
        // the last two init points never re-enter a tail block as
        // "previous" times with online anchors, but seed them consistently
        // with the buffer anyway
        self.u_hist = [self.v[(n - 2) % period], self.v[(n - 1) % period]];
        let tau_hist = [d.trend[n - 2], d.trend[n - 1]];
        self.iters = (0..self.config.iters.max(1))
            .map(|_| IterState {
                solver: S::default(),
                pw_hist: [1.0, 1.0],
                qw_hist: [1.0, 1.0],
                tau_hist,
            })
            .collect();
        self.nsigma = NSigma::new(self.config.nsigma);
        self.nsigma.seed(&d.residual);
        self.initialized = true;
        Ok(d)
    }

    fn update(&mut self, y: f64) -> DecompPoint {
        assert!(self.initialized, "OneShotSTL::update called before init");
        let y = self.impute(y);
        // move the trial buffers out so trials can borrow committed state;
        // `mem::take` leaves empty Vecs behind (no allocation)
        let mut bufs = std::mem::take(&mut self.scratch);
        let point = self.update_with(y, &mut bufs);
        self.scratch = bufs;
        point
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn seasonal(n: usize, t: usize, noise: f64, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                2.0 + (2.0 * std::f64::consts::PI * i as f64 / t as f64).sin()
                    + noise * rng.gen_range(-1.0..1.0)
            })
            .collect()
    }

    #[test]
    fn additive_identity_every_update() {
        let t = 24;
        let y = seasonal(600, t, 0.05, 1);
        let mut m = OneShotStl::default_paper();
        m.init(&y[..4 * t], t).unwrap();
        for &v in &y[4 * t..] {
            let p = m.update(v);
            assert!((p.value() - v).abs() < 1e-9);
            assert!(p.trend.is_finite() && p.seasonal.is_finite());
        }
    }

    #[test]
    fn state_bytes_is_stable_in_steady_state_and_scales_with_period() {
        let build = |t: usize| {
            let y = seasonal(600, t, 0.05, 7);
            let mut m = OneShotStl::default_paper();
            m.init(&y[..4 * t], t).unwrap();
            for &v in &y[4 * t..] {
                m.update(v);
            }
            m
        };
        let m24 = build(24);
        let b24 = m24.state_bytes();
        // steady-phase footprint is flat: more points never grow the state
        let mut later = m24.clone();
        for &v in &seasonal(200, 24, 0.05, 8) {
            later.update(v);
        }
        assert_eq!(later.state_bytes(), b24);
        // only the seasonal buffer scales with the period: 8 bytes per slot
        let b48 = build(48).state_bytes();
        assert_eq!(b48 - b24, 8 * 24);
        // warmup states (tiny per-iteration histories) are strictly smaller
        let fresh = OneShotStl::default_paper();
        assert!(fresh.state_bytes() < b24);
    }

    #[test]
    fn residuals_small_on_clean_seasonal_stream() {
        let t = 24;
        let y = seasonal(1000, t, 0.02, 2);
        let mut m = OneShotStl::default_paper();
        let d = m.run_series(&y, t, 4 * t).unwrap();
        let tail: f64 = d.residual[500..].iter().map(|r| r.abs()).sum::<f64>() / 500.0;
        assert!(tail < 0.1, "tail residual {tail}");
    }

    #[test]
    fn follows_abrupt_trend_change() {
        let t = 24;
        let mut y = seasonal(1000, t, 0.03, 3);
        for v in y.iter_mut().skip(600) {
            *v += 4.0;
        }
        let cfg = OneShotStlConfig {
            lambdas: Lambdas { lambda1: 1.0, lambda2: 1.0, anchor: 1.0 },
            ..Default::default()
        };
        let mut m = OneShotStl::new(cfg);
        let d = m.run_series(&y, t, 4 * t).unwrap();
        // within half a period the trend should capture most of the jump
        assert!(
            d.trend[612] - d.trend[599] > 2.0,
            "trend jump not tracked: {} -> {}",
            d.trend[599],
            d.trend[612]
        );
        // and the residual should settle again
        let settled: f64 = d.residual[700..900].iter().map(|r| r.abs()).sum::<f64>() / 200.0;
        assert!(settled < 0.2, "residual after jump {settled}");
    }

    #[test]
    fn recovers_from_seasonality_shift() {
        // the Syn2 scenario: the pattern permanently shifts by 6 points
        let t = 50;
        let n = 1400;
        let shift_at = 800;
        let delta = 6usize;
        let mut rng = StdRng::seed_from_u64(4);
        let y: Vec<f64> = (0..n)
            .map(|i| {
                let phase = if i >= shift_at { (i + t - delta) % t } else { i % t };
                3.0 * (2.0 * std::f64::consts::PI * phase as f64 / t as f64).sin()
                    + 0.02 * rng.gen_range(-1.0..1.0)
            })
            .collect();
        let with_shift = {
            let cfg = OneShotStlConfig { shift_window: 20, ..Default::default() };
            let mut m = OneShotStl::new(cfg);
            m.run_series(&y, t, 8 * t).unwrap()
        };
        let without_shift = {
            let cfg = OneShotStlConfig { shift_window: 0, ..Default::default() };
            let mut m = OneShotStl::new(cfg);
            m.run_series(&y, t, 8 * t).unwrap()
        };
        let err = |d: &tskit::Decomposition| -> f64 {
            d.residual[shift_at + 2 * t..shift_at + 6 * t].iter().map(|r| r.abs()).sum::<f64>()
                / (4 * t) as f64
        };
        let e_with = err(&with_shift);
        let e_without = err(&without_shift);
        assert!(
            e_with < e_without,
            "shift handling should reduce post-shift residual: {e_with} vs {e_without}"
        );
        assert!(e_with < 0.5, "post-shift residual too large: {e_with}");
    }

    #[test]
    fn nonfinite_input_is_imputed() {
        let t = 20;
        let y = seasonal(400, t, 0.05, 5);
        let mut m = OneShotStl::default_paper();
        m.init(&y[..4 * t], t).unwrap();
        for &v in &y[4 * t..200] {
            m.update(v);
        }
        let p = m.update(f64::NAN);
        assert!(p.trend.is_finite() && p.seasonal.is_finite() && p.residual.is_finite());
        // stream continues normally
        let p2 = m.update(y[201]);
        assert!(p2.value().is_finite());
    }

    #[test]
    fn init_validation() {
        let mut m = OneShotStl::default_paper();
        assert!(m.init(&[1.0; 10], 24).is_err());
        assert!(m.init(&[1.0; 10], 1).is_err());
    }

    #[test]
    #[should_panic(expected = "before init")]
    fn update_before_init_panics() {
        OneShotStl::default_paper().update(1.0);
    }
}
