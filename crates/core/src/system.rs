//! Assembly of the Modified-JointSTL online linear system (paper Eq. 8).
//!
//! Unknowns are *interleaved*, `x = (τ_1, s_1, τ_2, s_2, …, τ_M, s_M)`,
//! which is what makes `A` banded with **half-bandwidth 4** independent of
//! `M` and `T` (paper Fig. 2): the trend second difference couples `τ_j`
//! and `τ_{j−2}`, which sit 4 positions apart.
//!
//! Two assembly routines are provided:
//!
//! - [`assemble_full`] builds the whole `2M × 2M` system (used by the
//!   Algorithm-2 reference solver and by the warm-up steps of the `O(1)`
//!   path), and
//! - [`assemble_block`] builds only the trailing block `A*` / `b*` that
//!   changes when a new point arrives (paper Fig. 2, red box) — the input
//!   of [`crate::online_doolittle`].
//!
//! A unit test asserts that the block equals the corresponding sub-matrix
//! of the full assembly for random weights, which is the structural claim
//! of the paper's Fig. 2.

use tskit::linalg::SymBanded;

/// Half-bandwidth of the online system (fixed by the model).
pub const BANDWIDTH: usize = 4;

/// λ hyper-parameters of the trend regularizers (Eq. 2/7).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Lambdas {
    /// Weight of `|τ_t − τ_{t−1}|`.
    pub lambda1: f64,
    /// Weight of `|τ_t − 2τ_{t−1} + τ_{t−2}|`.
    pub lambda2: f64,
    /// Weight of the seasonal anchor term `(s_j − v_{j mod T})²`
    /// (1 in Eq. 7; larger values pin the seasonal component harder to the
    /// previous cycle, which suppresses trend/seasonal drift on streams
    /// with trend regime changes).
    pub anchor: f64,
}

impl Default for Lambdas {
    fn default() -> Self {
        // the paper ties λ1 = λ2 = λ and tunes λ on a log grid (§5.1.4);
        // 100 is a robust middle of that grid for unit-scale data
        Lambdas { lambda1: 100.0, lambda2: 100.0, anchor: 1.0 }
    }
}

/// Data defining the online system at step `M = y.len()`:
/// observations `y`, seasonal anchors `u` (`u_j = v[(t_j + Δ) mod T]`),
/// and the IRLS weights of the current iteration.
///
/// Weight convention: `pw[j]` weights the difference `(τ_{j−1}, τ_j)` and is
/// meaningful for `j ≥ 1`; `qw[j]` weights `(τ_{j−2}, τ_{j−1}, τ_j)` for
/// `j ≥ 2`. Entries below those indices are ignored.
#[derive(Debug, Clone)]
pub struct SystemData<'a> {
    /// Observed online points `y_1..y_M` (0-based storage).
    pub y: &'a [f64],
    /// Seasonal anchor values, same length as `y`.
    pub u: &'a [f64],
    /// First-difference IRLS weights, same length as `y`.
    pub pw: &'a [f64],
    /// Second-difference IRLS weights, same length as `y`.
    pub qw: &'a [f64],
    /// Trend penalties.
    pub lambdas: Lambdas,
}

/// Builds the full banded system `(A, b)` for `M = y.len()` points.
pub fn assemble_full(data: &SystemData<'_>) -> (SymBanded, Vec<f64>) {
    let m = data.y.len();
    assert!(m >= 1, "assemble_full: need at least one point");
    assert_eq!(data.u.len(), m, "u length mismatch");
    assert_eq!(data.pw.len(), m, "pw length mismatch");
    assert_eq!(data.qw.len(), m, "qw length mismatch");
    let n = 2 * m;
    let mut a = SymBanded::zeros(n, BANDWIDTH);
    let mut b = vec![0.0; n];
    for j in 0..m {
        // C1ᵀC1: (τ_j + s_j − y_j)²
        a.add(2 * j, 2 * j, 1.0);
        a.add(2 * j + 1, 2 * j + 1, 1.0);
        a.add(2 * j, 2 * j + 1, 1.0);
        // C2ᵀC2: anchor·(s_j − u_j)²
        a.add(2 * j + 1, 2 * j + 1, data.lambdas.anchor);
        b[2 * j] = data.y[j];
        b[2 * j + 1] = data.y[j] + data.lambdas.anchor * data.u[j];
    }
    for j in 1..m {
        let w = data.lambdas.lambda1 * data.pw[j];
        a.add(2 * (j - 1), 2 * (j - 1), w);
        a.add(2 * j, 2 * j, w);
        a.add(2 * (j - 1), 2 * j, -w);
    }
    for j in 2..m {
        let w = data.lambdas.lambda2 * data.qw[j];
        a.add(2 * (j - 2), 2 * (j - 2), w);
        a.add(2 * (j - 1), 2 * (j - 1), 4.0 * w);
        a.add(2 * j, 2 * j, w);
        a.add(2 * (j - 2), 2 * (j - 1), -2.0 * w);
        a.add(2 * (j - 1), 2 * j, -2.0 * w);
        a.add(2 * (j - 2), 2 * j, w);
    }
    (a, b)
}

/// The tail block used by the `O(1)` update: at step `M` it covers the
/// unknowns of the last `min(M, 3)` time points (`6 × 6` once `M ≥ 3`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TailBlock {
    /// Number of unknowns in the block (`2·min(M, 3)`).
    pub dim: usize,
    /// Dense symmetric block, `a[i][j]` for `i, j < dim`.
    pub a: [[f64; 6]; 6],
    /// Right-hand-side entries for the block's unknowns.
    pub b: [f64; 6],
}

/// Per-step input for the tail-block assembly: the last three observations
/// and weights, newest last. For `M < 3` the leading entries are ignored.
#[derive(Debug, Clone, Copy)]
pub struct TailData {
    /// Step count `M` (number of online points including the newest).
    pub m: usize,
    /// `y` at times `M−3, M−2, M−1` (0-based), newest last.
    pub y3: [f64; 3],
    /// Seasonal anchors for the same times.
    pub u3: [f64; 3],
    /// `pw` for the same times (`pw[j]` weights the diff `(j−1, j)`).
    pub p3: [f64; 3],
    /// `qw` for the same times.
    pub q3: [f64; 3],
    /// Trend penalties.
    pub lambdas: Lambdas,
}

/// Builds the trailing `A*`, `b*` block (paper Fig. 2) for step `m`.
pub fn assemble_block(t: &TailData) -> TailBlock {
    let m = t.m;
    assert!(m >= 1, "assemble_block: need at least one point");
    if m >= 5 {
        // every steady-state call (the `O(1)` path runs here from step 5
        // on, 8× per update) takes the straight-line specialization
        return assemble_block_steady(t);
    }
    let k = m.min(3); // time points in the block
    let t0 = m - k; // first (0-based) time index covered
    let dim = 2 * k;
    let mut a = [[0.0; 6]; 6];
    let mut b = [0.0; 6];
    // helper: global time j -> slot in the y3/u3/p3/q3 arrays (newest last)
    let slot = |j: usize| 3 - (m - j);
    let mut add = |i: usize, jj: usize, v: f64| {
        let (lo, hi) = if i <= jj { (i, jj) } else { (jj, i) };
        a[lo][hi] += v;
        if lo != hi {
            a[hi][lo] += v;
        }
    };
    for r in 0..k {
        let j = t0 + r;
        let s = slot(j);
        add(2 * r, 2 * r, 1.0);
        add(2 * r + 1, 2 * r + 1, 1.0 + t.lambdas.anchor); // C1 + anchor·C2
        add(2 * r, 2 * r + 1, 1.0);
        b[2 * r] = t.y3[s];
        b[2 * r + 1] = t.y3[s] + t.lambdas.anchor * t.u3[s];
    }
    // first differences with j in the block (j >= 1)
    for j in t0.max(1)..m {
        let w = t.lambdas.lambda1 * t.p3[slot(j)];
        let r = j - t0;
        add(2 * r, 2 * r, w);
        if j >= 1 && j > t0 {
            let rp = j - 1 - t0;
            add(2 * rp, 2 * rp, w);
            add(2 * rp, 2 * r, -w);
        }
    }
    // second differences with j in the block (j >= 2)
    for j in t0.max(2)..m {
        let w = t.lambdas.lambda2 * t.q3[slot(j)];
        let r = j - t0;
        add(2 * r, 2 * r, w);
        if j > t0 {
            let r1 = j - 1 - t0;
            add(2 * r1, 2 * r1, 4.0 * w);
            add(2 * r1, 2 * r, -2.0 * w);
        }
        if j >= 2 && j - 2 >= t0 {
            let r2 = j - 2 - t0;
            add(2 * r2, 2 * r2, w);
            add(2 * r2, 2 * r, w);
            if j > t0 {
                let r1 = j - 1 - t0;
                add(2 * r2, 2 * r1, -2.0 * w);
            }
        }
    }
    TailBlock { dim, a, b }
}

/// [`assemble_block`] specialized to the steady state (`M ≥ 5`): with the
/// first covered time `t0 = M − 3 ≥ 2`, both difference loops span all
/// three tail points, so the whole assembly is branch-free straight-line
/// code. Every `+=` below replays the generic loops in their exact
/// execution order — the accumulation into each entry is bit-identical to
/// the loop path (pinned by `block_matches_full_submatrix` for `m = 5..12`
/// and by the `GOLDEN_*` fixtures end-to-end).
fn assemble_block_steady(t: &TailData) -> TailBlock {
    let mut a = [[0.0; 6]; 6];
    let mut b = [0.0; 6];
    let anchor = t.lambdas.anchor;
    // C1ᵀC1 + anchor·C2ᵀC2 per point (r = 0, 1, 2)
    a[0][0] += 1.0;
    a[1][1] += 1.0 + anchor;
    a[0][1] += 1.0;
    a[1][0] += 1.0;
    b[0] = t.y3[0];
    b[1] = t.y3[0] + anchor * t.u3[0];
    a[2][2] += 1.0;
    a[3][3] += 1.0 + anchor;
    a[2][3] += 1.0;
    a[3][2] += 1.0;
    b[2] = t.y3[1];
    b[3] = t.y3[1] + anchor * t.u3[1];
    a[4][4] += 1.0;
    a[5][5] += 1.0 + anchor;
    a[4][5] += 1.0;
    a[5][4] += 1.0;
    b[4] = t.y3[2];
    b[5] = t.y3[2] + anchor * t.u3[2];
    // first differences, j = t0, t0+1, t0+2
    let w0 = t.lambdas.lambda1 * t.p3[0];
    let w1 = t.lambdas.lambda1 * t.p3[1];
    let w2 = t.lambdas.lambda1 * t.p3[2];
    a[0][0] += w0;
    a[2][2] += w1;
    a[0][0] += w1;
    a[0][2] += -w1;
    a[2][0] += -w1;
    a[4][4] += w2;
    a[2][2] += w2;
    a[2][4] += -w2;
    a[4][2] += -w2;
    // second differences, j = t0, t0+1, t0+2
    let q0 = t.lambdas.lambda2 * t.q3[0];
    let q1 = t.lambdas.lambda2 * t.q3[1];
    let q2 = t.lambdas.lambda2 * t.q3[2];
    a[0][0] += q0;
    a[2][2] += q1;
    a[0][0] += 4.0 * q1;
    a[0][2] += -2.0 * q1;
    a[2][0] += -2.0 * q1;
    a[4][4] += q2;
    a[2][2] += 4.0 * q2;
    a[2][4] += -2.0 * q2;
    a[4][2] += -2.0 * q2;
    a[0][0] += q2;
    a[0][4] += q2;
    a[4][0] += q2;
    a[0][2] += -2.0 * q2;
    a[2][0] += -2.0 * q2;
    TailBlock { dim: 6, a, b }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_data(m: usize, seed: u64) -> (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let y: Vec<f64> = (0..m).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let u: Vec<f64> = (0..m).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let pw: Vec<f64> = (0..m).map(|_| rng.gen_range(0.01..5.0)).collect();
        let qw: Vec<f64> = (0..m).map(|_| rng.gen_range(0.01..5.0)).collect();
        (y, u, pw, qw)
    }

    #[test]
    fn full_matrix_is_banded_with_w4() {
        let (y, u, pw, qw) = random_data(8, 1);
        let data = SystemData { y: &y, u: &u, pw: &pw, qw: &qw, lambdas: Lambdas::default() };
        let (a, _) = assemble_full(&data);
        assert_eq!(a.n(), 16);
        // every entry at distance > 4 must be zero (it is by storage), and
        // the entry at distance exactly 4 is the λ2 coupling
        assert!(a.get(0, 4).abs() > 0.0, "τ_j/τ_{{j+2}} coupling missing");
        assert_eq!(a.get(0, 5), 0.0);
    }

    #[test]
    fn figure2_property_top_left_submatrix_is_stable() {
        // A_t and A_{t+1} share their top-left 2(M-2) x 2(M-2) part.
        let (y, u, pw, qw) = random_data(9, 2);
        let l = Lambdas { lambda1: 1.0, lambda2: 1.0, anchor: 1.0 };
        let d8 = SystemData { y: &y[..8], u: &u[..8], pw: &pw[..8], qw: &qw[..8], lambdas: l };
        let d9 = SystemData { y: &y[..9], u: &u[..9], pw: &pw[..9], qw: &qw[..9], lambdas: l };
        let (a8, b8) = assemble_full(&d8);
        let (a9, b9) = assemble_full(&d9);
        let stable = 2 * (8 - 2); // unknowns untouched by the new point
        for i in 0..stable {
            for j in 0..stable {
                assert!((a8.get(i, j) - a9.get(i, j)).abs() < 1e-12, "A changed at ({i},{j})");
            }
            assert!((b8[i] - b9[i]).abs() < 1e-12, "b changed at {i}");
        }
        // ...and the bottom-right 4x4 of A_t DOES change (the A_o -> A* swap)
        let base = 2 * 8 - 4;
        let mut changed = false;
        for i in base..2 * 8 {
            for j in base..2 * 8 {
                if (a8.get(i, j) - a9.get(i, j)).abs() > 1e-12 {
                    changed = true;
                }
            }
        }
        assert!(changed, "adding a point must alter the trailing 4x4 block");
    }

    #[test]
    fn block_matches_full_submatrix() {
        for m in 1..=12usize {
            let (y, u, pw, qw) = random_data(m, 100 + m as u64);
            let l = Lambdas { lambda1: 0.7, lambda2: 3.0, anchor: 1.0 };
            let data = SystemData { y: &y, u: &u, pw: &pw, qw: &qw, lambdas: l };
            let (a, b) = assemble_full(&data);
            let k = m.min(3);
            let mut y3 = [0.0; 3];
            let mut u3 = [0.0; 3];
            let mut p3 = [0.0; 3];
            let mut q3 = [0.0; 3];
            for j in m - k..m {
                let s = 3 - (m - j);
                y3[s] = y[j];
                u3[s] = u[j];
                p3[s] = pw[j];
                q3[s] = qw[j];
            }
            let block = assemble_block(&TailData { m, y3, u3, p3, q3, lambdas: l });
            assert_eq!(block.dim, 2 * k);
            let base = 2 * (m - k);
            for i in 0..block.dim {
                for jj in 0..block.dim {
                    assert!(
                        (block.a[i][jj] - a.get(base + i, base + jj)).abs() < 1e-12,
                        "m={m}: block({i},{jj}) = {} vs full {}",
                        block.a[i][jj],
                        a.get(base + i, base + jj)
                    );
                }
                assert!((block.b[i] - b[base + i]).abs() < 1e-12, "m={m}: b mismatch at {i}");
            }
        }
    }

    #[test]
    fn system_is_positive_definite() {
        let (y, u, pw, qw) = random_data(20, 5);
        let data = SystemData { y: &y, u: &u, pw: &pw, qw: &qw, lambdas: Lambdas::default() };
        let (a, _) = assemble_full(&data);
        let f = a.ldlt().expect("system must be SPD");
        assert!(f.d.iter().all(|&d| d > 0.0), "all pivots positive");
    }

    #[test]
    fn zero_weights_still_solvable() {
        // IRLS weights can be huge or tiny but never negative; check tiny.
        let m = 6;
        let y = vec![1.0; m];
        let u = vec![0.0; m];
        let pw = vec![1e-12; m];
        let qw = vec![1e-12; m];
        let data = SystemData { y: &y, u: &u, pw: &pw, qw: &qw, lambdas: Lambdas::default() };
        let (a, b) = assemble_full(&data);
        let x = a.solve(&b).unwrap();
        // with (near-)zero trend smoothing the optimum decouples per point:
        // stationarity gives τ_j + s_j = y_j and s_j = u_j.
        for j in 0..m {
            let tau = x[2 * j];
            let s = x[2 * j + 1];
            assert!((tau - (y[j] - u[j])).abs() < 1e-6, "tau[{j}] = {tau}");
            assert!((s - u[j]).abs() < 1e-6, "s[{j}] = {s}");
        }
    }
}
