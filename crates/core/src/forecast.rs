//! Multi-horizon forecasting over the decomposed components (paper §5).
//!
//! OneShotSTL's STD→TSF rule forecasts
//!
//! ```text
//! ŷ(t+h) = τ(t) + slope·h + v[(t+Δ+h) mod T]
//! ```
//!
//! — the newest trend level, a linear (optionally damped) extrapolation
//! of its one-step slope, and the seasonal buffer looked up under the
//! cumulative §3.4 phase shift Δ. The recurrence itself lives on
//! [`crate::OneShotStl`] ([`forecast`](crate::oneshot::OnlineJointStl::forecast),
//! [`forecast_damped`](crate::oneshot::OnlineJointStl::forecast_damped),
//! [`forecast_into`](crate::oneshot::OnlineJointStl::forecast_into) —
//! the last one fills a caller-owned buffer with **zero** heap
//! allocations, the fleet's steady-state path).
//!
//! This module adds the pluggable layer on top: a [`ForecastHead`]
//! refines the base carry-forward forecast `τ(t) + v[·]` per horizon,
//! observing each decomposed point as it streams by. [`TrendHead`] is the
//! built-in head implementing the damped slope term above; the `forecast`
//! crate adapts its ARIMA/ETS/Theta models into residual heads through
//! the same trait.

use tskit::series::DecompPoint;

/// A pluggable forecast refinement over decomposed components.
///
/// The host decomposes the stream, feeds every decomposed point to
/// [`ForecastHead::observe`], and asks the head to refine the base
/// carry-forward forecast `τ(t) + v[(t+Δ+h) mod T]` per horizon. Heads
/// compose additively on the decomposition: a *trend* head extrapolates
/// the level ([`TrendHead`]), a *residual* head forecasts the remainder
/// the decomposition left behind (see the `forecast` crate's adapters).
pub trait ForecastHead {
    /// Display name of the head.
    fn name(&self) -> &'static str;

    /// Absorbs one decomposed point. Called once per arriving value, in
    /// order; built-in heads are O(1) and allocation-free here.
    fn observe(&mut self, point: &DecompPoint);

    /// Refines the base forecast `base = τ(t) + v[(t+Δ+h) mod T]` for
    /// horizon `h ≥ 1` (relative to the newest observed point).
    fn predict(&self, base: f64, h: usize) -> f64;
}

/// Damped-trend head: adds `slope · Σ_{j=1..h} φ^j` to the base forecast,
/// where `slope` is the one-step trend difference of the observed stream.
///
/// `φ = 1` gives the paper's linear `slope·h`; `φ = 0` is a no-op
/// (carry-forward); values in between bound the extrapolation of a noisy
/// local slope. Its entire state is two `f64`s.
#[derive(Debug, Clone, Copy)]
pub struct TrendHead {
    phi: f64,
    last_trend: f64,
    slope: f64,
    seen: bool,
}

impl TrendHead {
    /// A head with damping factor `φ ∈ [0, 1]`.
    pub fn new(phi: f64) -> Self {
        assert!((0.0..=1.0).contains(&phi) && phi.is_finite(), "damping must be in [0, 1]");
        TrendHead { phi, last_trend: 0.0, slope: 0.0, seen: false }
    }

    /// The current one-step slope estimate.
    pub fn slope(&self) -> f64 {
        self.slope
    }
}

impl ForecastHead for TrendHead {
    fn name(&self) -> &'static str {
        "trend"
    }

    fn observe(&mut self, point: &DecompPoint) {
        if self.seen {
            self.slope = point.trend - self.last_trend;
        }
        self.last_trend = point.trend;
        self.seen = true;
    }

    fn predict(&self, base: f64, h: usize) -> f64 {
        base + self.slope * damp_sum(self.phi, h)
    }
}

/// `Σ_{j=1..h} φ^j` — the damped-trend weight of horizon `h` (`h` for
/// `φ = 1`, `0` for `φ = 0`).
///
/// Computed by the same running accumulation at every call site (rather
/// than the closed form), so single-horizon forecasts, multi-horizon
/// [`crate::oneshot::OnlineJointStl::forecast_into`] fills, and a
/// snapshot-restored engine all produce bit-identical values.
pub fn damp_sum(phi: f64, h: usize) -> f64 {
    let mut weight = 0.0;
    let mut pow = 1.0;
    for _ in 0..h {
        pow *= phi;
        weight += pow;
    }
    weight
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OneShotStl, OneShotStlConfig};
    use decomp::OnlineDecomposer;

    fn trended_seasonal(n: usize, period: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                0.05 * i as f64 + (2.0 * std::f64::consts::PI * i as f64 / period as f64).sin()
            })
            .collect()
    }

    #[test]
    fn damp_sum_endpoints() {
        assert_eq!(damp_sum(1.0, 7), 7.0);
        assert_eq!(damp_sum(0.0, 7), 0.0);
        let s = damp_sum(0.5, 3); // 0.5 + 0.25 + 0.125
        assert!((s - 0.875).abs() < 1e-15);
    }

    #[test]
    fn slope_forecast_tracks_a_trending_seasonal_stream() {
        use crate::system::Lambdas;
        let period = 24;
        let y = trended_seasonal(600, period);
        // TSF protocol for trending data: flexible trend (λ1 small) with a
        // stiff seasonal (λ2 large), so the drift lands in the trend the
        // slope term extrapolates — the default tied λ = 100 parks the
        // level in the seasonal buffer instead, which lags by a period
        let cfg = OneShotStlConfig {
            lambdas: Lambdas { lambda1: 1.0, lambda2: 100.0, anchor: 1.0 },
            ..Default::default()
        };
        let mut m = OneShotStl::new(cfg);
        m.init(&y[..4 * period], period).unwrap();
        for &v in &y[4 * period..480] {
            m.update(v);
        }
        // the slope estimate converges to the true 0.05/step drift
        assert!((m.trend_slope() - 0.05).abs() < 0.01, "slope {}", m.trend_slope());
        // at a long horizon, slope extrapolation must beat carry-forward
        let h = period / 2;
        let truth = y[480 - 1 + h];
        let carry = (m.predict(h) - truth).abs();
        let slope = (m.forecast(h) - truth).abs();
        assert!(slope < carry, "slope err {slope} vs carry err {carry}");
        assert!(slope < 0.1, "slope forecast err {slope}");
    }

    #[test]
    fn forecast_into_matches_single_horizon_calls_bitwise() {
        let period = 12;
        let y = trended_seasonal(300, period);
        let mut m = OneShotStl::new(OneShotStlConfig::default());
        m.init(&y[..4 * period], period).unwrap();
        for &v in &y[4 * period..] {
            m.update(v);
        }
        for phi in [0.0, 0.9, 1.0] {
            let mut out = vec![0.0; 2 * period];
            m.forecast_into(phi, &mut out);
            for (i, o) in out.iter().enumerate() {
                assert_eq!(
                    o.to_bits(),
                    m.forecast_damped(i + 1, phi).to_bits(),
                    "h={} phi={phi}",
                    i + 1
                );
            }
        }
    }

    #[test]
    fn trend_head_reproduces_the_damped_recurrence() {
        let period = 12;
        let y = trended_seasonal(300, period);
        let mut m = OneShotStl::new(OneShotStlConfig::default());
        let mut head = TrendHead::new(0.8);
        m.init(&y[..4 * period], period).unwrap();
        for &v in &y[4 * period..] {
            let p = m.update(v);
            head.observe(&p);
        }
        // the head's slope equals the model's (both are one-step trend
        // differences of the same committed stream)
        assert_eq!(head.slope().to_bits(), m.trend_slope().to_bits());
        for h in 1..=period {
            let refined = head.predict(m.predict(h), h);
            assert_eq!(refined.to_bits(), m.forecast_damped(h, 0.8).to_bits(), "h={h}");
        }
    }

    #[test]
    #[should_panic(expected = "damping must be in [0, 1]")]
    fn trend_head_rejects_bad_phi() {
        let _ = TrendHead::new(1.5);
    }
}
