//! Batch JointSTL (paper §3.1, Algorithm 1).
//!
//! Solves the joint trend/seasonal model of Eq. 2,
//!
//! ```text
//! min_{τ,s}  Σ (τ_t + s_t − y_t)²  +  Σ_{t≥T} (s_t − s_{t−T})²
//!          + λ1 Σ |τ_t − τ_{t−1}|  +  λ2 Σ |τ_t − 2τ_{t−1} + τ_{t−2}|
//! ```
//!
//! with IRLS (Eq. 3–5): each ℓ1 term is replaced by `w·x² + 1/(4w)` with
//! `w = 1/(2|x|)`, and each iteration solves the SPD system of Eq. 6.
//! With the unknowns interleaved (`τ_1, s_1, τ_2, s_2, …`) the system is
//! banded with half-bandwidth `2T`; we solve it directly for small `T` and
//! by Jacobi-preconditioned conjugate gradients (matrix-free `O(N)` per CG
//! pass) for large `T`.
//!
//! The batch normal matrix is **singular**: shifting `τ → τ + c`,
//! `s → s − c` changes nothing (the constant split between trend and
//! seasonal level is unobservable). We add a tiny ridge for numerical PD
//! and afterwards re-centre the seasonal component to zero mean, moving the
//! mean into the trend — the standard identifiability convention
//! (documented in DESIGN.md §7).

// index recurrences here mirror the published algorithms; iterator
// rewrites obscure the maths
#![allow(clippy::needless_range_loop)]
use crate::system::Lambdas;
use decomp::traits::BatchDecomposer;
use tskit::error::{check_finite, Result, TsError};
use tskit::linalg::SymBanded;
use tskit::series::Decomposition;
use tskit::stats::mean;

/// JointSTL configuration.
#[derive(Debug, Clone)]
pub struct JointStlConfig {
    /// Trend penalties (the paper ties λ1 = λ2 = λ).
    pub lambdas: Lambdas,
    /// IRLS iterations `I` (paper default 8).
    pub iters: usize,
    /// Ridge added to the diagonal for positive definiteness.
    pub ridge: f64,
    /// IRLS clamp ε for the reweighting denominators.
    pub eps: f64,
    /// Use the direct banded solver when `2T` is at most this; otherwise
    /// fall back to conjugate gradients.
    pub banded_bandwidth_limit: usize,
    /// CG relative residual tolerance.
    pub cg_tol: f64,
}

impl Default for JointStlConfig {
    fn default() -> Self {
        JointStlConfig {
            lambdas: Lambdas::default(),
            iters: 8,
            ridge: 1e-9,
            eps: 1e-10,
            banded_bandwidth_limit: 128,
            cg_tol: 1e-10,
        }
    }
}

/// The batch JointSTL decomposer (Algorithm 1).
#[derive(Debug, Clone, Default)]
pub struct JointStl {
    /// Configuration used by [`BatchDecomposer::decompose`].
    pub config: JointStlConfig,
}

impl JointStl {
    /// JointSTL with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// JointSTL with `λ1 = λ2 = lambda` (the paper's tuning convention).
    pub fn with_lambda(lambda: f64) -> Self {
        JointStl {
            config: JointStlConfig {
                lambdas: Lambdas { lambda1: lambda, lambda2: lambda, anchor: 1.0 },
                ..Default::default()
            },
        }
    }
}

#[inline]
fn irls_weight(x: f64, eps: f64) -> f64 {
    1.0 / (2.0 * x.abs().max(eps))
}

/// Matrix-free application of the Eq. 6 operator in interleaved layout.
#[allow(clippy::too_many_arguments)]
fn apply(
    x: &[f64],
    out: &mut [f64],
    y_len: usize,
    period: usize,
    lambdas: Lambdas,
    pw: &[f64],
    qw: &[f64],
    ridge: f64,
) {
    let n = y_len;
    for (o, &xi) in out.iter_mut().zip(x.iter()) {
        *o = ridge * xi;
    }
    for j in 0..n {
        let v = x[2 * j] + x[2 * j + 1];
        out[2 * j] += v;
        out[2 * j + 1] += v;
    }
    for j in period..n {
        let d = x[2 * j + 1] - x[2 * (j - period) + 1];
        out[2 * j + 1] += d;
        out[2 * (j - period) + 1] -= d;
    }
    for j in 1..n {
        let d = lambdas.lambda1 * pw[j] * (x[2 * j] - x[2 * (j - 1)]);
        out[2 * j] += d;
        out[2 * (j - 1)] -= d;
    }
    for j in 2..n {
        let d = lambdas.lambda2 * qw[j] * (x[2 * j] - 2.0 * x[2 * (j - 1)] + x[2 * (j - 2)]);
        out[2 * j] += d;
        out[2 * (j - 1)] -= 2.0 * d;
        out[2 * (j - 2)] += d;
    }
}

/// Diagonal of the Eq. 6 operator (Jacobi preconditioner).
fn diagonal(
    y_len: usize,
    period: usize,
    lambdas: Lambdas,
    pw: &[f64],
    qw: &[f64],
    ridge: f64,
) -> Vec<f64> {
    let n = y_len;
    let mut d = vec![ridge; 2 * n];
    for j in 0..n {
        d[2 * j] += 1.0;
        d[2 * j + 1] += 1.0;
    }
    for j in period..n {
        d[2 * j + 1] += 1.0;
        d[2 * (j - period) + 1] += 1.0;
    }
    for j in 1..n {
        let w = lambdas.lambda1 * pw[j];
        d[2 * j] += w;
        d[2 * (j - 1)] += w;
    }
    for j in 2..n {
        let w = lambdas.lambda2 * qw[j];
        d[2 * j] += w;
        d[2 * (j - 1)] += 4.0 * w;
        d[2 * (j - 2)] += w;
    }
    d
}

/// Jacobi-preconditioned conjugate gradients with warm start.
#[allow(clippy::too_many_arguments)]
fn solve_cg(
    b: &[f64],
    x0: &mut [f64],
    y_len: usize,
    period: usize,
    lambdas: Lambdas,
    pw: &[f64],
    qw: &[f64],
    ridge: f64,
    tol: f64,
) {
    let n = b.len();
    let diag = diagonal(y_len, period, lambdas, pw, qw, ridge);
    let mut ax = vec![0.0; n];
    apply(x0, &mut ax, y_len, period, lambdas, pw, qw, ridge);
    let mut r: Vec<f64> = b.iter().zip(&ax).map(|(bi, ai)| bi - ai).collect();
    let bnorm = b.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-300);
    let mut z: Vec<f64> = r.iter().zip(&diag).map(|(ri, di)| ri / di).collect();
    let mut p = z.clone();
    let mut rz: f64 = r.iter().zip(&z).map(|(a, c)| a * c).sum();
    let max_iter = 20 * n;
    for _ in 0..max_iter {
        let rnorm = r.iter().map(|v| v * v).sum::<f64>().sqrt();
        if rnorm / bnorm < tol {
            break;
        }
        apply(&p, &mut ax, y_len, period, lambdas, pw, qw, ridge);
        let pap: f64 = p.iter().zip(&ax).map(|(a, c)| a * c).sum();
        if pap <= 0.0 {
            break; // numerical loss of definiteness; accept current iterate
        }
        let alpha = rz / pap;
        for i in 0..n {
            x0[i] += alpha * p[i];
            r[i] -= alpha * ax[i];
        }
        for i in 0..n {
            z[i] = r[i] / diag[i];
        }
        let rz_new: f64 = r.iter().zip(&z).map(|(a, c)| a * c).sum();
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }
}

fn solve_banded(
    b: &[f64],
    y_len: usize,
    period: usize,
    lambdas: Lambdas,
    pw: &[f64],
    qw: &[f64],
    ridge: f64,
) -> Result<Vec<f64>> {
    let n = y_len;
    let w = (2 * period).max(4);
    let mut a = SymBanded::zeros(2 * n, w);
    for j in 0..n {
        a.add(2 * j, 2 * j, 1.0);
        a.add(2 * j + 1, 2 * j + 1, 1.0);
        a.add(2 * j, 2 * j + 1, 1.0);
    }
    for j in period..n {
        a.add(2 * j + 1, 2 * j + 1, 1.0);
        a.add(2 * (j - period) + 1, 2 * (j - period) + 1, 1.0);
        a.add(2 * (j - period) + 1, 2 * j + 1, -1.0);
    }
    for j in 1..n {
        let wgt = lambdas.lambda1 * pw[j];
        a.add(2 * j, 2 * j, wgt);
        a.add(2 * (j - 1), 2 * (j - 1), wgt);
        a.add(2 * (j - 1), 2 * j, -wgt);
    }
    for j in 2..n {
        let wgt = lambdas.lambda2 * qw[j];
        a.add(2 * j, 2 * j, wgt);
        a.add(2 * (j - 1), 2 * (j - 1), 4.0 * wgt);
        a.add(2 * (j - 2), 2 * (j - 2), wgt);
        a.add(2 * (j - 1), 2 * j, -2.0 * wgt);
        a.add(2 * (j - 2), 2 * (j - 1), -2.0 * wgt);
        a.add(2 * (j - 2), 2 * j, wgt);
    }
    a.add_ridge(ridge);
    a.solve(b)
}

impl BatchDecomposer for JointStl {
    fn name(&self) -> &'static str {
        "JointSTL"
    }

    fn decompose(&self, y: &[f64], period: usize) -> Result<Decomposition> {
        let n = y.len();
        if period < 2 {
            return Err(TsError::InvalidParam {
                name: "period",
                msg: format!("JointSTL needs period >= 2, got {period}"),
            });
        }
        if n < period + 3 {
            return Err(TsError::TooShort { what: "JointSTL input", need: period + 3, got: n });
        }
        check_finite(y)?;
        let cfg = &self.config;
        // scale the ridge to the data so identifiability regularization is
        // negligible yet non-zero
        let scale = tskit::stats::variance(y).max(1.0);
        let ridge = cfg.ridge * scale;
        let mut b = vec![0.0; 2 * n];
        for j in 0..n {
            b[2 * j] = y[j];
            b[2 * j + 1] = y[j];
        }
        let mut pw = vec![1.0; n];
        let mut qw = vec![1.0; n];
        let mut x = vec![0.0; 2 * n];
        // warm start: trend = moving average, seasonal = remainder mean
        let ma = tskit::smooth::centered_moving_average(y, period);
        for j in 0..n {
            x[2 * j] = ma[j];
            x[2 * j + 1] = y[j] - ma[j];
        }
        let use_banded = 2 * period <= cfg.banded_bandwidth_limit;
        for _ in 0..cfg.iters.max(1) {
            if use_banded {
                x = solve_banded(&b, n, period, cfg.lambdas, &pw, &qw, ridge)?;
            } else {
                solve_cg(&b, &mut x, n, period, cfg.lambdas, &pw, &qw, ridge, cfg.cg_tol);
            }
            for j in 1..n {
                pw[j] = irls_weight(x[2 * j] - x[2 * (j - 1)], cfg.eps);
            }
            for j in 2..n {
                qw[j] = irls_weight(x[2 * j] - 2.0 * x[2 * (j - 1)] + x[2 * (j - 2)], cfg.eps);
            }
        }
        let mut trend: Vec<f64> = (0..n).map(|j| x[2 * j]).collect();
        let mut seasonal: Vec<f64> = (0..n).map(|j| x[2 * j + 1]).collect();
        // identifiability: centre the seasonal component
        let m = mean(&seasonal);
        for s in seasonal.iter_mut() {
            *s -= m;
        }
        for t in trend.iter_mut() {
            *t += m;
        }
        let residual: Vec<f64> = (0..n).map(|j| y[j] - trend[j] - seasonal[j]).collect();
        Ok(Decomposition { trend, seasonal, residual })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use tskit::stats::mae;

    fn gen(n: usize, t: usize, jump: bool, seed: u64) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let trend: Vec<f64> = (0..n)
            .map(|i| if jump && i >= n / 2 { 3.0 } else { 0.0 } + 0.001 * i as f64)
            .collect();
        let season: Vec<f64> =
            (0..n).map(|i| (2.0 * std::f64::consts::PI * i as f64 / t as f64).sin()).collect();
        let y: Vec<f64> =
            (0..n).map(|i| trend[i] + season[i] + 0.05 * rng.gen_range(-1.0..1.0)).collect();
        (y, trend, season)
    }

    #[test]
    fn decomposes_stationary_signal() {
        let (y, truth_trend, truth_season) = gen(240, 24, false, 1);
        let d = JointStl::with_lambda(100.0).decompose(&y, 24).unwrap();
        assert_eq!(d.check_additive(&y, 1e-9), None);
        let te = mae(&d.trend[24..216], &truth_trend[24..216]);
        let se = mae(&d.seasonal[24..216], &truth_season[24..216]);
        assert!(te < 0.12, "trend MAE {te}");
        assert!(se < 0.12, "seasonal MAE {se}");
    }

    #[test]
    fn captures_abrupt_trend_change() {
        let (y, truth_trend, _) = gen(300, 20, true, 2);
        let d = JointStl::with_lambda(10.0).decompose(&y, 20).unwrap();
        // jump must survive: trend right after the change is close to truth
        let err_after = (d.trend[160] - truth_trend[160]).abs();
        assert!(err_after < 0.6, "trend after jump off by {err_after}");
        let jump_size = d.trend[155] - d.trend[145];
        assert!(jump_size > 1.5, "jump flattened: {jump_size}");
    }

    #[test]
    fn cg_path_matches_banded_path() {
        let (y, _, _) = gen(200, 16, false, 3);
        let banded = JointStl {
            config: JointStlConfig {
                banded_bandwidth_limit: 1024,
                iters: 4,
                ..Default::default()
            },
        }
        .decompose(&y, 16)
        .unwrap();
        let cg = JointStl {
            config: JointStlConfig {
                banded_bandwidth_limit: 0,
                iters: 4,
                ..Default::default()
            },
        }
        .decompose(&y, 16)
        .unwrap();
        let dt = mae(&banded.trend, &cg.trend);
        let ds = mae(&banded.seasonal, &cg.seasonal);
        assert!(dt < 1e-5, "trend mismatch {dt}");
        assert!(ds < 1e-5, "seasonal mismatch {ds}");
    }

    #[test]
    fn seasonal_component_is_centred() {
        let (y, _, _) = gen(200, 10, false, 4);
        let d = JointStl::new().decompose(&y, 10).unwrap();
        assert!(mean(&d.seasonal).abs() < 1e-8);
    }

    #[test]
    fn input_validation() {
        let j = JointStl::new();
        assert!(j.decompose(&[1.0; 4], 10).is_err());
        assert!(j.decompose(&[1.0; 100], 1).is_err());
        assert!(j.decompose(&[f64::NAN; 100], 10).is_err());
    }
}
