//! Persistence-aware residual scoring: streaming two-sided CUSUM fused
//! with the instantaneous NSigma z-score.
//!
//! The paper's §5 TSAD pipeline scores each point by its instantaneous
//! residual z-score (Algorithm 6). That is blind to *collective* anomalies
//! in a wandering-trend regime: OneShotSTL's adaptive trend absorbs a
//! level shift within a few points, so only the shift edges score high and
//! the body of the anomalous segment looks normal. The classic remedy
//! (Page's CUSUM; see also Zhang/Pein/Eckley's collective-anomaly
//! decomposition and eBay's robust-decomposition AD system) is a
//! *persistence-aware* statistic over the residual stream: small but
//! sustained standardized deviations accumulate until they cross a
//! decision bar that a single noisy point cannot reach.
//!
//! [`ResidualScorer`] layers three O(1) mechanisms on the decomposed
//! residual:
//!
//! 1. the existing streaming [`NSigma`] z-score `z_t = (r_t − μ) / σ`
//!    against the running residual statistics (score-then-absorb, exactly
//!    Algorithm 6);
//! 2. a two-sided CUSUM over the same standardized residual:
//!    `S⁺_t = clamp(S⁺_{t−1} + z_t − k, 0, 2h)`,
//!    `S⁻_t = clamp(S⁻_{t−1} − z_t − k, 0, 2h)`,
//!    with reference value `k` (drift allowance, in σ units) and decision
//!    bar `h`. The statistic is `C_t = max(S⁺_t, S⁻_t)`; `C_t > h` raises
//!    an alarm and resets both accumulators (classic reset-on-alarm, so
//!    the next collective anomaly is detected from a clean slate — the
//!    `2h` clamp bounds the statistic a single extreme point can report);
//! 3. an exponentially decaying **peak-hold** over the fused statistic:
//!    `P_t = max(γ · P_{t−1}, fused_t)`. A level-shift anomaly leaves
//!    only two narrow residual spikes (entry and exit edges — the
//!    adaptive trend flattens everything in between), and the hold
//!    bridges them: every point of the anomalous span ranks near the edge
//!    evidence instead of falling back to noise level. `γ = 0` disables
//!    the hold (pure instantaneous scoring).
//!
//! The emitted score is the held fusion of `z` and the rescaled CUSUM
//! statistic (see [`Fusion`]); the *verdict* stays instantaneous
//! (`z > n ∨ C > h`), so alarm counts do not smear across the hold tail.
//!
//! With [`Fusion::Off`] the scorer is **bit-identical** to the plain
//! NSigma path (the CUSUM accumulators and the hold are never touched) —
//! that is what v4 fleet snapshots decode as, so restored v4 streams
//! continue exactly as the v4 writer would have continued.
//!
//! Everything is `O(1)` state and allocation-free in steady state: three
//! `f64` accumulators on top of NSigma's three running sums. Defaults
//! were chosen by the `tsad_ablation` sweep (see `BENCH_tsad.json`).

use crate::nsigma::{NSigma, NSigmaState};

/// The peak-hold latches at most this many multiples of the z bar `n`
/// (see the clamp note in [`ResidualScorer::update`]): deep enough that
/// held anomalies keep out-ranking everything normal, bounded so a
/// degenerate zero-variance sentinel decays in `ln(8)/(1−γ)` ≈ 200
/// points at the default γ instead of ~35 000.
const HOLD_INPUT_CAP: f64 = 8.0;

/// How the instantaneous z-score and the CUSUM statistic combine into the
/// emitted score (higher = more anomalous).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Fusion {
    /// Instantaneous z-score only — the pre-v5 pipeline, bit-identical to
    /// plain [`NSigma`] scoring (CUSUM and peak-hold state never move).
    Off,
    /// CUSUM statistic only (rescaled to z units by `n / h` so thresholds
    /// stay comparable), peak-held. Mostly useful in ablations.
    Cusum,
    /// `max(z, C · n/h)`, peak-held: a point is as anomalous as the *more
    /// alarmed* of the two detectors, in common z units. The anomaly
    /// verdict is the union `z > n  ∨  C > h`. This is the shipped
    /// default — it preserves point-anomaly (spike) sensitivity exactly
    /// while adding collective-anomaly sensitivity.
    #[default]
    Max,
}

/// Configuration of a [`ResidualScorer`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoreConfig {
    /// CUSUM reference value `k` (drift allowance per point, in σ units):
    /// deviations below `k` drain the accumulators, deviations above grow
    /// them. Classic choice: half the smallest shift worth detecting.
    pub cusum_k: f64,
    /// CUSUM decision bar `h` (in accumulated σ units): the alarm
    /// threshold for `max(S⁺, S⁻)`, with reset-on-alarm. Accumulators are
    /// clamped to `2h`.
    pub cusum_h: f64,
    /// Peak-hold decay `γ ∈ [0, 1)` per point: the emitted score is
    /// `max(γ · previous, instantaneous)`. `0` disables the hold.
    pub hold_decay: f64,
    /// Fusion rule for the emitted score.
    pub fusion: Fusion,
}

impl Default for ScoreConfig {
    /// The defaults chosen by the `tsad_ablation` sweep (see
    /// `BENCH_tsad.json`): `k = 0.5`, `h = 6`, `γ = 0.99`,
    /// [`Fusion::Max`] lifts the wandering-trend + level-shift family
    /// from ~0.55 to ~0.78 VUS-ROC while *improving* the strongly
    /// seasonal families.
    fn default() -> Self {
        ScoreConfig { cusum_k: 0.5, cusum_h: 6.0, hold_decay: 0.99, fusion: Fusion::Max }
    }
}

impl ScoreConfig {
    /// The pre-v5 behavior: instantaneous z-score only.
    pub fn off() -> Self {
        ScoreConfig { fusion: Fusion::Off, ..Default::default() }
    }

    /// Validates the parameters, returning a message for the first
    /// problem found. (`k = 0` is legal — a pure random-walk CUSUM — but
    /// `h` must be a positive finite bar, and the hold decay must stay
    /// below 1 or the score would never come back down.)
    pub fn validate(&self) -> Result<(), String> {
        if !(self.cusum_k.is_finite() && self.cusum_k >= 0.0) {
            return Err(format!("cusum_k must be finite and >= 0, got {}", self.cusum_k));
        }
        if !(self.cusum_h.is_finite() && self.cusum_h > 0.0) {
            return Err(format!("cusum_h must be finite and > 0, got {}", self.cusum_h));
        }
        if !(self.hold_decay.is_finite() && (0.0..1.0).contains(&self.hold_decay)) {
            return Err(format!(
                "hold_decay must be finite and in [0, 1), got {}",
                self.hold_decay
            ));
        }
        Ok(())
    }
}

/// One scoring step's outcome: the fused score plus both raw components,
/// so callers (and tests) can attribute an alarm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoreVerdict {
    /// The fused, peak-held score (what stream consumers rank by).
    pub score: f64,
    /// Instantaneous |z| against the residual history.
    pub z: f64,
    /// CUSUM statistic `max(S⁺, S⁻)` *before* any reset-on-alarm (so the
    /// alarm-raising value is observable).
    pub cusum: f64,
    /// Instantaneous verdict: `z > n` or (fusion permitting) `C > h` —
    /// deliberately *not* held, so alarms don't smear across the hold
    /// tail.
    pub is_anomaly: bool,
}

/// Streaming persistence-aware residual scorer. See the [module
/// docs](self).
#[derive(Debug, Clone)]
pub struct ResidualScorer {
    config: ScoreConfig,
    nsigma: NSigma,
    /// Upper CUSUM accumulator `S⁺`.
    s_pos: f64,
    /// Lower CUSUM accumulator `S⁻`.
    s_neg: f64,
    /// Peak-hold `P` of the fused statistic.
    hold: f64,
    /// Lifetime count of points whose `z` exceeded the bar (diagnostics,
    /// not serialized).
    z_alarms: u64,
    /// Lifetime count of CUSUM bar crossings (diagnostics, not
    /// serialized).
    cusum_alarms: u64,
}

impl ResidualScorer {
    /// Creates a scorer with NSigma threshold `n` and CUSUM config.
    pub fn new(n: f64, config: ScoreConfig) -> Self {
        ResidualScorer {
            config,
            nsigma: NSigma::new(n),
            s_pos: 0.0,
            s_neg: 0.0,
            hold: 0.0,
            z_alarms: 0,
            cusum_alarms: 0,
        }
    }

    /// Lifetime `(z alarms, CUSUM alarms)`: how many updates crossed the
    /// instantaneous z bar and how many crossed the CUSUM decision bar
    /// (one point can count in both; under [`Fusion::Off`] only the z
    /// count moves). Diagnostics only — like
    /// [`crate::OneShotStl::shift_search_stats`], the counters reset on
    /// snapshot restore.
    pub fn alarm_counts(&self) -> (u64, u64) {
        (self.z_alarms, self.cusum_alarms)
    }

    /// The scoring configuration.
    pub fn config(&self) -> &ScoreConfig {
        &self.config
    }

    /// Read-only view of the underlying residual statistics.
    pub fn nsigma(&self) -> &NSigma {
        &self.nsigma
    }

    /// Current CUSUM accumulators `(S⁺, S⁻)`.
    pub fn cusum_state(&self) -> (f64, f64) {
        (self.s_pos, self.s_neg)
    }

    /// Seeds the residual statistics from an initialization window
    /// (mirrors [`NSigma::seed`]; the CUSUM accumulators and peak-hold
    /// stay at zero — the initialization window is presumed clean).
    pub fn seed(&mut self, residuals: &[f64]) {
        self.nsigma.seed(residuals);
    }

    /// Scores one residual and absorbs it into the running statistics.
    ///
    /// [`Fusion::Off`] takes the exact legacy path: `NSigma::update`,
    /// untouched CUSUM/hold state — bit-identical scores to the pre-v5
    /// pipeline. The fused modes guard non-finite residuals (state
    /// unchanged, non-anomalous verdict carrying the current held score)
    /// instead of letting a NaN poison the running sums forever.
    pub fn update(&mut self, r: f64) -> ScoreVerdict {
        if self.config.fusion == Fusion::Off {
            let v = self.nsigma.update(r);
            self.z_alarms += v.is_anomaly as u64;
            return ScoreVerdict {
                score: v.score,
                z: v.score,
                cusum: 0.0,
                is_anomaly: v.is_anomaly,
            };
        }
        if !r.is_finite() {
            return ScoreVerdict {
                score: self.hold,
                z: 0.0,
                cusum: self.s_pos.max(self.s_neg),
                is_anomaly: false,
            };
        }
        let zs = self.nsigma.zscore(r);
        let z = zs.abs();
        let ScoreConfig { cusum_k: k, cusum_h: h, hold_decay, fusion } = self.config;
        // the 2h clamp bounds both the reported statistic and the state a
        // single extreme point can park in the accumulators
        self.s_pos = (self.s_pos + zs - k).clamp(0.0, 2.0 * h);
        self.s_neg = (self.s_neg - zs - k).clamp(0.0, 2.0 * h);
        let cusum = self.s_pos.max(self.s_neg);
        let cusum_alarm = cusum > h;
        if cusum_alarm {
            // reset-on-alarm: the next collective anomaly is detected
            // from a clean accumulator, not a saturated one
            self.s_pos = 0.0;
            self.s_neg = 0.0;
        }
        self.nsigma.absorb(r);
        let n = self.nsigma.n;
        let z_alarm = z > n;
        self.z_alarms += z_alarm as u64;
        self.cusum_alarms += cusum_alarm as u64;
        // rescale the CUSUM statistic into z units (its bar h maps onto
        // the z bar n) so one fused stream ranks both detectors fairly
        let c_scaled = cusum * (n / h);
        let (instant, is_anomaly) = match fusion {
            Fusion::Off => unreachable!("handled above"),
            Fusion::Cusum => (c_scaled, cusum_alarm),
            Fusion::Max => (z.max(c_scaled), z_alarm || cusum_alarm),
        };
        // the hold's *input* is bounded (the CUSUM term already is, via
        // the 2h clamp): a zero-variance history standardizes one
        // deviating point to the ~1.3e154 sentinel, and latching that
        // into a γ-decaying memory would keep the stream pinned above
        // the alarm bar for tens of thousands of points. The emitted
        // score still reports the unbounded statistic at the point
        // itself (same as the legacy z path); only the memory is capped.
        self.hold = (self.hold * hold_decay).max(instant.min(HOLD_INPUT_CAP * n));
        ScoreVerdict { score: self.hold.max(instant), z, cusum, is_anomaly }
    }

    /// Absorbs one value into the running statistics **without scoring
    /// it** (and without touching the CUSUM accumulators or the hold).
    /// Warm-up absorption for wrappers like [`TrendCusum`], whose first
    /// observations calibrate the statistics but must not alarm.
    /// Non-finite input is ignored.
    pub fn absorb(&mut self, r: f64) {
        if r.is_finite() {
            self.nsigma.absorb(r);
        }
    }

    /// Extracts a plain-data snapshot for serialization (see
    /// `fleet::codec`).
    pub fn to_state(&self) -> ResidualScorerState {
        ResidualScorerState {
            config: self.config,
            nsigma: self.nsigma.to_state(),
            s_pos: self.s_pos,
            s_neg: self.s_neg,
            hold: self.hold,
        }
    }

    /// Rebuilds a scorer from [`ResidualScorer::to_state`] output; the
    /// stream continues bit-identically.
    pub fn from_state(state: ResidualScorerState) -> Self {
        ResidualScorer {
            config: state.config,
            nsigma: NSigma::from_state(state.nsigma),
            s_pos: state.s_pos,
            s_neg: state.s_neg,
            hold: state.hold,
            z_alarms: 0,
            cusum_alarms: 0,
        }
    }
}

/// Plain-data snapshot of a [`ResidualScorer`].
#[derive(Debug, Clone, PartialEq)]
pub struct ResidualScorerState {
    /// Scoring configuration.
    pub config: ScoreConfig,
    /// Running residual statistics.
    pub nsigma: NSigmaState,
    /// Upper CUSUM accumulator.
    pub s_pos: f64,
    /// Lower CUSUM accumulator.
    pub s_neg: f64,
    /// Peak-hold of the fused statistic.
    pub hold: f64,
}

/// How many first innovations a [`TrendCusum`] absorbs silently before
/// emitting verdicts: enough observations that the running σ is
/// calibrated (an unseeded NSigma standardizes early points against a
/// near-zero variance and would emit sentinel alarms on perfectly normal
/// trend motion).
const TREND_WARMUP: u32 = 16;

/// Streaming CUSUM over the **trend component's own innovations**
/// `d_t = τ_t − τ_{t−1}`.
///
/// The residual scorer is blind to whatever the adaptive trend absorbs:
/// a level shift moves the trend itself within a few points and leaves
/// only two narrow residual edge spikes. This detector watches the other
/// channel — the trend's first differences. In steady state those
/// innovations are small and zero-mean; a level shift (or a trend-slope
/// break) produces a *run* of same-signed innovations that a two-sided
/// CUSUM accumulates past its bar even when no single step is extreme.
///
/// Internally this wraps a [`ResidualScorer`] applied to the innovation
/// stream, inheriting its CUSUM + peak-hold mechanics, its non-finite
/// guard, and its `O(1)`/zero-allocation steady state. The first
/// `TREND_WARMUP` (16) innovations are absorbed without scoring (see
/// [`ResidualScorer::absorb`]) unless the statistics were seeded from an
/// initialization window via [`TrendCusum::seed`].
#[derive(Debug, Clone)]
pub struct TrendCusum {
    scorer: ResidualScorer,
    /// Previous trend value (innovation = current − previous).
    prev: f64,
    /// Whether `prev` holds a real observation yet.
    has_prev: bool,
    /// Silent-absorption budget remaining (see [`TREND_WARMUP`]).
    warmup_left: u32,
}

impl TrendCusum {
    /// Creates a trend-innovation CUSUM with z bar `n` and CUSUM config
    /// (the same [`ScoreConfig`] vocabulary as the residual scorer).
    pub fn new(n: f64, config: ScoreConfig) -> Self {
        TrendCusum {
            scorer: ResidualScorer::new(n, config),
            prev: 0.0,
            has_prev: false,
            warmup_left: TREND_WARMUP,
        }
    }

    /// Read-only view of the wrapped innovation scorer (statistics,
    /// config, alarm counters).
    pub fn scorer(&self) -> &ResidualScorer {
        &self.scorer
    }

    /// Lifetime `(z alarms, CUSUM alarms)` over the innovation stream.
    /// Diagnostics only — resets on snapshot restore, like
    /// [`ResidualScorer::alarm_counts`].
    pub fn alarm_counts(&self) -> (u64, u64) {
        self.scorer.alarm_counts()
    }

    /// Seeds the innovation statistics from an initialization window of
    /// *trend values* (consecutive; their first differences are
    /// absorbed). Skips the warm-up: the next [`TrendCusum::update`]
    /// scores for real. Allocation-free.
    pub fn seed(&mut self, trends: &[f64]) {
        for w in trends.windows(2) {
            self.scorer.absorb(w[1] - w[0]);
        }
        if let Some(&last) = trends.last() {
            if last.is_finite() {
                self.prev = last;
                self.has_prev = true;
            }
        }
        self.warmup_left = 0;
    }

    /// Scores one trend observation. The first point (nothing to
    /// difference against) and warm-up innovations return a zero,
    /// non-anomalous verdict; non-finite input leaves all state
    /// untouched (including `prev` — the next finite point differences
    /// against the last *trusted* trend value).
    pub fn update(&mut self, trend: f64) -> ScoreVerdict {
        if !trend.is_finite() {
            // delegate to the inner guard: state unchanged, held score
            return self.scorer.update(f64::NAN);
        }
        if !self.has_prev {
            self.prev = trend;
            self.has_prev = true;
            return ScoreVerdict { score: 0.0, z: 0.0, cusum: 0.0, is_anomaly: false };
        }
        let d = trend - self.prev;
        self.prev = trend;
        if self.warmup_left > 0 {
            self.warmup_left -= 1;
            self.scorer.absorb(d);
            return ScoreVerdict { score: 0.0, z: 0.0, cusum: 0.0, is_anomaly: false };
        }
        self.scorer.update(d)
    }

    /// Extracts a plain-data snapshot for serialization (see
    /// `fleet::codec`).
    pub fn to_state(&self) -> TrendCusumState {
        TrendCusumState {
            scorer: self.scorer.to_state(),
            prev: self.prev,
            has_prev: self.has_prev,
            warmup_left: self.warmup_left,
        }
    }

    /// Rebuilds from [`TrendCusum::to_state`] output; the stream
    /// continues bit-identically (alarm counters reset, as always).
    pub fn from_state(state: TrendCusumState) -> Self {
        TrendCusum {
            scorer: ResidualScorer::from_state(state.scorer),
            prev: state.prev,
            has_prev: state.has_prev,
            warmup_left: state.warmup_left,
        }
    }
}

/// Plain-data snapshot of a [`TrendCusum`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrendCusumState {
    /// Wrapped innovation scorer state.
    pub scorer: ResidualScorerState,
    /// Previous trend value.
    pub prev: f64,
    /// Whether `prev` holds a real observation.
    pub has_prev: bool,
    /// Remaining silent-absorption budget.
    pub warmup_left: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fused(k: f64, h: f64) -> ResidualScorer {
        ResidualScorer::new(
            5.0,
            ScoreConfig { cusum_k: k, cusum_h: h, hold_decay: 0.0, fusion: Fusion::Max },
        )
    }

    /// A sustained small drift (far below the 5σ point bar) accumulates
    /// past the CUSUM bar and raises an alarm the z-score never would.
    #[test]
    fn drift_accumulates_to_an_alarm() {
        let mut s = fused(0.25, 6.0);
        // calibrate on zero-mean noise
        let noise: Vec<f64> = (0..200).map(|i| ((i * 37 % 100) as f64 / 50.0) - 1.0).collect();
        s.seed(&noise);
        let sigma = s.nsigma().std();
        let mut alarmed = false;
        let mut max_z = 0.0f64;
        for _ in 0..40 {
            let v = s.update(1.5 * sigma); // persistent +1.5σ drift
            max_z = max_z.max(v.z);
            if v.is_anomaly {
                alarmed = true;
                assert!(v.cusum > 6.0, "alarm must come from the CUSUM bar, got {v:?}");
                break;
            }
        }
        assert!(alarmed, "a persistent 1.5σ drift must trip the CUSUM");
        assert!(max_z < 5.0, "the instantaneous z-score alone must NOT alarm (z {max_z})");
    }

    /// The accumulators reset to zero after an alarm and re-arm for the
    /// next drift.
    #[test]
    fn reset_on_alarm() {
        let mut s = fused(0.25, 6.0);
        s.seed(&[0.0, 1.0, -1.0, 0.5, -0.5, 0.25, -0.25, 0.75, -0.75, 0.0]);
        let sigma = s.nsigma().std();
        let mut alarm_verdict = None;
        for _ in 0..200 {
            let v = s.update(2.0 * sigma);
            if v.cusum > 6.0 {
                alarm_verdict = Some(v);
                break;
            }
        }
        let v = alarm_verdict.expect("drift must trip the bar");
        assert!(v.is_anomaly);
        // the verdict carries the pre-reset statistic; the state is clean
        assert!(v.cusum > 6.0);
        assert_eq!(s.cusum_state(), (0.0, 0.0), "accumulators must reset after the alarm");
        // and the re-armed detector trips again on continued drift
        let mut re_alarmed = false;
        for _ in 0..200 {
            if s.update(2.0 * s.nsigma().std()).is_anomaly {
                re_alarmed = true;
                break;
            }
        }
        assert!(re_alarmed, "a reset detector must re-alarm on continued drift");
    }

    /// Negative drifts trip the lower accumulator symmetrically.
    #[test]
    fn two_sided() {
        let mut s = fused(0.25, 4.0);
        s.seed(&[0.0, 1.0, -1.0, 0.5, -0.5, 0.25, -0.25, 0.75, -0.75, 0.0]);
        let sigma = s.nsigma().std();
        let mut alarmed = false;
        for _ in 0..100 {
            let v = s.update(-1.5 * sigma);
            if v.is_anomaly {
                alarmed = true;
                break;
            }
        }
        assert!(alarmed, "a negative drift must trip the lower CUSUM");
    }

    /// The accumulators never leave `[0, 2h]`, even for absurd inputs.
    #[test]
    fn accumulators_are_clamped() {
        let mut s = fused(0.5, 6.0);
        s.seed(&[0.0, 1.0, -1.0, 0.5, -0.5]);
        for _ in 0..10 {
            s.update(1e12);
            let (sp, sn) = s.cusum_state();
            assert!((0.0..=12.0).contains(&sp), "S+ out of range: {sp}");
            assert!((0.0..=12.0).contains(&sn), "S- out of range: {sn}");
        }
    }

    /// The peak-hold bridges the gap between two isolated spikes: scores
    /// in between decay geometrically instead of dropping to noise level.
    #[test]
    fn peak_hold_decays_geometrically() {
        let cfg = ScoreConfig { hold_decay: 0.9, ..Default::default() };
        let mut s = ResidualScorer::new(5.0, cfg);
        let noise: Vec<f64> = (0..200).map(|i| ((i * 37 % 100) as f64 / 50.0) - 1.0).collect();
        s.seed(&noise);
        let sigma = s.nsigma().std();
        let spike = s.update(20.0 * sigma);
        assert!(spike.score > 5.0);
        let next = s.update(0.0);
        // z ≈ 0 after the spike: the emitted score is the held peak
        assert!(next.score >= 0.9 * spike.score * 0.999, "hold must carry the peak");
        assert!(next.score < spike.score, "hold must decay");
        assert!(!next.is_anomaly, "the verdict must not be held");
    }

    /// A zero-variance history standardizes one deviating point to the
    /// ~1.3e154 sentinel. The point itself must still report it (legacy
    /// z semantics), but the peak-hold must NOT latch it — the held
    /// score is capped at `8n` and decays back below the alarm bar in
    /// a few hundred points, not tens of thousands.
    #[test]
    fn hold_does_not_latch_the_zero_variance_sentinel() {
        let cfg = ScoreConfig { hold_decay: 0.99, ..Default::default() };
        let mut s = ResidualScorer::new(5.0, cfg);
        s.seed(&[2.0; 50]); // zero-variance history
        let spike = s.update(3.0);
        assert!(spike.z > 1e100, "sentinel z expected, got {}", spike.z);
        assert!(spike.score > 1e100, "the deviating point itself reports the sentinel");
        // from the next point on, the held score is bounded by 8n = 40
        let next = s.update(2.0);
        assert!(next.score <= 40.0, "held score must be capped, got {}", next.score);
        let mut below_bar_at = None;
        for i in 0..1_000 {
            if s.update(2.0).score < 5.0 {
                below_bar_at = Some(i);
                break;
            }
        }
        let at = below_bar_at.expect("held score must decay below the alarm bar");
        assert!(at < 400, "decay should take ~200 points at γ=0.99, took {at}");
    }

    /// State round-trip: the restored scorer continues bit-identically.
    #[test]
    fn state_roundtrip_continues_bit_identically() {
        for fusion in [Fusion::Off, Fusion::Cusum, Fusion::Max] {
            let cfg = ScoreConfig { cusum_k: 0.3, cusum_h: 5.0, hold_decay: 0.97, fusion };
            let mut a = ResidualScorer::new(4.0, cfg);
            a.seed(&[0.1, -0.2, 0.3, -0.1, 0.05]);
            for i in 0..50 {
                a.update(0.4 * ((i % 7) as f64 - 3.0));
            }
            let mut b = ResidualScorer::from_state(a.to_state());
            assert_eq!(a.to_state(), b.to_state());
            for i in 0..50 {
                let x = if i == 20 { 9.0 } else { 0.3 * ((i % 5) as f64 - 2.0) };
                let (va, vb) = (a.update(x), b.update(x));
                assert_eq!(va, vb, "fusion {fusion:?} diverged at {i}");
                assert_eq!(va.score.to_bits(), vb.score.to_bits());
            }
        }
    }

    /// NaN input under a fused mode: non-anomalous verdict, state
    /// untouched (the running sums must not be poisoned).
    #[test]
    fn nan_input_is_guarded() {
        let mut s = fused(0.25, 6.0);
        s.seed(&[1.0, 2.0, 3.0, 2.0, 1.0]);
        for _ in 0..5 {
            s.update(2.5);
        }
        let before = s.to_state();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let v = s.update(bad);
            assert!(v.score.is_finite());
            assert!(!v.is_anomaly);
        }
        assert_eq!(s.to_state(), before, "non-finite input must not change state");
        // and the stream continues normally afterwards
        let v = s.update(2.5);
        assert!(v.score.is_finite());
    }

    /// `Fusion::Off` is bit-identical to plain NSigma and never touches
    /// the CUSUM accumulators or the hold — the v4-snapshot
    /// compatibility contract.
    #[test]
    fn fusion_off_matches_plain_nsigma_bitwise() {
        let mut s = ResidualScorer::new(5.0, ScoreConfig::off());
        let mut plain = NSigma::new(5.0);
        let xs: Vec<f64> = (0..300).map(|i| ((i * 31 % 17) as f64) * 0.37 - 3.0).collect();
        s.seed(&xs[..50]);
        plain.seed(&xs[..50]);
        for &x in &xs[50..] {
            let v = s.update(x);
            let p = plain.update(x);
            assert_eq!(v.score.to_bits(), p.score.to_bits());
            assert_eq!(v.is_anomaly, p.is_anomaly);
        }
        assert_eq!(s.cusum_state(), (0.0, 0.0));
        assert_eq!(s.to_state().hold, 0.0);
    }

    /// The spike path survives fusion: a single extreme point still ranks
    /// top via the z term of `Fusion::Max`.
    #[test]
    fn max_fusion_preserves_spike_sensitivity() {
        let mut s = fused(0.25, 6.0);
        let noise: Vec<f64> = (0..200).map(|i| ((i * 53 % 41) as f64 / 20.0) - 1.0).collect();
        s.seed(&noise);
        let sigma = s.nsigma().std();
        let v = s.update(8.0 * sigma);
        assert!(v.is_anomaly);
        assert!(v.score >= v.z, "fused score can only exceed the z-score");
        assert!(v.z > 5.0, "the alarm must be attributable to the spike z");
    }

    /// The lifetime alarm counters attribute alarms to the detector that
    /// raised them — and reset on state restore (diagnostics contract).
    #[test]
    fn alarm_counts_attribute_and_reset_on_restore() {
        let mut s = fused(0.25, 6.0);
        let noise: Vec<f64> = (0..200).map(|i| ((i * 37 % 100) as f64 / 50.0) - 1.0).collect();
        s.seed(&noise);
        let sigma = s.nsigma().std();
        assert_eq!(s.alarm_counts(), (0, 0));
        s.update(20.0 * sigma); // spike: z alarm (and the CUSUM may charge)
        let (z, _) = s.alarm_counts();
        assert_eq!(z, 1, "the spike must count as a z alarm");
        for _ in 0..60 {
            s.update(1.5 * sigma); // drift: CUSUM alarms, z never crosses
        }
        let (_, c) = s.alarm_counts();
        assert!(c >= 1, "the drift must count CUSUM alarms");
        let restored = ResidualScorer::from_state(s.to_state());
        assert_eq!(restored.alarm_counts(), (0, 0), "counters reset on restore");

        // Fusion::Off moves only the z counter
        let mut off = ResidualScorer::new(5.0, ScoreConfig::off());
        off.seed(&noise);
        let sigma = off.nsigma().std();
        off.update(20.0 * sigma);
        assert_eq!(off.alarm_counts(), (1, 0));
    }

    /// A level shift the residual scorer never sees: the trend absorbs
    /// the step, and the trend-innovation CUSUM catches the run of
    /// same-signed innovations.
    #[test]
    fn trend_cusum_catches_a_level_shift_in_the_trend() {
        let mut t = TrendCusum::new(5.0, ScoreConfig::default());
        // steady trend drifting by small noisy innovations
        let drift = |i: usize| 10.0 + 0.01 * (((i * 37) % 100) as f64 / 50.0 - 1.0);
        let trends: Vec<f64> = (0..120).map(drift).collect();
        t.seed(&trends[..60]);
        let mut alarmed = false;
        for (i, &v) in trends[60..].iter().enumerate() {
            // after 20 normal points, the trend walks up a level shift
            // of +0.05/point for the rest of the stream (an adaptive
            // trend chasing a +step in the raw series)
            let shifted = if i >= 20 { v + 0.05 * (i - 19) as f64 } else { v };
            if t.update(shifted).is_anomaly {
                alarmed = true;
                assert!(i >= 20, "must not alarm before the shift (alarmed at {i})");
                break;
            }
        }
        assert!(alarmed, "a sustained trend walk must trip the innovation CUSUM");
    }

    /// Unseeded warm-up: the first innovations calibrate silently — zero
    /// scores, no alarms, no sentinel z values.
    #[test]
    fn trend_cusum_warmup_is_silent() {
        let mut t = TrendCusum::new(5.0, ScoreConfig::default());
        for i in 0..=16 {
            let v = t.update(5.0 + 0.3 * ((i % 5) as f64 - 2.0));
            assert_eq!(v.score, 0.0, "warm-up point {i} must score zero");
            assert!(!v.is_anomaly);
        }
        assert_eq!(t.alarm_counts(), (0, 0));
        // post-warm-up, a normal innovation scores finitely and calmly
        let v = t.update(5.0);
        assert!(v.score.is_finite());
    }

    /// Non-finite trend input: state untouched, and the next finite
    /// point differences against the last trusted value.
    #[test]
    fn trend_cusum_guards_non_finite_input() {
        let mut t = TrendCusum::new(5.0, ScoreConfig::default());
        let trends: Vec<f64> = (0..40).map(|i| 2.0 + 0.1 * ((i % 7) as f64 - 3.0)).collect();
        t.seed(&trends);
        for _ in 0..10 {
            t.update(2.0);
        }
        let before = t.to_state();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let v = t.update(bad);
            assert!(!v.is_anomaly);
            assert!(v.score.is_finite());
        }
        assert_eq!(t.to_state(), before, "non-finite input must not change state");
        let v = t.update(2.05);
        assert!(v.score.is_finite());
    }

    /// State round-trip: the restored trend CUSUM continues
    /// bit-identically, mid-warm-up and post-warm-up alike.
    #[test]
    fn trend_cusum_state_roundtrip_continues_bit_identically() {
        for snap_at in [5usize, 40] {
            let mut a = TrendCusum::new(4.0, ScoreConfig::default());
            let stream = |i: usize| {
                let base = 1.0 + 0.2 * ((i * 13 % 11) as f64 - 5.0) / 5.0;
                if (30..45).contains(&i) {
                    base + 0.8 * (i - 29) as f64
                } else {
                    base
                }
            };
            for i in 0..snap_at {
                a.update(stream(i));
            }
            let mut b = TrendCusum::from_state(a.to_state());
            assert_eq!(a.to_state(), b.to_state());
            for i in snap_at..80 {
                let (va, vb) = (a.update(stream(i)), b.update(stream(i)));
                assert_eq!(va, vb, "diverged at {i} (snap at {snap_at})");
                assert_eq!(va.score.to_bits(), vb.score.to_bits());
            }
            let restored = TrendCusum::from_state(a.to_state());
            assert_eq!(restored.alarm_counts(), (0, 0), "counters reset on restore");
        }
    }

    #[test]
    fn config_validation() {
        assert!(ScoreConfig::default().validate().is_ok());
        assert!(ScoreConfig::off().validate().is_ok());
        let bad_h = ScoreConfig { cusum_h: 0.0, ..Default::default() };
        assert!(bad_h.validate().is_err());
        let nan_h = ScoreConfig { cusum_h: f64::NAN, ..Default::default() };
        assert!(nan_h.validate().is_err());
        let neg_k = ScoreConfig { cusum_k: -0.1, ..Default::default() };
        assert!(neg_k.validate().is_err());
        let zero_k = ScoreConfig { cusum_k: 0.0, ..Default::default() };
        assert!(zero_k.validate().is_ok());
        let hold_one = ScoreConfig { hold_decay: 1.0, ..Default::default() };
        assert!(hold_one.validate().is_err());
        let hold_nan = ScoreConfig { hold_decay: f64::NAN, ..Default::default() };
        assert!(hold_nan.validate().is_err());
    }
}
