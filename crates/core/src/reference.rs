//! Exact Algorithm-2 reference: Modified JointSTL with the growing system
//! solved from scratch at every step.
//!
//! [`GrowingSolver`] keeps the full `y / u / pw / qw` histories, assembles
//! the complete `2M × 2M` banded system on each arrival and solves it
//! exactly (`O(M)` per update thanks to the constant bandwidth). Plugged
//! into the shared [`crate::oneshot::OnlineJointStl`] shell it yields
//! [`ModifiedJointStlRef`] — byte-for-byte the same IRLS/shift/NSigma
//! behaviour as OneShotSTL, differing *only* in how the linear systems are
//! solved.
//!
//! Its purpose is the paper's central claim: the `O(1)` OnlineDoolittle
//! path must produce **identical** `(τ_t, s_t)` (up to floating-point
//! noise). The property test below drives both on random and structured
//! streams and asserts exactly that.

use crate::oneshot::{OnlineJointStl, TailSolver};
use crate::system::{assemble_full, SystemData, TailData};

/// Grows the full online system and solves it exactly each step.
#[derive(Debug, Clone, Default)]
pub struct GrowingSolver {
    y: Vec<f64>,
    u: Vec<f64>,
    pw: Vec<f64>,
    qw: Vec<f64>,
}

impl TailSolver for GrowingSolver {
    const NAME: &'static str = "ModifiedJointSTL(ref)";

    // solves from scratch each step: nothing to carry between calls
    type Scratch = ();

    fn step(&mut self, tail: &TailData) -> (f64, f64) {
        let m = tail.m;
        assert_eq!(m, self.y.len() + 1, "steps must be consecutive");
        self.y.push(0.0);
        self.u.push(0.0);
        self.pw.push(0.0);
        self.qw.push(0.0);
        // the trailing `min(m,3)` entries are refreshed each step (the
        // same tail-anchor semantics the O(1) path uses)
        let k = m.min(3);
        for j in m - k..m {
            let s = 3 - (m - j);
            self.y[j] = tail.y3[s];
            self.u[j] = tail.u3[s];
            self.pw[j] = tail.p3[s];
            self.qw[j] = tail.q3[s];
        }
        let data = SystemData {
            y: &self.y,
            u: &self.u,
            pw: &self.pw,
            qw: &self.qw,
            lambdas: tail.lambdas,
        };
        let (a, b) = assemble_full(&data);
        let x = a.solve(&b).expect("online system is SPD");
        (x[2 * m - 2], x[2 * m - 1])
    }
}

/// Algorithm 2 solved exactly at every step (reference implementation).
pub type ModifiedJointStlRef = OnlineJointStl<GrowingSolver>;

impl ModifiedJointStlRef {
    /// Creates a reference instance with the given configuration.
    pub fn new_reference(config: crate::oneshot::OneShotStlConfig) -> Self {
        OnlineJointStl::with_solver(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oneshot::{OneShotStl, OneShotStlConfig, ShiftPolicy};
    use crate::system::Lambdas;
    use decomp::OnlineDecomposer;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn stream(n: usize, t: usize, noise: f64, jump: Option<usize>, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let mut v = 1.5
                    + (2.0 * std::f64::consts::PI * i as f64 / t as f64).sin()
                    + noise * rng.gen_range(-1.0..1.0);
                if let Some(at) = jump {
                    if i >= at {
                        v += 3.0;
                    }
                }
                v
            })
            .collect()
    }

    fn assert_equivalent(y: &[f64], t: usize, split: usize, cfg: OneShotStlConfig) {
        let mut fast = OneShotStl::new(cfg.clone());
        let mut exact = ModifiedJointStlRef::new_reference(cfg);
        let df = fast.init(&y[..split], t).unwrap();
        let de = exact.init(&y[..split], t).unwrap();
        assert_eq!(df.trend, de.trend, "identical init path");
        for (i, &v) in y[split..].iter().enumerate() {
            let pf = fast.update(v);
            let pe = exact.update(v);
            assert!(
                (pf.trend - pe.trend).abs() < 1e-7 && (pf.seasonal - pe.seasonal).abs() < 1e-7,
                "step {i}: O(1) ({}, {}) vs exact ({}, {})",
                pf.trend,
                pf.seasonal,
                pe.trend,
                pe.seasonal
            );
        }
    }

    #[test]
    fn equivalent_on_clean_stream() {
        let t = 16;
        let y = stream(250, t, 0.05, None, 1);
        assert_equivalent(&y, t, 3 * t, OneShotStlConfig::default());
    }

    #[test]
    fn equivalent_through_trend_jump_and_shift_search() {
        // a jump triggers NSigma and thus the Δt search: both paths must
        // take identical decisions
        let t = 16;
        let y = stream(250, t, 0.03, Some(120), 2);
        let cfg = OneShotStlConfig {
            shift_window: 5,
            lambdas: Lambdas { lambda1: 1.0, lambda2: 10.0, anchor: 1.0 },
            ..Default::default()
        };
        assert_equivalent(&y, t, 3 * t, cfg);
    }

    #[test]
    fn equivalent_with_transient_policy_and_one_iteration() {
        let t = 12;
        let y = stream(180, t, 0.1, Some(100), 3);
        let cfg = OneShotStlConfig {
            iters: 1,
            shift_policy: ShiftPolicy::Transient,
            shift_window: 3,
            ..Default::default()
        };
        assert_equivalent(&y, t, 3 * t, cfg);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        #[test]
        fn prop_equivalence_on_random_streams(
            seed in 0u64..1000,
            lambda in prop::sample::select(vec![1.0, 10.0, 100.0, 1000.0]),
            iters in 1usize..5,
            noise in 0.0f64..0.5,
        ) {
            let t = 10;
            let y = stream(140, t, noise, None, seed);
            let cfg = OneShotStlConfig {
                lambdas: Lambdas { lambda1: lambda, lambda2: lambda, anchor: 1.0 },
                iters,
                shift_window: 0,
                ..Default::default()
            };
            let mut fast = OneShotStl::new(cfg.clone());
            let mut exact = ModifiedJointStlRef::new_reference(cfg);
            fast.init(&y[..3 * t], t).unwrap();
            exact.init(&y[..3 * t], t).unwrap();
            for &v in &y[3 * t..] {
                let pf = fast.update(v);
                let pe = exact.update(v);
                prop_assert!((pf.trend - pe.trend).abs() < 1e-6);
                prop_assert!((pf.seasonal - pe.seasonal).abs() < 1e-6);
            }
        }
    }
}
