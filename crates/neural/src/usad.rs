//! USAD: UnSupervised Anomaly Detection (Audibert et al., KDD 2020).
//!
//! Two autoencoders share an encoder `E`; decoders `D1`, `D2` are trained
//! adversarially:
//!
//! - `AE1`   = `D1(E(w))`, `AE2` = `D2(E(w))`, `AE2∘AE1` = `D2(E(AE1(w)))`
//! - epoch-`n` losses: `L1 = (1/n)·‖w − AE1(w)‖² + (1 − 1/n)·‖w − AE2(AE1(w))‖²`
//!   and `L2 = (1/n)·‖w − AE2(w)‖² − (1 − 1/n)·‖w − AE2(AE1(w))‖²`.
//!
//! `D2` learns to *distinguish* real windows from `AE1` reconstructions,
//! which amplifies reconstruction errors on anomalous inputs. The anomaly
//! score is `α‖w − AE1(w)‖² + β‖w − AE2(AE1(w))‖²`.
//!
//! This implementation keeps the scheme exactly, with MLP encoder/decoders
//! (the original also uses dense nets over flattened windows).

use crate::nn::{Activation, Mlp};
use crate::windows::Scaler;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// The USAD detector.
#[derive(Debug, Clone)]
pub struct Usad {
    /// Window length.
    pub window: usize,
    /// Latent dimension.
    pub latent: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Score mixing weights (α, β), α + β = 1.
    pub alpha: f64,
    /// RNG seed.
    pub seed: u64,
    state: Option<UsadModel>,
}

#[derive(Debug, Clone)]
struct UsadModel {
    encoder: Mlp,
    d1: Mlp,
    d2: Mlp,
    scaler: Scaler,
}

impl Usad {
    /// Creates an untrained USAD detector.
    pub fn new(window: usize, latent: usize, epochs: usize, seed: u64) -> Self {
        Usad { window, latent, epochs, lr: 1e-3, alpha: 0.9, seed, state: None }
    }

    fn mse(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>() / a.len() as f64
    }

    /// Trains encoder and both decoders with the USAD two-phase objective.
    pub fn fit(&mut self, train: &[f64]) {
        let w = self.window;
        let scaler = Scaler::fit(train);
        let z = scaler.transform(train);
        if z.len() < w + 1 {
            return;
        }
        let stride = (w / 4).max(1);
        let mut windows: Vec<Vec<f64>> =
            (0..=z.len() - w).step_by(stride).map(|i| z[i..i + w].to_vec()).collect();
        let h = self.latent;
        let mid = (w / 2).max(h);
        let mut enc = Mlp::new(&[w, mid, h], &[Activation::Relu, Activation::Tanh], self.seed);
        let mut d1 =
            Mlp::new(&[h, mid, w], &[Activation::Relu, Activation::Identity], self.seed ^ 1);
        let mut d2 =
            Mlp::new(&[h, mid, w], &[Activation::Relu, Activation::Identity], self.seed ^ 2);
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x05AD);
        let n_w = w as f64;
        let total_epochs = self.epochs.max(1);
        let warmup = (total_epochs / 4).max(1);
        for epoch in 1..=total_epochs {
            // warm-up: pure reconstruction until the AEs converge, then the
            // adversarial weight ramps as in the paper (1/n schedule) but
            // capped — the phase-B term is a *maximized* (unbounded)
            // objective, so letting w2 → 1 destabilizes D2 at this scale
            let (w1, w2) = if epoch <= warmup {
                (1.0, 0.0)
            } else {
                let k = (epoch - warmup) as f64;
                let w1 = (1.0 / k).max(0.4);
                (w1, 1.0 - w1)
            };
            windows.shuffle(&mut rng);
            for x in &windows {
                // ---------- phase A: update E and D1 ----------
                // AE1 path
                let ce = enc.forward_train(x);
                let code = ce.output().to_vec();
                let c1 = d1.forward_train(&code);
                let ae1 = c1.output().to_vec();
                // AE2(AE1) path (through a *frozen copy* of E and D2 for
                // this update, per the two-optimizer scheme)
                let ce2 = enc.forward_train(&ae1);
                let code2 = ce2.output().to_vec();
                let c22 = d2.forward_train(&code2);
                let ae21 = c22.output().to_vec();
                // L1 = w1·mse(x, ae1) + w2·mse(x, ae21)
                enc.zero_grad();
                d1.zero_grad();
                // grad through the ae21 branch back to ae1 (E, D2 frozen:
                // we re-use their weights but discard their grads)
                let dout21: Vec<f64> =
                    ae21.iter().zip(x).map(|(o, t)| w2 * 2.0 * (o - t) / n_w).collect();
                let mut d2_tmp = d2.clone();
                let dcode2 = d2_tmp.backward(&c22, &dout21);
                let mut enc_tmp = enc.clone();
                let mut dae1_from21 = enc_tmp.backward(&ce2, &dcode2);
                // keep the adversarial signal subordinate to reconstruction:
                // D2 is a moving adversary, and at this data scale letting
                // its gradient dominate collapses AE1 (the original trains
                // with large batches where the game stays balanced)
                let recon: Vec<f64> =
                    ae1.iter().zip(x).map(|(o, t)| w1 * 2.0 * (o - t) / n_w).collect();
                let rn = recon.iter().map(|g| g * g).sum::<f64>().sqrt();
                let an = dae1_from21.iter().map(|g| g * g).sum::<f64>().sqrt();
                if an > 0.5 * rn && an > 0.0 {
                    let s = 0.5 * rn / an;
                    dae1_from21.iter_mut().for_each(|g| *g *= s);
                }
                let dout1: Vec<f64> =
                    recon.iter().zip(&dae1_from21).map(|(r, g21)| r + g21).collect();
                let dcode = d1.backward(&c1, &dout1);
                enc.backward(&ce, &dcode);
                enc.clip_grad_norm(5.0);
                d1.clip_grad_norm(5.0);
                enc.step(self.lr);
                d1.step(self.lr);
                // ---------- phase B: update D2 (adversarial) ----------
                // recompute paths with updated E/D1
                let code_b = enc.forward(x);
                let ae1_b = d1.forward(&code_b);
                let code2_b = enc.forward(&ae1_b);
                let c2x = d2.forward_train(&code_b);
                let ae2x = c2x.output().to_vec();
                let c2r = d2.forward_train(&code2_b);
                let ae2r = c2r.output().to_vec();
                // L2 = w1·mse(x, ae2x) − w2·mse(x, ae2r)
                d2.zero_grad();
                let dout2x: Vec<f64> =
                    ae2x.iter().zip(x).map(|(o, t)| w1 * 2.0 * (o - t) / n_w).collect();
                d2.backward(&c2x, &dout2x);
                let dout2r: Vec<f64> =
                    ae2r.iter().zip(x).map(|(o, t)| -w2 * 2.0 * (o - t) / n_w).collect();
                d2.backward(&c2r, &dout2r);
                d2.clip_grad_norm(5.0);
                d2.step(self.lr);
            }
        }
        self.state = Some(UsadModel { encoder: enc, d1, d2, scaler });
    }

    /// Anomaly score of one window (original scale):
    /// `α‖w−AE1‖² + β‖w−AE2(AE1)‖²`.
    pub fn score_window(&self, window: &[f64]) -> f64 {
        let st = self.state.as_ref().expect("fit() before scoring");
        assert_eq!(window.len(), self.window);
        let x = st.scaler.transform(window);
        let code = st.encoder.forward(&x);
        let ae1 = st.d1.forward(&code);
        let code2 = st.encoder.forward(&ae1);
        let ae21 = st.d2.forward(&code2);
        self.alpha * Self::mse(&x, &ae1) + (1.0 - self.alpha) * Self::mse(&x, &ae21)
    }

    /// Scores a test stream point-wise; each point takes the score of the
    /// causal window ending at it. `context` precedes `test`.
    pub fn score_stream(&self, context: &[f64], test: &[f64]) -> Vec<f64> {
        if self.state.is_none() {
            return vec![0.0; test.len()];
        }
        let w = self.window;
        let mut hist: Vec<f64> = context[context.len().saturating_sub(w)..].to_vec();
        let mut out = Vec::with_capacity(test.len());
        for &y in test {
            hist.push(y);
            if hist.len() > w {
                hist.remove(0);
            }
            out.push(if hist.len() == w { self.score_window(&hist) } else { 0.0 });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seasonal(n: usize, t: usize) -> Vec<f64> {
        (0..n).map(|i| (2.0 * std::f64::consts::PI * i as f64 / t as f64).sin()).collect()
    }

    #[test]
    fn reconstruction_is_learned() {
        let t = 16;
        let y = seasonal(600, t);
        let mut usad = Usad::new(t, 6, 30, 1);
        usad.fit(&y[..500]);
        // the AE1 path is a plain autoencoder and must reconstruct normal
        // windows well (α = 1 isolates it; the adversarial AE2∘AE1 term is
        // *maximized* by D2 and is only meaningful relatively — covered by
        // `anomalous_window_scores_higher`)
        usad.alpha = 1.0;
        let s_norm = usad.score_window(&y[500..500 + t]);
        assert!(s_norm < 0.3, "normal window AE1 error {s_norm}");
    }

    #[test]
    fn anomalous_window_scores_higher() {
        let t = 16;
        let mut y = seasonal(700, t);
        let mut usad = Usad::new(t, 6, 15, 2);
        usad.fit(&y[..500]);
        let normal = usad.score_window(&y[520..520 + t]);
        for v in y[600..608].iter_mut() {
            *v += 2.5;
        }
        let anomalous = usad.score_window(&y[596..596 + t]);
        assert!(anomalous > 2.0 * normal, "anomalous {anomalous} vs normal {normal}");
    }

    #[test]
    fn stream_scoring_shapes() {
        let y = seasonal(400, 16);
        let mut usad = Usad::new(16, 4, 3, 3);
        usad.fit(&y[..300]);
        let scores = usad.score_stream(&y[..300], &y[300..]);
        assert_eq!(scores.len(), 100);
        assert!(scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn unfitted_scores_zero() {
        let usad = Usad::new(8, 4, 1, 1);
        assert_eq!(usad.score_stream(&[0.0; 8], &[1.0, 2.0]), vec![0.0, 0.0]);
    }
}
