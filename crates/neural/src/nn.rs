//! Dense layers, activations, Adam, and MLPs with manual backpropagation.
//!
//! Everything operates on `Vec<f64>` activations — at the model sizes used
//! by the baselines (windows of ≤ 128, hidden ≤ 64) this is fast enough on
//! a single core and keeps the substrate fully transparent.

// index recurrences here mirror the published algorithms; iterator
// rewrites obscure the maths
#![allow(clippy::needless_range_loop)]
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Element-wise activation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// max(0, x)
    Relu,
    /// tanh(x)
    Tanh,
    /// 1 / (1 + e^−x)
    Sigmoid,
    /// x
    Identity,
}

impl Activation {
    #[inline]
    fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Identity => x,
        }
    }

    /// Derivative expressed via the activation *output* `a`.
    #[inline]
    fn grad_from_output(self, a: f64) -> f64 {
        match self {
            Activation::Relu => {
                if a > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => 1.0 - a * a,
            Activation::Sigmoid => a * (1.0 - a),
            Activation::Identity => 1.0,
        }
    }
}

/// A fully connected layer with Adam state.
#[derive(Debug, Clone)]
pub struct Dense {
    /// Input dimension.
    pub in_dim: usize,
    /// Output dimension.
    pub out_dim: usize,
    w: Vec<f64>, // out x in, row-major
    b: Vec<f64>,
    gw: Vec<f64>,
    gb: Vec<f64>,
    mw: Vec<f64>,
    vw: Vec<f64>,
    mb: Vec<f64>,
    vb: Vec<f64>,
}

impl Dense {
    /// He-uniform initialized layer.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut StdRng) -> Self {
        let bound = (6.0 / in_dim as f64).sqrt();
        let w: Vec<f64> = (0..in_dim * out_dim).map(|_| rng.gen_range(-bound..bound)).collect();
        Dense {
            in_dim,
            out_dim,
            w,
            b: vec![0.0; out_dim],
            gw: vec![0.0; in_dim * out_dim],
            gb: vec![0.0; out_dim],
            mw: vec![0.0; in_dim * out_dim],
            vw: vec![0.0; in_dim * out_dim],
            mb: vec![0.0; out_dim],
            vb: vec![0.0; out_dim],
        }
    }

    /// `z = W x + b`.
    pub fn forward(&self, x: &[f64], z: &mut Vec<f64>) {
        debug_assert_eq!(x.len(), self.in_dim);
        z.clear();
        for o in 0..self.out_dim {
            let row = &self.w[o * self.in_dim..(o + 1) * self.in_dim];
            let mut acc = self.b[o];
            for (wi, xi) in row.iter().zip(x) {
                acc += wi * xi;
            }
            z.push(acc);
        }
    }

    /// Accumulates gradients for `dz` at input `x`; returns `dx`.
    pub fn backward(&mut self, x: &[f64], dz: &[f64]) -> Vec<f64> {
        debug_assert_eq!(dz.len(), self.out_dim);
        let mut dx = vec![0.0; self.in_dim];
        for o in 0..self.out_dim {
            let g = dz[o];
            self.gb[o] += g;
            let row = o * self.in_dim;
            for i in 0..self.in_dim {
                self.gw[row + i] += g * x[i];
                dx[i] += self.w[row + i] * g;
            }
        }
        dx
    }

    fn zero_grad(&mut self) {
        self.gw.iter_mut().for_each(|g| *g = 0.0);
        self.gb.iter_mut().for_each(|g| *g = 0.0);
    }

    /// Clears accumulated gradients (for layers used outside an [`Mlp`],
    /// e.g. the N-BEATS heads).
    pub fn zero_grad_public(&mut self) {
        self.zero_grad();
    }

    /// Adam update with explicit step counter (for standalone layers).
    pub fn adam_step_public(&mut self, lr: f64, t: usize) {
        self.adam_step(lr, t.max(1));
    }

    fn adam_step(&mut self, lr: f64, t: usize) {
        const B1: f64 = 0.9;
        const B2: f64 = 0.999;
        const EPS: f64 = 1e-8;
        let bc1 = 1.0 - B1.powi(t as i32);
        let bc2 = 1.0 - B2.powi(t as i32);
        for i in 0..self.w.len() {
            self.mw[i] = B1 * self.mw[i] + (1.0 - B1) * self.gw[i];
            self.vw[i] = B2 * self.vw[i] + (1.0 - B2) * self.gw[i] * self.gw[i];
            self.w[i] -= lr * (self.mw[i] / bc1) / ((self.vw[i] / bc2).sqrt() + EPS);
        }
        for i in 0..self.b.len() {
            self.mb[i] = B1 * self.mb[i] + (1.0 - B1) * self.gb[i];
            self.vb[i] = B2 * self.vb[i] + (1.0 - B2) * self.gb[i] * self.gb[i];
            self.b[i] -= lr * (self.mb[i] / bc1) / ((self.vb[i] / bc2).sqrt() + EPS);
        }
    }
}

/// Forward-pass cache needed for backpropagation.
#[derive(Debug, Clone, Default)]
pub struct Cache {
    /// Layer inputs (`activations[0]` is the network input).
    pub activations: Vec<Vec<f64>>,
}

impl Cache {
    /// Network output of the cached pass.
    pub fn output(&self) -> &[f64] {
        self.activations.last().expect("cache from a forward pass")
    }
}

/// A multi-layer perceptron: dense layers with per-layer activations.
#[derive(Debug, Clone)]
pub struct Mlp {
    /// The layers.
    pub layers: Vec<Dense>,
    /// Activation applied after each layer (same length as `layers`).
    pub acts: Vec<Activation>,
    step_count: usize,
}

impl Mlp {
    /// Builds an MLP from layer sizes, e.g. `&[32, 16, 1]` with
    /// activations `&[Relu, Identity]`.
    pub fn new(sizes: &[usize], acts: &[Activation], seed: u64) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        assert_eq!(sizes.len() - 1, acts.len(), "one activation per layer");
        let mut rng = StdRng::seed_from_u64(seed);
        let layers = sizes.windows(2).map(|w| Dense::new(w[0], w[1], &mut rng)).collect();
        Mlp { layers, acts: acts.to_vec(), step_count: 0 }
    }

    /// Inference-only forward pass.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        let mut cur = x.to_vec();
        let mut z = Vec::new();
        for (layer, act) in self.layers.iter().zip(&self.acts) {
            layer.forward(&cur, &mut z);
            cur.clear();
            cur.extend(z.iter().map(|&v| act.apply(v)));
        }
        cur
    }

    /// Forward pass caching every layer input for [`Mlp::backward`].
    pub fn forward_train(&self, x: &[f64]) -> Cache {
        let mut cache = Cache { activations: Vec::with_capacity(self.layers.len() + 1) };
        cache.activations.push(x.to_vec());
        let mut z = Vec::new();
        for (layer, act) in self.layers.iter().zip(&self.acts) {
            layer.forward(cache.activations.last().expect("seeded"), &mut z);
            cache.activations.push(z.iter().map(|&v| act.apply(v)).collect());
        }
        cache
    }

    /// Backpropagates `dout` (gradient at the network output), accumulating
    /// parameter gradients; returns the gradient at the network input.
    pub fn backward(&mut self, cache: &Cache, dout: &[f64]) -> Vec<f64> {
        let mut grad = dout.to_vec();
        for k in (0..self.layers.len()).rev() {
            let a = &cache.activations[k + 1];
            let act = self.acts[k];
            let dz: Vec<f64> =
                grad.iter().zip(a).map(|(g, &ai)| g * act.grad_from_output(ai)).collect();
            grad = self.layers[k].backward(&cache.activations[k], &dz);
        }
        grad
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        for l in self.layers.iter_mut() {
            l.zero_grad();
        }
    }

    /// One Adam update with the accumulated gradients.
    pub fn step(&mut self, lr: f64) {
        self.step_count += 1;
        let t = self.step_count;
        for l in self.layers.iter_mut() {
            l.adam_step(lr, t);
        }
    }

    /// Clips accumulated gradients to a global L2 norm (stabilizes
    /// adversarial objectives like USAD's phase-B loss).
    pub fn clip_grad_norm(&mut self, max_norm: f64) {
        let mut total = 0.0;
        for l in &self.layers {
            total += l.gw.iter().map(|g| g * g).sum::<f64>();
            total += l.gb.iter().map(|g| g * g).sum::<f64>();
        }
        let norm = total.sqrt();
        if norm > max_norm && norm > 0.0 {
            let scale = max_norm / norm;
            for l in self.layers.iter_mut() {
                l.gw.iter_mut().for_each(|g| *g *= scale);
                l.gb.iter_mut().for_each(|g| *g *= scale);
            }
        }
    }

    /// Convenience: one SGD-style training step on a single (x, y) pair
    /// under MSE loss. Returns the loss.
    pub fn train_mse(&mut self, x: &[f64], y: &[f64], lr: f64) -> f64 {
        let cache = self.forward_train(x);
        let out = cache.output();
        assert_eq!(out.len(), y.len(), "target dimension mismatch");
        let n = y.len() as f64;
        let loss: f64 = out.iter().zip(y).map(|(o, t)| (o - t) * (o - t)).sum::<f64>() / n;
        let dout: Vec<f64> = out.iter().zip(y).map(|(o, t)| 2.0 * (o - t) / n).collect();
        self.zero_grad();
        self.backward(&cache, &dout);
        self.step(lr);
        loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shapes() {
        let m = Mlp::new(&[3, 5, 2], &[Activation::Relu, Activation::Identity], 1);
        let out = m.forward(&[0.1, -0.2, 0.3]);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut m = Mlp::new(&[4, 6, 3], &[Activation::Tanh, Activation::Identity], 7);
        let x = [0.3, -0.5, 0.8, 0.1];
        let y = [0.2, -0.1, 0.4];
        // analytic gradient of MSE wrt the input
        let cache = m.forward_train(&x);
        let out = cache.output().to_vec();
        let n = y.len() as f64;
        let dout: Vec<f64> = out.iter().zip(&y).map(|(o, t)| 2.0 * (o - t) / n).collect();
        m.zero_grad();
        let dx = m.backward(&cache, &dout);
        // finite differences on the input
        let loss = |m: &Mlp, x: &[f64]| {
            let o = m.forward(x);
            o.iter().zip(&y).map(|(a, b)| (a - b) * (a - b)).sum::<f64>() / n
        };
        let h = 1e-6;
        for i in 0..4 {
            let mut xp = x;
            xp[i] += h;
            let mut xm = x;
            xm[i] -= h;
            let fd = (loss(&m, &xp) - loss(&m, &xm)) / (2.0 * h);
            assert!((fd - dx[i]).abs() < 1e-5, "input grad {i}: fd {fd} vs analytic {}", dx[i]);
        }
    }

    #[test]
    fn weight_gradients_match_finite_differences() {
        let mut m = Mlp::new(&[2, 3, 1], &[Activation::Relu, Activation::Identity], 3);
        let x = [0.7, -0.4];
        let y = [0.5];
        let cache = m.forward_train(&x);
        let out = cache.output().to_vec();
        let dout = vec![2.0 * (out[0] - y[0])];
        m.zero_grad();
        m.backward(&cache, &dout);
        let analytic = m.layers[0].gw.clone();
        let h = 1e-6;
        for i in 0..analytic.len() {
            let mut mp = m.clone();
            mp.layers[0].w[i] += h;
            let op = mp.forward(&x)[0];
            let mut mm = m.clone();
            mm.layers[0].w[i] -= h;
            let om = mm.forward(&x)[0];
            let fd = ((op - y[0]).powi(2) - (om - y[0]).powi(2)) / (2.0 * h);
            assert!(
                (fd - analytic[i]).abs() < 1e-5,
                "w grad {i}: fd {fd} vs analytic {}",
                analytic[i]
            );
        }
    }

    #[test]
    fn learns_xor_like_function() {
        let mut m = Mlp::new(&[2, 16, 1], &[Activation::Tanh, Activation::Identity], 42);
        let data = [
            ([0.0, 0.0], [0.0]),
            ([0.0, 1.0], [1.0]),
            ([1.0, 0.0], [1.0]),
            ([1.0, 1.0], [0.0]),
        ];
        let mut final_loss = f64::INFINITY;
        for _ in 0..2000 {
            let mut total = 0.0;
            for (x, y) in &data {
                total += m.train_mse(x, y, 0.01);
            }
            final_loss = total / 4.0;
        }
        assert!(final_loss < 0.02, "XOR not learned: loss {final_loss}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Mlp::new(&[3, 4, 1], &[Activation::Relu, Activation::Identity], 5);
        let b = Mlp::new(&[3, 4, 1], &[Activation::Relu, Activation::Identity], 5);
        assert_eq!(a.forward(&[1.0, 2.0, 3.0]), b.forward(&[1.0, 2.0, 3.0]));
    }
}
