//! # neural — minimal learned-baseline substrate
//!
//! The paper compares OneShotSTL against GPU-trained deep models (LSTM,
//! USAD, TranAD for TSAD; NBEATS, DeepAR, FiLM/FEDformer/Informer for
//! TSF). Re-implementing transformer stacks is out of scope for a CPU
//! library, but the evaluation still needs *representative learned
//! baselines* — so this crate provides a small, dependency-free neural
//! substrate (dense layers, activations, Adam) and faithful-in-scheme
//! implementations of the implementable baselines (see DESIGN.md §4 for
//! the substitution table):
//!
//! - [`nn`]: dense layers, activations, Adam, MLPs with manual backprop.
//! - [`windows`]: sliding-window dataset construction.
//! - [`mlp_forecast`]: window-MLP forecaster (LSTM-AD stand-in for TSAD).
//! - [`usad`]: USAD's two-decoder adversarial autoencoder scheme
//!   (Audibert et al., KDD 2020) on MLP encoders.
//! - [`tranad`]: TranAD's two-phase self-conditioning reconstruction
//!   (attention-free variant).
//! - [`nbeats`]: N-BEATS doubly-residual stacks with generic basis
//!   (Oreshkin et al., ICLR 2020).
//! - [`deepar`]: DeepAR-style autoregressive Gaussian-head forecaster
//!   trained by NLL (MLP conditioning instead of an RNN).

pub mod deepar;
pub mod mlp_forecast;
pub mod nbeats;
pub mod nn;
pub mod tranad;
pub mod usad;
pub mod windows;

pub use deepar::DeepArLite;
pub use mlp_forecast::MlpForecaster;
pub use nbeats::NBeats;
pub use nn::{Activation, Dense, Mlp};
pub use tranad::TranAdLite;
pub use usad::Usad;
