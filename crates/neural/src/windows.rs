//! Sliding-window dataset construction and normalization for the learned
//! baselines.

/// Train-time normalization statistics (z-score with train moments, the
//  Informer-benchmark convention).
#[derive(Debug, Clone, Copy)]
pub struct Scaler {
    /// Training mean.
    pub mean: f64,
    /// Training standard deviation (clamped away from zero).
    pub std: f64,
}

impl Scaler {
    /// Fits the scaler on training data.
    pub fn fit(train: &[f64]) -> Self {
        Scaler { mean: tskit::stats::mean(train), std: tskit::stats::std_dev(train).max(1e-9) }
    }

    /// Applies the transform.
    pub fn transform(&self, x: &[f64]) -> Vec<f64> {
        x.iter().map(|v| (v - self.mean) / self.std).collect()
    }

    /// Normalizes a single value.
    pub fn scale(&self, v: f64) -> f64 {
        (v - self.mean) / self.std
    }

    /// Inverts the transform for a single value.
    pub fn unscale(&self, v: f64) -> f64 {
        v * self.std + self.mean
    }
}

/// Builds `(window, next_value)` pairs with the given stride.
pub fn window_next_pairs(x: &[f64], w: usize, stride: usize) -> Vec<(Vec<f64>, f64)> {
    if x.len() <= w {
        return Vec::new();
    }
    (0..x.len() - w).step_by(stride.max(1)).map(|i| (x[i..i + w].to_vec(), x[i + w])).collect()
}

/// Builds `(lookback, horizon)` pairs for sequence-to-sequence training.
pub fn window_horizon_pairs(
    x: &[f64],
    lookback: usize,
    horizon: usize,
    stride: usize,
) -> Vec<(Vec<f64>, Vec<f64>)> {
    if x.len() < lookback + horizon {
        return Vec::new();
    }
    (0..=x.len() - lookback - horizon)
        .step_by(stride.max(1))
        .map(|i| {
            (x[i..i + lookback].to_vec(), x[i + lookback..i + lookback + horizon].to_vec())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaler_roundtrip() {
        let train = [2.0, 4.0, 6.0];
        let s = Scaler::fit(&train);
        let z = s.transform(&train);
        assert!(tskit::stats::mean(&z).abs() < 1e-12);
        assert!((s.unscale(s.scale(5.0)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn scaler_on_constant_input() {
        let s = Scaler::fit(&[3.0, 3.0]);
        assert!(s.scale(3.0).abs() < 1e-9);
        assert!(s.scale(4.0).is_finite());
    }

    #[test]
    fn window_pairs_align() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let pairs = window_next_pairs(&x, 2, 1);
        assert_eq!(pairs.len(), 3);
        assert_eq!(pairs[0], (vec![1.0, 2.0], 3.0));
        assert_eq!(pairs[2], (vec![3.0, 4.0], 5.0));
        assert!(window_next_pairs(&x, 5, 1).is_empty());
    }

    #[test]
    fn horizon_pairs_align() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let pairs = window_horizon_pairs(&x, 3, 2, 2);
        assert_eq!(pairs[0], (vec![1.0, 2.0, 3.0], vec![4.0, 5.0]));
        assert_eq!(pairs.len(), 1);
        let all = window_horizon_pairs(&x, 3, 2, 1);
        assert_eq!(all.len(), 2);
    }
}
