//! TranAD-lite: two-phase self-conditioned reconstruction
//! (Tuli et al., VLDB 2022), attention-free variant.
//!
//! TranAD's key idea — independent of its transformer backbone — is
//! *self-conditioning*: reconstruct once, then reconstruct again with the
//! first pass's error map as an extra input ("focus score"), training the
//! second pass adversarially so that anomalous deviations are amplified.
//! We keep exactly that scheme on an MLP backbone (substitution documented
//! in DESIGN.md §4): the model maps `[w ; c] → ŵ` where `c` is the
//! element-wise squared error of phase 1 (zeros in phase 1).

use crate::nn::{Activation, Mlp};
use crate::windows::Scaler;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// The TranAD-lite detector.
#[derive(Debug, Clone)]
pub struct TranAdLite {
    /// Window length.
    pub window: usize,
    /// Hidden width.
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// RNG seed.
    pub seed: u64,
    state: Option<(Mlp, Scaler)>,
}

impl TranAdLite {
    /// Creates an untrained detector.
    pub fn new(window: usize, hidden: usize, epochs: usize, seed: u64) -> Self {
        TranAdLite { window, hidden, epochs, lr: 1e-3, seed, state: None }
    }

    fn phase_input(x: &[f64], focus: &[f64]) -> Vec<f64> {
        let mut v = Vec::with_capacity(2 * x.len());
        v.extend_from_slice(x);
        v.extend_from_slice(focus);
        v
    }

    /// Trains the two-phase reconstruction model.
    pub fn fit(&mut self, train: &[f64]) {
        let w = self.window;
        let scaler = Scaler::fit(train);
        let z = scaler.transform(train);
        if z.len() < w + 1 {
            return;
        }
        let stride = (w / 4).max(1);
        let mut windows: Vec<Vec<f64>> =
            (0..=z.len() - w).step_by(stride).map(|i| z[i..i + w].to_vec()).collect();
        let mut model = Mlp::new(
            &[2 * w, self.hidden, w],
            &[Activation::Relu, Activation::Identity],
            self.seed,
        );
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x7A4D);
        let n_w = w as f64;
        for epoch in 1..=self.epochs.max(1) {
            let eps = 1.0 / epoch as f64; // phase-1 weight decays over epochs
            windows.shuffle(&mut rng);
            for x in &windows {
                // phase 1: focus = 0
                let in1 = Self::phase_input(x, &vec![0.0; w]);
                let c1 = model.forward_train(&in1);
                let o1 = c1.output().to_vec();
                // phase 2: focus = squared error of phase 1
                let focus: Vec<f64> =
                    o1.iter().zip(x).map(|(o, t)| (o - t) * (o - t)).collect();
                let in2 = Self::phase_input(x, &focus);
                let c2 = model.forward_train(&in2);
                let o2 = c2.output().to_vec();
                // L = eps·‖x−o1‖² + (1−eps)·‖x−o2‖²
                model.zero_grad();
                let d1: Vec<f64> =
                    o1.iter().zip(x).map(|(o, t)| eps * 2.0 * (o - t) / n_w).collect();
                model.backward(&c1, &d1);
                let d2: Vec<f64> =
                    o2.iter().zip(x).map(|(o, t)| (1.0 - eps) * 2.0 * (o - t) / n_w).collect();
                model.backward(&c2, &d2);
                model.step(self.lr);
            }
        }
        self.state = Some((model, scaler));
    }

    /// Window score: mean of phase-1 and phase-2 reconstruction errors.
    pub fn score_window(&self, window: &[f64]) -> f64 {
        let (model, scaler) = self.state.as_ref().expect("fit() before scoring");
        let w = self.window;
        assert_eq!(window.len(), w);
        let x = scaler.transform(window);
        let o1 = model.forward(&Self::phase_input(&x, &vec![0.0; w]));
        let focus: Vec<f64> = o1.iter().zip(&x).map(|(o, t)| (o - t) * (o - t)).collect();
        let o2 = model.forward(&Self::phase_input(&x, &focus));
        let e1: f64 = o1.iter().zip(&x).map(|(o, t)| (o - t) * (o - t)).sum::<f64>() / w as f64;
        let e2: f64 = o2.iter().zip(&x).map(|(o, t)| (o - t) * (o - t)).sum::<f64>() / w as f64;
        0.5 * (e1 + e2)
    }

    /// Point-wise scores for a test stream (causal windows).
    pub fn score_stream(&self, context: &[f64], test: &[f64]) -> Vec<f64> {
        if self.state.is_none() {
            return vec![0.0; test.len()];
        }
        let w = self.window;
        let mut hist: Vec<f64> = context[context.len().saturating_sub(w)..].to_vec();
        let mut out = Vec::with_capacity(test.len());
        for &y in test {
            hist.push(y);
            if hist.len() > w {
                hist.remove(0);
            }
            out.push(if hist.len() == w { self.score_window(&hist) } else { 0.0 });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seasonal(n: usize, t: usize) -> Vec<f64> {
        (0..n).map(|i| (2.0 * std::f64::consts::PI * i as f64 / t as f64).sin()).collect()
    }

    #[test]
    fn detects_pattern_break() {
        let t = 16;
        let mut y = seasonal(700, t);
        let mut m = TranAdLite::new(t, 32, 15, 1);
        m.fit(&y[..500]);
        let normal = m.score_window(&y[520..520 + t]);
        for v in y[600..606].iter_mut() {
            *v = 2.0;
        }
        let broken = m.score_window(&y[596..596 + t]);
        assert!(broken > 2.0 * normal, "broken {broken} vs normal {normal}");
    }

    #[test]
    fn stream_scores_are_finite() {
        let y = seasonal(400, 16);
        let mut m = TranAdLite::new(16, 16, 3, 2);
        m.fit(&y[..300]);
        let s = m.score_stream(&y[..300], &y[300..]);
        assert_eq!(s.len(), 100);
        assert!(s.iter().all(|v| v.is_finite() && *v >= 0.0));
    }

    #[test]
    fn unfitted_is_safe() {
        let m = TranAdLite::new(8, 8, 1, 1);
        assert_eq!(m.score_stream(&[0.0; 8], &[1.0]), vec![0.0]);
    }
}
