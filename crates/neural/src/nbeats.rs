//! N-BEATS (Oreshkin et al., ICLR 2020) with the generic basis.
//!
//! Doubly residual stacking: block `k` receives the running residual
//! `x_k`, produces a backcast `b_k` and a forecast `f_k` from a shared MLP
//! trunk with two linear heads; then `x_{k+1} = x_k − b_k` and the final
//! forecast is `Σ_k f_k`. Backpropagation follows both the forecast-sum
//! path and the residual path through every block.

use crate::nn::{Activation, Dense, Mlp};
use crate::windows::{window_horizon_pairs, Scaler};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// One N-BEATS block: MLP trunk + linear backcast/forecast heads.
#[derive(Debug, Clone)]
struct Block {
    trunk: Mlp,
    backcast_head: Dense,
    forecast_head: Dense,
}

impl Block {
    fn new(lookback: usize, horizon: usize, hidden: usize, rng: &mut StdRng) -> Self {
        let seed: u64 = rng.gen();
        Block {
            trunk: Mlp::new(
                &[lookback, hidden, hidden],
                &[Activation::Relu, Activation::Relu],
                seed,
            ),
            backcast_head: Dense::new(hidden, lookback, rng),
            forecast_head: Dense::new(hidden, horizon, rng),
        }
    }
}

/// The N-BEATS forecaster.
#[derive(Debug, Clone)]
pub struct NBeats {
    /// Lookback window length (input size).
    pub lookback: usize,
    /// Forecast horizon (output size).
    pub horizon: usize,
    /// Number of residual blocks.
    pub blocks: usize,
    /// Hidden width of each block's trunk.
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// RNG seed.
    pub seed: u64,
    model: Option<(Vec<Block>, Scaler)>,
}

impl NBeats {
    /// Creates an untrained N-BEATS model.
    pub fn new(lookback: usize, horizon: usize, seed: u64) -> Self {
        NBeats {
            lookback,
            horizon,
            blocks: 3,
            hidden: 32,
            epochs: 10,
            lr: 1e-3,
            seed,
            model: None,
        }
    }

    fn forward_blocks(blocks: &[Block], x: &[f64], horizon: usize) -> Vec<f64> {
        let mut residual = x.to_vec();
        let mut forecast = vec![0.0; horizon];
        let mut tmp = Vec::new();
        for blk in blocks {
            let h = blk.trunk.forward(&residual);
            blk.backcast_head.forward(&h, &mut tmp);
            for (r, b) in residual.iter_mut().zip(&tmp) {
                *r -= b;
            }
            blk.forecast_head.forward(&h, &mut tmp);
            for (f, v) in forecast.iter_mut().zip(&tmp) {
                *f += v;
            }
        }
        forecast
    }

    /// One training step on a (lookback, horizon) pair; returns the loss.
    fn train_pair(blocks: &mut [Block], x: &[f64], y: &[f64], _lr: f64, horizon: usize) -> f64 {
        let k = blocks.len();
        // forward with caches
        let mut residuals = Vec::with_capacity(k + 1);
        residuals.push(x.to_vec());
        let mut trunk_caches = Vec::with_capacity(k);
        let mut trunk_outs = Vec::with_capacity(k);
        let mut backcasts = Vec::with_capacity(k);
        let mut forecast = vec![0.0; horizon];
        let mut tmp = Vec::new();
        for blk in blocks.iter() {
            let cache = blk.trunk.forward_train(residuals.last().expect("seeded"));
            let h = cache.output().to_vec();
            blk.backcast_head.forward(&h, &mut tmp);
            let backcast = tmp.clone();
            let next: Vec<f64> = residuals
                .last()
                .expect("seeded")
                .iter()
                .zip(&backcast)
                .map(|(r, b)| r - b)
                .collect();
            blk.forecast_head.forward(&h, &mut tmp);
            for (f, v) in forecast.iter_mut().zip(&tmp) {
                *f += v;
            }
            residuals.push(next);
            trunk_caches.push(cache);
            trunk_outs.push(h);
            backcasts.push(backcast);
        }
        let n = horizon as f64;
        let loss: f64 = forecast.iter().zip(y).map(|(f, t)| (f - t) * (f - t)).sum::<f64>() / n;
        let dforecast: Vec<f64> =
            forecast.iter().zip(y).map(|(f, t)| 2.0 * (f - t) / n).collect();
        // backward through the residual chain
        for blk in blocks.iter_mut() {
            blk.trunk.zero_grad();
        }
        let mut dresidual = vec![0.0; x.len()]; // dL/dx_K = 0
        for i in (0..k).rev() {
            let blk = &mut blocks[i];
            // forecast head: dL/dh from the forecast path
            let dh_f = blk.forecast_head.backward(&trunk_outs[i], &dforecast);
            // backcast head: x_{i+1} = x_i − b_i → dL/db_i = −dL/dx_{i+1}
            let dback: Vec<f64> = dresidual.iter().map(|g| -g).collect();
            let dh_b = blk.backcast_head.backward(&trunk_outs[i], &dback);
            let dh: Vec<f64> = dh_f.iter().zip(&dh_b).map(|(a, b)| a + b).collect();
            let dx_trunk = blk.trunk.backward(&trunk_caches[i], &dh);
            // dL/dx_i = identity path + trunk path
            for (g, t) in dresidual.iter_mut().zip(&dx_trunk) {
                *g += t;
            }
        }
        let _ = (&backcasts, &residuals);
        loss
    }

    /// Trains on a series (z-scored with train statistics).
    pub fn fit(&mut self, train: &[f64]) {
        let scaler = Scaler::fit(train);
        let z = scaler.transform(train);
        let mut pairs =
            window_horizon_pairs(&z, self.lookback, self.horizon, (self.horizon / 4).max(1));
        if pairs.is_empty() {
            return;
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut blocks: Vec<Block> = (0..self.blocks)
            .map(|_| Block::new(self.lookback, self.horizon, self.hidden, &mut rng))
            .collect();
        let mut step = 0usize;
        for _ in 0..self.epochs.max(1) {
            pairs.shuffle(&mut rng);
            for (x, y) in &pairs {
                Self::train_pair(&mut blocks, x, y, self.lr, self.horizon);
                step += 1;
                // apply accumulated grads per sample (Adam steps live in
                // the layers; trunk handled via Mlp::step, heads manually)
                for blk in blocks.iter_mut() {
                    blk.trunk.step(self.lr);
                    blk.backcast_head_step(self.lr, step);
                    blk.forecast_head_step(self.lr, step);
                    blk.trunk.zero_grad();
                    blk.zero_head_grads();
                }
            }
        }
        self.model = Some((blocks, scaler));
    }

    /// Forecasts `horizon` values from the most recent `lookback` values.
    pub fn predict(&self, recent: &[f64]) -> Vec<f64> {
        let (blocks, scaler) = self.model.as_ref().expect("fit() before predict");
        assert_eq!(recent.len(), self.lookback, "need exactly `lookback` values");
        let x = scaler.transform(recent);
        Self::forward_blocks(blocks, &x, self.horizon)
            .into_iter()
            .map(|v| scaler.unscale(v))
            .collect()
    }

    /// True when the model has been fitted.
    pub fn is_fitted(&self) -> bool {
        self.model.is_some()
    }
}

impl Block {
    fn backcast_head_step(&mut self, lr: f64, t: usize) {
        self.backcast_head.adam_step_public(lr, t);
    }
    fn forecast_head_step(&mut self, lr: f64, t: usize) {
        self.forecast_head.adam_step_public(lr, t);
    }
    fn zero_head_grads(&mut self) {
        self.backcast_head.zero_grad_public();
        self.forecast_head.zero_grad_public();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seasonal(n: usize, t: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                2.0 + (2.0 * std::f64::consts::PI * i as f64 / t as f64).sin()
                    + 0.3 * (4.0 * std::f64::consts::PI * i as f64 / t as f64).cos()
            })
            .collect()
    }

    #[test]
    fn forecasts_seasonal_pattern() {
        let t = 24;
        let y = seasonal(800, t);
        let mut m = NBeats::new(2 * t, t, 1);
        m.epochs = 40;
        m.lr = 5e-3;
        m.fit(&y[..700]);
        let pred = m.predict(&y[700 - 2 * t..700]);
        let truth = &y[700..700 + t];
        let err = tskit::stats::mae(&pred, truth);
        // the naive "repeat last value" error for this signal is ~0.8
        assert!(err < 0.4, "N-BEATS horizon MAE {err}");
    }

    #[test]
    fn beats_constant_prediction() {
        let t = 16;
        let y = seasonal(600, t);
        let mut m = NBeats::new(2 * t, t, 2);
        m.epochs = 10;
        m.fit(&y[..500]);
        let pred = m.predict(&y[500 - 2 * t..500]);
        let truth = &y[500..500 + t];
        let err = tskit::stats::mae(&pred, truth);
        let mean = tskit::stats::mean(&y[..500]);
        let const_err: f64 = truth.iter().map(|v| (v - mean).abs()).sum::<f64>() / t as f64;
        assert!(err < const_err, "N-BEATS {err} vs constant {const_err}");
    }

    #[test]
    #[should_panic(expected = "fit() before predict")]
    fn predict_before_fit_panics() {
        NBeats::new(8, 4, 1).predict(&[0.0; 8]);
    }
}
