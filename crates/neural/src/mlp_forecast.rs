//! Window-MLP one-step forecaster — the LSTM-AD stand-in (DESIGN.md §4).
//!
//! LSTM-based TSAD (Park et al. 2018, the paper's "LSTM" row) scores each
//! point by the error of a learned one-step forecast. The recurrent cell is
//! replaced by a window MLP (same training signal, same scoring rule),
//! preserving the *scheme* while staying CPU-friendly.

use crate::nn::{Activation, Mlp};
use crate::windows::{window_next_pairs, Scaler};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One-step-ahead MLP forecaster with prediction-error anomaly scores.
#[derive(Debug, Clone)]
pub struct MlpForecaster {
    /// Input window length.
    pub window: usize,
    /// Hidden width.
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// RNG seed.
    pub seed: u64,
    model: Option<(Mlp, Scaler)>,
}

impl MlpForecaster {
    /// Creates an untrained forecaster.
    pub fn new(window: usize, hidden: usize, epochs: usize, seed: u64) -> Self {
        MlpForecaster { window, hidden, epochs, lr: 1e-3, seed, model: None }
    }

    /// Trains on the series (windows with stride 1).
    pub fn fit(&mut self, train: &[f64]) {
        let scaler = Scaler::fit(train);
        let z = scaler.transform(train);
        let mut pairs = window_next_pairs(&z, self.window, 1);
        let mut mlp = Mlp::new(
            &[self.window, self.hidden, 1],
            &[Activation::Relu, Activation::Identity],
            self.seed,
        );
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xF17);
        for _ in 0..self.epochs.max(1) {
            pairs.shuffle(&mut rng);
            for (x, y) in &pairs {
                mlp.train_mse(x, &[*y], self.lr);
            }
        }
        self.model = Some((mlp, scaler));
    }

    /// Predicts the next value given the last `window` observations
    /// (original scale).
    pub fn predict_next(&self, recent: &[f64]) -> f64 {
        let (mlp, scaler) = self.model.as_ref().expect("fit() before predict");
        assert_eq!(recent.len(), self.window, "need exactly `window` values");
        let z = scaler.transform(recent);
        scaler.unscale(mlp.forward(&z)[0])
    }

    /// Scores a test stream by absolute one-step prediction error;
    /// `context` supplies the points immediately before `test`.
    pub fn score_stream(&self, context: &[f64], test: &[f64]) -> Vec<f64> {
        assert!(context.len() >= self.window, "context shorter than window");
        let mut hist: Vec<f64> = context[context.len() - self.window..].to_vec();
        let mut scores = Vec::with_capacity(test.len());
        for &y in test {
            let pred = self.predict_next(&hist);
            scores.push((y - pred).abs());
            hist.remove(0);
            hist.push(y);
        }
        scores
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seasonal(n: usize, t: usize) -> Vec<f64> {
        (0..n).map(|i| (2.0 * std::f64::consts::PI * i as f64 / t as f64).sin()).collect()
    }

    #[test]
    fn learns_to_forecast_sine() {
        let t = 16;
        let y = seasonal(600, t);
        let mut f = MlpForecaster::new(t, 24, 20, 1);
        f.fit(&y[..400]);
        let mut err = 0.0;
        for i in 400..500 {
            let pred = f.predict_next(&y[i - t..i]);
            err += (pred - y[i]).abs();
        }
        err /= 100.0;
        assert!(err < 0.12, "one-step MAE {err}");
    }

    #[test]
    fn scores_spike_higher_than_normal() {
        let t = 16;
        let mut y = seasonal(700, t);
        y[600] += 3.0;
        let mut f = MlpForecaster::new(t, 24, 15, 2);
        f.fit(&y[..500]);
        let scores = f.score_stream(&y[..500], &y[500..]);
        let peak = tskit::stats::argmax(&scores).unwrap();
        assert_eq!(peak + 500, 600, "spike should carry the max error");
    }

    #[test]
    #[should_panic(expected = "fit() before predict")]
    fn predict_before_fit_panics() {
        let f = MlpForecaster::new(8, 8, 1, 1);
        f.predict_next(&[0.0; 8]);
    }
}
