//! DeepAR-lite: autoregressive probabilistic forecasting with a Gaussian
//! head (Salinas et al., 2020), MLP conditioning instead of an RNN
//! (substitution documented in DESIGN.md §4).
//!
//! The model maps `[lagged window ; seasonal phase encoding] → (μ, log σ)`
//! and is trained by Gaussian negative log-likelihood. Multi-step
//! forecasts roll the mean forward autoregressively (the original draws
//! sample paths; using the mean gives the point forecast that Table 5's
//! MAE evaluates).

use crate::nn::{Activation, Mlp};
use crate::windows::Scaler;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// The DeepAR-lite forecaster.
#[derive(Debug, Clone)]
pub struct DeepArLite {
    /// Lagged-value window length.
    pub window: usize,
    /// Seasonal period for the phase encoding.
    pub period: usize,
    /// Hidden width.
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// RNG seed.
    pub seed: u64,
    model: Option<(Mlp, Scaler)>,
}

impl DeepArLite {
    /// Creates an untrained DeepAR-lite model.
    pub fn new(window: usize, period: usize, seed: u64) -> Self {
        DeepArLite {
            window,
            period: period.max(2),
            hidden: 32,
            epochs: 10,
            lr: 1e-3,
            seed,
            model: None,
        }
    }

    fn features(&self, lags: &[f64], t: usize) -> Vec<f64> {
        let mut f = lags.to_vec();
        let phase = 2.0 * std::f64::consts::PI * (t % self.period) as f64 / self.period as f64;
        f.push(phase.sin());
        f.push(phase.cos());
        f
    }

    /// Trains by Gaussian NLL on one-step-ahead targets.
    pub fn fit(&mut self, train: &[f64]) {
        let w = self.window;
        if train.len() <= w + 1 {
            return;
        }
        let scaler = Scaler::fit(train);
        let z = scaler.transform(train);
        let mut idx: Vec<usize> = (0..z.len() - w).collect();
        let mut mlp = Mlp::new(
            &[w + 2, self.hidden, 2],
            &[Activation::Relu, Activation::Identity],
            self.seed,
        );
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xDEE9);
        for _ in 0..self.epochs.max(1) {
            idx.shuffle(&mut rng);
            for &i in &idx {
                let x = self.features(&z[i..i + w], i + w);
                let y = z[i + w];
                // NLL = 0.5·log(2π) + logσ + (y−μ)²/(2σ²); head outputs
                // (μ, s := log σ), σ = exp(s) clamped
                let cache = mlp.forward_train(&x);
                let out = cache.output();
                let mu = out[0];
                let s = out[1].clamp(-6.0, 4.0);
                let sigma = s.exp();
                let inv_var = 1.0 / (sigma * sigma);
                let dmu = -(y - mu) * inv_var;
                let ds = 1.0 - (y - mu) * (y - mu) * inv_var;
                mlp.zero_grad();
                mlp.backward(&cache, &[dmu, ds]);
                mlp.step(self.lr);
            }
        }
        self.model = Some((mlp, scaler));
    }

    /// One-step predictive distribution `(μ, σ)` in the original scale.
    pub fn predict_dist(&self, recent: &[f64], t: usize) -> (f64, f64) {
        let (mlp, scaler) = self.model.as_ref().expect("fit() before predict");
        assert_eq!(recent.len(), self.window);
        let z = scaler.transform(recent);
        let out = mlp.forward(&self.features(&z, t));
        let mu = scaler.unscale(out[0]);
        let sigma = out[1].clamp(-6.0, 4.0).exp() * scaler.std;
        (mu, sigma)
    }

    /// Autoregressive mean forecast of `horizon` values; `t` is the time
    /// index of the first forecast point.
    pub fn predict(&self, recent: &[f64], t: usize, horizon: usize) -> Vec<f64> {
        let (mlp, scaler) = self.model.as_ref().expect("fit() before predict");
        assert_eq!(recent.len(), self.window);
        let mut hist = scaler.transform(recent);
        let mut out = Vec::with_capacity(horizon);
        for h in 0..horizon {
            let o = mlp.forward(&self.features(&hist, t + h));
            let mu = o[0];
            out.push(scaler.unscale(mu));
            hist.remove(0);
            hist.push(mu);
        }
        out
    }

    /// True when the model has been fitted.
    pub fn is_fitted(&self) -> bool {
        self.model.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seasonal(n: usize, t: usize) -> Vec<f64> {
        (0..n)
            .map(|i| 5.0 + 2.0 * (2.0 * std::f64::consts::PI * i as f64 / t as f64).sin())
            .collect()
    }

    #[test]
    fn one_step_distribution_is_calibrated() {
        let t = 12;
        let y = seasonal(600, t);
        let mut m = DeepArLite::new(t, t, 1);
        m.epochs = 15;
        m.fit(&y[..500]);
        let (mu, sigma) = m.predict_dist(&y[500 - t..500], 500);
        assert!((mu - y[500]).abs() < 0.4, "mean off: {mu} vs {}", y[500]);
        assert!(sigma > 0.0 && sigma < 1.5, "sigma {sigma}");
    }

    #[test]
    fn multistep_tracks_season() {
        let t = 12;
        let y = seasonal(600, t);
        let mut m = DeepArLite::new(t, t, 2);
        m.epochs = 15;
        m.fit(&y[..500]);
        let pred = m.predict(&y[500 - t..500], 500, t);
        let truth = &y[500..500 + t];
        let err = tskit::stats::mae(&pred, truth);
        assert!(err < 0.6, "horizon MAE {err}");
    }

    #[test]
    #[should_panic(expected = "fit() before predict")]
    fn predict_before_fit_panics() {
        DeepArLite::new(8, 4, 1).predict(&[0.0; 8], 0, 2);
    }
}
