//! Threshold-free classification metrics over anomaly scores.

/// ROC-AUC via the rank statistic (Mann–Whitney U), with midrank handling
/// for tied scores. Supports fractional label weights in `[0, 1]` — the
/// generalization needed by VUS-ROC's soft labels. Returns 0.5 when either
/// class is (effectively) empty.
pub fn weighted_roc_auc(scores: &[f64], label_weights: &[f64]) -> f64 {
    assert_eq!(scores.len(), label_weights.len(), "roc_auc: length mismatch");
    let n = scores.len();
    if n == 0 {
        return 0.5;
    }
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| {
        scores[a].partial_cmp(&scores[b]).unwrap_or(std::cmp::Ordering::Equal)
    });
    // midranks
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && scores[idx[j + 1]] == scores[idx[i]] {
            j += 1;
        }
        let mid = (i + j) as f64 / 2.0 + 1.0;
        for k in i..=j {
            ranks[idx[k]] = mid;
        }
        i = j + 1;
    }
    let w_pos: f64 = label_weights.iter().sum();
    let w_neg: f64 = label_weights.iter().map(|w| 1.0 - w).sum();
    if w_pos <= 1e-12 || w_neg <= 1e-12 {
        return 0.5;
    }
    // Weighted Mann–Whitney: each (pos, neg) pair contributes its weight
    // product; with midranks this reduces to the weighted rank-sum formula.
    let rank_sum_pos: f64 = (0..n).map(|k| label_weights[k] * ranks[k]).sum();
    // expected rank sum contributed by positive-vs-positive pairs
    // (generalized: pairs weighted w_i * w_j). Compute via the identity
    // U = Σ_i w_i R_i − Σ_{i≤j pos pairs} ... — use the direct O(n log n)
    // prefix formulation instead for exactness with fractional weights.
    let _ = rank_sum_pos;
    // Direct pass over the sorted order with prefix sums of weights.
    let mut auc = 0.0;
    let mut neg_below = 0.0; // total negative weight with strictly smaller score
    let mut k = 0;
    while k < n {
        let mut j = k;
        let mut pos_here = 0.0;
        let mut neg_here = 0.0;
        while j < n && scores[idx[j]] == scores[idx[k]] {
            pos_here += label_weights[idx[j]];
            neg_here += 1.0 - label_weights[idx[j]];
            j += 1;
        }
        // positives in this tie group: beat all negatives below, tie with
        // the ones at the same score
        auc += pos_here * (neg_below + 0.5 * neg_here);
        neg_below += neg_here;
        k = j;
    }
    auc / (w_pos * w_neg)
}

/// Standard ROC-AUC for boolean labels.
pub fn roc_auc(scores: &[f64], labels: &[bool]) -> f64 {
    let w: Vec<f64> = labels.iter().map(|&l| if l { 1.0 } else { 0.0 }).collect();
    weighted_roc_auc(scores, &w)
}

/// Area under the precision-recall curve (step-wise interpolation),
/// boolean labels. Returns the positive rate when scores are all equal.
pub fn pr_auc(scores: &[f64], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "pr_auc: length mismatch");
    let n = scores.len();
    let total_pos = labels.iter().filter(|&&l| l).count();
    if n == 0 || total_pos == 0 {
        return 0.0;
    }
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| {
        scores[b].partial_cmp(&scores[a]).unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut auc = 0.0;
    let mut prev_recall = 0.0;
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j < n && scores[idx[j]] == scores[idx[i]] {
            if labels[idx[j]] {
                tp += 1;
            } else {
                fp += 1;
            }
            j += 1;
        }
        let recall = tp as f64 / total_pos as f64;
        let precision = tp as f64 / (tp + fp) as f64;
        auc += (recall - prev_recall) * precision;
        prev_recall = recall;
        i = j;
    }
    auc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation_gives_one() {
        let scores = [0.1, 0.2, 0.9, 0.8];
        let labels = [false, false, true, true];
        assert!((roc_auc(&scores, &labels) - 1.0).abs() < 1e-12);
        assert!((pr_auc(&scores, &labels) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reversed_separation_gives_zero() {
        let scores = [0.9, 0.8, 0.1, 0.2];
        let labels = [false, false, true, true];
        assert!(roc_auc(&scores, &labels) < 1e-12);
    }

    #[test]
    fn random_scores_give_half() {
        // alternating identical scores: AUC must be 0.5 by tie handling
        let scores = vec![1.0; 100];
        let labels: Vec<bool> = (0..100).map(|i| i % 2 == 0).collect();
        assert!((roc_auc(&scores, &labels) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn degenerate_classes_give_half() {
        assert_eq!(roc_auc(&[1.0, 2.0], &[true, true]), 0.5);
        assert_eq!(roc_auc(&[1.0, 2.0], &[false, false]), 0.5);
        assert_eq!(roc_auc(&[], &[]), 0.5);
    }

    #[test]
    fn matches_hand_computed_example() {
        // scores: pos {3, 1}, neg {2, 0}: pairs (3>2, 3>0, 1<2, 1>0) = 3/4
        let scores = [3.0, 1.0, 2.0, 0.0];
        let labels = [true, true, false, false];
        assert!((roc_auc(&scores, &labels) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn soft_labels_interpolate() {
        let scores = [3.0, 1.0, 2.0, 0.0];
        let hard = [1.0, 1.0, 0.0, 0.0];
        let soft = [1.0, 0.5, 0.0, 0.0];
        let a_hard = weighted_roc_auc(&scores, &hard);
        let a_soft = weighted_roc_auc(&scores, &soft);
        // halving the weight of the misranked positive raises the AUC
        assert!(a_soft > a_hard);
        assert!(a_soft <= 1.0);
    }

    #[test]
    fn pr_auc_prefers_early_precision() {
        // one positive ranked first vs ranked last among 5
        let labels = [true, false, false, false, false];
        let early = [5.0, 4.0, 3.0, 2.0, 1.0];
        let late = [1.0, 4.0, 3.0, 2.0, 5.0];
        assert!(pr_auc(&early, &labels) > pr_auc(&late, &labels));
    }
}
