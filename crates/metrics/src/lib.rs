//! # tsmetrics — evaluation metrics for the OneShotSTL reproduction
//!
//! - [`decomp`]: component-wise MAE against ground truth (Table 2).
//! - [`classify`]: ROC-AUC / PR-AUC on anomaly scores.
//! - [`vus`]: VUS-ROC (Paparrizos et al., VLDB 2022) — the headline TSAD
//!   metric of Table 3.
//! - [`kdd`]: the KDD CUP 2021 top-1 scoring rule (Table 4).
//! - [`tsf`]: forecasting errors (Table 5).
//! - [`rank`]: per-row rankings and average ranks, as printed in the
//!   paper's tables.

pub mod classify;
pub mod decomp;
pub mod kdd;
pub mod rank;
pub mod tsf;
pub mod vus;

pub use classify::{pr_auc, roc_auc};
pub use decomp::DecompErrors;
pub use kdd::kdd21_score;
pub use rank::{average_ranks, rank_row};
pub use tsf::{horizon_mae, mae, mse, smape};
pub use vus::{range_auc_roc, vus_roc};
