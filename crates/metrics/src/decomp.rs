//! Decomposition-quality metrics (paper Table 2).

use tskit::series::Decomposition;
use tskit::stats::mae;

/// Component-wise MAE between an estimated and a ground-truth
/// decomposition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecompErrors {
    /// Trend MAE.
    pub trend: f64,
    /// Seasonal MAE.
    pub seasonal: f64,
    /// Residual MAE.
    pub residual: f64,
}

impl DecompErrors {
    /// Computes the three MAEs over `range` (half-open), which lets the
    /// harness skip initialization transients exactly like the paper's
    /// online protocol.
    pub fn over_range(
        estimate: &Decomposition,
        truth: &Decomposition,
        range: std::ops::Range<usize>,
    ) -> Self {
        assert!(range.end <= estimate.len() && range.end <= truth.len(), "range out of bounds");
        let r = range;
        DecompErrors {
            trend: mae(&estimate.trend[r.clone()], &truth.trend[r.clone()]),
            seasonal: mae(&estimate.seasonal[r.clone()], &truth.seasonal[r.clone()]),
            residual: mae(&estimate.residual[r.clone()], &truth.residual[r]),
        }
    }

    /// Computes the three MAEs over the full length.
    pub fn full(estimate: &Decomposition, truth: &Decomposition) -> Self {
        Self::over_range(estimate, truth, 0..truth.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(t: &[f64], s: &[f64], r: &[f64]) -> Decomposition {
        Decomposition { trend: t.to_vec(), seasonal: s.to_vec(), residual: r.to_vec() }
    }

    #[test]
    fn zero_error_on_identical() {
        let a = d(&[1.0, 2.0], &[0.5, 0.5], &[0.0, 0.1]);
        let e = DecompErrors::full(&a, &a);
        assert_eq!(e.trend, 0.0);
        assert_eq!(e.seasonal, 0.0);
        assert_eq!(e.residual, 0.0);
    }

    #[test]
    fn range_restricts_comparison() {
        let est = d(&[0.0, 10.0, 1.0], &[0.0; 3], &[0.0; 3]);
        let truth = d(&[0.0, 0.0, 1.0], &[0.0; 3], &[0.0; 3]);
        let full = DecompErrors::full(&est, &truth);
        assert!((full.trend - 10.0 / 3.0).abs() < 1e-12);
        let tail = DecompErrors::over_range(&est, &truth, 2..3);
        assert_eq!(tail.trend, 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bad_range_panics() {
        let a = d(&[1.0], &[0.0], &[0.0]);
        DecompErrors::over_range(&a, &a, 0..2);
    }
}
