//! Forecasting error metrics (paper Table 5 reports MAE).

pub use tskit::stats::{mae, mse};

/// Symmetric mean absolute percentage error in `[0, 2]`.
pub fn smape(actual: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(actual.len(), predicted.len(), "smape: length mismatch");
    if actual.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for (a, p) in actual.iter().zip(predicted) {
        let denom = (a.abs() + p.abs()).max(1e-12);
        total += 2.0 * (a - p).abs() / denom;
    }
    total / actual.len() as f64
}

/// MAE of a rolling-origin evaluation: `windows` holds
/// `(truth, prediction)` pairs for each forecast origin; all horizons are
/// pooled, matching the Informer-benchmark protocol.
pub fn horizon_mae(windows: &[(Vec<f64>, Vec<f64>)]) -> f64 {
    let mut total = 0.0;
    let mut count = 0usize;
    for (truth, pred) in windows {
        assert_eq!(truth.len(), pred.len(), "horizon_mae: window length mismatch");
        for (t, p) in truth.iter().zip(pred) {
            total += (t - p).abs();
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smape_bounds_and_zero() {
        assert_eq!(smape(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        // completely opposite signs saturate at 2
        let s = smape(&[1.0], &[-1.0]);
        assert!((s - 2.0).abs() < 1e-9);
    }

    #[test]
    fn horizon_mae_pools_windows() {
        let w = vec![
            (vec![1.0, 2.0], vec![1.0, 3.0]), // errors 0, 1
            (vec![0.0], vec![2.0]),           // error 2
        ];
        assert!((horizon_mae(&w) - 1.0).abs() < 1e-12);
        assert_eq!(horizon_mae(&[]), 0.0);
    }
}
