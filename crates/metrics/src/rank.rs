//! Rankings and rank aggregation, as shown in the paper's result tables
//! (each cell carries the method's rank on that row; the last rows report
//! average metric and average rank).

/// Ranks one row of metric values: rank 1 = best. `higher_is_better`
/// selects the direction. Ties share the smaller rank (competition
/// ranking), matching how the paper brackets equal scores.
pub fn rank_row(values: &[f64], higher_is_better: bool) -> Vec<usize> {
    let n = values.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| {
        let ord = values[a].partial_cmp(&values[b]).unwrap_or(std::cmp::Ordering::Equal);
        if higher_is_better {
            ord.reverse()
        } else {
            ord
        }
    });
    let mut ranks = vec![0usize; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && values[idx[j + 1]] == values[idx[i]] {
            j += 1;
        }
        for k in i..=j {
            ranks[idx[k]] = i + 1;
        }
        i = j + 1;
    }
    ranks
}

/// Average rank per method across many rows (each row = one dataset).
pub fn average_ranks(rows: &[Vec<f64>], higher_is_better: bool) -> Vec<f64> {
    if rows.is_empty() {
        return Vec::new();
    }
    let m = rows[0].len();
    let mut sums = vec![0.0; m];
    for row in rows {
        assert_eq!(row.len(), m, "average_ranks: ragged rows");
        for (s, r) in sums.iter_mut().zip(rank_row(row, higher_is_better)) {
            *s += r as f64;
        }
    }
    sums.iter().map(|s| s / rows.len() as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_higher_better() {
        let r = rank_row(&[0.9, 0.7, 0.8], true);
        assert_eq!(r, vec![1, 3, 2]);
    }

    #[test]
    fn ranks_lower_better() {
        let r = rank_row(&[0.9, 0.7, 0.8], false);
        assert_eq!(r, vec![3, 1, 2]);
    }

    #[test]
    fn ties_share_rank() {
        let r = rank_row(&[0.5, 0.5, 0.1], true);
        assert_eq!(r, vec![1, 1, 3]);
    }

    #[test]
    fn average_over_rows() {
        let rows = vec![vec![0.9, 0.1], vec![0.2, 0.8]];
        let avg = average_ranks(&rows, true);
        assert_eq!(avg, vec![1.5, 1.5]);
        assert!(average_ranks(&[], true).is_empty());
    }
}
