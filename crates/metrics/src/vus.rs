//! VUS-ROC: Volume Under the ROC Surface (Paparrizos et al., VLDB 2022).
//!
//! The paper's Table 3 metric. Point-wise TSAD metrics punish small
//! misalignments between a detector's peak and the labelled region; VUS
//! fixes this by (a) widening each labelled anomaly with a *buffer region*
//! of length `l` whose labels decay continuously from 1 to 0
//! (`R-AUC-ROC_l`), and (b) integrating the resulting AUC over a range of
//! buffer lengths `l = 0..L` so the metric is parameter-free. The soft
//! labels are handled by the weighted ROC-AUC in [`crate::classify`].

use crate::classify::weighted_roc_auc;

/// Builds the soft label curve for buffer length `l`: inside a labelled
/// anomaly the weight is 1; within `l` points of an anomaly border it
/// decays as `sqrt(1 − d/l)` (the VUS paper's choice); elsewhere 0.
pub fn soft_labels(labels: &[bool], l: usize) -> Vec<f64> {
    let n = labels.len();
    let mut w: Vec<f64> = labels.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect();
    if l == 0 {
        return w;
    }
    // distance to the nearest labelled point (two sweeps)
    let big = usize::MAX / 2;
    let mut dist = vec![big; n];
    for i in 0..n {
        if labels[i] {
            dist[i] = 0;
        } else if i > 0 && dist[i - 1] < big {
            dist[i] = dist[i - 1] + 1;
        }
    }
    for i in (0..n).rev() {
        if i + 1 < n && dist[i + 1] < big {
            dist[i] = dist[i].min(dist[i + 1] + 1);
        }
    }
    for i in 0..n {
        if !labels[i] && dist[i] <= l {
            let frac = 1.0 - dist[i] as f64 / (l + 1) as f64;
            w[i] = frac.sqrt();
        }
    }
    w
}

/// `R-AUC-ROC_l`: ROC-AUC with the buffered soft labels of width `l`.
pub fn range_auc_roc(scores: &[f64], labels: &[bool], l: usize) -> f64 {
    assert_eq!(scores.len(), labels.len(), "range_auc_roc: length mismatch");
    let w = soft_labels(labels, l);
    weighted_roc_auc(scores, &w)
}

/// VUS-ROC: mean of `R-AUC-ROC_l` over `l = 0, step, 2·step, …, max_l`.
/// The TSB-UAD convention sets `max_l` to the series' seasonal period
/// (or a fixed sliding-window length); `steps` controls the grid
/// resolution (the reference implementation uses `2·step` granularity).
pub fn vus_roc(scores: &[f64], labels: &[bool], max_l: usize, steps: usize) -> f64 {
    assert_eq!(scores.len(), labels.len(), "vus_roc: length mismatch");
    if scores.is_empty() {
        return 0.5;
    }
    let steps = steps.max(1);
    let mut total = 0.0;
    let mut count = 0usize;
    for k in 0..=steps {
        let l = max_l * k / steps;
        total += range_auc_roc(scores, labels, l);
        count += 1;
    }
    total / count as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soft_labels_decay_to_zero() {
        let mut labels = vec![false; 21];
        labels[10] = true;
        let w = soft_labels(&labels, 4);
        assert_eq!(w[10], 1.0);
        assert!(w[11] > w[12] && w[12] > w[13] && w[13] > w[14]);
        assert!(w[14] > 0.0);
        assert_eq!(w[15], 0.0);
        // symmetric
        assert!((w[9] - w[11]).abs() < 1e-12);
        // l = 0 keeps hard labels
        let hard = soft_labels(&labels, 0);
        assert_eq!(hard[9], 0.0);
    }

    #[test]
    fn vus_rewards_near_miss_more_than_far_miss() {
        // anomaly at 50; detector A peaks at 52 (near), B at 80 (far)
        let n = 100;
        let mut labels = vec![false; n];
        labels[50] = true;
        let mut near = vec![0.0; n];
        near[52] = 1.0;
        let mut far = vec![0.0; n];
        far[80] = 1.0;
        let v_near = vus_roc(&near, &labels, 10, 5);
        let v_far = vus_roc(&far, &labels, 10, 5);
        assert!(v_near > v_far, "near miss ({v_near}) must outscore far miss ({v_far})");
    }

    #[test]
    fn perfect_detector_close_to_one() {
        // a detector whose scores peak on the anomaly and decay smoothly
        // around it dominates every soft-label grid point
        let n = 200;
        let labels: Vec<bool> = (0..n).map(|i| (60..70).contains(&i)).collect();
        let scores: Vec<f64> = (0..n)
            .map(|i| {
                let d = if i < 60 {
                    60 - i
                } else if i >= 70 {
                    i - 69
                } else {
                    0
                };
                (1.0 - d as f64 / 40.0).max(0.0)
            })
            .collect();
        let v = vus_roc(&scores, &labels, 20, 10);
        assert!(v > 0.95, "VUS {v}");
        // a hard rectangular detector is strictly worse under VUS because
        // it ties with the negatives throughout the buffer zone
        let hard: Vec<f64> =
            (0..n).map(|i| if (60..70).contains(&i) { 1.0 } else { 0.0 }).collect();
        let v_hard = vus_roc(&hard, &labels, 20, 10);
        assert!(v_hard < v, "smooth {v} should beat hard {v_hard}");
    }

    #[test]
    fn constant_scores_give_half() {
        let labels: Vec<bool> = (0..50).map(|i| i == 25).collect();
        let scores = vec![1.0; 50];
        let v = vus_roc(&scores, &labels, 10, 5);
        assert!((v - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_input_is_neutral() {
        assert_eq!(vus_roc(&[], &[], 10, 5), 0.5);
    }
}
