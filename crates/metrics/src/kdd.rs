//! The KDD CUP 2021 scoring rule (paper Table 4).
//!
//! Each series has exactly one labelled anomaly event; a method scores 1 on
//! a series iff the *single highest-scored point* falls within a
//! neighbourhood of the labelled event, and the reported score is the
//! fraction of series solved.

/// Per-series verdict: is the argmax of `scores` within `tolerance` points
/// of any labelled anomaly?
pub fn kdd21_hit(scores: &[f64], labels: &[bool], tolerance: usize) -> bool {
    assert_eq!(scores.len(), labels.len(), "kdd21_hit: length mismatch");
    let Some(best) = tskit::stats::argmax(scores) else {
        return false;
    };
    let lo = best.saturating_sub(tolerance);
    let hi = (best + tolerance).min(labels.len().saturating_sub(1));
    labels[lo..=hi].iter().any(|&b| b)
}

/// Fraction of `(scores, labels)` series where the top-1 point hits the
/// anomaly neighbourhood (the KDD21 competition accuracy).
pub fn kdd21_score(series: &[(Vec<f64>, Vec<bool>)], tolerance: usize) -> f64 {
    if series.is_empty() {
        return 0.0;
    }
    let hits =
        series.iter().filter(|(scores, labels)| kdd21_hit(scores, labels, tolerance)).count();
    hits as f64 / series.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_hit_counts() {
        let mut labels = vec![false; 100];
        labels[40] = true;
        let mut scores = vec![0.0; 100];
        scores[40] = 9.0;
        assert!(kdd21_hit(&scores, &labels, 0));
    }

    #[test]
    fn near_hit_within_tolerance() {
        let mut labels = vec![false; 100];
        labels[40] = true;
        let mut scores = vec![0.0; 100];
        scores[45] = 9.0;
        assert!(!kdd21_hit(&scores, &labels, 3));
        assert!(kdd21_hit(&scores, &labels, 5));
    }

    #[test]
    fn aggregate_score_is_fraction() {
        let mut l1 = vec![false; 10];
        l1[5] = true;
        let mut s_hit = vec![0.0; 10];
        s_hit[5] = 1.0;
        let mut s_miss = vec![0.0; 10];
        s_miss[0] = 1.0;
        let series = vec![(s_hit, l1.clone()), (s_miss, l1)];
        assert!((kdd21_score(&series, 1) - 0.5).abs() < 1e-12);
        assert_eq!(kdd21_score(&[], 1), 0.0);
    }

    #[test]
    fn boundary_tolerance_does_not_overflow() {
        let mut labels = vec![false; 5];
        labels[4] = true;
        let scores = vec![0.0, 0.0, 0.0, 0.0, 1.0];
        assert!(kdd21_hit(&scores, &labels, 100));
    }
}
