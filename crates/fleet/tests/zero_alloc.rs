//! Pins the zero-allocation guarantee of the fleet's detection-backend
//! hot path: after construction and warm-up, [`DampBackend::observe`]
//! and the full ensemble [`SeriesBackend::observe`] dispatch perform
//! **zero heap allocations** per point — including alarming points,
//! discord bursts (DAMP's compact-then-push ring stays within its
//! pre-allocated `2 × window` capacity), and non-finite input.
//!
//! Same counting-allocator technique as `core/tests/zero_alloc.rs`; the
//! counter is thread-local so libtest's background threads cannot fail
//! the invariant spuriously. CI runs this test file explicitly
//! (`--test zero_alloc` in the fleet package), so deleting or renaming
//! it fails the build — the regression guard cannot be skipped silently.

use fleet::{
    BackendSelect, DampBackend, DampOptions, DetectorBackend, EnsembleFusion, EnsembleOptions,
    SeriesBackend,
};
use oneshotstl::ScoreVerdict;
use std::alloc::{GlobalAlloc, Layout, System};
use tskit::series::DecompPoint;

/// Counts every allocation request routed to the system allocator, per
/// thread (see `core/tests/zero_alloc.rs` for why per-thread matters).
struct CountingAlloc;

thread_local! {
    static ALLOCS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.with(|c| c.get())
}

/// Deterministic noise in [-1, 1) (same LCG as the core test), so the
/// residual stream has non-trivial discord distances without an RNG dep.
fn noise_stream(n: usize, scale: f64) -> Vec<f64> {
    let mut state = 0x5eed_u64;
    (0..n)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0) * scale
        })
        .collect()
}

/// Everything the streams need, allocated up front: residuals with an
/// oscillation-burst discord at `burst_at`, plus a slowly wandering trend.
fn points(n: usize, burst_at: usize) -> Vec<DecompPoint> {
    let residuals = noise_stream(n, 0.2);
    (0..n)
        .map(|i| {
            let mut r = residuals[i];
            if (burst_at..burst_at + 8).contains(&i) {
                r += if i % 2 == 0 { 3.0 } else { -3.0 };
            }
            DecompPoint {
                trend: 10.0 + 0.05 * (2.0 * std::f64::consts::PI * i as f64 / 200.0).sin(),
                seasonal: 0.0,
                residual: r,
            }
        })
        .collect()
}

/// [`DampBackend::observe`] in steady state: plain points, a discord
/// burst, an alarming stretch (the bar sits at 0.5σ so the compressed
/// discord-distance z range actually crosses it), and non-finite input —
/// all allocation-free after warm-up.
#[test]
fn damp_backend_observe_performs_zero_heap_allocations() {
    let pts = points(2_200, 1_100);
    let mut b = DampBackend::new(DampOptions { window: 64, subseq: 8 }, 0.5, 48);

    // warm-up: fill the 2m DAMP history and absorb the normalizer's
    // 16-distance warm-up
    for p in &pts[..300] {
        std::hint::black_box(b.observe(p));
    }

    // 1) plain steady-state points
    let before = allocs();
    for p in &pts[300..1_100] {
        std::hint::black_box(b.observe(p));
    }
    assert_eq!(allocs() - before, 0, "steady-state DAMP observe allocated");

    // 2) the discord burst (ring compaction + full nearest-neighbor
    //    searches + bsf ratchet) and the tail after it
    let before = allocs();
    for p in &pts[1_100..2_100] {
        std::hint::black_box(b.observe(p));
    }
    assert_eq!(allocs() - before, 0, "discord-burst DAMP observe allocated");
    assert!(b.alarms() > 0, "the low bar must have produced DAMP alarms");

    // 3) non-finite input: the guarded path
    let before = allocs();
    std::hint::black_box(b.observe(&DecompPoint {
        trend: 10.0,
        seasonal: 0.0,
        residual: f64::NAN,
    }));
    assert_eq!(allocs() - before, 0, "non-finite DAMP observe allocated");

    // 4) and the stream continues allocation-free
    let before = allocs();
    for p in &pts[2_100..] {
        std::hint::black_box(b.observe(p));
    }
    assert_eq!(allocs() - before, 0, "post-excursion DAMP observe allocated");
}

/// The full ensemble dispatch — DAMP + trend-CUSUM + the fused member,
/// under both fusion rules — is allocation-free in steady state,
/// including alarming fused verdicts (the OR / weighted-vote paths) and
/// non-finite input.
#[test]
fn ensemble_observe_performs_zero_heap_allocations() {
    for (fusion, label) in
        [(EnsembleFusion::Max, "Max"), (EnsembleFusion::WeightedRank, "WeightedRank")]
    {
        let pts = points(2_200, 1_100);
        let select = BackendSelect::Ensemble(EnsembleOptions {
            damp: DampOptions { window: 64, subseq: 8 },
            fusion,
            weights: [1.0, 2.0, 0.5],
            ..Default::default()
        });
        let mut b = SeriesBackend::build(select, 0.5, 48).expect("ensemble always builds");
        let quiet = ScoreVerdict { score: 0.1, z: 0.1, cusum: 0.0, is_anomaly: false };
        let loud = ScoreVerdict { score: 6.0, z: 6.0, cusum: 2.0, is_anomaly: true };

        // warm-up: DAMP history + normalizer, trend-CUSUM innovation seed
        for p in &pts[..300] {
            std::hint::black_box(b.observe(p, &quiet));
        }

        // 1) plain steady-state points
        let before = allocs();
        for p in &pts[300..1_100] {
            std::hint::black_box(b.observe(p, &quiet));
        }
        assert_eq!(allocs() - before, 0, "[{label}] steady-state ensemble observe allocated");

        // 2) the discord burst with an alarming fused member: every
        //    fusion input fires at once
        let before = allocs();
        for p in &pts[1_100..2_100] {
            std::hint::black_box(b.observe(p, &loud));
        }
        assert_eq!(allocs() - before, 0, "[{label}] alarming ensemble observe allocated");
        let (damp_alarms, _) = b.alarm_counts();
        assert!(damp_alarms > 0, "[{label}] the burst must trip the DAMP member");

        // 3) non-finite input through the full dispatch
        let before = allocs();
        std::hint::black_box(b.observe(
            &DecompPoint { trend: f64::NAN, seasonal: 0.0, residual: f64::NAN },
            &quiet,
        ));
        assert_eq!(allocs() - before, 0, "[{label}] non-finite ensemble observe allocated");

        // 4) and the stream continues allocation-free
        let before = allocs();
        for p in &pts[2_100..] {
            std::hint::black_box(b.observe(p, &quiet));
        }
        assert_eq!(allocs() - before, 0, "[{label}] post-excursion ensemble observe allocated");
    }
}
