//! The multi-tenant engine: routes batches to shard workers, admits new
//! series, applies backpressure, snapshots and restores the whole fleet.
//!
//! Two ingest styles share one submission path:
//!
//! - [`FleetEngine::ingest`] — synchronous: submit one batch, wait for its
//!   outputs. At most one batch is ever in flight.
//! - [`FleetEngine::submit`] + [`FleetEngine::next_batch`] — pipelined:
//!   keep several batches in flight so shard workers never idle between
//!   batches. This is where bounded queues matter: with
//!   [`FleetConfig::queue_capacity`] set, a full shard either blocks the
//!   submitter or rejects the batch ([`crate::QueuePolicy`]).

use crate::config::{FleetConfig, QueuePolicy};
use crate::error::FleetError;
use crate::series::SeriesState;
use crate::shard::{
    run_worker, SeriesEntry, SeriesSnapshot, ShardMsg, ShardState, WalMeta, WalOp,
};
use crate::types::{FleetStats, Record, ScoredPoint, SeriesKey, ShardStats};
use crate::wal::Wal;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// How often (in ingest batches) the engine sweeps for TTL-expired series
/// when a TTL is configured.
const TTL_SWEEP_EVERY: u64 = 64;

/// Lifetime counters carried across snapshot/restore (shard counters reset
/// on restore because the shard count may change).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CarriedTotals {
    /// Series evicted by TTL before the snapshot.
    pub evicted: u64,
    /// Series admitted before the snapshot.
    pub admitted: u64,
    /// Records processed before the snapshot.
    pub points: u64,
    /// Anomalies flagged before the snapshot.
    pub anomalies: u64,
}

/// A complete, self-contained image of an engine: configuration, clocks,
/// and every series' state. Produced by [`FleetEngine::snapshot`]; turned
/// into bytes by [`crate::codec`].
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSnapshot {
    /// Engine configuration at snapshot time.
    pub config: FleetConfig,
    /// Engine clock (max record `t` seen).
    pub clock: u64,
    /// Ingest batches processed (TTL sweep cadence).
    pub batches: u64,
    /// Lifetime counters.
    pub totals: CarriedTotals,
    /// Every series, sorted by key.
    pub series: Vec<SeriesSnapshot>,
}

/// A shard request channel: unbounded, or bounded when
/// [`FleetConfig::queue_capacity`] is set (the blocking half of the
/// backpressure story — the rejecting half is the engine-side depth check
/// in [`FleetEngine::submit`]).
enum ShardSender {
    Unbounded(Sender<ShardMsg>),
    Bounded(SyncSender<ShardMsg>),
}

impl ShardSender {
    /// Sends, blocking on a full bounded queue. Errors only when the
    /// worker is gone.
    fn send(&self, msg: ShardMsg) -> Result<(), ()> {
        match self {
            ShardSender::Unbounded(tx) => tx.send(msg).map_err(|_| ()),
            ShardSender::Bounded(tx) => tx.send(msg).map_err(|_| ()),
        }
    }
}

/// One submitted batch whose outputs have not been collected yet.
struct PendingBatch {
    /// Records in the batch (output slots to fill).
    n: usize,
    /// Shard replies outstanding.
    in_flight: usize,
    /// Where those replies arrive.
    reply_rx: Receiver<Result<Vec<(usize, ScoredPoint)>, String>>,
}

/// Keeps a stalled shard worker parked until dropped. Test support — see
/// [`FleetEngine::stall_shard`].
#[doc(hidden)]
pub struct StallGuard {
    _release: Sender<()>,
}

/// Sharded multi-series streaming engine. See the crate docs for a tour.
pub struct FleetEngine {
    config: Arc<FleetConfig>,
    senders: Vec<ShardSender>,
    depths: Vec<Arc<AtomicUsize>>,
    handles: Vec<JoinHandle<()>>,
    clock: u64,
    batches: u64,
    carried: CarriedTotals,
    pending: VecDeque<PendingBatch>,
    /// `Some(fsync interval)` once a WAL is attached; also the flag that
    /// turns on frame emission in [`FleetEngine::submit`].
    wal_fsync: Option<u64>,
    /// Per-shard appends since that shard's last fsync. The interval is
    /// counted per shard, not per engine-wide batch seq: a shard that only
    /// sees every k-th batch must still fsync every `fsync_every` of *its*
    /// appends, or its loss window would silently grow k-fold.
    wal_unsynced: Vec<u64>,
}

impl FleetEngine {
    /// Starts an empty engine: spawns `config.shards` worker threads.
    pub fn new(config: FleetConfig) -> Result<Self, FleetError> {
        config.validate().map_err(FleetError::Config)?;
        let config = Arc::new(config);
        let states =
            (0..config.shards).map(|i| ShardState::new(i, Arc::clone(&config))).collect();
        Ok(Self::spawn(config, states, 0, 0, CarriedTotals::default()))
    }

    /// Rebuilds an engine from a snapshot. The restored engine's scoring
    /// stream is bit-identical to the snapshotted engine's continuation.
    /// The shard count comes from the snapshot's config; keys re-route
    /// deterministically, so a different count would also be correct —
    /// use [`FleetEngine::restore_with_shards`] to override.
    pub fn restore(snapshot: FleetSnapshot) -> Result<Self, FleetError> {
        let shards = snapshot.config.shards;
        Self::restore_with_shards(snapshot, shards)
    }

    /// [`FleetEngine::restore`] with an explicit shard count (scale a
    /// snapshot up or down on the way back in).
    pub fn restore_with_shards(
        mut snapshot: FleetSnapshot,
        shards: usize,
    ) -> Result<Self, FleetError> {
        snapshot.config.shards = shards;
        snapshot.config.validate().map_err(FleetError::Config)?;
        let config = Arc::new(snapshot.config);
        let mut states: Vec<ShardState> =
            (0..shards).map(|i| ShardState::new(i, Arc::clone(&config))).collect();
        for s in snapshot.series {
            let shard = s.key.shard_of(shards);
            let state = SeriesState::from_snapshot(s.phase, &config)?;
            states[shard].registry.insert(s.key, SeriesEntry { state, last_seen: s.last_seen });
        }
        Ok(Self::spawn(config, states, snapshot.clock, snapshot.batches, snapshot.totals))
    }

    fn spawn(
        config: Arc<FleetConfig>,
        states: Vec<ShardState>,
        clock: u64,
        batches: u64,
        carried: CarriedTotals,
    ) -> Self {
        let mut senders = Vec::with_capacity(states.len());
        let mut depths = Vec::with_capacity(states.len());
        let mut handles = Vec::with_capacity(states.len());
        for state in states {
            let (sender, rx) = match config.queue_capacity {
                None => {
                    let (tx, rx) = channel::<ShardMsg>();
                    (ShardSender::Unbounded(tx), rx)
                }
                Some(cap) => {
                    let (tx, rx) = sync_channel::<ShardMsg>(cap);
                    (ShardSender::Bounded(tx), rx)
                }
            };
            let depth = Arc::new(AtomicUsize::new(0));
            let worker_depth = Arc::clone(&depth);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("fleet-shard-{}", state.index))
                    .spawn(move || run_worker(state, rx, worker_depth))
                    .expect("spawning a shard worker thread"),
            );
            senders.push(sender);
            depths.push(depth);
        }
        let shards = senders.len();
        FleetEngine {
            config,
            senders,
            depths,
            handles,
            clock,
            batches,
            carried,
            pending: VecDeque::new(),
            wal_fsync: None,
            wal_unsynced: vec![0; shards],
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Number of worker shards.
    pub fn shard_count(&self) -> usize {
        self.senders.len()
    }

    /// Engine clock: the largest record `t` ingested so far.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Ingest batches processed so far. This is the sequence number WAL
    /// frames and snapshots are stamped with, so it is also the durable
    /// recovery point ([`crate::DurableFleet`]).
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Batches submitted via [`FleetEngine::submit`] whose outputs have
    /// not been collected yet.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    fn send(&self, shard: usize, msg: ShardMsg) -> Result<(), FleetError> {
        self.depths[shard].fetch_add(1, Ordering::Relaxed);
        self.senders[shard].send(msg).map_err(|_| FleetError::ShardDown)
    }

    /// Submits a batch without waiting for its outputs (pipelined ingest):
    /// shard workers start on this batch while the caller prepares the
    /// next one. Collect outputs in submission order with
    /// [`FleetEngine::next_batch`].
    ///
    /// With a bounded queue ([`FleetConfig::queue_capacity`]) and
    /// [`QueuePolicy::Reject`], a full target shard fails the whole
    /// submission with [`FleetError::Backpressure`] *before* anything is
    /// sent, logged, or clocked — the batch can be retried verbatim. With
    /// [`QueuePolicy::Block`] the call blocks until every target shard has
    /// queue room. One caveat under either policy: when a TTL is
    /// configured, every 64th submission runs the eviction sweep
    /// synchronously (its control messages use blocking sends and the
    /// call waits for every shard's reply), so that submission can stall
    /// briefly even under `Reject` — the sweep must stay at a
    /// deterministic batch boundary for WAL replay to reproduce it.
    ///
    /// When a WAL is attached (see [`crate::DurableFleet`]), each shard
    /// appends its slice of the batch to its log before applying it.
    pub fn submit(&mut self, batch: Vec<Record>) -> Result<(), FleetError> {
        let n = batch.len();
        let shards = self.shard_count();
        // route on a scratch clock: a rejected batch must leave no trace
        let mut clock = self.clock;
        let mut routed: Vec<Vec<(usize, Record, u64)>> = vec![Vec::new(); shards];
        for (idx, rec) in batch.into_iter().enumerate() {
            // a bounded clock step contains timestamp poisoning (see
            // `FleetConfig::max_clock_step`); the record keeps its raw `t`
            // in the output, but liveness tracking uses the clamped value
            // so a future-dated record is neither eviction-immune nor able
            // to age out the rest of the fleet
            let t = match self.config.max_clock_step {
                Some(step) => rec.t.min(clock.saturating_add(step)),
                None => rec.t,
            };
            clock = clock.max(t);
            routed[rec.key.shard_of(shards)].push((idx, rec, t));
        }
        let wal_on = self.wal_fsync.is_some();
        // shards that receive a message: those with items — plus shard 0
        // for an empty batch under WAL, because even an empty batch
        // advances the sweep cadence and replay must reproduce it
        let is_target = |shard: usize, items: &Vec<(usize, Record, u64)>| {
            !items.is_empty() || (wal_on && n == 0 && shard == 0)
        };
        if let (Some(cap), QueuePolicy::Reject) =
            (self.config.queue_capacity, self.config.queue_policy)
        {
            // depth can only shrink concurrently (workers drain, and this
            // `&mut self` method is the sole submitter), so a passing
            // check here guarantees the sends below never overflow
            for (shard, items) in routed.iter().enumerate() {
                if is_target(shard, items) && self.depths[shard].load(Ordering::Relaxed) >= cap
                {
                    return Err(FleetError::Backpressure { shard });
                }
            }
        }
        let seq = self.batches + 1;
        let (reply_tx, reply_rx) = channel();
        let mut in_flight = 0usize;
        for (shard, items) in routed.into_iter().enumerate() {
            if !is_target(shard, &items) {
                continue;
            }
            // the fsync interval is per shard's own appends, so every
            // shard honours the configured loss window no matter how the
            // router distributes batches across shards
            let wal = self.wal_fsync.map(|every| {
                let sync = self.wal_unsynced[shard] + 1 >= every;
                self.wal_unsynced[shard] = if sync { 0 } else { self.wal_unsynced[shard] + 1 };
                WalMeta { seq, batch_n: n as u32, sync }
            });
            self.send(shard, ShardMsg::Ingest { items, wal, reply: reply_tx.clone() })?;
            in_flight += 1;
        }
        self.clock = clock;
        self.batches = seq;
        self.pending.push_back(PendingBatch { n, in_flight, reply_rx });
        if self.config.ttl.is_some() && self.batches.is_multiple_of(TTL_SWEEP_EVERY) {
            self.evict_idle(self.clock)?;
        }
        Ok(())
    }

    /// Collects the outputs of the oldest in-flight batch (submission
    /// order), blocking until its shards reply; `Ok(None)` when nothing is
    /// in flight. Returns one [`ScoredPoint`] per record, in batch order.
    pub fn next_batch(&mut self) -> Result<Option<Vec<ScoredPoint>>, FleetError> {
        let Some(p) = self.pending.pop_front() else {
            return Ok(None);
        };
        let mut out: Vec<Option<ScoredPoint>> = (0..p.n).map(|_| None).collect();
        let mut failed = None;
        for _ in 0..p.in_flight {
            match p.reply_rx.recv() {
                Err(_) => return Err(FleetError::ShardDown),
                // a WAL failure on one shard: drain the rest, then report
                Ok(Err(msg)) => failed = Some(FleetError::Io(msg)),
                Ok(Ok(part)) => {
                    for (idx, sp) in part {
                        out[idx] = Some(sp);
                    }
                }
            }
        }
        if let Some(e) = failed {
            return Err(e);
        }
        Ok(Some(
            out.into_iter()
                .map(|o| o.expect("every batch index answered by exactly one shard"))
                .collect(),
        ))
    }

    /// Ingests a batch of records and returns one [`ScoredPoint`] per
    /// record, in batch order. Records are routed to shards by stable key
    /// hash and processed in parallel across shards; per-series order
    /// within the batch is preserved.
    ///
    /// Synchronous: fails with [`FleetError::InFlight`] if pipelined
    /// batches from [`FleetEngine::submit`] are still uncollected.
    pub fn ingest(&mut self, batch: Vec<Record>) -> Result<Vec<ScoredPoint>, FleetError> {
        if !self.pending.is_empty() {
            return Err(FleetError::InFlight);
        }
        self.submit(batch)?;
        Ok(self.next_batch()?.expect("the batch just submitted is in flight"))
    }

    /// Convenience single-record ingest.
    pub fn ingest_one(
        &mut self,
        key: impl Into<SeriesKey>,
        t: u64,
        value: f64,
    ) -> Result<ScoredPoint, FleetError> {
        let mut out = self.ingest(vec![Record::new(key, t, value)])?;
        Ok(out.pop().expect("one record in, one point out"))
    }

    /// Evicts series whose `last_seen` is more than the configured TTL
    /// behind `now`. Returns how many series were evicted. No-op without a
    /// configured TTL.
    ///
    /// Liveness clocks live in the engine's (possibly step-bounded) clock
    /// domain, so `now` is clamped the same way records are: with
    /// `max_clock_step` configured, a wall-clock `now` far ahead of the
    /// engine clock cannot evict the whole fleet in one call.
    pub fn evict_idle(&mut self, now: u64) -> Result<usize, FleetError> {
        let Some(ttl) = self.config.ttl else { return Ok(0) };
        let now = match self.config.max_clock_step {
            Some(step) => now.min(self.clock.saturating_add(step)),
            None => now,
        };
        let (tx, rx) = channel();
        for shard in 0..self.shard_count() {
            self.send(shard, ShardMsg::EvictIdle { now, ttl, reply: tx.clone() })?;
        }
        drop(tx);
        let mut total = 0;
        for _ in 0..self.shard_count() {
            total += rx.recv().map_err(|_| FleetError::ShardDown)?;
        }
        Ok(total)
    }

    /// Forecasts `1..=horizon` steps ahead for one series (`None` when the
    /// series is unknown or still warming).
    pub fn forecast(
        &self,
        key: &SeriesKey,
        horizon: usize,
    ) -> Result<Option<Vec<f64>>, FleetError> {
        let shard = key.shard_of(self.shard_count());
        let (tx, rx) = channel();
        self.send(shard, ShardMsg::Forecast { key: key.clone(), horizon, reply: tx })?;
        rx.recv().map_err(|_| FleetError::ShardDown)
    }

    /// Aggregate + per-shard statistics.
    pub fn stats(&self) -> Result<FleetStats, FleetError> {
        let (tx, rx) = channel();
        for shard in 0..self.shard_count() {
            self.send(shard, ShardMsg::Stats { reply: tx.clone() })?;
        }
        drop(tx);
        let mut per_shard: Vec<ShardStats> = Vec::with_capacity(self.shard_count());
        for _ in 0..self.shard_count() {
            per_shard.push(rx.recv().map_err(|_| FleetError::ShardDown)?);
        }
        per_shard.sort_by_key(|s| s.shard);
        let mut stats = FleetStats {
            evicted: self.carried.evicted,
            admitted: self.carried.admitted,
            points: self.carried.points,
            anomalies: self.carried.anomalies,
            ..Default::default()
        };
        for s in &per_shard {
            stats.live += s.live;
            stats.warming += s.warming;
            stats.rejected += s.rejected;
            stats.evicted += s.evicted;
            stats.admitted += s.admitted;
            stats.points += s.points;
            stats.anomalies += s.anomalies;
        }
        stats.shards = per_shard;
        Ok(stats)
    }

    /// Serializes the complete engine state. The engine stays usable; the
    /// snapshot is a consistent point-in-time image because the engine's
    /// `&mut` API means no ingest can be interleaved with the collection.
    pub fn snapshot(&mut self) -> Result<FleetSnapshot, FleetError> {
        let (tx, rx) = channel();
        for shard in 0..self.shard_count() {
            self.send(shard, ShardMsg::Snapshot { reply: tx.clone() })?;
        }
        drop(tx);
        let mut series: Vec<SeriesSnapshot> = Vec::new();
        let mut totals = self.carried;
        for _ in 0..self.shard_count() {
            let (part, stats) = rx.recv().map_err(|_| FleetError::ShardDown)?;
            series.extend(part);
            totals.evicted += stats.evicted;
            totals.admitted += stats.admitted;
            totals.points += stats.points;
            totals.anomalies += stats.anomalies;
        }
        series.sort_by(|a, b| a.key.cmp(&b.key));
        Ok(FleetSnapshot {
            config: (*self.config).clone(),
            clock: self.clock,
            batches: self.batches,
            totals,
            series,
        })
    }

    /// [`FleetEngine::snapshot`] straight to the versioned binary format.
    pub fn snapshot_bytes(&mut self) -> Result<Vec<u8>, FleetError> {
        Ok(crate::codec::encode(&self.snapshot()?))
    }

    /// Restores an engine from [`FleetEngine::snapshot_bytes`] output.
    pub fn restore_bytes(bytes: &[u8]) -> Result<Self, FleetError> {
        Self::restore(crate::codec::decode(bytes)?)
    }

    /// Broadcasts one WAL control op per shard and waits for every ack.
    fn wal_ctl(&self, ops: Vec<WalOp>) -> Result<(), FleetError> {
        debug_assert_eq!(ops.len(), self.shard_count());
        let (tx, rx) = channel();
        for (shard, op) in ops.into_iter().enumerate() {
            self.send(shard, ShardMsg::WalCtl { op, reply: tx.clone() })?;
        }
        drop(tx);
        for _ in 0..self.shard_count() {
            rx.recv().map_err(|_| FleetError::ShardDown)?.map_err(FleetError::Io)?;
        }
        Ok(())
    }

    /// Hands each shard worker its WAL segment and turns on write-ahead
    /// logging for subsequent submissions, fsyncing every `fsync_every`
    /// batches. Used by [`crate::DurableFleet`]; attach *after* any
    /// recovery replay so replayed batches are not re-logged.
    pub(crate) fn attach_wal(
        &mut self,
        wals: Vec<Wal>,
        fsync_every: u64,
    ) -> Result<(), FleetError> {
        assert_eq!(wals.len(), self.shard_count(), "one WAL segment per shard");
        self.wal_ctl(wals.into_iter().map(|w| WalOp::Attach(Box::new(w))).collect())?;
        self.wal_fsync = Some(fsync_every.max(1));
        self.wal_unsynced = vec![0; self.shard_count()];
        Ok(())
    }

    /// Rotates every shard's WAL to a fresh segment starting after batch
    /// `start_seq` (called at snapshot time, so the old segments become
    /// garbage once the snapshot is durable).
    pub(crate) fn rotate_wal(&mut self, start_seq: u64) -> Result<(), FleetError> {
        self.wal_ctl((0..self.shard_count()).map(|_| WalOp::Rotate { start_seq }).collect())?;
        // rotation fsyncs the outgoing segment on every shard
        self.wal_unsynced = vec![0; self.shard_count()];
        Ok(())
    }

    /// Forces an fsync of every shard's WAL segment.
    pub(crate) fn sync_wal(&mut self) -> Result<(), FleetError> {
        self.wal_ctl((0..self.shard_count()).map(|_| WalOp::Sync).collect())
    }

    /// Test support: parks shard `shard`'s worker until the returned guard
    /// drops, so tests can fill a bounded queue deterministically. The
    /// worker dequeues the stall message *before* parking (freeing its
    /// queue slot), so the full configured capacity remains fillable; spin
    /// on [`FleetEngine::queue_depth`] reaching 0 to know the worker is
    /// parked.
    #[doc(hidden)]
    pub fn stall_shard(&self, shard: usize) -> Result<StallGuard, FleetError> {
        let (tx, rx) = channel();
        self.send(shard, ShardMsg::Stall { release: rx })?;
        Ok(StallGuard { _release: tx })
    }

    /// Test support: current sampled queue depth of one shard (the same
    /// gauge [`ShardStats::queue_depth`] reports, without a stats
    /// round-trip — usable while the worker is stalled).
    #[doc(hidden)]
    pub fn queue_depth(&self, shard: usize) -> usize {
        self.depths[shard].load(Ordering::Relaxed)
    }
}

impl Drop for FleetEngine {
    fn drop(&mut self) {
        for tx in &self.senders {
            let _ = tx.send(ShardMsg::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}
