//! The multi-tenant engine: routes batches to shard workers, admits new
//! series, snapshots and restores the whole fleet.

use crate::config::FleetConfig;
use crate::error::FleetError;
use crate::series::SeriesState;
use crate::shard::{run_worker, SeriesEntry, SeriesSnapshot, ShardMsg, ShardState};
use crate::types::{FleetStats, Record, ScoredPoint, SeriesKey, ShardStats};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// How often (in ingest batches) the engine sweeps for TTL-expired series
/// when a TTL is configured.
const TTL_SWEEP_EVERY: u64 = 64;

/// Lifetime counters carried across snapshot/restore (shard counters reset
/// on restore because the shard count may change).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CarriedTotals {
    /// Series evicted by TTL before the snapshot.
    pub evicted: u64,
    /// Series admitted before the snapshot.
    pub admitted: u64,
    /// Records processed before the snapshot.
    pub points: u64,
    /// Anomalies flagged before the snapshot.
    pub anomalies: u64,
}

/// A complete, self-contained image of an engine: configuration, clocks,
/// and every series' state. Produced by [`FleetEngine::snapshot`]; turned
/// into bytes by [`crate::codec`].
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSnapshot {
    /// Engine configuration at snapshot time.
    pub config: FleetConfig,
    /// Engine clock (max record `t` seen).
    pub clock: u64,
    /// Ingest batches processed (TTL sweep cadence).
    pub batches: u64,
    /// Lifetime counters.
    pub totals: CarriedTotals,
    /// Every series, sorted by key.
    pub series: Vec<SeriesSnapshot>,
}

/// Sharded multi-series streaming engine. See the crate docs for a tour.
pub struct FleetEngine {
    config: Arc<FleetConfig>,
    senders: Vec<Sender<ShardMsg>>,
    depths: Vec<Arc<AtomicUsize>>,
    handles: Vec<JoinHandle<()>>,
    clock: u64,
    batches: u64,
    carried: CarriedTotals,
}

impl FleetEngine {
    /// Starts an empty engine: spawns `config.shards` worker threads.
    pub fn new(config: FleetConfig) -> Result<Self, FleetError> {
        config.validate().map_err(FleetError::Config)?;
        let config = Arc::new(config);
        let states =
            (0..config.shards).map(|i| ShardState::new(i, Arc::clone(&config))).collect();
        Ok(Self::spawn(config, states, 0, 0, CarriedTotals::default()))
    }

    /// Rebuilds an engine from a snapshot. The restored engine's scoring
    /// stream is bit-identical to the snapshotted engine's continuation.
    /// The shard count comes from the snapshot's config; keys re-route
    /// deterministically, so a different count would also be correct —
    /// use [`FleetEngine::restore_with_shards`] to override.
    pub fn restore(snapshot: FleetSnapshot) -> Result<Self, FleetError> {
        let shards = snapshot.config.shards;
        Self::restore_with_shards(snapshot, shards)
    }

    /// [`FleetEngine::restore`] with an explicit shard count (scale a
    /// snapshot up or down on the way back in).
    pub fn restore_with_shards(
        mut snapshot: FleetSnapshot,
        shards: usize,
    ) -> Result<Self, FleetError> {
        snapshot.config.shards = shards;
        snapshot.config.validate().map_err(FleetError::Config)?;
        let config = Arc::new(snapshot.config);
        let mut states: Vec<ShardState> =
            (0..shards).map(|i| ShardState::new(i, Arc::clone(&config))).collect();
        for s in snapshot.series {
            let shard = s.key.shard_of(shards);
            let state = SeriesState::from_snapshot(s.phase, &config)?;
            states[shard].registry.insert(s.key, SeriesEntry { state, last_seen: s.last_seen });
        }
        Ok(Self::spawn(config, states, snapshot.clock, snapshot.batches, snapshot.totals))
    }

    fn spawn(
        config: Arc<FleetConfig>,
        states: Vec<ShardState>,
        clock: u64,
        batches: u64,
        carried: CarriedTotals,
    ) -> Self {
        let mut senders = Vec::with_capacity(states.len());
        let mut depths = Vec::with_capacity(states.len());
        let mut handles = Vec::with_capacity(states.len());
        for state in states {
            let (tx, rx) = channel::<ShardMsg>();
            let depth = Arc::new(AtomicUsize::new(0));
            let worker_depth = Arc::clone(&depth);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("fleet-shard-{}", state.index))
                    .spawn(move || run_worker(state, rx, worker_depth))
                    .expect("spawning a shard worker thread"),
            );
            senders.push(tx);
            depths.push(depth);
        }
        FleetEngine { config, senders, depths, handles, clock, batches, carried }
    }

    /// The engine configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Number of worker shards.
    pub fn shard_count(&self) -> usize {
        self.senders.len()
    }

    /// Engine clock: the largest record `t` ingested so far.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    fn send(&self, shard: usize, msg: ShardMsg) -> Result<(), FleetError> {
        self.depths[shard].fetch_add(1, Ordering::Relaxed);
        self.senders[shard].send(msg).map_err(|_| FleetError::ShardDown)
    }

    /// Ingests a batch of records and returns one [`ScoredPoint`] per
    /// record, in batch order. Records are routed to shards by stable key
    /// hash and processed in parallel across shards; per-series order
    /// within the batch is preserved.
    pub fn ingest(&mut self, batch: Vec<Record>) -> Result<Vec<ScoredPoint>, FleetError> {
        let n = batch.len();
        let shards = self.shard_count();
        let mut routed: Vec<Vec<(usize, Record, u64)>> = vec![Vec::new(); shards];
        for (idx, rec) in batch.into_iter().enumerate() {
            // a bounded clock step contains timestamp poisoning (see
            // `FleetConfig::max_clock_step`); the record keeps its raw `t`
            // in the output, but liveness tracking uses the clamped value
            // so a future-dated record is neither eviction-immune nor able
            // to age out the rest of the fleet
            let t = match self.config.max_clock_step {
                Some(step) => rec.t.min(self.clock.saturating_add(step)),
                None => rec.t,
            };
            self.clock = self.clock.max(t);
            routed[rec.key.shard_of(shards)].push((idx, rec, t));
        }
        let (reply_tx, reply_rx) = channel();
        let mut in_flight = 0usize;
        for (shard, items) in routed.into_iter().enumerate() {
            if items.is_empty() {
                continue;
            }
            self.send(shard, ShardMsg::Ingest { items, reply: reply_tx.clone() })?;
            in_flight += 1;
        }
        drop(reply_tx);
        let mut out: Vec<Option<ScoredPoint>> = (0..n).map(|_| None).collect();
        for _ in 0..in_flight {
            let part = reply_rx.recv().map_err(|_| FleetError::ShardDown)?;
            for (idx, sp) in part {
                out[idx] = Some(sp);
            }
        }
        self.batches += 1;
        if self.config.ttl.is_some() && self.batches.is_multiple_of(TTL_SWEEP_EVERY) {
            self.evict_idle(self.clock)?;
        }
        Ok(out
            .into_iter()
            .map(|o| o.expect("every batch index answered by exactly one shard"))
            .collect())
    }

    /// Convenience single-record ingest.
    pub fn ingest_one(
        &mut self,
        key: impl Into<SeriesKey>,
        t: u64,
        value: f64,
    ) -> Result<ScoredPoint, FleetError> {
        let mut out = self.ingest(vec![Record::new(key, t, value)])?;
        Ok(out.pop().expect("one record in, one point out"))
    }

    /// Evicts series whose `last_seen` is more than the configured TTL
    /// behind `now`. Returns how many series were evicted. No-op without a
    /// configured TTL.
    ///
    /// Liveness clocks live in the engine's (possibly step-bounded) clock
    /// domain, so `now` is clamped the same way records are: with
    /// `max_clock_step` configured, a wall-clock `now` far ahead of the
    /// engine clock cannot evict the whole fleet in one call.
    pub fn evict_idle(&mut self, now: u64) -> Result<usize, FleetError> {
        let Some(ttl) = self.config.ttl else { return Ok(0) };
        let now = match self.config.max_clock_step {
            Some(step) => now.min(self.clock.saturating_add(step)),
            None => now,
        };
        let (tx, rx) = channel();
        for shard in 0..self.shard_count() {
            self.send(shard, ShardMsg::EvictIdle { now, ttl, reply: tx.clone() })?;
        }
        drop(tx);
        let mut total = 0;
        for _ in 0..self.shard_count() {
            total += rx.recv().map_err(|_| FleetError::ShardDown)?;
        }
        Ok(total)
    }

    /// Forecasts `1..=horizon` steps ahead for one series (`None` when the
    /// series is unknown or still warming).
    pub fn forecast(
        &self,
        key: &SeriesKey,
        horizon: usize,
    ) -> Result<Option<Vec<f64>>, FleetError> {
        let shard = key.shard_of(self.shard_count());
        let (tx, rx) = channel();
        self.send(shard, ShardMsg::Forecast { key: key.clone(), horizon, reply: tx })?;
        rx.recv().map_err(|_| FleetError::ShardDown)
    }

    /// Aggregate + per-shard statistics.
    pub fn stats(&self) -> Result<FleetStats, FleetError> {
        let (tx, rx) = channel();
        for shard in 0..self.shard_count() {
            self.send(shard, ShardMsg::Stats { reply: tx.clone() })?;
        }
        drop(tx);
        let mut per_shard: Vec<ShardStats> = Vec::with_capacity(self.shard_count());
        for _ in 0..self.shard_count() {
            per_shard.push(rx.recv().map_err(|_| FleetError::ShardDown)?);
        }
        per_shard.sort_by_key(|s| s.shard);
        let mut stats = FleetStats {
            evicted: self.carried.evicted,
            admitted: self.carried.admitted,
            points: self.carried.points,
            anomalies: self.carried.anomalies,
            ..Default::default()
        };
        for s in &per_shard {
            stats.live += s.live;
            stats.warming += s.warming;
            stats.rejected += s.rejected;
            stats.evicted += s.evicted;
            stats.admitted += s.admitted;
            stats.points += s.points;
            stats.anomalies += s.anomalies;
        }
        stats.shards = per_shard;
        Ok(stats)
    }

    /// Serializes the complete engine state. The engine stays usable; the
    /// snapshot is a consistent point-in-time image because the engine's
    /// `&mut` API means no ingest can be interleaved with the collection.
    pub fn snapshot(&mut self) -> Result<FleetSnapshot, FleetError> {
        let (tx, rx) = channel();
        for shard in 0..self.shard_count() {
            self.send(shard, ShardMsg::Snapshot { reply: tx.clone() })?;
        }
        drop(tx);
        let mut series: Vec<SeriesSnapshot> = Vec::new();
        let mut totals = self.carried;
        for _ in 0..self.shard_count() {
            let (part, stats) = rx.recv().map_err(|_| FleetError::ShardDown)?;
            series.extend(part);
            totals.evicted += stats.evicted;
            totals.admitted += stats.admitted;
            totals.points += stats.points;
            totals.anomalies += stats.anomalies;
        }
        series.sort_by(|a, b| a.key.cmp(&b.key));
        Ok(FleetSnapshot {
            config: (*self.config).clone(),
            clock: self.clock,
            batches: self.batches,
            totals,
            series,
        })
    }

    /// [`FleetEngine::snapshot`] straight to the versioned binary format.
    pub fn snapshot_bytes(&mut self) -> Result<Vec<u8>, FleetError> {
        Ok(crate::codec::encode(&self.snapshot()?))
    }

    /// Restores an engine from [`FleetEngine::snapshot_bytes`] output.
    pub fn restore_bytes(bytes: &[u8]) -> Result<Self, FleetError> {
        Self::restore(crate::codec::decode(bytes)?)
    }
}

impl Drop for FleetEngine {
    fn drop(&mut self) {
        for tx in &self.senders {
            let _ = tx.send(ShardMsg::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}
