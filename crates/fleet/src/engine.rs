//! The multi-tenant engine: routes batches to shard workers, admits new
//! series, applies backpressure, snapshots and restores the whole fleet.
//!
//! Two ingest styles share one submission path:
//!
//! - [`FleetEngine::ingest`] — synchronous: submit one batch, wait for its
//!   outputs. At most one batch is ever in flight.
//! - [`FleetEngine::submit`] + [`FleetEngine::next_batch`] — pipelined:
//!   keep several batches in flight so shard workers never idle between
//!   batches. This is where bounded queues matter: with
//!   [`FleetConfig::queue_capacity`] set, a full shard either blocks the
//!   submitter or rejects the batch ([`crate::QueuePolicy`]).

use crate::batch::ShardBatch;
use crate::config::{AdmitOptions, FleetConfig, QueuePolicy};
use crate::error::FleetError;
use crate::series::SeriesState;
use crate::shard::{
    run_worker, BatchReply, SeriesEntry, SeriesSnapshot, ShardMsg, ShardState, WalMeta, WalOp,
};
use crate::types::{FleetStats, Record, ScoredPoint, SeriesKey, ShardStats};
use crate::wal::GroupWal;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// How often (in ingest batches) the engine sweeps for TTL-expired series
/// when a TTL is configured.
const TTL_SWEEP_EVERY: u64 = 64;

/// Lifetime counters carried across snapshot/restore (shard counters reset
/// on restore because the shard count may change).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CarriedTotals {
    /// Series evicted by TTL before the snapshot.
    pub evicted: u64,
    /// Series admitted before the snapshot.
    pub admitted: u64,
    /// Records processed before the snapshot.
    pub points: u64,
    /// Anomalies flagged before the snapshot.
    pub anomalies: u64,
    /// WAL re-arm attempts before the snapshot (codec v8; decoded as 0
    /// from older snapshots).
    pub wal_retries: u64,
    /// Shard workers respawned before the snapshot (codec v8).
    pub shard_restarts: u64,
    /// Batches accepted un-durably before the snapshot (codec v8).
    pub undurable_batches: u64,
}

/// A complete, self-contained image of an engine: configuration, clocks,
/// and every series' state. Produced by [`FleetEngine::snapshot`]; turned
/// into bytes by [`crate::codec`].
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSnapshot {
    /// Engine configuration at snapshot time.
    pub config: FleetConfig,
    /// Engine clock (max record `t` seen).
    pub clock: u64,
    /// Ingest batches processed (TTL sweep cadence).
    pub batches: u64,
    /// Lifetime counters.
    pub totals: CarriedTotals,
    /// Every series, sorted by key.
    pub series: Vec<SeriesSnapshot>,
}

/// An incremental engine image: only the series whose state changed since
/// the previous snapshot collection, plus the keys removed since then.
/// Folding it onto that previous image ([`FleetDelta::fold_into`]) yields
/// exactly the [`FleetSnapshot`] a full collection at `batches` would have
/// produced. Produced by [`FleetEngine::snapshot_delta`]; persisted and
/// chained by [`crate::DurableFleet`].
#[derive(Debug, Clone, PartialEq)]
pub struct FleetDelta {
    /// Engine configuration at collection time.
    pub config: FleetConfig,
    /// Batch seq of the image this delta chains onto.
    pub prev_batches: u64,
    /// Engine clock at collection time.
    pub clock: u64,
    /// Batch seq of this delta (the image it reconstructs).
    pub batches: u64,
    /// Lifetime counters at collection time.
    pub totals: CarriedTotals,
    /// Series dirty since `prev_batches`, sorted by key.
    pub series: Vec<SeriesSnapshot>,
    /// Keys removed (TTL-evicted) since `prev_batches`, sorted, deduped.
    pub tombstones: Vec<SeriesKey>,
}

impl FleetDelta {
    /// Folds this delta onto `base` (the image at `prev_batches`):
    /// tombstones are removed, dirty series upserted, clocks and counters
    /// replaced. The result is bit-identical to a full snapshot taken at
    /// `self.batches`.
    pub fn fold_into(self, base: &mut FleetSnapshot) -> Result<(), FleetError> {
        if base.batches != self.prev_batches {
            return Err(FleetError::Recovery(format!(
                "delta at seq {} chains onto seq {}, but the base is at seq {}",
                self.batches, self.prev_batches, base.batches
            )));
        }
        let mut merged: std::collections::BTreeMap<SeriesKey, SeriesSnapshot> =
            std::mem::take(&mut base.series).into_iter().map(|s| (s.key.clone(), s)).collect();
        for key in &self.tombstones {
            merged.remove(key);
        }
        for s in self.series {
            merged.insert(s.key.clone(), s);
        }
        base.series = merged.into_values().collect();
        base.config = self.config;
        base.clock = self.clock;
        base.batches = self.batches;
        base.totals = self.totals;
        Ok(())
    }
}

/// A shard request channel: unbounded, or bounded when
/// [`FleetConfig::queue_capacity`] is set (the blocking half of the
/// backpressure story — the rejecting half is the engine-side depth check
/// in [`FleetEngine::submit`]).
enum ShardSender {
    Unbounded(Sender<ShardMsg>),
    Bounded(SyncSender<ShardMsg>),
}

impl ShardSender {
    /// Sends, blocking on a full bounded queue. Errors only when the
    /// worker is gone — the message is handed back (by value, hence the
    /// large `Err`) so a supervisor can retry it against a respawned
    /// worker without re-building the sub-batch.
    #[allow(clippy::result_large_err)]
    fn send(&self, msg: ShardMsg) -> Result<(), ShardMsg> {
        match self {
            ShardSender::Unbounded(tx) => tx.send(msg).map_err(|e| e.0),
            ShardSender::Bounded(tx) => tx.send(msg).map_err(|e| e.0),
        }
    }
}

/// One submitted batch whose outputs have not been collected yet.
struct PendingBatch {
    /// Records in the batch (output slots to fill).
    n: usize,
    /// Shards this batch was sent to; replies are matched off this list
    /// so a worker that died mid-batch can be identified and respawned.
    targets: Vec<usize>,
    /// Where those replies arrive.
    reply_rx: Receiver<BatchReply>,
}

/// Keeps a stalled shard worker parked until dropped. Test support — see
/// [`FleetEngine::stall_shard`].
#[doc(hidden)]
pub struct StallGuard {
    _release: Sender<()>,
}

/// Sharded multi-series streaming engine. See the crate docs for a tour.
pub struct FleetEngine {
    config: Arc<FleetConfig>,
    senders: Vec<ShardSender>,
    depths: Vec<Arc<AtomicUsize>>,
    handles: Vec<JoinHandle<()>>,
    clock: u64,
    batches: u64,
    carried: CarriedTotals,
    pending: VecDeque<PendingBatch>,
    /// Batch seq of the last snapshot collection (full or delta) — the
    /// image the next [`FleetEngine::snapshot_delta`] chains onto.
    last_collect: u64,
    /// The shared WAL and the engine-wide fsync interval, once attached;
    /// also the flag that turns on frame emission in
    /// [`FleetEngine::submit`].
    wal: Option<(Arc<GroupWal>, u64)>,
    /// Batches since the last group fsync (engine-wide: group commit
    /// flushes whole batches, so the loss window is `fsync_every − 1`
    /// batches total, not per shard).
    wal_unsynced: u64,
    /// Recycled columnar routing batches, reused across
    /// [`FleetEngine::submit`] calls instead of reallocating per batch.
    /// Batches normally come back on the ingest reply itself
    /// ([`FleetEngine::next_batch`] empties them into here); the return
    /// channel below covers abandoned batches.
    spare_bufs: Vec<ShardBatch>,
    /// Workers hand back batches whose reply receiver was dropped.
    buf_rx: Receiver<ShardBatch>,
    /// The sending half handed to each worker (kept so a respawned worker
    /// can return batches too).
    buf_tx: Sender<ShardBatch>,
    /// Reassembly buffer reused across [`FleetEngine::next_batch`] calls.
    assembly: Vec<Option<ScoredPoint>>,
    /// Shard supervision: respawn a dead worker and rehydrate it from the
    /// shadow image instead of returning [`FleetError::ShardDown`]
    /// forever. On by default; turned off when a WAL attaches under
    /// [`crate::DurabilityPolicy::CrashStop`], whose contract is that a
    /// durability failure poisons the engine.
    supervise: bool,
    /// Degrade-mode durability flag, forwarded to respawned workers.
    degrade: bool,
    /// The supervision rehydration source: every series' state as of the
    /// last snapshot collection (full or delta), keyed. Refreshed during
    /// [`FleetEngine::collect`] while supervision is on; empty until a
    /// first collection (or restore), so a never-snapshotted engine
    /// respawns workers with an empty registry and series re-warm on next
    /// contact. The memory cost is one plain-data copy of the fleet —
    /// the price of being able to rebuild a shard without disk.
    shadow: BTreeMap<SeriesKey, SeriesSnapshot>,
    /// Cold-tier directory, once attached — respawned workers reopen
    /// their shard's cold file from here.
    cold_dir: Option<std::path::PathBuf>,
}

impl FleetEngine {
    /// Starts an empty engine: spawns `config.shards` worker threads.
    pub fn new(config: FleetConfig) -> Result<Self, FleetError> {
        config.validate().map_err(FleetError::Config)?;
        let config = Arc::new(config);
        let states =
            (0..config.shards).map(|i| ShardState::new(i, Arc::clone(&config))).collect();
        Self::spawn(config, states, 0, 0, CarriedTotals::default())
    }

    /// Rebuilds an engine from a snapshot. The restored engine's scoring
    /// stream is bit-identical to the snapshotted engine's continuation.
    /// The shard count comes from the snapshot's config; keys re-route
    /// deterministically, so a different count would also be correct —
    /// use [`FleetEngine::restore_with_shards`] to override.
    pub fn restore(snapshot: FleetSnapshot) -> Result<Self, FleetError> {
        let shards = snapshot.config.shards;
        Self::restore_with_shards(snapshot, shards)
    }

    /// [`FleetEngine::restore`] with an explicit shard count (scale a
    /// snapshot up or down on the way back in).
    pub fn restore_with_shards(
        mut snapshot: FleetSnapshot,
        shards: usize,
    ) -> Result<Self, FleetError> {
        snapshot.config.shards = shards;
        snapshot.config.validate().map_err(FleetError::Config)?;
        let config = Arc::new(snapshot.config);
        let mut states: Vec<ShardState> =
            (0..shards).map(|i| ShardState::new(i, Arc::clone(&config))).collect();
        let mut shadow = BTreeMap::new();
        for s in snapshot.series {
            let shard = s.key.shard_of(shards);
            let state = SeriesState::from_snapshot(s.phase.clone(), &config)?;
            // series arrive sorted by key, so each shard's arena is
            // admitted — and its buffers allocated — in key order
            states[shard].registry.insert(SeriesEntry {
                key: s.key.clone(),
                state,
                last_seen: s.last_seen,
                dirty_seq: 0,
            });
            shadow.insert(s.key.clone(), s);
        }
        for state in &mut states {
            // the restored image is the dirty baseline: the first delta
            // after a restore covers exactly what changed since it
            state.set_snapshot_baseline(snapshot.batches);
        }
        let mut engine =
            Self::spawn(config, states, snapshot.clock, snapshot.batches, snapshot.totals)?;
        engine.shadow = shadow;
        Ok(engine)
    }

    /// Spawns the worker threads. A thread the OS refuses to create is a
    /// typed [`FleetError::Internal`], not a panic — the partially built
    /// engine drops cleanly (workers already spawned see their senders
    /// close and exit).
    fn spawn(
        config: Arc<FleetConfig>,
        states: Vec<ShardState>,
        clock: u64,
        batches: u64,
        carried: CarriedTotals,
    ) -> Result<Self, FleetError> {
        let mut senders = Vec::with_capacity(states.len());
        let mut depths = Vec::with_capacity(states.len());
        let mut handles = Vec::with_capacity(states.len());
        let (buf_tx, buf_rx) = channel::<ShardBatch>();
        for state in states {
            let (sender, rx) = Self::shard_channel(&config);
            let depth = Arc::new(AtomicUsize::new(0));
            let worker_depth = Arc::clone(&depth);
            let worker_buf_tx = buf_tx.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("fleet-shard-{}", state.index))
                    .spawn(move || run_worker(state, rx, worker_depth, worker_buf_tx))
                    .map_err(|_| FleetError::Internal("spawning a shard worker thread"))?,
            );
            senders.push(sender);
            depths.push(depth);
        }
        Ok(FleetEngine {
            config,
            senders,
            depths,
            handles,
            clock,
            batches,
            carried,
            pending: VecDeque::new(),
            last_collect: batches,
            wal: None,
            wal_unsynced: 0,
            spare_bufs: Vec::new(),
            buf_rx,
            buf_tx,
            assembly: Vec::new(),
            supervise: true,
            degrade: false,
            shadow: BTreeMap::new(),
            cold_dir: None,
        })
    }

    /// Builds one shard request channel of the configured flavor.
    fn shard_channel(config: &FleetConfig) -> (ShardSender, Receiver<ShardMsg>) {
        match config.queue_capacity {
            None => {
                let (tx, rx) = channel::<ShardMsg>();
                (ShardSender::Unbounded(tx), rx)
            }
            Some(cap) => {
                let (tx, rx) = sync_channel::<ShardMsg>(cap);
                (ShardSender::Bounded(tx), rx)
            }
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Number of worker shards.
    pub fn shard_count(&self) -> usize {
        self.senders.len()
    }

    /// Engine clock: the largest record `t` ingested so far.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Ingest batches processed so far. This is the sequence number WAL
    /// frames and snapshots are stamped with, so it is also the durable
    /// recovery point ([`crate::DurableFleet`]).
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Batches submitted via [`FleetEngine::submit`] whose outputs have
    /// not been collected yet.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    fn send(&self, shard: usize, msg: ShardMsg) -> Result<(), FleetError> {
        self.depths[shard].fetch_add(1, Ordering::Relaxed);
        self.senders[shard].send(msg).map_err(|_| FleetError::ShardDown)
    }

    /// [`FleetEngine::send`] with supervision: a dead worker is respawned
    /// (rehydrated from the shadow image) and the message retried once.
    /// `&self` paths ([`FleetEngine::stats`], [`FleetEngine::forecast`])
    /// still return [`FleetError::ShardDown`] until the next `&mut` call
    /// heals the shard.
    fn send_or_respawn(&mut self, shard: usize, msg: ShardMsg) -> Result<(), FleetError> {
        self.depths[shard].fetch_add(1, Ordering::Relaxed);
        let msg = match self.senders[shard].send(msg) {
            Ok(()) => return Ok(()),
            Err(msg) => msg,
        };
        if !self.supervise {
            return Err(FleetError::ShardDown);
        }
        self.respawn_shard(shard)?;
        self.depths[shard].fetch_add(1, Ordering::Relaxed);
        self.senders[shard].send(msg).map_err(|_| FleetError::ShardDown)
    }

    /// Replaces a dead shard worker: joins the old thread, spawns a fresh
    /// one, and rehydrates its slice of the fleet from the shadow image
    /// (the state as of the last snapshot collection — anything the dead
    /// worker ingested after that is lost in memory; on a
    /// [`crate::DurableFleet`] it is still in the WAL and survives a
    /// process-level recovery).
    fn respawn_shard(&mut self, shard: usize) -> Result<(), FleetError> {
        let shards = self.shard_count();
        let mut state = ShardState::new(shard, Arc::clone(&self.config));
        for snap in self.shadow.values() {
            if snap.key.shard_of(shards) != shard {
                continue;
            }
            // a snapshot entry that fails validation is dropped (its
            // series re-warms on next contact) — one bad series must not
            // block the shard's resurrection
            let Ok(s) = SeriesState::from_snapshot(snap.phase.clone(), &self.config) else {
                continue;
            };
            state.registry.insert(SeriesEntry {
                key: snap.key.clone(),
                state: s,
                last_seen: snap.last_seen,
                dirty_seq: 0,
            });
        }
        // the rehydrated registry equals the last collected image, so the
        // next delta collection owes nothing for these entries
        state.set_snapshot_baseline(self.last_collect);
        state.wal = self.wal.as_ref().map(|(w, _)| Arc::clone(w));
        state.degrade = self.degrade;
        if let Some(dir) = &self.cold_dir {
            // an unreadable cold file degrades the respawned shard to
            // hot-only (cold series re-warm) rather than failing the heal
            state.cold = crate::cold_tier::ColdStore::open(dir, shard).ok();
        }
        let (sender, rx) = Self::shard_channel(&self.config);
        let depth = Arc::new(AtomicUsize::new(0));
        let worker_depth = Arc::clone(&depth);
        let worker_buf_tx = self.buf_tx.clone();
        let handle = std::thread::Builder::new()
            .name(format!("fleet-shard-{shard}"))
            .spawn(move || run_worker(state, rx, worker_depth, worker_buf_tx))
            .map_err(|_| FleetError::Internal("spawning a shard worker thread"))?;
        // replace the sender before joining: if the old worker is somehow
        // still alive (a spurious respawn), dropping its sender lets it
        // drain and exit instead of deadlocking the join
        self.senders[shard] = sender;
        self.depths[shard] = depth;
        let old = std::mem::replace(&mut self.handles[shard], handle);
        let _ = old.join();
        self.carried.shard_restarts += 1;
        Ok(())
    }

    /// Test support: makes shard `shard`'s worker panic on its next
    /// dequeue — the deterministic "worker died" injection the
    /// supervision tests use.
    #[doc(hidden)]
    pub fn crash_shard(&mut self, shard: usize) -> Result<(), FleetError> {
        self.send(shard, ShardMsg::Crash)
    }

    /// Hands out a routing batch from the spare pool, first sweeping in
    /// any batches workers returned out of band (allocation-free once the
    /// pipeline is primed).
    fn route_buf(&mut self) -> ShardBatch {
        while let Ok(buf) = self.buf_rx.try_recv() {
            self.spare_bufs.push(buf);
        }
        self.spare_bufs.pop().unwrap_or_default()
    }

    /// Submits a batch without waiting for its outputs (pipelined ingest):
    /// shard workers start on this batch while the caller prepares the
    /// next one. Collect outputs in submission order with
    /// [`FleetEngine::next_batch`].
    ///
    /// With a bounded queue ([`FleetConfig::queue_capacity`]) and
    /// [`QueuePolicy::Reject`], a full target shard fails the whole
    /// submission with [`FleetError::Backpressure`] *before* anything is
    /// sent, logged, or clocked — the batch can be retried verbatim. With
    /// [`QueuePolicy::Block`] the call blocks until every target shard has
    /// queue room. One caveat under either policy: when a TTL or spill
    /// threshold is configured, every 64th submission runs the idle sweep
    /// synchronously (its control messages use blocking sends and the
    /// call waits for every shard's reply), so that submission can stall
    /// briefly even under `Reject` — the sweep must stay at a
    /// deterministic batch boundary for WAL replay to reproduce it.
    ///
    /// When a WAL is attached (see [`crate::DurableFleet`]), each shard
    /// appends its slice of the batch to the shared group-commit log
    /// before applying it.
    pub fn submit(&mut self, batch: Vec<Record>) -> Result<(), FleetError> {
        let n = batch.len();
        let shards = self.shard_count();
        // route on a scratch clock: a rejected batch must leave no trace
        let mut clock = self.clock;
        let mut routed: Vec<ShardBatch> = (0..shards).map(|_| self.route_buf()).collect();
        for (idx, rec) in batch.into_iter().enumerate() {
            // a bounded clock step contains timestamp poisoning (see
            // `FleetConfig::max_clock_step`); the record keeps its raw `t`
            // in the output, but liveness tracking uses the clamped value
            // so a future-dated record is neither eviction-immune nor able
            // to age out the rest of the fleet
            let t = match self.config.max_clock_step {
                Some(step) => rec.t.min(clock.saturating_add(step)),
                None => rec.t,
            };
            clock = clock.max(t);
            // one hash per record, total: it picks the shard here and the
            // registry bucket on the worker (`SeriesKey::shard_of` is
            // exactly this reduction of `stable_hash`)
            let hash = rec.key.stable_hash();
            let shard = (hash % shards.max(1) as u64) as usize;
            routed[shard].push(idx as u32, rec, hash, t);
        }
        let wal_on = self.wal.is_some();
        // shards that receive a message: those with rows — plus shard 0
        // for an empty batch under WAL, because even an empty batch
        // advances the sweep cadence and replay must reproduce it
        let is_target =
            |shard: usize, b: &ShardBatch| !b.is_empty() || (wal_on && n == 0 && shard == 0);
        if let (Some(cap), QueuePolicy::Reject) =
            (self.config.queue_capacity, self.config.queue_policy)
        {
            // depth can only shrink concurrently (workers drain, and this
            // `&mut self` method is the sole submitter), so a passing
            // check here guarantees the sends below never overflow
            for (shard, b) in routed.iter().enumerate() {
                if is_target(shard, b) && self.depths[shard].load(Ordering::Relaxed) >= cap {
                    // reclaim every routed batch into the spare pool; the
                    // submission can be retried verbatim
                    for mut buf in routed {
                        buf.clear();
                        self.spare_bufs.push(buf);
                    }
                    return Err(FleetError::Backpressure { shard });
                }
            }
        }
        let seq = self.batches + 1;
        // group commit: the fsync cadence is engine-wide — one batch, one
        // flush (issued by the last shard whose frame lands; see
        // `wal::GroupWal`) — so the fanout rides along in the metadata
        let fanout = routed.iter().enumerate().filter(|(s, b)| is_target(*s, b)).count();
        let wal_meta = self.wal.as_ref().map(|(_, every)| {
            let sync = self.wal_unsynced + 1 >= *every;
            self.wal_unsynced = if sync { 0 } else { self.wal_unsynced + 1 };
            WalMeta { seq, batch_n: n as u32, fanout: fanout as u32, sync }
        });
        let (reply_tx, reply_rx) = channel();
        let mut targets = Vec::new();
        for (shard, b) in routed.into_iter().enumerate() {
            if !is_target(shard, &b) {
                self.spare_bufs.push(b); // stays empty, reuse next batch
                continue;
            }
            self.send_or_respawn(
                shard,
                ShardMsg::Ingest { batch: b, seq, wal: wal_meta, reply: reply_tx.clone() },
            )?;
            targets.push(shard);
        }
        self.clock = clock;
        self.batches = seq;
        self.pending.push_back(PendingBatch { n, targets, reply_rx });
        if (self.config.ttl.is_some() || self.config.spill_after.is_some())
            && self.batches.is_multiple_of(TTL_SWEEP_EVERY)
        {
            self.evict_idle(self.clock)?;
        }
        Ok(())
    }

    /// Collects the outputs of the oldest in-flight batch (submission
    /// order), blocking until its shards reply; `Ok(None)` when nothing is
    /// in flight. Returns one [`ScoredPoint`] per record, in batch order.
    pub fn next_batch(&mut self) -> Result<Option<Vec<ScoredPoint>>, FleetError> {
        let Some(p) = self.pending.pop_front() else {
            return Ok(None);
        };
        // the reassembly buffer is reused across batches (an error path may
        // leave stale entries behind; the clear handles that too)
        self.assembly.clear();
        self.assembly.resize_with(p.n, || None);
        let mut waiting = p.targets;
        let mut failed = None;
        while !waiting.is_empty() {
            match p.reply_rx.recv() {
                // every sender gone with replies still owed: the shards
                // left in `waiting` died mid-batch
                Err(_) => break,
                // a WAL failure on one shard: drain the rest, then report
                Ok((shard, Err(msg))) => {
                    waiting.retain(|&s| s != shard);
                    failed = Some(FleetError::Io(msg));
                }
                Ok((shard, Ok(mut b))) => {
                    waiting.retain(|&s| s != shard);
                    // keys and outputs move straight from the columns into
                    // the assembled points (no clones); the emptied batch
                    // then rejoins the spare pool
                    for (j, (key, output)) in
                        b.keys.drain(..).zip(b.outputs.drain(..)).enumerate()
                    {
                        self.assembly[b.idx[j] as usize] =
                            Some(ScoredPoint { key, t: b.ts[j], value: b.values[j], output });
                    }
                    b.clear();
                    self.spare_bufs.push(b);
                }
            }
        }
        if !waiting.is_empty() {
            // this batch's outputs are gone with the dead worker(s); heal
            // the engine for the batches that follow, but report honestly
            if self.supervise {
                for shard in waiting {
                    self.respawn_shard(shard)?;
                }
            }
            return Err(FleetError::ShardDown);
        }
        if let Some(e) = failed {
            return Err(e);
        }
        let mut out = Vec::with_capacity(p.n);
        for slot in self.assembly.drain(..) {
            // a hole here means a shard answered with the wrong index set
            out.push(slot.ok_or(FleetError::Internal(
                "every batch index answered by exactly one shard",
            ))?);
        }
        Ok(Some(out))
    }

    /// Ingests a batch of records and returns one [`ScoredPoint`] per
    /// record, in batch order. Records are routed to shards by stable key
    /// hash and processed in parallel across shards; per-series order
    /// within the batch is preserved.
    ///
    /// Synchronous: fails with [`FleetError::InFlight`] if pipelined
    /// batches from [`FleetEngine::submit`] are still uncollected.
    pub fn ingest(&mut self, batch: Vec<Record>) -> Result<Vec<ScoredPoint>, FleetError> {
        if !self.pending.is_empty() {
            return Err(FleetError::InFlight);
        }
        self.submit(batch)?;
        self.next_batch()?.ok_or(FleetError::Internal("the batch just submitted is in flight"))
    }

    /// Convenience single-record ingest.
    pub fn ingest_one(
        &mut self,
        key: impl Into<SeriesKey>,
        t: u64,
        value: f64,
    ) -> Result<ScoredPoint, FleetError> {
        let mut out = self.ingest(vec![Record::new(key, t, value)])?;
        out.pop().ok_or(FleetError::Internal("one record in, one point out"))
    }

    /// Registers (or replaces) per-series admission overrides for `key`:
    /// λ, NSigma threshold, declared period, and/or shift-search policy
    /// (see [`AdmitOptions`]). An unknown key is created in the warming
    /// phase so the tuning is in place before its first point; a
    /// still-warming series has its pending overrides replaced; a series
    /// already past admission fails with
    /// [`FleetError::AlreadyAdmitted`] — overrides are an admission-time
    /// contract, not a live-reconfiguration path.
    ///
    /// The overrides are baked into the series' detector at promotion and
    /// persist through snapshot/restore (codec v4 stores pending overrides
    /// with the warm-up state; a live detector's config already embeds
    /// them). **Durability note:** override registration is not
    /// WAL-logged — on a [`crate::DurableFleet`], use
    /// [`crate::DurableFleet::set_admit_options`], which checkpoints so
    /// recovery replays admissions bit-identically.
    pub fn set_admit_options(
        &mut self,
        key: impl Into<SeriesKey>,
        opts: AdmitOptions,
    ) -> Result<(), FleetError> {
        opts.validate().map_err(FleetError::Config)?;
        let key = key.into();
        let shard = key.shard_of(self.shard_count());
        let (tx, rx) = channel();
        // `batches + 1` marks the entry dirty for the *next* delta even if
        // a snapshot collection already ran at the current seq
        self.send_or_respawn(
            shard,
            ShardMsg::Admit { key, opts, now: self.clock, seq: self.batches + 1, reply: tx },
        )?;
        rx.recv().map_err(|_| FleetError::ShardDown)?
    }

    /// Runs the idle sweep at clock `now`: evicts series whose `last_seen`
    /// is more than the configured TTL behind it (hot and cold-resident
    /// alike), and — with [`FleetConfig::spill_after`] set and a cold tier
    /// attached ([`FleetEngine::attach_cold_dir`]) — spills series idle
    /// beyond that threshold to disk. Returns how many series were
    /// evicted (spills preserve state and are counted in
    /// [`crate::FleetStats::spills`] instead). No-op with neither a TTL
    /// nor a spill threshold configured.
    ///
    /// Liveness clocks live in the engine's (possibly step-bounded) clock
    /// domain, so `now` is clamped the same way records are: with
    /// `max_clock_step` configured, a wall-clock `now` far ahead of the
    /// engine clock cannot evict the whole fleet in one call.
    pub fn evict_idle(&mut self, now: u64) -> Result<usize, FleetError> {
        let (ttl, spill_after) = (self.config.ttl, self.config.spill_after);
        if ttl.is_none() && spill_after.is_none() {
            return Ok(0);
        }
        let now = match self.config.max_clock_step {
            Some(step) => now.min(self.clock.saturating_add(step)),
            None => now,
        };
        let (tx, rx) = channel();
        for shard in 0..self.shard_count() {
            self.send_or_respawn(
                shard,
                ShardMsg::EvictIdle { now, ttl, spill_after, reply: tx.clone() },
            )?;
        }
        drop(tx);
        let mut total = 0;
        for _ in 0..self.shard_count() {
            total += rx.recv().map_err(|_| FleetError::ShardDown)?;
        }
        Ok(total)
    }

    /// Installs the cold tier: every shard opens (or reopens) its cold
    /// file under `dir`, and subsequent idle sweeps spill series idle
    /// beyond [`FleetConfig::spill_after`] there. Respawned workers reopen
    /// the same files. [`crate::DurableFleet`] attaches this
    /// automatically (under `<dir>/cold`) when `spill_after` is set;
    /// attach it before the first ingest so recovery replay observes the
    /// same cold state the original run did.
    pub fn attach_cold_dir(
        &mut self,
        dir: impl Into<std::path::PathBuf>,
    ) -> Result<(), FleetError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| FleetError::Io(format!("creating {}: {e}", dir.display())))?;
        let (tx, rx) = channel();
        for shard in 0..self.shard_count() {
            self.send_or_respawn(
                shard,
                ShardMsg::ColdCtl { dir: dir.clone(), reply: tx.clone() },
            )?;
        }
        drop(tx);
        for _ in 0..self.shard_count() {
            rx.recv().map_err(|_| FleetError::ShardDown)?.map_err(FleetError::Io)?;
        }
        self.cold_dir = Some(dir);
        Ok(())
    }

    /// Forecasts `1..=horizon` steps ahead for a batch of series, fanning
    /// the keys out to their shards in parallel. Returns one slot per
    /// requested key, in request order: `Some(forecasts)` for a live
    /// series (`forecasts[h-1]` is the `h`-step-ahead prediction), `None`
    /// for an unknown, warming, or rejected one.
    ///
    /// A series whose [`crate::ForecastOptions`] enabled a forecast head
    /// answers with the damped-trend recurrence (§5); any other live
    /// series answers with the plain carry-forward `predict`, so the call
    /// works fleet-wide regardless of per-series configuration.
    pub fn forecast(
        &self,
        keys: &[SeriesKey],
        horizon: usize,
    ) -> Result<Vec<Option<Vec<f64>>>, FleetError> {
        let shards = self.shard_count();
        let mut routed: Vec<Vec<(usize, SeriesKey)>> = vec![Vec::new(); shards];
        for (idx, key) in keys.iter().enumerate() {
            routed[key.shard_of(shards)].push((idx, key.clone()));
        }
        let (tx, rx) = channel();
        let mut in_flight = 0usize;
        for (shard, items) in routed.into_iter().enumerate() {
            if items.is_empty() {
                continue;
            }
            self.send(shard, ShardMsg::Forecast { items, horizon, reply: tx.clone() })?;
            in_flight += 1;
        }
        drop(tx);
        let mut out: Vec<Option<Vec<f64>>> = vec![None; keys.len()];
        for _ in 0..in_flight {
            for (idx, fc) in rx.recv().map_err(|_| FleetError::ShardDown)? {
                out[idx] = fc;
            }
        }
        Ok(out)
    }

    /// Single-series [`FleetEngine::forecast`].
    pub fn forecast_one(
        &self,
        key: &SeriesKey,
        horizon: usize,
    ) -> Result<Option<Vec<f64>>, FleetError> {
        let mut out = self.forecast(std::slice::from_ref(key), horizon)?;
        out.pop().ok_or(FleetError::Internal("one key in, one slot out"))
    }

    /// Aggregate + per-shard statistics.
    pub fn stats(&self) -> Result<FleetStats, FleetError> {
        let (tx, rx) = channel();
        for shard in 0..self.shard_count() {
            self.send(shard, ShardMsg::Stats { reply: tx.clone() })?;
        }
        drop(tx);
        let mut per_shard: Vec<ShardStats> = Vec::with_capacity(self.shard_count());
        for _ in 0..self.shard_count() {
            per_shard.push(rx.recv().map_err(|_| FleetError::ShardDown)?);
        }
        per_shard.sort_by_key(|s| s.shard);
        let mut stats = FleetStats {
            evicted: self.carried.evicted,
            admitted: self.carried.admitted,
            points: self.carried.points,
            anomalies: self.carried.anomalies,
            wal_retries: self.carried.wal_retries,
            shard_restarts: self.carried.shard_restarts,
            undurable_batches: self.carried.undurable_batches,
            ..Default::default()
        };
        for s in &per_shard {
            stats.live += s.live;
            stats.warming += s.warming;
            stats.rejected += s.rejected;
            stats.quarantined += s.quarantined;
            stats.evicted += s.evicted;
            stats.admitted += s.admitted;
            stats.points += s.points;
            stats.anomalies += s.anomalies;
            stats.shift_searches += s.shift_searches;
            stats.shift_trials += s.shift_trials;
            stats.z_alarms += s.z_alarms;
            stats.cusum_alarms += s.cusum_alarms;
            stats.forecast_alarms += s.forecast_alarms;
            stats.damp_alarms += s.damp_alarms;
            stats.trend_alarms += s.trend_alarms;
            stats.cold_resident += s.cold_resident;
            stats.spills += s.spills;
            stats.rehydrations += s.rehydrations;
            stats.cold_errors += s.cold_errors;
        }
        stats.shards = per_shard;
        Ok(stats)
    }

    /// Collects series + counters from every shard (`delta`: only series
    /// dirty since the last collection, plus tombstones). Any collection
    /// advances the shards' dirty baseline to the current batch seq.
    fn collect(
        &mut self,
        delta: bool,
    ) -> Result<(Vec<SeriesSnapshot>, Vec<SeriesKey>, CarriedTotals), FleetError> {
        let (tx, rx) = channel();
        for shard in 0..self.shard_count() {
            self.send_or_respawn(
                shard,
                ShardMsg::Snapshot { delta, upto: self.batches, reply: tx.clone() },
            )?;
        }
        drop(tx);
        let mut series: Vec<SeriesSnapshot> = Vec::new();
        let mut tombstones: Vec<SeriesKey> = Vec::new();
        let mut totals = self.carried;
        for _ in 0..self.shard_count() {
            let (part, dead, stats) = rx.recv().map_err(|_| FleetError::ShardDown)?;
            series.extend(part);
            tombstones.extend(dead);
            totals.evicted += stats.evicted;
            totals.admitted += stats.admitted;
            totals.points += stats.points;
            totals.anomalies += stats.anomalies;
        }
        series.sort_by(|a, b| a.key.cmp(&b.key));
        tombstones.sort();
        // refresh the supervision shadow: a full collection replaces the
        // image, a delta folds into it (the same rule FleetDelta::fold_into
        // applies to persisted images)
        if self.supervise {
            if !delta {
                self.shadow.clear();
            }
            for key in &tombstones {
                self.shadow.remove(key);
            }
            for s in &series {
                self.shadow.insert(s.key.clone(), s.clone());
            }
        }
        Ok((series, tombstones, totals))
    }

    /// Serializes the complete engine state. The engine stays usable; the
    /// snapshot is a consistent point-in-time image because the engine's
    /// `&mut` API means no ingest can be interleaved with the collection.
    ///
    /// Also resets the incremental-snapshot baseline: the next
    /// [`FleetEngine::snapshot_delta`] will chain onto this image.
    pub fn snapshot(&mut self) -> Result<FleetSnapshot, FleetError> {
        let (series, _, totals) = self.collect(false)?;
        self.last_collect = self.batches;
        Ok(FleetSnapshot {
            config: (*self.config).clone(),
            clock: self.clock,
            batches: self.batches,
            totals,
            series,
        })
    }

    /// Serializes only what changed since the previous collection (full or
    /// delta): dirty series plus tombstones of evicted ones. With a mostly
    /// idle fleet this is a small fraction of a full snapshot — the basis
    /// of [`crate::DurableFleet`]'s incremental snapshot files.
    pub fn snapshot_delta(&mut self) -> Result<FleetDelta, FleetError> {
        let prev = self.last_collect;
        let (series, tombstones, totals) = self.collect(true)?;
        self.last_collect = self.batches;
        Ok(FleetDelta {
            config: (*self.config).clone(),
            prev_batches: prev,
            clock: self.clock,
            batches: self.batches,
            totals,
            series,
            tombstones,
        })
    }

    /// [`FleetEngine::snapshot`] straight to the versioned binary format.
    pub fn snapshot_bytes(&mut self) -> Result<Vec<u8>, FleetError> {
        Ok(crate::codec::encode(&self.snapshot()?))
    }

    /// Restores an engine from [`FleetEngine::snapshot_bytes`] output.
    pub fn restore_bytes(bytes: &[u8]) -> Result<Self, FleetError> {
        Self::restore(crate::codec::decode(bytes)?)
    }

    /// Hands every shard worker the shared WAL handle and turns on
    /// write-ahead logging for subsequent submissions, group-flushing
    /// every `fsync_every` batches. Used by [`crate::DurableFleet`];
    /// attach *after* any recovery replay so replayed batches are not
    /// re-logged.
    pub(crate) fn attach_wal(
        &mut self,
        wal: Arc<GroupWal>,
        fsync_every: u64,
        degrade: bool,
    ) -> Result<(), FleetError> {
        let (tx, rx) = channel();
        for shard in 0..self.shard_count() {
            self.send_or_respawn(
                shard,
                ShardMsg::WalCtl {
                    op: WalOp::Attach { wal: Arc::clone(&wal), degrade },
                    reply: tx.clone(),
                },
            )?;
        }
        drop(tx);
        for _ in 0..self.shard_count() {
            rx.recv().map_err(|_| FleetError::ShardDown)?.map_err(FleetError::Io)?;
        }
        self.wal = Some((wal, fsync_every.max(1)));
        self.wal_unsynced = 0;
        self.degrade = degrade;
        // crash-stop's contract is that a durability failure poisons the
        // engine — supervision must not resurrect what that policy killed
        self.supervise = degrade;
        Ok(())
    }

    /// Why the shared WAL is poisoned, if it is (`None` without a WAL or
    /// while it is healthy). Degrade-mode bookkeeping for
    /// [`crate::DurableFleet`].
    pub(crate) fn wal_poisoned(&self) -> Option<String> {
        self.wal.as_ref().and_then(|(w, _)| w.poison_reason())
    }

    /// Bumps the lifetime WAL re-arm-attempt counter.
    pub(crate) fn note_wal_retry(&mut self) {
        self.carried.wal_retries += 1;
    }

    /// Bumps the lifetime un-durable-batch counter.
    pub(crate) fn note_undurable_batch(&mut self) {
        self.carried.undurable_batches += 1;
    }

    /// Rotates the shared WAL to a fresh segment starting after batch
    /// `start_seq` (called at snapshot time, so the old segment becomes
    /// garbage once the snapshot is durable). No shard can be mid-append:
    /// the preceding snapshot collection drained every shard queue.
    pub(crate) fn rotate_wal(&mut self, start_seq: u64) -> Result<(), FleetError> {
        if let Some((wal, _)) = &self.wal {
            wal.rotate(start_seq).map_err(|e| FleetError::Io(e.to_string()))?;
            self.wal_unsynced = 0;
        }
        Ok(())
    }

    /// Forces an fsync of the shared WAL segment.
    pub(crate) fn sync_wal(&mut self) -> Result<(), FleetError> {
        if let Some((wal, _)) = &self.wal {
            wal.sync().map_err(|e| FleetError::Io(e.to_string()))?;
            self.wal_unsynced = 0;
        }
        Ok(())
    }

    /// Lifetime count of `fsync`s issued on the WAL (0 without
    /// durability). One acked batch costs at most one — the group-commit
    /// guarantee.
    pub fn wal_fsync_count(&self) -> u64 {
        self.wal.as_ref().map_or(0, |(w, _)| w.fsync_count())
    }

    /// Test support: parks shard `shard`'s worker until the returned guard
    /// drops, so tests can fill a bounded queue deterministically. The
    /// worker dequeues the stall message *before* parking (freeing its
    /// queue slot), so the full configured capacity remains fillable; spin
    /// on [`FleetEngine::queue_depth`] reaching 0 to know the worker is
    /// parked.
    #[doc(hidden)]
    pub fn stall_shard(&self, shard: usize) -> Result<StallGuard, FleetError> {
        let (tx, rx) = channel();
        self.send(shard, ShardMsg::Stall { release: rx })?;
        Ok(StallGuard { _release: tx })
    }

    /// Test support: current sampled queue depth of one shard (the same
    /// gauge [`ShardStats::queue_depth`] reports, without a stats
    /// round-trip — usable while the worker is stalled).
    #[doc(hidden)]
    pub fn queue_depth(&self, shard: usize) -> usize {
        self.depths[shard].load(Ordering::Relaxed)
    }
}

impl Drop for FleetEngine {
    fn drop(&mut self) {
        for tx in &self.senders {
            let _ = tx.send(ShardMsg::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}
