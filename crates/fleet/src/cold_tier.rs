//! On-disk cold tier: per-shard append stores for idle series.
//!
//! A series that has seen no point for [`crate::FleetConfig::spill_after`]
//! ticks is *spilled*: its state is serialized (exact-layout series blob,
//! [`crate::codec`]) and appended to this shard's cold file, and the hot
//! entry leaves the registry arena. The next point for that key
//! *rehydrates* it through the normal shard admission path, bit-identical
//! to a series that never left memory. Resident memory therefore tracks
//! the **active** series set, not total cardinality.
//!
//! ## File format
//!
//! One file per shard, `cold-{shard:04}.fcold`:
//!
//! ```text
//! [8B magic "OSTLCOLD"] [u16 version] [u32 shard]
//! record*: [u32 len] [u32 crc32(payload)] [payload]
//! payload: [u8 kind] [u64 last_seen] [u32 key_len] [key bytes] [blob…]
//! ```
//!
//! `kind` 0 is a *put* (blob follows), 1 a *tombstone* (no blob). The
//! in-memory index replays the file on open with last-record-wins
//! semantics and truncates a torn tail at the first record that fails its
//! length or CRC check — the same prefix rule the WAL uses.
//!
//! ## Index semantics
//!
//! The index mirrors the **file's** logical content exactly (every key
//! whose last record is a put), because crash recovery re-scans the file
//! and must reconstruct the same mapping. A rehydrated key's record
//! therefore stays in the index, flagged *stale*, until a later spill
//! overwrites it or a TTL eviction tombstones it — deleting it eagerly
//! would make a post-crash WAL replay (which re-reads the record at the
//! original rehydration point) diverge. [`ColdStore::resident`] excludes
//! stale entries, so the gauge counts series that are genuinely cold.
//!
//! ## Compaction
//!
//! When dead bytes (superseded puts, tombstones) outgrow live bytes the
//! store rewrites itself: live records — including stale ones, see
//! above — stream into a temp file which is fsynced and atomically
//! renamed over the original. Compaction never changes the logical
//! key→blob mapping, so it may run at different moments in an original
//! run and its replay without breaking bit-identity.
//!
//! All I/O goes through [`crate::fault`], so injected failures surface as
//! `Err` (the shard degrades: the series stays hot, or re-warms) instead
//! of panicking a worker.

use crate::fault;
use crate::types::SeriesKey;
use crate::wal::crc32;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read as _, Seek as _, SeekFrom};
use std::path::{Path, PathBuf};

/// Cold-file magic bytes.
const MAGIC: &[u8; 8] = b"OSTLCOLD";
/// Cold-file format version.
const FORMAT_VERSION: u16 = 1;
/// Header bytes: magic + version + shard index.
const HEADER_LEN: u64 = 8 + 2 + 4;
/// Frame overhead bytes: length + CRC.
const FRAME_OVERHEAD: u64 = 8;
/// Record kind: key → blob mapping.
const KIND_PUT: u8 = 0;
/// Record kind: key removed.
const KIND_TOMBSTONE: u8 = 1;
/// Dead bytes below this never trigger a compaction (a rewrite has fixed
/// costs; tiny files are not worth it).
const COMPACT_MIN_DEAD: u64 = 4096;

/// One indexed record: where the key's current put frame lives.
#[derive(Debug, Clone, Copy)]
struct ColdEntry {
    /// Frame start offset (the `u32 len` field).
    offset: u64,
    /// Whole frame length (overhead + payload).
    frame_len: u64,
    /// `last_seen` stored in the record (TTL expiry without decoding the
    /// blob).
    last_seen: u64,
    /// The key was rehydrated and is hot again; the record is kept only
    /// for crash-replay determinism (see the module docs).
    stale: bool,
}

/// The cold-file name for one shard.
pub fn cold_file_name(shard: usize) -> String {
    format!("cold-{shard:04}.fcold")
}

/// One shard's cold store: an append file plus the in-memory key index.
pub struct ColdStore {
    dir: PathBuf,
    path: PathBuf,
    shard: usize,
    file: File,
    /// Append position (logical end of the file).
    end: u64,
    index: HashMap<SeriesKey, ColdEntry>,
    /// Indexed entries currently flagged stale.
    stale: usize,
    /// Frame bytes reachable from the index.
    live_bytes: u64,
    /// Frame bytes superseded (old puts, every tombstone).
    dead_bytes: u64,
    /// Unsynced appends since the last [`ColdStore::sync`].
    dirty: bool,
}

impl ColdStore {
    /// Opens (or creates) the cold store for `shard` under `dir`,
    /// rebuilding the index by scanning the file. A torn tail is truncated
    /// at the first incomplete or CRC-failing record.
    pub fn open(dir: &Path, shard: usize) -> io::Result<Self> {
        let path = dir.join(cold_file_name(shard));
        let exists = path.exists();
        if !exists {
            // route creation through the fault seam like every other
            // durability file; the handle is reopened below in append mode
            drop(fault::create_file(&path)?);
        }
        let mut file = OpenOptions::new().read(true).append(true).open(&path)?;
        // a crash between create and the header write leaves a short stub;
        // re-initialize it instead of rejecting the store
        let fresh = file.metadata()?.len() < HEADER_LEN;
        if fresh && exists {
            file.set_len(0)?;
        }
        let mut store = ColdStore {
            dir: dir.to_path_buf(),
            path,
            shard,
            file,
            end: HEADER_LEN,
            index: HashMap::new(),
            stale: 0,
            live_bytes: 0,
            dead_bytes: 0,
            dirty: false,
        };
        if fresh {
            let mut header = Vec::with_capacity(HEADER_LEN as usize);
            header.extend_from_slice(MAGIC);
            header.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
            header.extend_from_slice(&(shard as u32).to_le_bytes());
            fault::write_all(&mut store.file, &store.path, &header)?;
            store.dirty = true;
            return Ok(store);
        }
        file = store.file.try_clone()?;
        store.scan(&mut file)?;
        Ok(store)
    }

    /// Replays the file into the index; truncates a torn tail.
    fn scan(&mut self, file: &mut File) -> io::Result<()> {
        file.seek(SeekFrom::Start(0))?;
        let file_len = file.metadata()?.len();
        let mut header = [0u8; HEADER_LEN as usize];
        if file_len < HEADER_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "cold file shorter than its header",
            ));
        }
        file.read_exact(&mut header)?;
        if &header[..8] != MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "cold file magic mismatch"));
        }
        let version = u16::from_le_bytes([header[8], header[9]]);
        if version != FORMAT_VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("cold file version {version} (expected {FORMAT_VERSION})"),
            ));
        }
        let shard = u32::from_le_bytes([header[10], header[11], header[12], header[13]]);
        if shard as usize != self.shard {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("cold file belongs to shard {shard}, not {}", self.shard),
            ));
        }
        let mut pos = HEADER_LEN;
        let mut payload = Vec::new();
        loop {
            let mut frame_header = [0u8; FRAME_OVERHEAD as usize];
            if pos + FRAME_OVERHEAD > file_len || file.read_exact(&mut frame_header).is_err() {
                break;
            }
            let len = u32::from_le_bytes(frame_header[..4].try_into().unwrap()) as u64;
            let crc = u32::from_le_bytes(frame_header[4..].try_into().unwrap());
            if pos + FRAME_OVERHEAD + len > file_len {
                break; // torn final record
            }
            payload.resize(len as usize, 0);
            if file.read_exact(&mut payload).is_err() || crc32(&payload) != crc {
                break;
            }
            let Some((kind, last_seen, key)) = parse_payload(&payload) else { break };
            let frame_len = FRAME_OVERHEAD + len;
            match kind {
                KIND_PUT => {
                    self.supersede(&key);
                    self.index.insert(
                        key,
                        ColdEntry { offset: pos, frame_len, last_seen, stale: false },
                    );
                    self.live_bytes += frame_len;
                }
                _ => {
                    self.supersede(&key);
                    self.dead_bytes += frame_len; // the tombstone itself
                }
            }
            pos += frame_len;
        }
        self.end = pos;
        if file_len > pos {
            // torn tail: drop it so a future append never splices into a
            // half-written record
            self.file.set_len(pos)?;
        }
        Ok(())
    }

    /// Moves `key`'s current entry (if any) to the dead set.
    fn supersede(&mut self, key: &SeriesKey) {
        if let Some(old) = self.index.remove(key) {
            self.live_bytes -= old.frame_len;
            self.dead_bytes += old.frame_len;
            if old.stale {
                self.stale -= 1;
            }
        }
    }

    /// Series resident in the cold tier (indexed and not stale).
    pub fn resident(&self) -> usize {
        self.index.len() - self.stale
    }

    /// True when the file holds a record for `key` (fresh **or** stale) —
    /// the eviction path must tombstone either kind, or a reopen would
    /// resurrect it.
    pub fn has_entry(&self, key: &SeriesKey) -> bool {
        self.index.contains_key(key)
    }

    /// True when `key` is genuinely cold (indexed and not stale) — the
    /// rehydration trigger.
    pub fn is_fresh(&self, key: &SeriesKey) -> bool {
        self.index.get(key).is_some_and(|e| !e.stale)
    }

    /// Appends a put record for `key`. On success the key is fresh in the
    /// index; on error the file may hold a torn record (the open-scan
    /// prefix rule discards it) and the index is unchanged.
    pub fn put(&mut self, key: &SeriesKey, last_seen: u64, blob: &[u8]) -> io::Result<()> {
        let frame = encode_frame(KIND_PUT, last_seen, key, blob);
        fault::write_all(&mut self.file, &self.path, &frame)?;
        self.supersede(key);
        self.index.insert(
            key.clone(),
            ColdEntry {
                offset: self.end,
                frame_len: frame.len() as u64,
                last_seen,
                stale: false,
            },
        );
        self.live_bytes += frame.len() as u64;
        self.end += frame.len() as u64;
        self.dirty = true;
        Ok(())
    }

    /// Appends a tombstone for `key` if the file holds a record for it
    /// (fresh or stale). Returns whether a tombstone was written.
    pub fn tombstone(&mut self, key: &SeriesKey) -> io::Result<bool> {
        if !self.index.contains_key(key) {
            return Ok(false);
        }
        let frame = encode_frame(KIND_TOMBSTONE, 0, key, &[]);
        fault::write_all(&mut self.file, &self.path, &frame)?;
        self.supersede(key);
        self.dead_bytes += frame.len() as u64;
        self.end += frame.len() as u64;
        self.dirty = true;
        Ok(true)
    }

    /// Reads the blob of a fresh `key` and flags the entry stale (the
    /// caller is rehydrating it into the registry). On a corrupt record
    /// the entry is dropped from the index and the error returned — the
    /// caller re-warms the series.
    pub fn take_blob(&mut self, key: &SeriesKey) -> io::Result<(u64, Vec<u8>)> {
        let entry = *self.index.get(key).filter(|e| !e.stale).ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, "key is not cold-resident")
        })?;
        match self.read_put_frame(entry.offset, entry.frame_len, key) {
            Ok(blob) => {
                let e = self.index.get_mut(key).expect("entry checked above");
                e.stale = true;
                self.stale += 1;
                Ok((entry.last_seen, blob))
            }
            Err(e) => {
                // unreadable: keeping it would fail every future attempt
                self.supersede(key);
                Err(e)
            }
        }
    }

    /// Reads and CRC-verifies one put frame, returning its blob bytes.
    fn read_put_frame(
        &mut self,
        offset: u64,
        frame_len: u64,
        key: &SeriesKey,
    ) -> io::Result<Vec<u8>> {
        let corrupt = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
        self.file.seek(SeekFrom::Start(offset))?;
        let mut frame = vec![0u8; frame_len as usize];
        self.file.read_exact(&mut frame)?;
        let len = u32::from_le_bytes(frame[..4].try_into().unwrap()) as u64;
        let crc = u32::from_le_bytes(frame[4..8].try_into().unwrap());
        if FRAME_OVERHEAD + len != frame_len {
            return Err(corrupt("cold record length mismatch"));
        }
        let payload = &frame[FRAME_OVERHEAD as usize..];
        if crc32(payload) != crc {
            return Err(corrupt("cold record CRC mismatch"));
        }
        let (kind, _, recorded_key) =
            parse_payload(payload).ok_or_else(|| corrupt("cold record payload malformed"))?;
        if kind != KIND_PUT || recorded_key != *key {
            return Err(corrupt("cold record does not match its index entry"));
        }
        let blob_at = 1 + 8 + 4 + recorded_key.as_str().len();
        Ok(payload[blob_at..].to_vec())
    }

    /// Flushes appended records to stable storage (no-op when clean).
    pub fn sync(&mut self) -> io::Result<()> {
        if self.dirty {
            fault::sync_data(&self.file, &self.path)?;
            self.dirty = false;
        }
        Ok(())
    }

    /// Tombstones fresh entries idle beyond `ttl` at clock `now` — the
    /// cold half of TTL eviction. Returns how many expired.
    pub fn expire_idle(&mut self, now: u64, ttl: u64) -> io::Result<usize> {
        let mut expired: Vec<SeriesKey> = self
            .index
            .iter()
            .filter(|(_, e)| !e.stale && now.saturating_sub(e.last_seen) > ttl)
            .map(|(k, _)| k.clone())
            .collect();
        expired.sort();
        let n = expired.len();
        for key in expired {
            self.tombstone(&key)?;
        }
        Ok(n)
    }

    /// Rewrites the file without dead bytes when they outgrow the live
    /// set. Logical content (including stale flags) is preserved exactly;
    /// the swap is temp-file → fsync → atomic rename → directory fsync.
    /// Returns whether a rewrite ran. On error the original file and
    /// index are untouched.
    pub fn maybe_compact(&mut self) -> io::Result<bool> {
        if self.dead_bytes < self.live_bytes.max(COMPACT_MIN_DEAD) {
            return Ok(false);
        }
        // stream entries in file order (sequential reads of the old file)
        let mut entries: Vec<(SeriesKey, ColdEntry)> =
            self.index.iter().map(|(k, e)| (k.clone(), *e)).collect();
        entries.sort_by_key(|(_, e)| e.offset);
        let tmp = self.dir.join(format!(".{}.tmp", cold_file_name(self.shard)));
        let result = self.compact_into(&tmp, &entries);
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        result.map(|()| true)
    }

    /// The fallible body of [`ColdStore::maybe_compact`]: state is only
    /// mutated after the rename landed.
    fn compact_into(
        &mut self,
        tmp: &Path,
        entries: &[(SeriesKey, ColdEntry)],
    ) -> io::Result<()> {
        let mut out = fault::create_file(tmp)?;
        let mut header = Vec::with_capacity(HEADER_LEN as usize);
        header.extend_from_slice(MAGIC);
        header.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        header.extend_from_slice(&(self.shard as u32).to_le_bytes());
        fault::write_all(&mut out, tmp, &header)?;
        let mut new_index: HashMap<SeriesKey, ColdEntry> = HashMap::new();
        let mut pos = HEADER_LEN;
        let mut frame = Vec::new();
        for (key, entry) in entries {
            self.file.seek(SeekFrom::Start(entry.offset))?;
            frame.resize(entry.frame_len as usize, 0);
            self.file.read_exact(&mut frame)?;
            fault::write_all(&mut out, tmp, &frame)?;
            new_index.insert(key.clone(), ColdEntry { offset: pos, ..*entry });
            pos += entry.frame_len;
        }
        fault::sync_all(&out, tmp)?;
        drop(out);
        fault::rename(tmp, &self.path)?;
        fault::sync_dir(&self.dir)?;
        self.file = OpenOptions::new().read(true).append(true).open(&self.path)?;
        self.index = new_index;
        self.live_bytes = pos - HEADER_LEN;
        self.dead_bytes = 0;
        self.end = pos;
        self.dirty = false;
        Ok(())
    }
}

/// Builds one framed record.
fn encode_frame(kind: u8, last_seen: u64, key: &SeriesKey, blob: &[u8]) -> Vec<u8> {
    let key_bytes = key.as_str().as_bytes();
    let payload_len = 1 + 8 + 4 + key_bytes.len() + blob.len();
    let mut frame = Vec::with_capacity(FRAME_OVERHEAD as usize + payload_len);
    frame.extend_from_slice(&(payload_len as u32).to_le_bytes());
    frame.extend_from_slice(&[0u8; 4]); // crc placeholder
    frame.push(kind);
    frame.extend_from_slice(&last_seen.to_le_bytes());
    frame.extend_from_slice(&(key_bytes.len() as u32).to_le_bytes());
    frame.extend_from_slice(key_bytes);
    frame.extend_from_slice(blob);
    let crc = crc32(&frame[FRAME_OVERHEAD as usize..]);
    frame[4..8].copy_from_slice(&crc.to_le_bytes());
    frame
}

/// Parses a record payload's fixed prefix: `(kind, last_seen, key)`.
/// `None` on any structural violation (treated as corruption).
fn parse_payload(payload: &[u8]) -> Option<(u8, u64, SeriesKey)> {
    if payload.len() < 1 + 8 + 4 {
        return None;
    }
    let kind = payload[0];
    if kind != KIND_PUT && kind != KIND_TOMBSTONE {
        return None;
    }
    let last_seen = u64::from_le_bytes(payload[1..9].try_into().unwrap());
    let key_len = u32::from_le_bytes(payload[9..13].try_into().unwrap()) as usize;
    let rest = &payload[13..];
    if key_len > rest.len() || (kind == KIND_TOMBSTONE && key_len != rest.len()) {
        return None;
    }
    let key = std::str::from_utf8(&rest[..key_len]).ok()?;
    Some((kind, last_seen, SeriesKey::new(key)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultOp;

    fn test_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cold-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn key(i: usize) -> SeriesKey {
        SeriesKey::new(format!("series/{i}"))
    }

    #[test]
    fn puts_tombstones_and_reopen_agree() {
        let dir = test_dir("roundtrip");
        let mut store = ColdStore::open(&dir, 3).unwrap();
        for i in 0..5 {
            store.put(&key(i), 100 + i as u64, format!("blob-{i}").as_bytes()).unwrap();
        }
        store.put(&key(2), 900, b"blob-2-v2").unwrap(); // overwrite
        assert!(store.tombstone(&key(4)).unwrap());
        assert!(!store.tombstone(&key(99)).unwrap(), "absent key: no record written");
        store.sync().unwrap();
        assert_eq!(store.resident(), 4);
        let (seen, blob) = store.take_blob(&key(2)).unwrap();
        assert_eq!((seen, blob.as_slice()), (900, b"blob-2-v2".as_slice()));
        assert_eq!(store.resident(), 3, "a taken key is stale, not resident");
        assert!(store.has_entry(&key(2)) && !store.is_fresh(&key(2)));
        assert!(
            store.take_blob(&key(2)).is_err(),
            "a stale key cannot be taken again (it is hot)"
        );
        drop(store);
        // reopen: the index mirrors the file, so the taken key is fresh
        // again (crash replay re-reads it at the original rehydration)
        let mut reopened = ColdStore::open(&dir, 3).unwrap();
        assert_eq!(reopened.resident(), 4);
        assert!(!reopened.has_entry(&key(4)), "tombstone survived reopen");
        let (seen, blob) = reopened.take_blob(&key(2)).unwrap();
        assert_eq!((seen, blob.as_slice()), (900, b"blob-2-v2".as_slice()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let dir = test_dir("torn");
        let mut store = ColdStore::open(&dir, 0).unwrap();
        store.put(&key(0), 1, b"good").unwrap();
        store.put(&key(1), 2, b"going").unwrap();
        store.sync().unwrap();
        let intact_end = store.end;
        drop(store);
        let path = dir.join(cold_file_name(0));
        // append half a record: a frame header promising more than exists
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        std::io::Write::write_all(&mut f, &[200, 0, 0, 0, 9, 9, 9, 9, 1, 2]).unwrap();
        drop(f);
        let store = ColdStore::open(&dir, 0).unwrap();
        assert_eq!(store.resident(), 2, "intact prefix survives");
        assert_eq!(store.end, intact_end);
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            intact_end,
            "torn bytes are physically dropped"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn expire_tombstones_idle_entries() {
        let dir = test_dir("expire");
        let mut store = ColdStore::open(&dir, 0).unwrap();
        store.put(&key(0), 10, b"old").unwrap();
        store.put(&key(1), 90, b"recent").unwrap();
        assert_eq!(store.expire_idle(100, 50).unwrap(), 1);
        assert!(!store.has_entry(&key(0)) && store.is_fresh(&key(1)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_drops_dead_bytes_and_preserves_content() {
        let dir = test_dir("compact");
        let mut store = ColdStore::open(&dir, 7).unwrap();
        let big = vec![0xAB; 2048];
        for round in 0..4 {
            for i in 0..4 {
                store.put(&key(i), round, &big).unwrap();
            }
        }
        store.take_blob(&key(3)).unwrap(); // stale entries must survive
        let before = std::fs::metadata(dir.join(cold_file_name(7))).unwrap().len();
        assert!(store.maybe_compact().unwrap(), "3/4 of the file is dead");
        let after = std::fs::metadata(dir.join(cold_file_name(7))).unwrap().len();
        assert!(after < before / 2, "rewrite shed the dead bytes ({before} -> {after})");
        assert_eq!(store.resident(), 3);
        assert!(store.has_entry(&key(3)) && !store.is_fresh(&key(3)));
        let (seen, blob) = store.take_blob(&key(0)).unwrap();
        assert_eq!((seen, blob), (3, big.clone()));
        assert!(!store.maybe_compact().unwrap(), "nothing dead after a rewrite");
        // appends keep working against the swapped file handle
        store.put(&key(9), 5, b"fresh").unwrap();
        drop(store);
        let reopened = ColdStore::open(&dir, 7).unwrap();
        assert_eq!(reopened.resident(), 5, "stale flags reset on reopen (file truth)");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_write_failure_leaves_the_index_unchanged() {
        let dir = test_dir("fault");
        let mut store = ColdStore::open(&dir, 0).unwrap();
        store.put(&key(0), 1, b"ok").unwrap();
        {
            let _g = fault::inject(&dir, fault::enospc(FaultOp::Write));
            assert_eq!(store.put(&key(1), 2, b"fails").unwrap_err().raw_os_error(), Some(28));
        }
        assert!(!store.has_entry(&key(1)));
        assert_eq!(store.resident(), 1);
        // the seam healed: subsequent puts land
        store.put(&key(1), 3, b"lands").unwrap();
        assert_eq!(store.resident(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_compaction_keeps_the_original_file() {
        let dir = test_dir("compact-fault");
        let mut store = ColdStore::open(&dir, 0).unwrap();
        let big = vec![7u8; 2048];
        for round in 0..4 {
            for i in 0..3 {
                store.put(&key(i), round, &big).unwrap();
            }
        }
        {
            let _g = fault::inject(&dir, fault::enospc(FaultOp::Rename));
            assert!(store.maybe_compact().is_err());
        }
        assert_eq!(store.resident(), 3, "index untouched by the failed rewrite");
        let (_, blob) = store.take_blob(&key(1)).unwrap();
        assert_eq!(blob, big);
        assert!(
            !dir.join(format!(".{}.tmp", cold_file_name(0))).exists(),
            "aborted temp file is removed"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
