//! Per-series state machine: warm-up buffering → admission → live scoring.
//!
//! Every transition here is a deterministic function of the value stream
//! and the config — no clocks, no randomness. That property is what the
//! durability layer leans on: [`crate::persist`] replays raw WAL points
//! through this same state machine and reaches the identical phase
//! (including detection back-off bookkeeping and admission points), and
//! [`PhaseSnapshot`] captures any mid-phase state bit-exactly for the
//! snapshot path.

use crate::backend::{BackendSnapshot, SeriesBackend};
use crate::config::{AdmitOptions, FleetConfig, ForecastOptions, PeriodPolicy};
use crate::types::PointOutput;
use forecast::{RollingError, RollingErrorState};
use oneshotstl::{
    IncrementalSolver, OneShotStl, OneShotStlState, ResidualScorer, ResidualScorerState,
    StdAnomalyDetector, UpdateScratch,
};
use tskit::period::detect_period;

/// The trial scratch every live series on a shard shares (see
/// [`oneshotstl::UpdateScratch`]): one hot buffer per worker thread
/// instead of ~3 KiB of cold scratch per series.
pub type SharedScratch = UpdateScratch<IncrementalSolver>;

/// One registered series: either buffering toward admission or live.
// the Live variant dominates the size on purpose: almost every registry
// entry is live at steady state, so boxing would only add a pointer chase
// to the hot scoring path
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum SeriesState {
    /// Accumulating raw points until `init_len = k·T` arrive.
    Warming(Warmup),
    /// Admitted: a live detector scores every point.
    Live(LiveSeries),
    /// Warm-up overflowed without a usable period; points are dropped
    /// until TTL eviction clears the tombstone.
    Rejected,
    /// The series' update panicked or produced non-finite state: its
    /// detector state is gone (it was unrecoverable garbage) and points
    /// are dropped and counted until the key is re-admitted (via
    /// [`crate::FleetEngine::set_admit_options`]) or TTL-evicted.
    Quarantined {
        /// What put the series here.
        cause: QuarantineCause,
        /// Points dropped since quarantine.
        dropped: u64,
    },
}

/// Why a series was quarantined (see [`SeriesState::Quarantined`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuarantineCause {
    /// The update produced a non-finite trend/seasonal/residual split —
    /// the decomposer state is numerically wrecked and every further
    /// update would compound it.
    NonFinite,
    /// The update panicked (caught at the per-series `catch_unwind`
    /// boundary in the shard worker); the state may be torn mid-update.
    Panic,
}

/// Warm-up buffer of a not-yet-admitted series.
#[derive(Debug, Clone)]
pub struct Warmup {
    /// Raw values in arrival order.
    pub values: Vec<f64>,
    /// Detected or declared period (`None` until known).
    pub period: Option<usize>,
    /// Buffer length at the last detection attempt.
    last_attempt: usize,
    /// Pending per-series overrides, baked into the detector at
    /// promotion.
    pub overrides: AdmitOptions,
}

/// A live (admitted) series.
#[derive(Debug)]
pub struct LiveSeries {
    /// The scoring pipeline: OneShotSTL + persistence-aware residual
    /// scorer (NSigma z-score fused with CUSUM; see `oneshotstl::score`).
    pub detector: StdAnomalyDetector<OneShotStl>,
    /// The forecast head + rolling error tracker (`None` when the series
    /// admitted with forecasting disabled — the common case, costing
    /// nothing on the scoring path).
    pub forecast: Option<ForecastState>,
    /// The detection backend running on top of (or instead of) the fused
    /// scorer's verdict (`None` under [`crate::BackendSelect::Fused`] —
    /// the common case, costing nothing on the scoring path).
    pub backend: Option<SeriesBackend>,
}

/// Per-series forecast state: the §5 damped-trend head's bookkeeping plus
/// the rolling forecast-error tracker.
///
/// The head itself is stateless beyond the decomposer — `τ`, the seasonal
/// buffer, and the trend slope all live in (and snapshot with) the
/// `OneShotStl` state — so the only dynamic state here is the pending
/// one-step forecast awaiting its realized value, and the error ring.
/// Everything is `O(1)` per point and allocation-free after admission.
#[derive(Debug)]
pub struct ForecastState {
    options: ForecastOptions,
    /// The one-step-ahead forecast issued at the previous point, scored
    /// against the next arriving value.
    pending: f64,
    /// Whether `pending` holds a forecast (false only before the first
    /// post-admission point).
    has_pending: bool,
    /// Rolling MAE/sMAPE over the last `error_window` one-step forecasts.
    tracker: RollingError,
    /// Lifetime count of error-fusion alarms. Diagnostics only — not
    /// serialized; resets to 0 on snapshot restore (like the decomposer's
    /// shift-search counters).
    alarms: u64,
}

impl ForecastState {
    /// Fresh forecast state under validated options.
    pub fn new(options: ForecastOptions) -> Self {
        ForecastState {
            options,
            pending: 0.0,
            has_pending: false,
            tracker: RollingError::new(options.error_window.max(1) as usize),
            alarms: 0,
        }
    }

    /// The options the series admitted under.
    pub fn options(&self) -> &ForecastOptions {
        &self.options
    }

    /// Rolling `(MAE, sMAPE)` over the error window.
    pub fn rolling_error(&self) -> (f64, f64) {
        (self.tracker.mae(), self.tracker.smape())
    }

    /// Pairs currently in the error window.
    pub fn tracked(&self) -> usize {
        self.tracker.len()
    }

    /// Lifetime error-fusion alarms (diagnostics; reset on restore).
    pub fn alarms(&self) -> u64 {
        self.alarms
    }

    /// Scores the realized `value` against the pending one-step forecast,
    /// then issues the next one from the just-updated decomposer. Returns
    /// whether the error tracker flags the point (model drift): only with
    /// `error_fusion` on, a full window, and rolling sMAPE above the bar.
    pub fn observe(&mut self, value: f64, decomposer: &OneShotStl) -> bool {
        let mut flagged = false;
        if self.has_pending && value.is_finite() {
            self.tracker.record(value, self.pending);
            flagged = self.options.error_fusion
                && self.tracker.is_full()
                && self.tracker.smape() > self.options.smape_alarm;
            self.alarms += flagged as u64;
        }
        self.pending = decomposer.forecast_damped(1, self.options.damping);
        self.has_pending = true;
        flagged
    }

    /// Extracts the plain-data snapshot.
    pub fn to_snapshot(&self) -> ForecastSnapshot {
        ForecastSnapshot {
            options: self.options,
            pending: self.pending,
            has_pending: self.has_pending,
            tracker: self.tracker.to_state(),
        }
    }

    /// Rebuilds forecast state from its snapshot (alarm counter resets).
    pub fn from_snapshot(snap: ForecastSnapshot) -> Result<Self, tskit::error::TsError> {
        let tracker = RollingError::from_state(snap.tracker).map_err(|msg| {
            tskit::error::TsError::InvalidParam { name: "ForecastSnapshot", msg }
        })?;
        Ok(ForecastState {
            options: snap.options,
            pending: snap.pending,
            has_pending: snap.has_pending,
            tracker,
            alarms: 0,
        })
    }
}

/// Plain-data snapshot of one series' forecast state (codec v6).
#[derive(Debug, Clone, PartialEq)]
pub struct ForecastSnapshot {
    /// The options the series admitted under.
    pub options: ForecastOptions,
    /// The pending one-step forecast.
    pub pending: f64,
    /// Whether `pending` holds a forecast.
    pub has_pending: bool,
    /// The rolling error tracker's ring + running sums.
    pub tracker: RollingErrorState,
}

/// What processing one point did to a series.
pub enum StepOutcome {
    /// Output for the ingested point.
    Output(PointOutput),
    /// The point completed warm-up: the series was promoted (the point is
    /// part of the initialization window). Carries the admission output.
    Promoted(PointOutput),
}

impl Warmup {
    /// An empty warm-up buffer under `config`'s period policy.
    pub fn new(config: &FleetConfig) -> Self {
        Warmup::with_overrides(config, AdmitOptions::default())
    }

    /// An empty warm-up buffer with per-series overrides attached. An
    /// override period takes precedence over the engine period policy
    /// (declared or detecting).
    pub fn with_overrides(config: &FleetConfig, overrides: AdmitOptions) -> Self {
        let period = overrides.period.or(match &config.period {
            PeriodPolicy::Fixed(t) => Some(*t),
            PeriodPolicy::Detect { .. } => None,
        });
        Warmup { values: Vec::new(), period, last_attempt: 0, overrides }
    }

    /// Replaces the pending override set, recomputing the period
    /// preference: the new override period, else the engine's declared
    /// period; under [`PeriodPolicy::Detect`] a previously known
    /// (detected or overridden) period is kept. This is the **single**
    /// home of the rule — [`Warmup::from_snapshot`] derives the same
    /// order, so a live warm-up and its restored twin can never admit
    /// under different periods.
    pub fn replace_overrides(&mut self, config: &FleetConfig, opts: AdmitOptions) {
        self.overrides = opts;
        self.period = opts.period.or(match &config.period {
            PeriodPolicy::Fixed(t) => Some(*t),
            PeriodPolicy::Detect { .. } => self.period,
        });
    }

    /// Rebuilds a warm-up buffer from snapshot data. Detection bookkeeping
    /// is restored too, so the restored series attempts detection at the
    /// same buffer lengths the uninterrupted one would have.
    pub fn from_snapshot(
        config: &FleetConfig,
        values: Vec<f64>,
        period: Option<usize>,
        last_attempt: usize,
        overrides: AdmitOptions,
    ) -> Self {
        let mut w = Warmup::with_overrides(config, overrides);
        w.values = values;
        // an override period, then a declared (Fixed) one, wins over a
        // snapshotted detection result
        if w.period.is_none() {
            w.period = period;
        }
        w.last_attempt = last_attempt;
        w
    }

    /// Points needed for admission, when the period is known.
    pub fn needed(&self, config: &FleetConfig) -> Option<usize> {
        self.period.map(|t| config.init_len(t))
    }

    /// Attempts ACF period detection on the buffer. Detection is
    /// `O(n·max_period)`, so attempts back off geometrically (the buffer
    /// must grow by ~25% between attempts) — total warm-up detection cost
    /// stays `O(n·max_period)` instead of quadratic.
    fn try_detect(&mut self, config: &FleetConfig) {
        let PeriodPolicy::Detect { min_period, .. } = &config.period else {
            return;
        };
        let n = self.values.len();
        let step = (self.last_attempt / 4).max(*min_period);
        if n < 3 * *min_period || n < self.last_attempt + step {
            return;
        }
        self.force_detect(config);
    }

    /// One detection attempt right now, ignoring the back-off schedule
    /// (used as the last chance when the warm-up cap is reached).
    fn force_detect(&mut self, config: &FleetConfig) {
        let PeriodPolicy::Detect { min_period, max_period, min_acf, .. } = &config.period
        else {
            return;
        };
        let n = self.values.len();
        if n < 3 * *min_period {
            return;
        }
        self.last_attempt = n;
        self.period = detect_period(&self.values, *min_period, *max_period, *min_acf);
    }
}

impl SeriesState {
    /// A fresh series in the warming phase.
    pub fn new(config: &FleetConfig) -> Self {
        SeriesState::Warming(Warmup::new(config))
    }

    /// A fresh series in the warming phase with per-series overrides.
    pub fn with_overrides(config: &FleetConfig, overrides: AdmitOptions) -> Self {
        SeriesState::Warming(Warmup::with_overrides(config, overrides))
    }

    /// Processes one arriving value. `scratch` is the caller's (typically
    /// per-shard) trial scratch for live-series updates.
    pub fn step(
        &mut self,
        value: f64,
        config: &FleetConfig,
        scratch: &mut SharedScratch,
    ) -> StepOutcome {
        match self {
            SeriesState::Rejected => StepOutcome::Output(PointOutput::Rejected),
            SeriesState::Quarantined { dropped, .. } => {
                *dropped += 1;
                StepOutcome::Output(PointOutput::Quarantined)
            }
            SeriesState::Live(live) => {
                // the detector's own NSigma owns the threshold rule
                let (point, verdict) = live.detector.update_scored_with(value, scratch);
                // a non-finite decomposition means the detector state is
                // numerically wrecked (warm-up imputes non-finite inputs,
                // so this is state corruption, not a bad input): quarantine
                // the series instead of letting every later score be NaN
                if !point.trend.is_finite()
                    || !point.seasonal.is_finite()
                    || !point.residual.is_finite()
                {
                    *self = SeriesState::Quarantined {
                        cause: QuarantineCause::NonFinite,
                        dropped: 1,
                    };
                    return StepOutcome::Output(PointOutput::Quarantined);
                }
                let (mut score, mut is_anomaly) = (verdict.score, verdict.is_anomaly);
                // backend dispatch: the selected backend's verdict
                // *replaces* the fused scorer's (an Ensemble backend
                // folds the fused verdict back in as one of its members)
                if let Some(b) = &mut live.backend {
                    let bv = b.observe(&point, &verdict);
                    score = bv.score;
                    is_anomaly = bv.is_anomaly;
                }
                // forecast head: score the realized value against the
                // pending one-step forecast, issue the next one, and
                // (optionally) fuse a model-drift alarm into the verdict
                if let Some(f) = &mut live.forecast {
                    is_anomaly |= f.observe(value, &live.detector.decomposer);
                }
                StepOutcome::Output(PointOutput::Scored { point, score, is_anomaly })
            }
            SeriesState::Warming(w) => {
                // impute non-finite values with the last buffered one (or
                // drop a leading one): a single NaN must not poison the
                // initialization window — post-admission updates impute
                // the same way
                if value.is_finite() {
                    w.values.push(value);
                } else if let Some(&last) = w.values.last() {
                    w.values.push(last);
                } else {
                    return StepOutcome::Output(PointOutput::Warming {
                        buffered: 0,
                        needed: w.needed(config),
                    });
                }
                if w.period.is_none() {
                    w.try_detect(config);
                }
                let buffered = w.values.len();
                if let Some(t) = w.period {
                    if buffered >= config.init_len(t) {
                        return self.promote(t, config);
                    }
                    // period known: keep buffering toward init_len even
                    // past the cap (growth stays bounded by
                    // init_len(max_period))
                } else if buffered >= config.warmup_cap() {
                    // cap reached without a period: one forced (back-off
                    // bypassing) detection attempt before deciding
                    if buffered == config.warmup_cap() {
                        w.force_detect(config);
                    }
                    if let Some(t) = w.period {
                        if buffered >= config.init_len(t) {
                            return self.promote(t, config);
                        }
                        return StepOutcome::Output(PointOutput::Warming {
                            buffered,
                            needed: w.needed(config),
                        });
                    }
                    let fallback = match &config.period {
                        PeriodPolicy::Detect { fallback, .. } => *fallback,
                        PeriodPolicy::Fixed(t) => Some(*t),
                    };
                    match fallback {
                        // admit under the fallback period only once enough
                        // points for it are buffered (cap can be below k·T
                        // for a custom max_warmup)
                        Some(t) if buffered >= config.init_len(t) => {
                            return self.promote(t, config);
                        }
                        Some(_) => {}
                        None => {
                            *self = SeriesState::Rejected;
                            return StepOutcome::Output(PointOutput::Rejected);
                        }
                    }
                }
                StepOutcome::Output(PointOutput::Warming { buffered, needed: w.needed(config) })
            }
        }
    }

    /// Promotes a warming series: initializes a detector on the whole
    /// buffer. On a (rare) init failure the series is tomb-stoned.
    fn promote(&mut self, period: usize, config: &FleetConfig) -> StepOutcome {
        let SeriesState::Warming(w) = self else {
            unreachable!("promote called on a non-warming series");
        };
        let buffered = w.values.len();
        // per-series overrides are baked into the detector here: from this
        // point on the tuning lives inside the live state (and its
        // snapshots), not in the fleet config
        let mut detector = StdAnomalyDetector::with_score(
            OneShotStl::new(w.overrides.detector_config(config)),
            w.overrides.task_nsigma(config),
            w.overrides.task_score(config),
        );
        match detector.init(&w.values, period) {
            Ok(()) => {
                let fopts = w.overrides.task_forecast(config);
                let forecast = fopts.enabled.then(|| ForecastState::new(fopts));
                let backend = SeriesBackend::build(
                    w.overrides.task_backend(config),
                    w.overrides.task_nsigma(config),
                    period,
                );
                *self = SeriesState::Live(LiveSeries { detector, forecast, backend });
                StepOutcome::Promoted(PointOutput::Warming { buffered, needed: Some(buffered) })
            }
            Err(_) => {
                *self = SeriesState::Rejected;
                StepOutcome::Output(PointOutput::Rejected)
            }
        }
    }
}

/// Plain-data snapshot of one series (key and clock live in the registry
/// entry; see [`crate::codec`]).
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum PhaseSnapshot {
    /// Warm-up buffer contents.
    Warming {
        /// Buffered raw values, arrival order.
        values: Vec<f64>,
        /// Detected period, when detection has already succeeded.
        period: Option<usize>,
        /// Buffer length at the last detection attempt.
        last_attempt: usize,
        /// Pending per-series overrides (codec v4; v3 snapshots decode
        /// with no overrides).
        overrides: AdmitOptions,
    },
    /// Live detector state.
    Live {
        /// The OneShotSTL decomposer state.
        decomposer: OneShotStlState,
        /// The task-level residual scorer state (codec v5; v3/v4
        /// snapshots decode their plain NSigma statistics as a scorer
        /// with `Fusion::Off` — exactly what those writers ran).
        scorer: ResidualScorerState,
        /// Forecast head + error tracker state (codec v6; older snapshots
        /// decode with `None` — those writers never forecast).
        forecast: Option<ForecastSnapshot>,
        /// Detection-backend state (codec v7; older snapshots decode
        /// with `None` — those writers only ran the fused scorer).
        backend: Option<BackendSnapshot>,
    },
    /// Tombstone.
    Rejected,
    /// Quarantine marker (codec v8; the detector state is gone by
    /// definition, so only the cause and drop count persist).
    Quarantined {
        /// What put the series in quarantine.
        cause: QuarantineCause,
        /// Points dropped since quarantine.
        dropped: u64,
    },
}

impl SeriesState {
    /// Extracts the plain-data snapshot of this series.
    pub fn to_snapshot(&self) -> PhaseSnapshot {
        match self {
            SeriesState::Warming(w) => PhaseSnapshot::Warming {
                values: w.values.clone(),
                period: w.period,
                last_attempt: w.last_attempt,
                overrides: w.overrides,
            },
            SeriesState::Live(live) => PhaseSnapshot::Live {
                decomposer: live.detector.decomposer.to_state(),
                scorer: live.detector.scorer().to_state(),
                forecast: live.forecast.as_ref().map(ForecastState::to_snapshot),
                backend: live.backend.as_ref().map(SeriesBackend::to_snapshot),
            },
            SeriesState::Rejected => PhaseSnapshot::Rejected,
            SeriesState::Quarantined { cause, dropped } => {
                PhaseSnapshot::Quarantined { cause: *cause, dropped: *dropped }
            }
        }
    }

    /// Rebuilds a series from its snapshot.
    pub fn from_snapshot(
        snapshot: PhaseSnapshot,
        config: &FleetConfig,
    ) -> Result<Self, tskit::error::TsError> {
        Ok(match snapshot {
            PhaseSnapshot::Warming { values, period, last_attempt, overrides } => {
                SeriesState::Warming(Warmup::from_snapshot(
                    config,
                    values,
                    period,
                    last_attempt,
                    overrides,
                ))
            }
            PhaseSnapshot::Live { decomposer, scorer, forecast, backend } => {
                // live implies initialized: an uninitialized decomposer
                // would panic the shard worker on the first update
                if !decomposer.initialized {
                    return Err(tskit::error::TsError::InvalidParam {
                        name: "PhaseSnapshot::Live",
                        msg: "live series with uninitialized decomposer".into(),
                    });
                }
                SeriesState::Live(LiveSeries {
                    detector: StdAnomalyDetector::from_parts(
                        OneShotStl::from_state(decomposer)?,
                        ResidualScorer::from_state(scorer),
                    ),
                    forecast: forecast.map(ForecastState::from_snapshot).transpose()?,
                    backend: backend.map(SeriesBackend::from_snapshot).transpose().map_err(
                        |msg| tskit::error::TsError::InvalidParam {
                            name: "BackendSnapshot",
                            msg,
                        },
                    )?,
                })
            }
            PhaseSnapshot::Rejected => SeriesState::Rejected,
            PhaseSnapshot::Quarantined { cause, dropped } => {
                SeriesState::Quarantined { cause, dropped }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seasonal(n: usize, t: usize) -> Vec<f64> {
        (0..n).map(|i| 2.0 + (2.0 * std::f64::consts::PI * i as f64 / t as f64).sin()).collect()
    }

    #[test]
    fn non_finite_warmup_values_do_not_poison_admission() {
        // a NaN mid-warm-up is imputed (last value carried forward), so the
        // series still admits and scores — mirroring the live impute path
        let cfg = FleetConfig::fixed_period(24);
        let need = cfg.init_len(24);
        let y = seasonal(need + 10, 24);
        let mut scr = SharedScratch::default();
        let mut s = SeriesState::new(&cfg);
        // a leading NaN (nothing to impute from) is dropped, not buffered
        match s.step(f64::NAN, &cfg, &mut scr) {
            StepOutcome::Output(PointOutput::Warming { buffered, .. }) => {
                assert_eq!(buffered, 0)
            }
            _ => panic!("leading NaN should leave the series warming"),
        }
        for (i, &v) in y.iter().enumerate() {
            let v = if i == 30 { f64::INFINITY } else { v };
            s.step(v, &cfg, &mut scr);
        }
        assert!(matches!(s, SeriesState::Live(_)), "NaN must not tombstone the series");
    }

    #[test]
    fn detected_period_beyond_cap_keeps_buffering_to_admission() {
        // the cap only rejects series with *no* usable period: once T is
        // detected, the series buffers past the cap until init_len(T)
        let cfg = FleetConfig {
            period: PeriodPolicy::Detect {
                min_period: 4,
                max_period: 64,
                min_acf: 0.3,
                fallback: None,
            },
            max_warmup: Some(100), // < init_len(48) = 144
            ..Default::default()
        };
        let y = seasonal(400, 48);
        let mut scr = SharedScratch::default();
        let mut s = SeriesState::new(&cfg);
        let mut promoted = None;
        for (i, &v) in y.iter().enumerate() {
            match s.step(v, &cfg, &mut scr) {
                StepOutcome::Promoted(_) => {
                    promoted = Some(i + 1);
                    break;
                }
                StepOutcome::Output(PointOutput::Rejected) => {
                    panic!("series with a detected period must not be rejected at the cap")
                }
                _ => {}
            }
        }
        assert_eq!(promoted, Some(cfg.init_len(48)));
    }

    #[test]
    fn live_snapshot_with_uninitialized_decomposer_is_rejected() {
        // a crafted/corrupted snapshot must fail at restore, not panic a
        // shard worker on the first update
        let cfg = FleetConfig::fixed_period(8);
        let never_inited = OneShotStl::new(cfg.detector.clone()).to_state();
        let scorer = ResidualScorer::new(cfg.nsigma, cfg.score).to_state();
        let snap = PhaseSnapshot::Live {
            decomposer: never_inited,
            scorer,
            forecast: None,
            backend: None,
        };
        assert!(SeriesState::from_snapshot(snap, &cfg).is_err());
    }

    #[test]
    fn fixed_period_series_admits_at_init_len() {
        let cfg = FleetConfig::fixed_period(24);
        let need = cfg.init_len(24);
        let mut scr = SharedScratch::default();
        let mut s = SeriesState::new(&cfg);
        let y = seasonal(need + 10, 24);
        for (i, &v) in y.iter().enumerate() {
            match s.step(v, &cfg, &mut scr) {
                StepOutcome::Output(PointOutput::Warming { buffered, needed }) => {
                    assert_eq!(buffered, i + 1);
                    assert_eq!(needed, Some(need));
                    assert!(i + 1 < need);
                }
                StepOutcome::Promoted(_) => assert_eq!(i + 1, need),
                StepOutcome::Output(PointOutput::Scored { .. }) => assert!(i + 1 > need),
                other => panic!("unexpected outcome at {i}: {:?}", discr(&other)),
            }
        }
        assert!(matches!(s, SeriesState::Live(_)));
    }

    #[test]
    fn detected_period_series_admits() {
        let cfg = FleetConfig {
            period: PeriodPolicy::Detect {
                min_period: 4,
                max_period: 64,
                min_acf: 0.1,
                fallback: None,
            },
            ..Default::default()
        };
        let mut scr = SharedScratch::default();
        let mut s = SeriesState::new(&cfg);
        let y = seasonal(400, 24);
        let mut promoted_at = None;
        for (i, &v) in y.iter().enumerate() {
            if let StepOutcome::Promoted(_) = s.step(v, &cfg, &mut scr) {
                promoted_at = Some(i + 1);
                break;
            }
        }
        let at = promoted_at.expect("seasonal series should be admitted");
        // detection needs 3 periods; admission needs init_len(T)
        assert!(at >= cfg.init_len(24), "admitted after {at}");
        assert!(at <= 200, "admitted too late: {at}");
    }

    #[test]
    fn white_noise_without_fallback_is_rejected() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let cfg = FleetConfig {
            period: PeriodPolicy::Detect {
                min_period: 4,
                max_period: 32,
                min_acf: 0.6,
                fallback: None,
            },
            max_warmup: Some(120),
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(9);
        let mut scr = SharedScratch::default();
        let mut s = SeriesState::new(&cfg);
        let mut rejected = false;
        for _ in 0..200 {
            let v: f64 = rng.gen_range(-1.0..1.0);
            if let StepOutcome::Output(PointOutput::Rejected) = s.step(v, &cfg, &mut scr) {
                rejected = true;
                break;
            }
        }
        assert!(rejected, "noise should overflow warm-up and be rejected");
        assert!(matches!(s, SeriesState::Rejected));
    }

    #[test]
    fn forecast_enabled_series_tracks_one_step_error() {
        let mut cfg = FleetConfig::fixed_period(24);
        cfg.forecast = ForecastOptions { error_window: 16, ..ForecastOptions::on() };
        let y = seasonal(400, 24);
        let mut scr = SharedScratch::default();
        let mut s = SeriesState::new(&cfg);
        for &v in &y {
            s.step(v, &cfg, &mut scr);
        }
        let SeriesState::Live(live) = &s else { panic!("series must be live") };
        let f = live.forecast.as_ref().expect("forecast state attached at promotion");
        assert!(f.tracked() > 0, "tracker records one-step errors");
        let (mae, smape) = f.rolling_error();
        // a clean seasonal stream forecasts well: tiny one-step error
        assert!(mae < 0.05, "one-step MAE {mae}");
        assert!(smape < 0.1, "one-step sMAPE {smape}");
        assert_eq!(f.alarms(), 0, "no fusion alarms without error_fusion");
    }

    #[test]
    fn error_fusion_flags_a_persistently_mispredicted_series() {
        let mut cfg = FleetConfig::fixed_period(24);
        cfg.forecast = ForecastOptions {
            error_window: 12,
            error_fusion: true,
            smape_alarm: 0.5,
            ..ForecastOptions::on()
        };
        // raise the z-bar so only the forecast-error path can flag: CUSUM
        // fusion is off by default in ScoreConfig::off
        cfg.nsigma = 1e6;
        cfg.score = oneshotstl::ScoreConfig::off();
        // deterministic noise keeps σ away from machine epsilon, so even
        // the +500 jump stays far below the 1e6 z-bar
        let y: Vec<f64> = seasonal(400, 24)
            .iter()
            .enumerate()
            .map(|(i, v)| v + 0.1 * ((i * 7919 % 13) as f64 / 13.0 - 0.5))
            .collect();
        let mut scr = SharedScratch::default();
        let mut s = SeriesState::new(&cfg);
        for &v in &y[..300] {
            s.step(v, &cfg, &mut scr);
        }
        // regime break: the value flips ±500 every step — a one-time
        // level shift would be re-anchored away within a point, but an
        // alternation is persistently unpredictable, so rolling sMAPE
        // climbs over the bar and stays there
        let mut flagged = 0;
        for i in 0..60 {
            let v = y[300 + i] + if i % 2 == 0 { 500.0 } else { -500.0 };
            if let StepOutcome::Output(PointOutput::Scored { is_anomaly: true, .. }) =
                s.step(v, &cfg, &mut scr)
            {
                flagged += 1;
            }
        }
        assert!(flagged > 0, "persistent misprediction must raise drift alarms");
        let SeriesState::Live(live) = &s else { panic!("series must be live") };
        assert_eq!(live.forecast.as_ref().unwrap().alarms(), flagged as u64);
    }

    #[test]
    fn forecast_state_snapshot_roundtrip_continues_bit_identically() {
        let mut cfg = FleetConfig::fixed_period(16);
        cfg.forecast = ForecastOptions {
            damping: 0.9,
            error_window: 8,
            error_fusion: true,
            smape_alarm: 1.9,
            ..ForecastOptions::on()
        };
        let y = seasonal(400, 16);
        let mut scr = SharedScratch::default();
        let mut a = SeriesState::new(&cfg);
        for &v in &y[..200] {
            a.step(v, &cfg, &mut scr);
        }
        let mut b = SeriesState::from_snapshot(a.to_snapshot(), &cfg).unwrap();
        for &v in &y[200..] {
            let (ra, rb) = (a.step(v, &cfg, &mut scr), b.step(v, &cfg, &mut scr));
            match (ra, rb) {
                (StepOutcome::Output(oa), StepOutcome::Output(ob)) => assert_eq!(oa, ob),
                _ => panic!("phases diverged"),
            }
            let (SeriesState::Live(la), SeriesState::Live(lb)) = (&a, &b) else {
                panic!("both series must be live")
            };
            let (fa, fb) = (la.forecast.as_ref().unwrap(), lb.forecast.as_ref().unwrap());
            let ((ma, sa), (mb, sb)) = (fa.rolling_error(), fb.rolling_error());
            assert_eq!(ma.to_bits(), mb.to_bits(), "rolling MAE bit-identical");
            assert_eq!(sa.to_bits(), sb.to_bits(), "rolling sMAPE bit-identical");
        }
    }

    #[test]
    fn corrupt_forecast_snapshot_is_rejected() {
        let mut cfg = FleetConfig::fixed_period(16);
        cfg.forecast = ForecastOptions::on();
        let y = seasonal(200, 16);
        let mut scr = SharedScratch::default();
        let mut s = SeriesState::new(&cfg);
        for &v in &y {
            s.step(v, &cfg, &mut scr);
        }
        let PhaseSnapshot::Live { decomposer, scorer, forecast, backend } = s.to_snapshot()
        else {
            panic!("series must be live")
        };
        let mut bad = forecast.expect("forecast state present");
        bad.tracker.sum_abs = f64::NAN;
        let snap = PhaseSnapshot::Live { decomposer, scorer, forecast: Some(bad), backend };
        assert!(SeriesState::from_snapshot(snap, &cfg).is_err());
    }

    #[test]
    fn snapshot_roundtrip_continues_bit_identically() {
        let cfg = FleetConfig::fixed_period(16);
        let y = seasonal(400, 16);
        let mut scr = SharedScratch::default();
        let mut a = SeriesState::new(&cfg);
        for &v in &y[..200] {
            a.step(v, &cfg, &mut scr);
        }
        let snap = a.to_snapshot();
        let mut b = SeriesState::from_snapshot(snap, &cfg).unwrap();
        for &v in &y[200..] {
            let (ra, rb) = (a.step(v, &cfg, &mut scr), b.step(v, &cfg, &mut scr));
            match (ra, rb) {
                (StepOutcome::Output(oa), StepOutcome::Output(ob)) => assert_eq!(oa, ob),
                _ => panic!("phases diverged"),
            }
        }
    }

    #[test]
    fn warming_snapshot_roundtrip_admits_at_the_same_point() {
        // Detect policy, snapshot taken mid-warm-up: the restored series
        // must attempt detection at the same buffer lengths and admit at
        // the same point as the uninterrupted one.
        let cfg = FleetConfig {
            period: PeriodPolicy::Detect {
                min_period: 4,
                max_period: 64,
                min_acf: 0.3,
                fallback: None,
            },
            ..Default::default()
        };
        let y = seasonal(400, 24);
        let mut scr = SharedScratch::default();
        let mut a = SeriesState::new(&cfg);
        for &v in &y[..40] {
            a.step(v, &cfg, &mut scr);
        }
        let mut b = SeriesState::from_snapshot(a.to_snapshot(), &cfg).unwrap();
        let mut admitted = (None, None);
        for (i, &v) in y[40..].iter().enumerate() {
            if let StepOutcome::Promoted(_) = a.step(v, &cfg, &mut scr) {
                admitted.0 = Some(i);
            }
            if let StepOutcome::Promoted(_) = b.step(v, &cfg, &mut scr) {
                admitted.1 = Some(i);
            }
        }
        assert!(admitted.0.is_some(), "seasonal series should be admitted");
        assert_eq!(admitted.0, admitted.1, "restored warm-up must admit in lockstep");
    }

    #[test]
    fn quarantined_series_drops_counts_and_roundtrips() {
        let cfg = FleetConfig::fixed_period(8);
        let mut scr = SharedScratch::default();
        let mut s = SeriesState::Quarantined { cause: QuarantineCause::Panic, dropped: 0 };
        for i in 1..=5u64 {
            match s.step(1.0, &cfg, &mut scr) {
                StepOutcome::Output(PointOutput::Quarantined) => {}
                other => panic!("unexpected outcome: {}", discr(&other)),
            }
            assert!(matches!(s, SeriesState::Quarantined { dropped, .. } if dropped == i));
        }
        let mut r = SeriesState::from_snapshot(s.to_snapshot(), &cfg).unwrap();
        assert!(matches!(
            r,
            SeriesState::Quarantined { cause: QuarantineCause::Panic, dropped: 5 }
        ));
        r.step(2.0, &cfg, &mut scr);
        assert!(matches!(r, SeriesState::Quarantined { dropped: 6, .. }));
    }

    #[test]
    fn non_finite_live_state_quarantines_the_series() {
        // wreck a live detector's internal state directly (warm-up imputes
        // non-finite *inputs*, so corruption is the only way here), then
        // step: the series must move to Quarantined, not emit NaN forever
        let cfg = FleetConfig::fixed_period(16);
        let y = seasonal(200, 16);
        let mut scr = SharedScratch::default();
        let mut s = SeriesState::new(&cfg);
        for &v in &y {
            s.step(v, &cfg, &mut scr);
        }
        let SeriesState::Live(live) = &mut s else { panic!("series must be live") };
        let mut st = live.detector.decomposer.to_state();
        for v in &mut st.v {
            *v = f64::NAN;
        }
        live.detector.decomposer = OneShotStl::from_state(st).unwrap();
        match s.step(1.0, &cfg, &mut scr) {
            StepOutcome::Output(PointOutput::Quarantined) => {}
            other => panic!("unexpected outcome: {}", discr(&other)),
        }
        assert!(matches!(
            s,
            SeriesState::Quarantined { cause: QuarantineCause::NonFinite, dropped: 1 }
        ));
    }

    fn discr(o: &StepOutcome) -> &'static str {
        match o {
            StepOutcome::Output(PointOutput::Warming { .. }) => "warming",
            StepOutcome::Output(PointOutput::Scored { .. }) => "scored",
            StepOutcome::Output(PointOutput::Rejected) => "rejected",
            StepOutcome::Output(PointOutput::Quarantined) => "quarantined",
            StepOutcome::Promoted(_) => "promoted",
        }
    }
}
