//! Shard worker: owns a slice of the series registry and processes the
//! messages the engine routes to it. One OS thread per shard, plain
//! `std::sync::mpsc` channels — no external runtime. When durability is
//! on, the worker also owns its shard's WAL segment and appends each
//! sub-batch *before* applying it, so a reply implies the points are
//! logged (write-ahead).

use crate::batch::ShardBatch;
use crate::cold_tier::ColdStore;
use crate::config::{AdmitOptions, FleetConfig};
use crate::error::FleetError;
use crate::fault::{self, FaultOp};
use crate::series::{PhaseSnapshot, QuarantineCause, SeriesState, StepOutcome};
use crate::types::{PointOutput, Record, ScoredPoint, SeriesKey, ShardStats};
use crate::wal::{encode_record_into, GroupWal};
use oneshotstl::{IncrementalSolver, UpdateScratch};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;

/// One registry entry: the series state machine plus its liveness clock.
#[derive(Debug)]
pub struct SeriesEntry {
    /// The series key (also indexed in the registry's key map).
    pub key: SeriesKey,
    /// Warm-up / live / tombstone state.
    pub state: SeriesState,
    /// Largest record `t` seen for this series (TTL clock).
    pub last_seen: u64,
    /// Engine batch seq of the last mutation (incremental-snapshot dirty
    /// marker; 0 = untouched since restore).
    pub dirty_seq: u64,
}

/// Vacant-bucket marker in [`KeyIndex`] (a real arena can never reach
/// 2³² − 1 slots before exhausting memory).
const EMPTY_BUCKET: u32 = u32::MAX;

/// Open-addressed index from a series' stable hash to its arena slot:
/// linear probing over a power-of-two table at ≤ 75% load, with
/// backward-shift deletion (no tombstones, so probe chains never rot).
///
/// The point is **hash reuse** on the hot path: the engine's router
/// already computes each record's FNV-1a [`SeriesKey::stable_hash`] once
/// per batch to pick its shard, and that value rides along in the
/// [`ShardBatch`] columns — so the worker's resolution pass indexes
/// straight off it instead of re-hashing the key bytes through the std
/// `HashMap`'s SipHash. Equality is confirmed against the arena entry,
/// which is an `Arc` pointer check when the caller's key aliases the
/// admitted one (the common case for a stable producer set).
#[derive(Default)]
struct KeyIndex {
    /// `(stable_hash, slot)` buckets; a slot of [`EMPTY_BUCKET`] marks a
    /// vacant bucket. Length is always zero or a power of two.
    buckets: Vec<(u64, u32)>,
    /// Occupied bucket count.
    len: usize,
}

impl KeyIndex {
    /// The slot registered under `hash`, confirmed by key equality against
    /// the arena (distinct keys can share a 64-bit hash).
    fn find(&self, hash: u64, key: &SeriesKey, slots: &[Option<SeriesEntry>]) -> Option<u32> {
        if self.len == 0 {
            return None;
        }
        let mask = self.buckets.len() - 1;
        let mut i = (hash as usize) & mask;
        loop {
            let (h, s) = self.buckets[i];
            if s == EMPTY_BUCKET {
                return None;
            }
            if h == hash {
                if let Some(e) = slots.get(s as usize).and_then(|e| e.as_ref()) {
                    if e.key == *key {
                        return Some(s);
                    }
                }
            }
            i = (i + 1) & mask;
        }
    }

    /// Registers `hash → slot` (the caller guarantees the key is absent).
    fn insert(&mut self, hash: u64, slot: u32) {
        debug_assert_ne!(slot, EMPTY_BUCKET);
        if (self.len + 1) * 4 > self.buckets.len() * 3 {
            self.grow();
        }
        self.insert_raw(hash, slot);
        self.len += 1;
    }

    /// Places an entry in the first vacant bucket of its probe chain
    /// (capacity is guaranteed by the caller).
    fn insert_raw(&mut self, hash: u64, slot: u32) {
        let mask = self.buckets.len() - 1;
        let mut i = (hash as usize) & mask;
        while self.buckets[i].1 != EMPTY_BUCKET {
            i = (i + 1) & mask;
        }
        self.buckets[i] = (hash, slot);
    }

    /// Doubles the table and re-seats every entry (hashes are stored, so
    /// no key access is needed).
    fn grow(&mut self) {
        let new_cap = (self.buckets.len() * 2).max(16);
        let old = std::mem::replace(&mut self.buckets, vec![(0, EMPTY_BUCKET); new_cap]);
        for (h, s) in old {
            if s != EMPTY_BUCKET {
                self.insert_raw(h, s);
            }
        }
    }

    /// Unregisters the bucket holding `slot` (probed from `hash`), then
    /// backward-shifts the rest of the cluster so every survivor stays
    /// reachable from its home bucket without tombstones.
    fn remove(&mut self, hash: u64, slot: u32) {
        if self.len == 0 {
            return;
        }
        let mask = self.buckets.len() - 1;
        let mut hole = (hash as usize) & mask;
        loop {
            let (_, s) = self.buckets[hole];
            if s == EMPTY_BUCKET {
                return; // not present: tolerated inconsistency, not a panic
            }
            if s == slot {
                break;
            }
            hole = (hole + 1) & mask;
        }
        self.len -= 1;
        let mut j = hole;
        loop {
            j = (j + 1) & mask;
            let (h, s) = self.buckets[j];
            if s == EMPTY_BUCKET {
                break;
            }
            // an entry may fill the hole iff the hole lies on its probe
            // path: dist(home → hole) < dist(home → j), cyclically
            let home = (h as usize) & mask;
            if (hole.wrapping_sub(home) & mask) < (j.wrapping_sub(home) & mask) {
                self.buckets[hole] = self.buckets[j];
                hole = j;
            }
        }
        self.buckets[hole] = (0, EMPTY_BUCKET);
    }
}

/// Slot-arena series registry: entries live in a contiguous `slots` arena
/// in admission order, with a compact `KeyIndex` from stable hash to
/// slot.
///
/// The layout is the fleet's main cache lever. At 100k+ series the
/// per-series state (a few KiB each) dwarfs every cache level, so what
/// matters is the *order* the hot path walks it: processing a batch in
/// ascending slot order makes the state walk the heap monotonically
/// (slots are admission-ordered, and each entry's buffers were allocated
/// at admission), which turns TLB-miss-bound random access into
/// prefetch-friendly streaming — measured ~20× cheaper per point at the
/// 100k tier. The index itself stays a few MiB (12 bytes per bucket),
/// i.e. cache-resident, and looking up a known series hashes nothing and
/// clones no key when the caller supplies the precomputed hash.
#[derive(Default)]
pub struct Registry {
    /// Stable hash → slot in `slots`.
    index: KeyIndex,
    /// Admission-ordered entry arena; `None` marks an evicted slot
    /// awaiting reuse.
    slots: Vec<Option<SeriesEntry>>,
    /// Evicted slots available for reuse.
    free: Vec<u32>,
}

impl Registry {
    /// Number of registered series.
    pub fn len(&self) -> usize {
        self.index.len
    }

    /// True when no series is registered.
    pub fn is_empty(&self) -> bool {
        self.index.len == 0
    }

    /// The slot of `key`, if registered (cold paths; hashes the key).
    pub fn slot_of(&self, key: &SeriesKey) -> Option<u32> {
        self.slot_of_hashed(key.stable_hash(), key)
    }

    /// [`Registry::slot_of`] with the key's [`SeriesKey::stable_hash`]
    /// already computed — the ingest path, where the router's hash rides
    /// along in the batch columns.
    pub fn slot_of_hashed(&self, hash: u64, key: &SeriesKey) -> Option<u32> {
        self.index.find(hash, key, &self.slots)
    }

    /// Shared access by key (cold paths: forecast).
    pub fn get(&self, key: &SeriesKey) -> Option<&SeriesEntry> {
        self.slot_of(key).and_then(|s| self.entry(s))
    }

    /// The entry at `slot` (`None` when the slot is out of range or
    /// vacant — callers treat that as a recoverable inconsistency, not a
    /// panic; the slot arena is reachable from decoded snapshots).
    pub fn entry(&self, slot: u32) -> Option<&SeriesEntry> {
        self.slots.get(slot as usize).and_then(|e| e.as_ref())
    }

    /// Mutable access to the entry at `slot`, if occupied.
    pub fn entry_mut(&mut self, slot: u32) -> Option<&mut SeriesEntry> {
        self.slots.get_mut(slot as usize).and_then(|e| e.as_mut())
    }

    /// Registers a new entry (the key must not be present), reusing an
    /// evicted slot if one is free.
    pub fn insert(&mut self, entry: SeriesEntry) -> u32 {
        let hash = entry.key.stable_hash();
        self.insert_hashed(hash, entry)
    }

    /// [`Registry::insert`] with the entry key's stable hash already
    /// computed (the ingest path's admission branch).
    pub fn insert_hashed(&mut self, hash: u64, entry: SeriesEntry) -> u32 {
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize] = Some(entry);
                slot
            }
            None => {
                self.slots.push(Some(entry));
                (self.slots.len() - 1) as u32
            }
        };
        self.index.insert(hash, slot);
        slot
    }

    /// Removes the entry at `slot`, returning it (`None` when the slot
    /// was already vacant).
    pub fn remove_slot(&mut self, slot: u32) -> Option<SeriesEntry> {
        let entry = self.slots.get_mut(slot as usize).and_then(Option::take)?;
        self.index.remove(entry.key.stable_hash(), slot);
        self.free.push(slot);
        Some(entry)
    }

    /// Occupied slot indices, ascending.
    pub fn occupied(&self) -> impl Iterator<Item = u32> + '_ {
        self.slots.iter().enumerate().filter(|(_, e)| e.is_some()).map(|(i, _)| i as u32)
    }

    /// All entries, slot (admission) order.
    pub fn iter(&self) -> impl Iterator<Item = &SeriesEntry> {
        self.slots.iter().flatten()
    }
}

/// Snapshot of one registry entry, keyed.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesSnapshot {
    /// The series key.
    pub key: SeriesKey,
    /// TTL clock at snapshot time.
    pub last_seen: u64,
    /// Phase state.
    pub phase: PhaseSnapshot,
}

/// WAL metadata for one ingest sub-batch; present only when durability is
/// attached.
#[derive(Debug, Clone, Copy)]
pub struct WalMeta {
    /// Engine-wide batch sequence number.
    pub seq: u64,
    /// Total records in the engine-level batch (across all shards).
    pub batch_n: u32,
    /// How many shards append a frame for this batch — the group-commit
    /// fanout: the last arriving appender performs the single `fsync`
    /// covering the whole batch.
    pub fanout: u32,
    /// Whether this batch must be on stable storage before any shard
    /// replies (the engine raises this every
    /// [`crate::DurabilityConfig::fsync_every`] batches). With group
    /// commit this costs **one** `fsync` per batch, not one per shard.
    pub sync: bool,
}

/// WAL control operations carried by [`ShardMsg::WalCtl`]. Rotation and
/// explicit syncs go straight to the shared [`GroupWal`] from the engine
/// thread; the only per-worker operation left is adopting the handle.
pub enum WalOp {
    /// Adopt this shared WAL handle; subsequent ingests are logged to it.
    Attach {
        /// The shared WAL handle.
        wal: Arc<GroupWal>,
        /// [`crate::DurabilityPolicy::Degrade`]: a failed append no longer
        /// crash-stops the worker — the batch is applied un-durably and
        /// the engine re-arms durability out of band.
        degrade: bool,
    },
}

/// One shard's answer to a [`ShardMsg::Ingest`]: its shard index plus the
/// same columnar batch with its `outputs` column filled, or the
/// worker-side error string. Returning the batch itself is what closes
/// the buffer-recycling loop: the engine moves keys and outputs out and
/// pushes the emptied buffers back into its spare pool.
pub type BatchReply = (usize, Result<ShardBatch, String>);

/// Messages the engine sends to a shard worker.
pub enum ShardMsg {
    /// Process a columnar sub-batch; reply with this shard's index plus
    /// the batch (outputs filled), or an error if the WAL append failed
    /// under crash-stop — in which case the sub-batch was **not** applied
    /// and the worker terminates, so no later batch can be applied past
    /// the durability failure either. (Under degrade mode a failed append
    /// applies the batch un-durably and replies `Ok`.)
    Ingest {
        /// The routed columns, batch order. The `live` column is each
        /// record's `t` clamped by the engine's bounded clock (see
        /// `FleetConfig::max_clock_step`) — a future-dated record must not
        /// make its series immune to TTL eviction.
        batch: ShardBatch,
        /// Engine batch sequence number (dirty-marker for incremental
        /// snapshots; also the WAL frame seq when durability is on).
        seq: u64,
        /// WAL frame metadata (`None` when durability is off).
        wal: Option<WalMeta>,
        /// Reply channel (`shard index`, outcome) — the index lets the
        /// engine tell which shards answered when another one dies.
        reply: Sender<BatchReply>,
    },
    /// Register or replace per-series admission overrides (see
    /// [`crate::FleetEngine::set_admit_options`]). Creates the series
    /// (warming, empty buffer) when the key is unknown; fails on a series
    /// already past admission.
    Admit {
        /// The targeted series.
        key: SeriesKey,
        /// The overrides to attach.
        opts: AdmitOptions,
        /// Liveness clock for a newly created entry (engine clock).
        now: u64,
        /// Dirty-marker batch seq for incremental snapshots.
        seq: u64,
        /// Reply channel.
        reply: Sender<Result<(), FleetError>>,
    },
    /// Perform a WAL control operation; reply with the outcome.
    WalCtl {
        /// The operation.
        op: WalOp,
        /// Reply channel.
        reply: Sender<Result<(), String>>,
    },
    /// Test support: hold the worker until the channel paired with
    /// `release` is dropped or signalled. Used to fill bounded queues
    /// deterministically in backpressure tests.
    #[doc(hidden)]
    Stall {
        /// Blocks the worker until readable (or disconnected).
        release: Receiver<()>,
    },
    /// Serialize registry entries (sorted by key for stable output),
    /// together with the shard's counters — one round-trip serves both.
    /// Every collection (full or delta) advances the shard's dirty
    /// tracking: entries touched after `upto` belong to the *next* delta.
    Snapshot {
        /// Collect only series dirty since the last collection (plus the
        /// tombstones of series removed since then), instead of the full
        /// registry.
        delta: bool,
        /// Engine batch seq of this collection (the new dirty baseline).
        upto: u64,
        /// Reply channel: `(series, tombstones, stats)`; tombstones are
        /// empty for a full collection.
        reply: Sender<(Vec<SeriesSnapshot>, Vec<SeriesKey>, ShardStats)>,
    },
    /// Report registry/queue statistics.
    Stats {
        /// Reply channel.
        reply: Sender<ShardStats>,
    },
    /// Run the idle sweep at clock `now`: evict series idle beyond `ttl`
    /// (hot and cold-resident) and spill series idle beyond `spill_after`
    /// to the cold tier. Reply with the evicted count.
    EvictIdle {
        /// Current engine clock.
        now: u64,
        /// Eviction threshold (`None`: nothing is forgotten).
        ttl: Option<u64>,
        /// Spill threshold (`None`, or no cold store attached: nothing
        /// leaves memory).
        spill_after: Option<u64>,
        /// Reply channel.
        reply: Sender<usize>,
    },
    /// Open (or reopen) this shard's cold store under `dir`; reply with
    /// the outcome. See [`crate::FleetEngine::attach_cold_dir`].
    ColdCtl {
        /// Directory holding the per-shard cold files.
        dir: PathBuf,
        /// Reply channel.
        reply: Sender<Result<(), String>>,
    },
    /// Forecast `1..=horizon` steps ahead for a batch of series on this
    /// shard (see [`crate::FleetEngine::forecast`]).
    Forecast {
        /// `(position in the caller's key list, series)` pairs.
        items: Vec<(usize, SeriesKey)>,
        /// Steps ahead (`1..=horizon`).
        horizon: usize,
        /// Reply channel: one entry per item (`None` for a series that is
        /// unknown or not live).
        reply: Sender<Vec<(usize, Option<Vec<f64>>)>>,
    },
    /// Test support: panic the worker on dequeue — the deterministic
    /// stand-in for "a shard worker died" that the supervision tests (and
    /// chaos drills) use to exercise respawn.
    #[doc(hidden)]
    Crash,
    /// Terminate the worker.
    Shutdown,
}

/// A shard's registry plus lifetime counters. Owned by the worker thread;
/// also constructed engine-side during restore.
pub struct ShardState {
    /// Shard index (stats labelling).
    pub index: usize,
    /// The series registry (slot arena + key index).
    pub registry: Registry,
    /// Engine configuration (shared, immutable).
    pub config: Arc<FleetConfig>,
    /// The fleet's shared WAL (`None` when durability is off).
    pub wal: Option<Arc<GroupWal>>,
    /// Degrade-mode durability: a failed WAL append applies the batch
    /// un-durably instead of crash-stopping the worker.
    pub degrade: bool,
    /// One trial scratch shared by every series on this shard: the hot
    /// buffers stay in cache across series and per-series scratch memory
    /// is zero (see `oneshotstl::UpdateScratch`).
    pub scratch: UpdateScratch<IncrementalSolver>,
    /// Reusable `(slot, position)` buffer for slot-sorted batch
    /// processing.
    order: Vec<(u32, u32)>,
    /// Batch seq of the last snapshot collection (dirty baseline).
    pub snapshot_seq: u64,
    /// Keys evicted since the last snapshot collection (delta tombstones).
    /// Only tracked once a first collection happened, so an engine that
    /// never snapshots never accumulates them.
    pub removed: Vec<SeriesKey>,
    /// Whether a snapshot collection has happened (tombstone tracking on).
    track_deltas: bool,
    /// The shard's cold tier (`None` until
    /// [`crate::FleetEngine::attach_cold_dir`] installs one).
    pub cold: Option<ColdStore>,
    /// Lifetime counters.
    pub evicted: u64,
    /// Series promoted to live.
    pub admitted: u64,
    /// Records processed.
    pub points: u64,
    /// Anomalies flagged.
    pub anomalies: u64,
    /// Series spilled to the cold tier.
    pub spills: u64,
    /// Cold series rehydrated on their next point.
    pub rehydrations: u64,
    /// Cold-tier I/O or decode failures survived (the shard degrades —
    /// spill skipped or series re-warmed — instead of panicking).
    pub cold_errors: u64,
}

impl ShardState {
    /// An empty shard.
    pub fn new(index: usize, config: Arc<FleetConfig>) -> Self {
        ShardState {
            index,
            registry: Registry::default(),
            config,
            wal: None,
            degrade: false,
            scratch: UpdateScratch::default(),
            order: Vec::new(),
            snapshot_seq: 0,
            removed: Vec::new(),
            track_deltas: false,
            cold: None,
            evicted: 0,
            admitted: 0,
            points: 0,
            anomalies: 0,
            spills: 0,
            rehydrations: 0,
            cold_errors: 0,
        }
    }

    /// Restore support: pretend a collection at `seq` already happened, so
    /// the first delta after a restore covers exactly what changed since
    /// the restored image.
    pub fn set_snapshot_baseline(&mut self, seq: u64) {
        self.snapshot_seq = seq;
        self.track_deltas = true;
    }

    /// Resolves a record's registry slot, admitting an unknown key (the
    /// only point where a key is cloned on the ingest path).
    fn resolve_slot(&mut self, key: &SeriesKey, liveness_t: u64, seq: u64) -> u32 {
        self.resolve_slot_hashed(key.stable_hash(), key, liveness_t, seq)
    }

    /// [`ShardState::resolve_slot`] with the key's stable hash already
    /// computed — the batch path, which reuses the router's hash column.
    fn resolve_slot_hashed(
        &mut self,
        hash: u64,
        key: &SeriesKey,
        liveness_t: u64,
        seq: u64,
    ) -> u32 {
        if let Some(slot) = self.registry.slot_of_hashed(hash, key) {
            return slot;
        }
        if let Some(slot) = self.rehydrate_hashed(hash, key, seq) {
            return slot;
        }
        self.registry.insert_hashed(
            hash,
            SeriesEntry {
                key: key.clone(),
                state: SeriesState::new(&self.config),
                last_seen: liveness_t,
                dirty_seq: seq,
            },
        )
    }

    /// Pulls a cold-resident series back into the registry: decodes its
    /// blob, rebuilds the state, and inserts it with its stored liveness
    /// clock — bit-identical to a series that never spilled. `None` when
    /// the key is not cold (the normal admission path takes over) or the
    /// blob is unreadable (counted in `cold_errors`; the series re-warms).
    fn rehydrate_hashed(&mut self, hash: u64, key: &SeriesKey, seq: u64) -> Option<u32> {
        if !self.cold.as_ref().is_some_and(|c| c.is_fresh(key)) {
            return None;
        }
        let restored =
            self.cold.as_mut().expect("cold store checked above").take_blob(key).ok().and_then(
                |(_, blob)| {
                    let snap = crate::codec::decode_series_blob(&blob).ok()?;
                    // a blob recorded under the wrong key is corruption
                    if snap.key != *key {
                        return None;
                    }
                    let state = SeriesState::from_snapshot(snap.phase, &self.config).ok()?;
                    Some((snap.last_seen, state))
                },
            );
        let Some((last_seen, state)) = restored else {
            self.cold_errors += 1;
            return None;
        };
        self.rehydrations += 1;
        Some(self.registry.insert_hashed(
            hash,
            SeriesEntry { key: key.clone(), state, last_seen, dirty_seq: seq },
        ))
    }

    /// Processes one record against an already-resolved slot.
    fn step_slot(&mut self, slot: u32, value: f64, liveness_t: u64, seq: u64) -> PointOutput {
        self.points += 1;
        let Some(entry) = self.registry.entry_mut(slot) else {
            // a vanished slot is an internal inconsistency; dropping the
            // point (counted as quarantined) beats panicking the worker
            return PointOutput::Quarantined;
        };
        entry.last_seen = entry.last_seen.max(liveness_t);
        entry.dirty_seq = seq;
        // per-series blast radius: a panicking update quarantines this
        // series instead of unwinding the worker and sinking the shard
        let SeriesEntry { key, state, .. } = entry;
        let config = &self.config;
        let scratch = &mut self.scratch;
        let stepped = catch_unwind(AssertUnwindSafe(|| {
            // the injectable stand-in for "this series' update went bad"
            // (its sibling failure mode — a panic — is injected by a hook
            // that panics instead of returning an error)
            fault::check(FaultOp::SeriesStep, Path::new(key.as_str()))
                .map_err(|_| QuarantineCause::NonFinite)?;
            Ok(state.step(value, config, scratch))
        }));
        let outcome = match stepped {
            Ok(Ok(outcome)) => outcome,
            Ok(Err(cause)) => {
                *state = SeriesState::Quarantined { cause, dropped: 1 };
                return PointOutput::Quarantined;
            }
            Err(_) => {
                *state = SeriesState::Quarantined { cause: QuarantineCause::Panic, dropped: 1 };
                // the shared trial scratch may be torn mid-update
                self.scratch = UpdateScratch::default();
                return PointOutput::Quarantined;
            }
        };
        let output = match outcome {
            StepOutcome::Promoted(out) => {
                self.admitted += 1;
                out
            }
            StepOutcome::Output(out) => out,
        };
        if matches!(output, PointOutput::Scored { is_anomaly: true, .. }) {
            self.anomalies += 1;
        }
        output
    }

    /// Processes one record, creating the series on first contact.
    /// `liveness_t` is the engine-clamped clock for this record; `seq` is
    /// the engine batch seq (the incremental-snapshot dirty marker).
    pub fn ingest_one(&mut self, record: Record, liveness_t: u64, seq: u64) -> ScoredPoint {
        let Record { key, t, value } = record;
        let slot = self.resolve_slot(&key, liveness_t, seq);
        let output = self.step_slot(slot, value, liveness_t, seq);
        ScoredPoint { key, t, value, output }
    }

    /// Processes one routed sub-batch in place: a single registry
    /// resolution pass over the key/hash columns (consecutive rows of the
    /// same series reuse the previous resolution — a run of points for one
    /// series costs one lookup), then an update sweep **in ascending slot
    /// order** writing each verdict into `batch.outputs` at its row.
    /// Per-series order within the batch is preserved (the `(slot, row)`
    /// sort breaks ties by row); the engine reassembles outputs by the
    /// `idx` column, so reply order is free. Slot order is admission
    /// order, so the per-series state is walked monotonically through the
    /// heap — the cache/TLB win described on [`Registry`].
    pub fn ingest_batch(&mut self, batch: &mut ShardBatch, seq: u64) {
        let n = batch.len();
        let mut order = std::mem::take(&mut self.order);
        order.clear();
        let mut prev: Option<u32> = None;
        for i in 0..n {
            let slot = match prev {
                Some(s)
                    if batch.hash[i] == batch.hash[i - 1]
                        && batch.keys[i] == batch.keys[i - 1] =>
                {
                    s
                }
                _ => {
                    self.resolve_slot_hashed(batch.hash[i], &batch.keys[i], batch.live[i], seq)
                }
            };
            prev = Some(slot);
            order.push((slot, i as u32));
        }
        // (slot, row): stable per-series order at equal slots. A batch
        // whose rows already arrive in admission order (a producer cycling
        // a fixed key set) skips the sort entirely.
        if !order.is_sorted() {
            order.sort_unstable();
        }
        batch.outputs.clear();
        // placeholder verdict; the sweep below writes every row exactly once
        batch.outputs.resize(n, PointOutput::Rejected);
        for &(slot, i) in &order {
            let i = i as usize;
            batch.outputs[i] = self.step_slot(slot, batch.values[i], batch.live[i], seq);
        }
        self.order = order;
    }

    /// Registers or replaces per-series admission overrides. An unknown
    /// key is created (warming, empty buffer) so the overrides are in
    /// place before its first point; a warming series has its pending
    /// override set **replaced** — a new set without a period reverts to
    /// the engine's declared period (under
    /// [`crate::PeriodPolicy::Detect`] a previously known period is
    /// kept; see [`crate::series::Warmup::replace_overrides`]); a live or
    /// rejected series fails — the tuning window has passed.
    pub fn set_admit_options(
        &mut self,
        key: &SeriesKey,
        opts: AdmitOptions,
        now: u64,
        seq: u64,
    ) -> Result<(), FleetError> {
        match self.registry.slot_of(key) {
            Some(slot) => {
                let config = Arc::clone(&self.config);
                let Some(entry) = self.registry.entry_mut(slot) else {
                    return Err(FleetError::Internal("registry slot vanished"));
                };
                match &mut entry.state {
                    SeriesState::Warming(w) => {
                        w.replace_overrides(&config, opts);
                        // registration is a liveness signal, same as on
                        // the create branch: a just-re-tuned series must
                        // not be swept by the next TTL pass
                        entry.last_seen = entry.last_seen.max(now);
                        entry.dirty_seq = seq;
                        Ok(())
                    }
                    SeriesState::Quarantined { .. } => {
                        // quarantine is re-admittable by design: register
                        // the series again from an empty warm-up buffer
                        entry.state = SeriesState::with_overrides(&config, opts);
                        entry.last_seen = entry.last_seen.max(now);
                        entry.dirty_seq = seq;
                        Ok(())
                    }
                    _ => Err(FleetError::AlreadyAdmitted { key: key.clone() }),
                }
            }
            None => {
                self.registry.insert(SeriesEntry {
                    key: key.clone(),
                    state: SeriesState::with_overrides(&self.config, opts),
                    last_seen: now,
                    dirty_seq: seq,
                });
                Ok(())
            }
        }
    }

    /// The idle sweep: evicts entries idle beyond `ttl` (hot ones, and —
    /// with a cold store attached — cold-resident ones, whose records are
    /// tombstoned so a reopen cannot resurrect them), and spills hot
    /// entries idle beyond `spill_after` to the cold tier. Returns how
    /// many series were evicted; spilled keys become tombstones of the
    /// next delta snapshot (their state lives in the cold file now), and
    /// a spill failure leaves the series hot for the next sweep.
    pub fn evict_idle(
        &mut self,
        now: u64,
        ttl: Option<u64>,
        spill_after: Option<u64>,
    ) -> usize {
        let mut evicted = 0usize;
        let mut cold_io = false;
        for slot in 0..self.registry.slots.len() as u32 {
            let Some(e) = &self.registry.slots[slot as usize] else { continue };
            let idle = now.saturating_sub(e.last_seen);
            if ttl.is_some_and(|ttl| idle > ttl) {
                let Some(entry) = self.registry.remove_slot(slot) else { continue };
                if self.track_deltas {
                    self.removed.push(entry.key.clone());
                }
                // the file may still hold this key (a stale record from a
                // past spill); a reopen would resurrect ancient state
                if let Some(cold) = &mut self.cold {
                    match cold.tombstone(&entry.key) {
                        Ok(wrote) => cold_io |= wrote,
                        Err(_) => self.cold_errors += 1,
                    }
                }
                evicted += 1;
                continue;
            }
            if spill_after.is_none_or(|after| idle <= after) || self.cold.is_none() {
                continue;
            }
            let snap = SeriesSnapshot {
                key: e.key.clone(),
                last_seen: e.last_seen,
                phase: e.state.to_snapshot(),
            };
            let blob = crate::codec::encode_series_blob(&snap);
            let cold = self.cold.as_mut().expect("cold store checked above");
            match cold.put(&snap.key, snap.last_seen, &blob) {
                Ok(()) => {
                    cold_io = true;
                    self.registry.remove_slot(slot);
                    if self.track_deltas {
                        self.removed.push(snap.key);
                    }
                    self.spills += 1;
                }
                // degraded: the series stays hot; retried next sweep
                Err(_) => self.cold_errors += 1,
            }
        }
        // the cold half of TTL eviction: entries that aged out on disk
        if let (Some(ttl), Some(cold)) = (ttl, self.cold.as_mut()) {
            match cold.expire_idle(now, ttl) {
                Ok(n) => {
                    cold_io |= n > 0;
                    evicted += n;
                }
                Err(_) => self.cold_errors += 1,
            }
        }
        if cold_io {
            // one fsync (and at most one compaction) per sweep that wrote
            let cold = self.cold.as_mut().expect("cold_io implies a store");
            if cold.sync().is_err() {
                self.cold_errors += 1;
            }
            if cold.maybe_compact().is_err() {
                self.cold_errors += 1;
            }
        }
        self.evicted += evicted as u64;
        evicted
    }

    /// Serializes the registry (`delta`: only entries dirty since the last
    /// collection), sorted by key (stable snapshot bytes), plus the
    /// tombstones of the interval. Advances the dirty baseline to `upto`.
    pub fn snapshot(
        &mut self,
        delta: bool,
        upto: u64,
    ) -> (Vec<SeriesSnapshot>, Vec<SeriesKey>) {
        let since = self.snapshot_seq;
        let mut out: Vec<SeriesSnapshot> = self
            .registry
            .iter()
            .filter(|e| !delta || e.dirty_seq > since)
            .map(|e| SeriesSnapshot {
                key: e.key.clone(),
                last_seen: e.last_seen,
                phase: e.state.to_snapshot(),
            })
            .collect();
        out.sort_by(|a, b| a.key.cmp(&b.key));
        let mut tombstones = std::mem::take(&mut self.removed);
        if delta {
            tombstones.sort();
            tombstones.dedup();
        } else {
            tombstones.clear();
        }
        self.snapshot_seq = upto;
        self.track_deltas = true;
        (out, tombstones)
    }

    /// Multi-horizon forecast for one series: `ŷ(t+1) .. ŷ(t+horizon)`.
    /// `None` when the series is unknown, warming, or rejected. A series
    /// with a forecast head uses its damped-trend rule
    /// (`forecast_into` — the zero-allocation fill); one without (head
    /// disabled, or restored from a pre-v6 snapshot) keeps the plain
    /// seasonal carry-forward those engines always served.
    pub fn forecast_series(&self, key: &SeriesKey, horizon: usize) -> Option<Vec<f64>> {
        let entry = self.registry.get(key)?;
        match &entry.state {
            SeriesState::Live(live) if live.detector.decomposer.is_initialized() => {
                let mut out = vec![0.0; horizon];
                match &live.forecast {
                    Some(f) => {
                        live.detector.decomposer.forecast_into(f.options().damping, &mut out)
                    }
                    None => {
                        for (i, o) in out.iter_mut().enumerate() {
                            *o = live.detector.decomposer.predict(i + 1);
                        }
                    }
                }
                Some(out)
            }
            _ => None,
        }
    }

    /// Registry/queue statistics (queue depth filled in by the worker).
    /// The diagnostic counters (shift searches, scorer alarms, forecast
    /// alarms) are summed over live series on demand — they live inside
    /// the per-series state and reset on snapshot restore.
    pub fn stats(&self) -> ShardStats {
        let mut s = ShardStats {
            shard: self.index,
            evicted: self.evicted,
            admitted: self.admitted,
            points: self.points,
            anomalies: self.anomalies,
            cold_resident: self.cold.as_ref().map_or(0, ColdStore::resident),
            spills: self.spills,
            rehydrations: self.rehydrations,
            cold_errors: self.cold_errors,
            ..Default::default()
        };
        for e in self.registry.iter() {
            match &e.state {
                SeriesState::Live(live) => {
                    s.live += 1;
                    let (searches, trials) = live.detector.decomposer.shift_search_stats();
                    s.shift_searches += searches;
                    s.shift_trials += trials;
                    let (z, cusum) = live.detector.scorer().alarm_counts();
                    s.z_alarms += z;
                    s.cusum_alarms += cusum;
                    if let Some(f) = &live.forecast {
                        s.forecast_alarms += f.alarms();
                    }
                    if let Some(b) = &live.backend {
                        let (damp, trend) = b.alarm_counts();
                        s.damp_alarms += damp;
                        s.trend_alarms += trend;
                    }
                }
                SeriesState::Warming(_) => s.warming += 1,
                SeriesState::Rejected => s.rejected += 1,
                SeriesState::Quarantined { .. } => s.quarantined += 1,
            }
        }
        s
    }
}

/// Unwind guard: a worker that panics after a group-commit append but
/// before the batch's other appenders arrive would strand them on the
/// flush condvar forever (its share of the fanout count never lands).
/// Poisoning the shared WAL on unwind turns that hang into the normal
/// crash-stop error every other shard already handles.
struct PanicPoison {
    wal: Option<Arc<GroupWal>>,
}

impl Drop for PanicPoison {
    fn drop(&mut self) {
        if std::thread::panicking() {
            if let Some(w) = &self.wal {
                w.poison("shard worker panicked");
            }
        }
    }
}

/// The worker loop: drains messages until `Shutdown` or channel close.
///
/// `queue_depth` counts requests the engine has sent that this worker has
/// not dequeued yet — i.e. channel occupancy, the same quantity a bounded
/// queue caps. It is decremented on dequeue (not on completion) so that a
/// synchronous caller who has already received a reply never observes a
/// stale nonzero depth; the engine samples it for
/// [`ShardStats::queue_depth`] and for the [`crate::QueuePolicy::Reject`]
/// admission check.
pub fn run_worker(
    mut state: ShardState,
    rx: Receiver<ShardMsg>,
    queue_depth: Arc<AtomicUsize>,
    buf_return: Sender<ShardBatch>,
) {
    // a respawned worker arrives with the WAL already in its state, not
    // via a WalCtl message — arm the unwind guard from either source
    let mut poison_guard = PanicPoison { wal: state.wal.clone() };
    // reusable WAL record scratch: frames encode straight off the batch
    // columns into this buffer, so logging allocates nothing per batch
    // once primed
    let mut wal_buf: Vec<u8> = Vec::new();
    while let Ok(msg) = rx.recv() {
        queue_depth.fetch_sub(1, Ordering::Relaxed);
        match msg {
            ShardMsg::Ingest { mut batch, seq, wal, reply } => {
                // write-ahead: the frame must be on the log before any
                // series state changes, so a reply implies durability (up
                // to the fsync interval) and recovery never replays a
                // half-applied batch. With group commit, a `sync` append
                // blocks until the one fsync covering this batch — issued
                // by whichever shard's append lands last — has completed.
                let logged = match (&wal, state.wal.as_ref()) {
                    (Some(meta), Some(w)) => {
                        encode_record_into(&mut wal_buf, meta.seq, meta.batch_n, &batch);
                        w.append_record(meta.seq, &wal_buf, meta.fanout, meta.sync)
                            .map_err(|e| format!("wal append on shard {}: {e}", state.index))
                    }
                    _ => Ok(()),
                };
                if let Err(msg) = logged {
                    if !state.degrade {
                        // crash-stop: a shard that cannot log must not
                        // apply this or any later batch — its state would
                        // diverge from the durable prefix, and a
                        // background snapshot could persist the
                        // divergence. Terminating makes every subsequent
                        // engine call fail with ShardDown.
                        let _ = reply.send((state.index, Err(msg)));
                        break;
                    }
                    // degrade: apply the batch un-durably and keep
                    // serving; the engine sees the poisoned WAL, counts
                    // the un-durable window, and re-arms durability with
                    // a fresh segment + full snapshot out of band
                }
                state.ingest_batch(&mut batch, seq);
                // the filled batch rides back on the reply; the engine
                // moves keys and outputs out and recycles the buffers. An
                // abandoned batch (dropped receiver) is handed back
                // through the return channel instead, so its buffers
                // rejoin the pool rather than being dropped.
                if let Err(std::sync::mpsc::SendError((_, Ok(mut b)))) =
                    reply.send((state.index, Ok(batch)))
                {
                    b.clear();
                    let _ = buf_return.send(b);
                }
            }
            ShardMsg::Admit { key, opts, now, seq, reply } => {
                let _ = reply.send(state.set_admit_options(&key, opts, now, seq));
            }
            ShardMsg::WalCtl { op, reply } => {
                let WalOp::Attach { wal, degrade } = op;
                poison_guard.wal = Some(Arc::clone(&wal));
                state.wal = Some(wal);
                state.degrade = degrade;
                let _ = reply.send(Ok(()));
            }
            ShardMsg::Stall { release } => {
                let _ = release.recv();
            }
            ShardMsg::Snapshot { delta, upto, reply } => {
                let (series, tombstones) = state.snapshot(delta, upto);
                let _ = reply.send((series, tombstones, state.stats()));
            }
            ShardMsg::Stats { reply } => {
                let mut s = state.stats();
                // this request was dequeued already: the load is exactly
                // the backlog queued behind it
                s.queue_depth = queue_depth.load(Ordering::Relaxed);
                let _ = reply.send(s);
            }
            ShardMsg::EvictIdle { now, ttl, spill_after, reply } => {
                let _ = reply.send(state.evict_idle(now, ttl, spill_after));
            }
            ShardMsg::ColdCtl { dir, reply } => {
                let outcome = match ColdStore::open(&dir, state.index) {
                    Ok(store) => {
                        state.cold = Some(store);
                        Ok(())
                    }
                    Err(e) => Err(format!("cold store on shard {}: {e}", state.index)),
                };
                let _ = reply.send(outcome);
            }
            ShardMsg::Forecast { items, horizon, reply } => {
                let out = items
                    .into_iter()
                    .map(|(idx, key)| (idx, state.forecast_series(&key, horizon)))
                    .collect();
                let _ = reply.send(out);
            }
            ShardMsg::Crash => panic!("injected worker crash (test)"),
            ShardMsg::Shutdown => break,
        }
    }
}

#[cfg(test)]
mod registry_tests {
    use super::*;

    fn entry(key: &str) -> SeriesEntry {
        SeriesEntry {
            key: SeriesKey::new(key),
            state: SeriesState::Rejected,
            last_seen: 0,
            dirty_seq: 0,
        }
    }

    #[test]
    fn slots_are_reused_after_removal() {
        let mut r = Registry::default();
        let a = r.insert(entry("a"));
        let b = r.insert(entry("b"));
        assert_eq!((a, b), (0, 1));
        assert_eq!(r.slot_of(&SeriesKey::new("a")), Some(0));
        let removed = r.remove_slot(a).expect("slot a is occupied");
        assert_eq!(removed.key.as_str(), "a");
        assert!(r.remove_slot(a).is_none(), "double-remove is a no-op, not a panic");
        assert!(r.entry(a).is_none());
        assert!(r.entry(99).is_none(), "out-of-range slot is not a panic");
        assert_eq!(r.len(), 1);
        assert_eq!(r.slot_of(&SeriesKey::new("a")), None);
        // the freed slot is recycled for the next admission
        let c = r.insert(entry("c"));
        assert_eq!(c, 0);
        assert_eq!(r.len(), 2);
        assert_eq!(r.occupied().collect::<Vec<_>>(), vec![0, 1]);
        assert!(!r.is_empty());
    }

    #[test]
    fn index_survives_churn() {
        // enough keys to force several table growths plus long probe
        // chains, then heavy deletion: backward-shift removal must keep
        // every survivor reachable from its home bucket
        let mut r = Registry::default();
        let keys: Vec<SeriesKey> =
            (0..500).map(|i| SeriesKey::new(format!("churn/{i}"))).collect();
        let slots: Vec<u32> = keys.iter().map(|k| r.insert(entry(k.as_str()))).collect();
        for (k, &s) in keys.iter().zip(&slots) {
            assert_eq!(r.slot_of(k), Some(s));
            assert_eq!(r.slot_of_hashed(k.stable_hash(), k), Some(s));
            assert_eq!(
                r.slot_of_hashed(k.stable_hash() ^ 1, k),
                None,
                "a wrong hash must not resolve"
            );
        }
        for (i, &s) in slots.iter().enumerate() {
            if i % 3 == 0 {
                assert!(r.remove_slot(s).is_some());
            }
        }
        for (i, (k, &s)) in keys.iter().zip(&slots).enumerate() {
            let expect = if i % 3 == 0 { None } else { Some(s) };
            assert_eq!(r.slot_of(k), expect, "key {i} after churn");
        }
        assert_eq!(r.len(), 500 - 167);
        // re-admission reuses freed slots and the index stays consistent
        for i in (0..500).step_by(3) {
            r.insert(entry(keys[i].as_str()));
        }
        assert_eq!(r.len(), 500);
        for k in &keys {
            assert!(r.slot_of(k).is_some());
        }
    }
}
