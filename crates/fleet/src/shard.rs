//! Shard worker: owns a slice of the series registry and processes the
//! messages the engine routes to it. One OS thread per shard, plain
//! `std::sync::mpsc` channels — no external runtime. When durability is
//! on, the worker also owns its shard's WAL segment and appends each
//! sub-batch *before* applying it, so a reply implies the points are
//! logged (write-ahead).

use crate::config::FleetConfig;
use crate::series::{PhaseSnapshot, SeriesState, StepOutcome};
use crate::types::{PointOutput, Record, ScoredPoint, SeriesKey, ShardStats};
use crate::wal::{Wal, WalFrame, WalItem};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;

/// One registry entry: the series state machine plus its liveness clock.
#[derive(Debug)]
pub struct SeriesEntry {
    /// Warm-up / live / tombstone state.
    pub state: SeriesState,
    /// Largest record `t` seen for this series (TTL clock).
    pub last_seen: u64,
}

/// Snapshot of one registry entry, keyed.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesSnapshot {
    /// The series key.
    pub key: SeriesKey,
    /// TTL clock at snapshot time.
    pub last_seen: u64,
    /// Phase state.
    pub phase: PhaseSnapshot,
}

/// WAL metadata for one ingest sub-batch; present only when durability is
/// attached.
#[derive(Debug, Clone, Copy)]
pub struct WalMeta {
    /// Engine-wide batch sequence number.
    pub seq: u64,
    /// Total records in the engine-level batch (across all shards).
    pub batch_n: u32,
    /// Force an `fsync` after this append (the engine raises this every
    /// [`crate::DurabilityConfig::fsync_every`] appends, counted per
    /// shard).
    pub sync: bool,
}

/// WAL control operations carried by [`ShardMsg::WalCtl`].
pub enum WalOp {
    /// Adopt this WAL handle; subsequent ingests are logged to it.
    Attach(Box<Wal>),
    /// Rotate the current WAL to a fresh segment starting after
    /// `start_seq` (a no-op error-free pass-through when no WAL is
    /// attached).
    Rotate {
        /// Batch sequence the new segment starts after.
        start_seq: u64,
    },
    /// Force an `fsync` of the current segment.
    Sync,
}

/// Messages the engine sends to a shard worker.
pub enum ShardMsg {
    /// Process a sub-batch; reply with `(original_index, output)` pairs,
    /// or an error if the WAL append failed — in which case the sub-batch
    /// was **not** applied and the worker terminates (crash-stop), so no
    /// later batch can be applied past the durability failure either.
    Ingest {
        /// `(position in the caller's batch, record, liveness clock)`
        /// triples, batch order. The liveness clock is the record's `t`
        /// clamped by the engine's bounded clock (see
        /// `FleetConfig::max_clock_step`) — a future-dated record must not
        /// make its series immune to TTL eviction.
        items: Vec<(usize, Record, u64)>,
        /// WAL frame metadata (`None` when durability is off).
        wal: Option<WalMeta>,
        /// Reply channel.
        reply: Sender<Result<Vec<(usize, ScoredPoint)>, String>>,
    },
    /// Perform a WAL control operation; reply with the outcome.
    WalCtl {
        /// The operation.
        op: WalOp,
        /// Reply channel.
        reply: Sender<Result<(), String>>,
    },
    /// Test support: hold the worker until the channel paired with
    /// `release` is dropped or signalled. Used to fill bounded queues
    /// deterministically in backpressure tests.
    #[doc(hidden)]
    Stall {
        /// Blocks the worker until readable (or disconnected).
        release: Receiver<()>,
    },
    /// Serialize every registry entry (sorted by key for stable output),
    /// together with the shard's counters — one round-trip serves both.
    Snapshot {
        /// Reply channel.
        reply: Sender<(Vec<SeriesSnapshot>, ShardStats)>,
    },
    /// Report registry/queue statistics.
    Stats {
        /// Reply channel.
        reply: Sender<ShardStats>,
    },
    /// Evict series idle beyond `ttl` at clock `now`; reply with the count.
    EvictIdle {
        /// Current engine clock.
        now: u64,
        /// Idle threshold.
        ttl: u64,
        /// Reply channel.
        reply: Sender<usize>,
    },
    /// Forecast `horizon` steps ahead for one live series.
    Forecast {
        /// The series to forecast.
        key: SeriesKey,
        /// Steps ahead (`1..=horizon`).
        horizon: usize,
        /// Reply channel (`None` when the series is not live).
        reply: Sender<Option<Vec<f64>>>,
    },
    /// Terminate the worker.
    Shutdown,
}

/// A shard's registry plus lifetime counters. Owned by the worker thread;
/// also constructed engine-side during restore.
pub struct ShardState {
    /// Shard index (stats labelling).
    pub index: usize,
    /// The series registry.
    pub registry: HashMap<SeriesKey, SeriesEntry>,
    /// Engine configuration (shared, immutable).
    pub config: Arc<FleetConfig>,
    /// This shard's WAL segment (`None` when durability is off).
    pub wal: Option<Wal>,
    /// Lifetime counters.
    pub evicted: u64,
    /// Series promoted to live.
    pub admitted: u64,
    /// Records processed.
    pub points: u64,
    /// Anomalies flagged.
    pub anomalies: u64,
}

impl ShardState {
    /// An empty shard.
    pub fn new(index: usize, config: Arc<FleetConfig>) -> Self {
        ShardState {
            index,
            registry: HashMap::new(),
            config,
            wal: None,
            evicted: 0,
            admitted: 0,
            points: 0,
            anomalies: 0,
        }
    }

    /// Processes one record, creating the series on first contact.
    /// `liveness_t` is the engine-clamped clock for this record.
    pub fn ingest_one(&mut self, record: Record, liveness_t: u64) -> ScoredPoint {
        self.points += 1;
        let entry = self.registry.entry(record.key.clone()).or_insert_with(|| SeriesEntry {
            state: SeriesState::new(&self.config),
            last_seen: liveness_t,
        });
        entry.last_seen = entry.last_seen.max(liveness_t);
        let outcome = entry.state.step(record.value, &self.config);
        let output = match outcome {
            StepOutcome::Promoted(out) => {
                self.admitted += 1;
                out
            }
            StepOutcome::Output(out) => out,
        };
        if matches!(output, PointOutput::Scored { is_anomaly: true, .. }) {
            self.anomalies += 1;
        }
        ScoredPoint { key: record.key, t: record.t, value: record.value, output }
    }

    /// Evicts entries idle beyond `ttl`, returning how many were removed.
    pub fn evict_idle(&mut self, now: u64, ttl: u64) -> usize {
        let before = self.registry.len();
        self.registry.retain(|_, e| now.saturating_sub(e.last_seen) <= ttl);
        let evicted = before - self.registry.len();
        self.evicted += evicted as u64;
        evicted
    }

    /// Serializes the registry, sorted by key (stable snapshot bytes).
    pub fn snapshot(&self) -> Vec<SeriesSnapshot> {
        let mut out: Vec<SeriesSnapshot> = self
            .registry
            .iter()
            .map(|(key, e)| SeriesSnapshot {
                key: key.clone(),
                last_seen: e.last_seen,
                phase: e.state.to_snapshot(),
            })
            .collect();
        out.sort_by(|a, b| a.key.cmp(&b.key));
        out
    }

    /// Registry/queue statistics (queue depth filled in by the worker).
    pub fn stats(&self) -> ShardStats {
        let mut s = ShardStats {
            shard: self.index,
            evicted: self.evicted,
            admitted: self.admitted,
            points: self.points,
            anomalies: self.anomalies,
            ..Default::default()
        };
        for e in self.registry.values() {
            match e.state {
                SeriesState::Live(_) => s.live += 1,
                SeriesState::Warming(_) => s.warming += 1,
                SeriesState::Rejected => s.rejected += 1,
            }
        }
        s
    }
}

/// The worker loop: drains messages until `Shutdown` or channel close.
///
/// `queue_depth` counts requests the engine has sent that this worker has
/// not dequeued yet — i.e. channel occupancy, the same quantity a bounded
/// queue caps. It is decremented on dequeue (not on completion) so that a
/// synchronous caller who has already received a reply never observes a
/// stale nonzero depth; the engine samples it for
/// [`ShardStats::queue_depth`] and for the [`crate::QueuePolicy::Reject`]
/// admission check.
pub fn run_worker(
    mut state: ShardState,
    rx: Receiver<ShardMsg>,
    queue_depth: Arc<AtomicUsize>,
) {
    while let Ok(msg) = rx.recv() {
        queue_depth.fetch_sub(1, Ordering::Relaxed);
        match msg {
            ShardMsg::Ingest { items, wal, reply } => {
                // write-ahead: the frame must be on the log before any
                // series state changes, so a reply implies durability (up
                // to the fsync interval) and recovery never replays a
                // half-applied batch
                let logged = match (&wal, state.wal.as_mut()) {
                    (Some(meta), Some(w)) => {
                        let frame = WalFrame {
                            seq: meta.seq,
                            batch_n: meta.batch_n,
                            items: items
                                .iter()
                                .map(|(idx, rec, _)| WalItem {
                                    idx: *idx as u32,
                                    t: rec.t,
                                    value: rec.value,
                                    key: rec.key.clone(),
                                })
                                .collect(),
                        };
                        w.append(&frame, meta.sync)
                            .map_err(|e| format!("wal append on shard {}: {e}", state.index))
                    }
                    _ => Ok(()),
                };
                if let Err(msg) = logged {
                    // crash-stop: a shard that cannot log must not apply
                    // this or any later batch — its state would diverge
                    // from the durable prefix, and a background snapshot
                    // could persist the divergence. Terminating makes
                    // every subsequent engine call fail with ShardDown.
                    let _ = reply.send(Err(msg));
                    break;
                }
                let out: Vec<(usize, ScoredPoint)> = items
                    .into_iter()
                    .map(|(idx, rec, live_t)| (idx, state.ingest_one(rec, live_t)))
                    .collect();
                // a dropped reply receiver is not an error: the engine may
                // have abandoned the batch
                let _ = reply.send(Ok(out));
            }
            ShardMsg::WalCtl { op, reply } => {
                let res = match op {
                    WalOp::Attach(w) => {
                        state.wal = Some(*w);
                        Ok(())
                    }
                    WalOp::Rotate { start_seq } => match state.wal.as_mut() {
                        Some(w) => w
                            .rotate(start_seq)
                            .map_err(|e| format!("wal rotate on shard {}: {e}", state.index)),
                        None => Ok(()),
                    },
                    WalOp::Sync => match state.wal.as_mut() {
                        Some(w) => w
                            .sync()
                            .map_err(|e| format!("wal sync on shard {}: {e}", state.index)),
                        None => Ok(()),
                    },
                };
                let _ = reply.send(res);
            }
            ShardMsg::Stall { release } => {
                let _ = release.recv();
            }
            ShardMsg::Snapshot { reply } => {
                let _ = reply.send((state.snapshot(), state.stats()));
            }
            ShardMsg::Stats { reply } => {
                let mut s = state.stats();
                // this request was dequeued already: the load is exactly
                // the backlog queued behind it
                s.queue_depth = queue_depth.load(Ordering::Relaxed);
                let _ = reply.send(s);
            }
            ShardMsg::EvictIdle { now, ttl, reply } => {
                let _ = reply.send(state.evict_idle(now, ttl));
            }
            ShardMsg::Forecast { key, horizon, reply } => {
                let out = state.registry.get(&key).and_then(|e| match &e.state {
                    SeriesState::Live(live) if live.detector.decomposer.is_initialized() => {
                        Some(
                            (1..=horizon)
                                .map(|i| live.detector.decomposer.predict(i))
                                .collect(),
                        )
                    }
                    _ => None,
                });
                let _ = reply.send(out);
            }
            ShardMsg::Shutdown => break,
        }
    }
}
