//! # fleet — sharded multi-series streaming engine
//!
//! OneShotSTL's `O(1)` per-point update (see the `oneshotstl` crate) only
//! pays off in production when one process hosts *many* concurrent series —
//! the cloud-monitoring setting of the paper's deployment. This crate is
//! that hosting layer: a multi-tenant engine owning a registry of
//! per-series detector state, sharded across worker threads, with warm-up
//! admission for unknown series, TTL lifecycle, and versioned binary
//! snapshot/restore.
//!
//! ## Architecture
//!
//! ```text
//!            ingest(Vec<Record>)                ┌────────────────────────┐
//!  caller ──────────────────────▶ FleetEngine ──▶ shard 0 (OS thread)    │
//!            Vec<ScoredPoint>          │        │  SeriesKey → SeriesState│
//!            (batch order)             ├────────▶ shard 1 …              │
//!                                      │        │  Warming → Live        │
//!            stable FNV-1a router ─────┘        └────────────────────────┘
//! ```
//!
//! - **Registry + sharding.** Records route to `shards` worker threads by a
//!   stable 64-bit key hash ([`SeriesKey::stable_hash`]); plain
//!   `std::thread` + `mpsc`, no external dependencies. A batch fans out to
//!   all shards in parallel and reassembles in input order.
//! - **Warm-up admission.** An unknown key buffers raw points until
//!   `init_len = init_cycles·T` arrive, where the period `T` is either
//!   declared ([`PeriodPolicy::Fixed`]) or ACF-detected from the buffer
//!   ([`PeriodPolicy::Detect`]). The series is then promoted to a live
//!   `StdAnomalyDetector<OneShotStl>` scoring residuals with the
//!   persistence-aware fused scorer (`oneshotstl::score`: NSigma z-score
//!   fused with a two-sided CUSUM and a peak-hold; [`FleetConfig::score`]
//!   configures it engine-wide, `ScoreConfig::off()` restores the plain
//!   z-score).
//! - **Per-series tuning.** [`FleetEngine::set_admit_options`] overrides
//!   λ, the NSigma threshold, the declared period, the §3.4
//!   shift-search policy, the residual scoring config, and the forecast
//!   head for one series before it admits ([`AdmitOptions`]); the
//!   overrides bake into the detector at promotion and survive
//!   snapshot/restore and crash recovery.
//! - **Detection backends.** Beyond the default fused scorer, a series
//!   can run a windowed streaming DAMP discord detector over its
//!   decomposed residual, a trend-innovation CUSUM over its trend
//!   component, or an ensemble fusing all three verdicts
//!   ([`BackendSelect`]; engine-wide via [`FleetConfig::backend`] or per
//!   series via [`AdmitOptions::backend`]). Backends implement the
//!   [`DetectorBackend`] trait (streaming, allocation-free observe over
//!   the decomposed point) and their state snapshots with the series
//!   (codec v7), restoring bit-identically.
//! - **Forecasting.** With [`ForecastOptions`] enabled (engine-wide via
//!   [`FleetConfig::forecast`] or per series), a live series answers
//!   [`FleetEngine::forecast`] with the paper's §5 damped-trend
//!   recurrence `ŷ(t+h) = τ(t) + slope·Σφⁱ + v[(t+Δ+h) mod T]` and keeps
//!   an `O(1)` rolling one-step forecast-error tracker (windowed
//!   MAE/sMAPE) — a per-series quality gauge that can also fuse into the
//!   anomaly verdict as a model-drift alarm
//!   ([`ForecastOptions::error_fusion`]). Series without a head still
//!   answer forecasts via the carry-forward `predict`.
//! - **Snapshot/restore.** [`FleetEngine::snapshot_bytes`] serializes every
//!   series (via `to_state`/`from_state` hooks on `OneShotStl`,
//!   `ResidualScorer`) with a versioned codec ([`codec`]) that
//!   round-trips `f64`s by bit pattern: a restored engine continues the
//!   scoring stream **bit-identically**.
//! - **Lifecycle.** Per-series last-seen clocks; series idle beyond
//!   `config.ttl` are evicted (amortized sweep during ingest, or explicit
//!   [`FleetEngine::evict_idle`]). With [`FleetConfig::spill_after`] set
//!   and a cold tier attached ([`FleetEngine::attach_cold_dir`]), idle
//!   series instead *spill* to an on-disk cold store ([`cold_tier`]) and
//!   drop out of the hot registry — their next point rehydrates them
//!   through the normal shard path, bit-identically. [`FleetEngine::stats`]
//!   reports live/warming/rejected/cold counts, lifetime counters, and
//!   per-shard queue depth.
//! - **Backpressure.** [`FleetEngine::submit`]/[`FleetEngine::next_batch`]
//!   pipeline batches; with [`FleetConfig::queue_capacity`] set, shard
//!   queues are bounded and a full shard either blocks the submitter or
//!   rejects the batch with a typed error ([`QueuePolicy`]).
//! - **Durability.** [`DurableFleet`] adds a per-shard write-ahead log of
//!   raw points ([`wal`]) and periodic background snapshots to disk
//!   ([`persist`]); after a crash, [`DurableFleet::open`] restores the
//!   latest valid snapshot and replays the WAL tail — including torn-tail
//!   truncation — back to a bit-identical engine.
//!
//! ## Quick start
//!
//! ```
//! use fleet::{FleetConfig, FleetEngine, Record};
//!
//! let mut engine = FleetEngine::new(FleetConfig::fixed_period(24)).unwrap();
//! // warm up one series: 3 cycles of a daily pattern
//! for t in 0..72 {
//!     let v = (2.0 * std::f64::consts::PI * t as f64 / 24.0).sin();
//!     engine.ingest_one("host-1/cpu", t, v).unwrap();
//! }
//! // the series is now live: points come back scored
//! let p = engine.ingest_one("host-1/cpu", 72, 0.0).unwrap();
//! assert!(p.score().is_some());
//! let snapshot = engine.snapshot_bytes().unwrap();
//! let restored = FleetEngine::restore_bytes(&snapshot).unwrap();
//! assert_eq!(restored.stats().unwrap().live, 1);
//! ```
//!
//! ## Durability
//!
//! Wrap the same configuration in a [`DurableFleet`] and the engine
//! survives crashes:
//!
//! ```
//! use fleet::{DurabilityConfig, DurableFleet, FleetConfig};
//!
//! let dir = std::env::temp_dir().join(format!("fleet-doc-{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&dir);
//! let mut durable =
//!     DurableFleet::create(FleetConfig::fixed_period(24), DurabilityConfig::new(&dir))
//!         .unwrap();
//! for t in 0..80 {
//!     durable.ingest_one("host-1/cpu", t, (t as f64 / 3.8).sin()).unwrap();
//! }
//! drop(durable); // crash: no clean shutdown, no explicit snapshot
//! let recovered = DurableFleet::open(DurabilityConfig::new(&dir)).unwrap();
//! assert_eq!(recovered.engine().batches(), 80); // WAL replay caught up
//! # let _ = std::fs::remove_dir_all(&dir);
//! ```

#![warn(missing_docs)]

pub mod backend;
pub mod batch;
pub mod codec;
pub mod cold_tier;
pub mod config;
pub mod engine;
pub mod error;
pub mod fault;
pub mod net;
pub mod persist;
pub mod series;
pub mod shard;
pub mod types;
pub mod wal;

pub use backend::{
    BackendScore, BackendSelect, BackendSnapshot, DampBackend, DampBackendState, DampOptions,
    DetectorBackend, EnsembleFusion, EnsembleOptions, SeriesBackend,
};
pub use batch::ShardBatch;
pub use cold_tier::ColdStore;
pub use config::{
    AdmitOptions, FleetConfig, ForecastOptions, PeriodPolicy, QueuePolicy, StateCompression,
};
pub use engine::{CarriedTotals, FleetDelta, FleetEngine, FleetSnapshot};
pub use error::{CodecError, FleetError};
pub use net::{NetClient, NetError, NetMessage, NetServer};
pub use persist::{DurabilityConfig, DurabilityPolicy, DurableFleet};
pub use series::{ForecastSnapshot, QuarantineCause};
pub use shard::SeriesSnapshot;
pub use types::{FleetStats, PointOutput, Record, ScoredPoint, SeriesKey, ShardStats};
