//! # fleet — sharded multi-series streaming engine
//!
//! OneShotSTL's `O(1)` per-point update (see the `oneshotstl` crate) only
//! pays off in production when one process hosts *many* concurrent series —
//! the cloud-monitoring setting of the paper's deployment. This crate is
//! that hosting layer: a multi-tenant engine owning a registry of
//! per-series detector state, sharded across worker threads, with warm-up
//! admission for unknown series, TTL lifecycle, and versioned binary
//! snapshot/restore.
//!
//! ## Architecture
//!
//! ```text
//!            ingest(Vec<Record>)                ┌────────────────────────┐
//!  caller ──────────────────────▶ FleetEngine ──▶ shard 0 (OS thread)    │
//!            Vec<ScoredPoint>          │        │  SeriesKey → SeriesState│
//!            (batch order)             ├────────▶ shard 1 …              │
//!                                      │        │  Warming → Live        │
//!            stable FNV-1a router ─────┘        └────────────────────────┘
//! ```
//!
//! - **Registry + sharding.** Records route to `shards` worker threads by a
//!   stable 64-bit key hash ([`SeriesKey::stable_hash`]); plain
//!   `std::thread` + `mpsc`, no external dependencies. A batch fans out to
//!   all shards in parallel and reassembles in input order.
//! - **Warm-up admission.** An unknown key buffers raw points until
//!   `init_len = init_cycles·T` arrive, where the period `T` is either
//!   declared ([`PeriodPolicy::Fixed`]) or ACF-detected from the buffer
//!   ([`PeriodPolicy::Detect`]). The series is then promoted to a live
//!   `StdAnomalyDetector<OneShotStl>`.
//! - **Snapshot/restore.** [`FleetEngine::snapshot_bytes`] serializes every
//!   series (via `to_state`/`from_state` hooks on `OneShotStl`, `NSigma`)
//!   with a versioned codec ([`codec`]) that round-trips `f64`s by bit
//!   pattern: a restored engine continues the scoring stream
//!   **bit-identically**.
//! - **Lifecycle.** Per-series last-seen clocks; series idle beyond
//!   `config.ttl` are evicted (amortized sweep during ingest, or explicit
//!   [`FleetEngine::evict_idle`]). [`FleetEngine::stats`] reports
//!   live/warming/rejected counts, lifetime counters, and per-shard queue
//!   depth.
//!
//! ## Quick start
//!
//! ```
//! use fleet::{FleetConfig, FleetEngine, Record};
//!
//! let mut engine = FleetEngine::new(FleetConfig::fixed_period(24)).unwrap();
//! // warm up one series: 3 cycles of a daily pattern
//! for t in 0..72 {
//!     let v = (2.0 * std::f64::consts::PI * t as f64 / 24.0).sin();
//!     engine.ingest_one("host-1/cpu", t, v).unwrap();
//! }
//! // the series is now live: points come back scored
//! let p = engine.ingest_one("host-1/cpu", 72, 0.0).unwrap();
//! assert!(p.score().is_some());
//! let snapshot = engine.snapshot_bytes().unwrap();
//! let restored = FleetEngine::restore_bytes(&snapshot).unwrap();
//! assert_eq!(restored.stats().unwrap().live, 1);
//! ```

pub mod codec;
pub mod config;
pub mod engine;
pub mod error;
pub mod series;
pub mod shard;
pub mod types;

pub use config::{FleetConfig, PeriodPolicy};
pub use engine::{CarriedTotals, FleetEngine, FleetSnapshot};
pub use error::{CodecError, FleetError};
pub use shard::SeriesSnapshot;
pub use types::{FleetStats, PointOutput, Record, ScoredPoint, SeriesKey, ShardStats};
