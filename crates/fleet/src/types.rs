//! Core vocabulary of the fleet engine: keys, records, outputs, stats.

use std::fmt;
use std::sync::Arc;
use tskit::series::DecompPoint;

/// Identifier of one time series in the fleet (metric name, tenant id, …).
///
/// Internally an `Arc<str>`: cloning is a refcount bump, so keys travel
/// cheaply through batches, shard channels, and outputs.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SeriesKey(Arc<str>);

impl SeriesKey {
    /// Creates a key from any string-like value.
    pub fn new(key: impl AsRef<str>) -> Self {
        SeriesKey(Arc::from(key.as_ref()))
    }

    /// The key text.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Stable 64-bit hash (FNV-1a) — the shard router. Deliberately *not*
    /// the std `Hasher`, whose output may change across processes: a
    /// snapshot restored in a new process must route every key to the same
    /// shard arithmetic.
    pub fn stable_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.0.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// The shard this key routes to in an engine with `shards` shards.
    pub fn shard_of(&self, shards: usize) -> usize {
        (self.stable_hash() % shards.max(1) as u64) as usize
    }
}

impl fmt::Display for SeriesKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for SeriesKey {
    fn from(s: &str) -> Self {
        SeriesKey::new(s)
    }
}

impl From<String> for SeriesKey {
    fn from(s: String) -> Self {
        SeriesKey(Arc::from(s.into_boxed_str()))
    }
}

/// One ingested observation.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Which series the observation belongs to.
    pub key: SeriesKey,
    /// Event time (engine-wide logical clock; drives TTL eviction).
    pub t: u64,
    /// Observed value.
    pub value: f64,
}

impl Record {
    /// Convenience constructor.
    pub fn new(key: impl Into<SeriesKey>, t: u64, value: f64) -> Self {
        Record { key: key.into(), t, value }
    }
}

/// Per-record engine output, in the order of the ingested batch.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredPoint {
    /// The record's series.
    pub key: SeriesKey,
    /// The record's event time.
    pub t: u64,
    /// The record's value.
    pub value: f64,
    /// What the engine did with the record.
    pub output: PointOutput,
}

impl ScoredPoint {
    /// The anomaly score, if the point was scored by a live detector.
    pub fn score(&self) -> Option<f64> {
        match &self.output {
            PointOutput::Scored { score, .. } => Some(*score),
            _ => None,
        }
    }

    /// True when the point was scored and flagged anomalous.
    pub fn is_anomaly(&self) -> bool {
        matches!(&self.output, PointOutput::Scored { is_anomaly: true, .. })
    }
}

/// The engine's verdict for one record.
#[derive(Debug, Clone, PartialEq)]
pub enum PointOutput {
    /// The series is still warming up; the raw value was buffered.
    Warming {
        /// Points buffered so far (including this one).
        buffered: usize,
        /// Points needed for admission, once the period is known.
        needed: Option<usize>,
    },
    /// The series is live; the point was decomposed and scored.
    Scored {
        /// Trend/seasonal/residual split of the value.
        point: DecompPoint,
        /// NSigma score of the residual.
        score: f64,
        /// `score > n` (the configured threshold).
        is_anomaly: bool,
    },
    /// The series was rejected (warm-up overflowed with no detectable
    /// period and no fallback); the value was dropped.
    Rejected,
    /// The series is quarantined (its update panicked or produced
    /// non-finite state); the value was dropped and counted. The key can
    /// be re-admitted via
    /// [`crate::FleetEngine::set_admit_options`] or after TTL eviction.
    Quarantined,
}

/// Aggregate engine statistics (see [`ShardStats`] for the per-shard view).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FleetStats {
    /// Series currently live (admitted, scoring).
    pub live: usize,
    /// Series currently buffering warm-up points.
    pub warming: usize,
    /// Series currently tomb-stoned as rejected.
    pub rejected: usize,
    /// Series currently quarantined (update panicked or produced
    /// non-finite state; points dropped until re-admission).
    pub quarantined: usize,
    /// Series evicted by TTL so far (lifetime count).
    pub evicted: u64,
    /// Series promoted from warm-up to live so far (lifetime count).
    pub admitted: u64,
    /// Records processed so far (lifetime count).
    pub points: u64,
    /// Scored points flagged anomalous so far (lifetime count).
    pub anomalies: u64,
    /// §3.4 shift searches run by live detectors. Diagnostic: summed over
    /// the *current* live series, whose counters reset on snapshot
    /// restore — unlike the lifetime counters above, which carry across.
    pub shift_searches: u64,
    /// Candidate shifts tried across those searches (same caveat).
    pub shift_trials: u64,
    /// Points over the live scorers' z bar (same caveat). With fusion off
    /// this equals the anomaly verdicts those series raised.
    pub z_alarms: u64,
    /// CUSUM-side alarms across live scorers (same caveat; 0 with fusion
    /// off).
    pub cusum_alarms: u64,
    /// Forecast error-fusion (model-drift) alarms across live series
    /// (same caveat; 0 without forecasting).
    pub forecast_alarms: u64,
    /// DAMP-backend alarms across live series (same caveat; 0 without a
    /// DAMP or ensemble backend).
    pub damp_alarms: u64,
    /// Trend-innovation-CUSUM-backend alarms (z + CUSUM channels) across
    /// live series (same caveat; 0 without a trend or ensemble backend).
    pub trend_alarms: u64,
    /// WAL re-arm attempts made while durability was degraded (lifetime
    /// count; 0 under [`crate::DurabilityPolicy::CrashStop`]).
    pub wal_retries: u64,
    /// Panicked shard workers respawned by supervision (lifetime count).
    pub shard_restarts: u64,
    /// Batches accepted while the WAL was down under
    /// [`crate::DurabilityPolicy::Degrade`] — the un-durable window
    /// (lifetime count). These batches are served but will not survive a
    /// crash until durability re-arms with a fresh full snapshot.
    pub undurable_batches: u64,
    /// Series currently resident in the cold tier (spilled to disk,
    /// rehydrated on their next point; 0 without a cold store).
    pub cold_resident: usize,
    /// Series spilled to the cold tier (resets on restore, like the
    /// diagnostic counters).
    pub spills: u64,
    /// Cold series rehydrated on their next point (same caveat).
    pub rehydrations: u64,
    /// Cold-tier I/O or decode failures survived in degraded fashion —
    /// spill skipped or series re-warmed (same caveat).
    pub cold_errors: u64,
    /// Per-shard breakdown.
    pub shards: Vec<ShardStats>,
}

/// One shard's registry and queue statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Live series on this shard.
    pub live: usize,
    /// Warming series on this shard.
    pub warming: usize,
    /// Rejected tombstones on this shard.
    pub rejected: usize,
    /// Quarantined series on this shard.
    pub quarantined: usize,
    /// Requests currently queued on the shard channel (sampled).
    pub queue_depth: usize,
    /// Series evicted by TTL (lifetime).
    pub evicted: u64,
    /// Series admitted (lifetime).
    pub admitted: u64,
    /// Records processed (lifetime).
    pub points: u64,
    /// Anomalies flagged (lifetime).
    pub anomalies: u64,
    /// Shift searches across this shard's live detectors (resets on
    /// restore; see [`FleetStats::shift_searches`]).
    pub shift_searches: u64,
    /// Candidate shifts tried across those searches.
    pub shift_trials: u64,
    /// z-bar alarms across this shard's live scorers.
    pub z_alarms: u64,
    /// CUSUM alarms across this shard's live scorers.
    pub cusum_alarms: u64,
    /// Forecast error-fusion alarms across this shard's live series.
    pub forecast_alarms: u64,
    /// DAMP-backend alarms across this shard's live series.
    pub damp_alarms: u64,
    /// Trend-CUSUM-backend alarms across this shard's live series.
    pub trend_alarms: u64,
    /// Series resident in this shard's cold tier.
    pub cold_resident: usize,
    /// Series this shard spilled to its cold tier (resets on restore).
    pub spills: u64,
    /// Cold series this shard rehydrated (resets on restore).
    pub rehydrations: u64,
    /// Cold-tier failures this shard survived (resets on restore).
    pub cold_errors: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_hash_is_stable() {
        // pinned: the router must never change across versions, or restored
        // snapshots would re-route keys mid-stream
        assert_eq!(SeriesKey::new("").stable_hash(), 0xcbf2_9ce4_8422_2325);
        assert_eq!(SeriesKey::new("a").stable_hash(), 0xaf63_dc4c_8601_ec8c);
        let k = SeriesKey::new("metric-42");
        assert_eq!(k.shard_of(8), (k.stable_hash() % 8) as usize);
        assert_eq!(k.shard_of(0), 0);
    }

    #[test]
    fn keys_compare_by_text() {
        assert_eq!(SeriesKey::new("x"), SeriesKey::from("x".to_string()));
        assert!(SeriesKey::new("a") < SeriesKey::new("b"));
        assert_eq!(SeriesKey::new("host-1/cpu").to_string(), "host-1/cpu");
    }
}
