//! Columnar per-shard sub-batch buffers for the ingest pipeline.
//!
//! The engine routes each submitted batch into one [`ShardBatch`] per
//! target shard: structure-of-arrays columns instead of per-point
//! `(idx, Record, clock)` tuples. The batch travels to the shard worker by
//! move, comes back on the reply with its `outputs` column filled, and its
//! buffers are recycled into the engine's spare pool — once the pipeline
//! is primed, a steady ingest loop reuses the same allocations batch after
//! batch. Keys are moved (not cloned) in both directions, values sit in a
//! contiguous `f64` slice for the worker's update sweep, and each key's
//! FNV-1a hash is computed once at routing time and reused by the worker's
//! registry resolution pass.

use crate::types::{PointOutput, Record, SeriesKey};

/// One shard's columnar slice of a submitted batch (see the module docs).
///
/// All columns are row-aligned: row `j` of every column describes the same
/// record. `outputs` is the exception — empty on the way in, one verdict
/// per row on the way back.
#[derive(Debug, Default)]
pub struct ShardBatch {
    /// Each row's position in the caller's original batch (the engine
    /// reassembles outputs by this index).
    pub idx: Vec<u32>,
    /// Each row's key, moved from the submitted record on the way in and
    /// moved back out into the reassembled [`crate::ScoredPoint`] — no
    /// refcount churn on the hot path.
    pub keys: Vec<SeriesKey>,
    /// Each row's [`SeriesKey::stable_hash`], computed once by the router
    /// (it already needs the hash to pick the shard) and reused by the
    /// worker's registry resolution instead of re-hashing the key bytes.
    pub hash: Vec<u64>,
    /// Each row's raw event time (what the output and the WAL record).
    pub ts: Vec<u64>,
    /// Each row's engine-clamped liveness clock (see
    /// [`crate::config::FleetConfig::max_clock_step`]).
    pub live: Vec<u64>,
    /// Each row's observed value, contiguous for the worker's sweep.
    pub values: Vec<f64>,
    /// Each row's verdict, filled by the worker (empty until then).
    pub outputs: Vec<PointOutput>,
}

impl ShardBatch {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.idx.len()
    }

    /// True when the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.idx.is_empty()
    }

    /// Appends one routed record: `idx` is its position in the caller's
    /// batch, `hash` its precomputed stable hash, `live` its clamped
    /// liveness clock. The record's key is moved in.
    pub fn push(&mut self, idx: u32, record: Record, hash: u64, live: u64) {
        self.idx.push(idx);
        self.keys.push(record.key);
        self.hash.push(hash);
        self.ts.push(record.t);
        self.live.push(live);
        self.values.push(record.value);
    }

    /// Empties every column, keeping the capacity (pool recycling).
    pub fn clear(&mut self) {
        self.idx.clear();
        self.keys.clear();
        self.hash.clear();
        self.ts.clear();
        self.live.clear();
        self.values.clear();
        self.outputs.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_clear_keep_columns_aligned() {
        let mut b = ShardBatch::default();
        assert!(b.is_empty());
        let rec = Record::new("host-1/cpu", 42, 1.5);
        let hash = rec.key.stable_hash();
        b.push(7, rec, hash, 40);
        assert_eq!(b.len(), 1);
        assert_eq!(b.idx[0], 7);
        assert_eq!(b.keys[0].as_str(), "host-1/cpu");
        assert_eq!(b.hash[0], hash);
        assert_eq!((b.ts[0], b.live[0]), (42, 40));
        assert_eq!(b.values[0], 1.5);
        assert!(b.outputs.is_empty(), "outputs belong to the worker");
        let cap = b.keys.capacity();
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.keys.capacity(), cap, "clear keeps the allocation");
    }
}
